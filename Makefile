# Development entry points. `make test` is the tier-1 gate: it must collect
# and pass from a clean checkout (the repo once shipped with a collection
# error — duplicate test basenames without importlib import mode).

PYTHON ?= python
PYTHONPATH_PREFIX = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-faults coverage check bench bench-pipeline bench-collect bench-service bench-scaleout-smoke bench-rebalance-smoke bench-json bench-smoke

test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

# The fault-injection harness alone (torn writes, fsync crashes,
# mid-frame disconnects — tests/faults/): a named run for CI so a
# recovery regression is visible at a glance.
test-faults:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest tests/faults -q

# Coverage gate over the collection stack (repro.pipeline).  The floor
# is a ratchet: raise it when coverage rises, never lower it to make a
# PR pass.  Needs pytest-cov (`pip install -e .[dev]`).
COV_FAIL_UNDER ?= 85
coverage:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q \
		--cov=repro.pipeline --cov-report=term-missing:skip-covered \
		--cov-fail-under=$(COV_FAIL_UNDER)

# Tier-1 gate plus smoke runs of (a) the packed fast-sampler pipeline,
# (b) the durable-collection path — spill to a throwaway ShardStore,
# out-of-core replay + digest audit, then a localhost socket round-trip
# through the asyncio Collector — (c) the authenticated exactly-once
# CollectionService round-trip with its blind-resend duplicate check —
# and (d) the same through per-producer derived keys (KeyRegistry) —
# so none of them can silently break — plus (e) a smoke-profile run of
# the scale-out fleet benchmark (2 shard processes, tiny population) so
# the routed multi-process path is exercised on every check, and (f)
# the split-trust round (1 blinded collector + 2 share keepers, blind
# resends, combined decode asserted bit-identical to the direct tally),
# plus (g) the live-rebalance smoke: 2 shards grow to 3 under streaming
# producers, the migration pause recorded and exactness asserted.
check: test bench-scaleout-smoke bench-rebalance-smoke
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.cli pipeline \
		--n 2000 --m 64 --shards 2 --chunk-size 256 \
		--sampler fast --packed --topk 3
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.cli pipeline \
		--n 1000 --m 48 --shards 2 --chunk-size 128 \
		--sampler fast --packed --collect --spill-dir $$(mktemp -d)/round
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.cli pipeline \
		--n 1000 --m 48 --shards 2 --chunk-size 128 \
		--sampler fast --packed --collect --spill-dir $$(mktemp -d)/round \
		--auth-key 00112233445566778899aabbccddeeff
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.cli pipeline \
		--n 1000 --m 48 --shards 2 --chunk-size 128 \
		--sampler fast --packed --collect --spill-dir $$(mktemp -d)/round \
		--producer-key fleet-master-0001
	$(PYTHONPATH_PREFIX) $(PYTHON) examples/split_trust_round.py

# The benchmark suite uses bench_* naming so default collection skips it.
bench:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks -q \
		-o python_files='bench_*.py' -o python_functions='bench_*'

bench-pipeline:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_pipeline.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*'

# Durable-collection throughput (spill / replay / socket ingest), with a
# machine-readable record under benchmarks/results/BENCH_collect.json.
bench-collect:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_collect.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		--json benchmarks/results/BENCH_collect.json

# Exactly-once service: authenticated-ingest throughput (vs the raw
# socket path, with the <= 2x acceptance assertion) and restart-recovery
# latency, recorded under benchmarks/results/BENCH_service.json.
bench-service:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_service.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		--json benchmarks/results/BENCH_service.json

# Scale-out fleet ingest at smoke scale: 2 shard processes, 16 routed
# producers, no throughput assertion — a fast liveness check that the
# fork/route/aggregate path works end to end (full profile: bench-service).
bench-scaleout-smoke:
	BENCH_SCALEOUT_SMOKE=1 $(PYTHONPATH_PREFIX) $(PYTHON) -m pytest \
		"benchmarks/bench_service.py::bench_service_scaleout" -q \
		-o python_files='bench_*.py' -o python_functions='bench_*'

# Live rebalance at smoke scale: 2 shards grow to 3 while producers
# stream, the migration's wall time and observed ack pause recorded,
# exactly-once asserted across the move (full profile: bench-service).
bench-rebalance-smoke:
	BENCH_REBALANCE_SMOKE=1 $(PYTHONPATH_PREFIX) $(PYTHON) -m pytest \
		"benchmarks/bench_service.py::bench_service_rebalance" -q \
		-o python_files='bench_*.py' -o python_functions='bench_*'

# Tiny-scale throughput run (BENCH_SMOKE=1) into a scratch JSON, then
# validate that every compute backend available on this machine ran and
# emitted a well-formed record.  CI runs this with and without the
# numba extra; it never touches the committed BENCH_*.json numbers.
bench-smoke:
	BENCH_SMOKE=1 $(PYTHONPATH_PREFIX) $(PYTHON) -m pytest \
		benchmarks/bench_throughput.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		-k "sampler" --json /tmp/BENCH_smoke.json
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/check_results.py /tmp/BENCH_smoke.json

# Machine-readable perf trajectory: BENCH_*.json under benchmarks/results/.
bench-json:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_throughput.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		--json benchmarks/results/BENCH_throughput.json
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_pipeline.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		--json benchmarks/results/BENCH_pipeline.json
