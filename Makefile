# Development entry points. `make test` is the tier-1 gate: it must collect
# and pass from a clean checkout (the repo once shipped with a collection
# error — duplicate test basenames without importlib import mode).

PYTHON ?= python
PYTHONPATH_PREFIX = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test check bench bench-pipeline bench-collect bench-json

test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

# Tier-1 gate plus smoke runs of (a) the packed fast-sampler pipeline and
# (b) the durable-collection path — spill to a throwaway ShardStore,
# out-of-core replay + digest audit, then a localhost socket round-trip
# through the asyncio Collector — so neither can silently break.
check: test
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.cli pipeline \
		--n 2000 --m 64 --shards 2 --chunk-size 256 \
		--sampler fast --packed --topk 3
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.cli pipeline \
		--n 1000 --m 48 --shards 2 --chunk-size 128 \
		--sampler fast --packed --collect --spill-dir $$(mktemp -d)/round

# The benchmark suite uses bench_* naming so default collection skips it.
bench:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks -q \
		-o python_files='bench_*.py' -o python_functions='bench_*'

bench-pipeline:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_pipeline.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*'

# Durable-collection throughput (spill / replay / socket ingest), with a
# machine-readable record under benchmarks/results/BENCH_collect.json.
bench-collect:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_collect.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		--json benchmarks/results/BENCH_collect.json

# Machine-readable perf trajectory: BENCH_*.json under benchmarks/results/.
bench-json:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_throughput.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		--json benchmarks/results/BENCH_throughput.json
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_pipeline.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		--json benchmarks/results/BENCH_pipeline.json
