# Development entry points. `make test` is the tier-1 gate: it must collect
# and pass from a clean checkout (the repo once shipped with a collection
# error — duplicate test basenames without importlib import mode).

PYTHON ?= python
PYTHONPATH_PREFIX = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-pipeline

test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

# The benchmark suite uses bench_* naming so default collection skips it.
bench:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks -q \
		-o python_files='bench_*.py' -o python_functions='bench_*'

bench-pipeline:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_pipeline.py -q \
		-o python_files='bench_*.py' -o python_functions='bench_*'
