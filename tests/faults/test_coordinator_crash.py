"""Coordinator ``kill -9``: the journal makes the round recoverable.

The cross-process half of coordinator durability (the in-process half
is ``tests/service/test_coordinator_durability.py``): a coordinator
running in its own OS process registers a round across a real shard
fleet, producers ship acked records — and then the coordinator is
SIGKILLed with the round live.  Without the journal this is the
unrecoverable case: the registration token died with the process, so
nobody could ever drain or close the round again.  With it, a fresh
process resumes from the journal file alone, re-asserts ownership
under the *original* token (a mismatched token would be refused
loudly, so reconcile succeeding IS the token-durability proof), eats
every producer's blind resend as duplicates, and closes the round to
the same digest an uninterrupted single-process run produces.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing

import numpy as np

from repro.pipeline import CollectionService
from repro.pipeline.collect import wire
from repro.pipeline.service import (
    RoundCoordinator,
    ShardFleet,
    aggregate_round,
    send_records,
    send_records_routed,
)
from repro.pipeline.service.lifecycle import SERVING

M = 32
ROUND = 7
SECRET = "fleet-producer-secret"
CONTROL_KEY = "fleet-control-secret"
SHARDS = ["alpha", "beta", "gamma"]
PRODUCERS = [f"edge-{i:03d}" for i in range(15)]
ROWS_PER_CHUNK = 2
CHUNKS = 2


def _frames_for(producer_id: str) -> list[bytes]:
    seed = int.from_bytes(
        hashlib.sha256(producer_id.encode()).digest()[:4], "little"
    )
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(CHUNKS):
        bits = (rng.random((ROWS_PER_CHUNK, M)) < 0.5).astype(np.uint8)
        frames.append(
            wire.dump_chunk(np.packbits(bits, axis=1), M, round_id=ROUND)
        )
    return frames


async def _single_process_digest(tmp_path) -> str:
    service = CollectionService(
        M, key=SECRET, store_root=str(tmp_path / "reference"), round_id=ROUND
    )
    host, port = await service.serve()
    try:
        for producer_id in PRODUCERS:
            await send_records(
                host,
                port,
                _frames_for(producer_id),
                key=SECRET,
                producer_id=producer_id,
                m=M,
                round_id=ROUND,
            )
        return service.accumulator.digest()
    finally:
        await service.close()


def _coordinator_child_main(config: dict, ready) -> None:
    """Child-process coordinator: journal, register the round, then
    hang until SIGKILL — the crash leaves only the journal behind."""
    from repro.pipeline.service import RoundCoordinator, ShardInfo

    async def main() -> None:
        try:
            coordinator = RoundCoordinator(
                [
                    ShardInfo(name, host, int(port))
                    for name, host, port in config["shards"]
                ],
                control_key=config["control_key"],
                epoch=int(config["epoch"]),
                journal=config["journal"],
            )
            await coordinator.register_round(
                int(config["m"]), int(config["round_id"])
            )
        except BaseException as exc:  # the parent needs the reason
            ready.put({"error": f"{type(exc).__name__}: {exc}"})
            raise
        ready.put({"registered": config["round_id"]})
        await asyncio.Event().wait()  # parked; only SIGKILL ends this

    asyncio.run(main())


def test_sigkill_coordinator_resume_from_journal_bit_identical(tmp_path):
    async def scenario():
        reference_digest = await _single_process_digest(tmp_path)
        journal_path = str(tmp_path / "coordinator.journal")

        fleet = ShardFleet(
            SHARDS,
            fleet_root=str(tmp_path / "fleet"),
            rounds=[],
            key=SECRET,
            control_key=CONTROL_KEY,
        )
        table = await fleet.start()
        try:
            # The coordinator runs (and dies) in its own process; only
            # the journal file crosses back to the parent.
            ctx = multiprocessing.get_context("fork")
            ready = ctx.Queue()
            child = ctx.Process(
                target=_coordinator_child_main,
                args=(
                    {
                        "shards": [
                            (info.name, info.host, info.port)
                            for info in fleet.infos()
                        ],
                        "epoch": table.epoch,
                        "control_key": CONTROL_KEY,
                        "journal": journal_path,
                        "m": M,
                        "round_id": ROUND,
                    },
                    ready,
                ),
                daemon=True,
                name="coordinator",
            )
            child.start()
            report = ready.get(timeout=30.0)
            assert report == {"registered": ROUND}

            # Producers ship and get acks — records the recovery must
            # not lose live on the shards, but the round's token lives
            # only in the coordinator's journal.
            for producer_id in PRODUCERS:
                acks = await send_records_routed(
                    table,
                    _frames_for(producer_id),
                    key=SECRET,
                    producer_id=producer_id,
                    m=M,
                    round_id=ROUND,
                )
                assert [a.status for a in acks] == [wire.ACK_MERGED] * CHUNKS

            child.kill()  # SIGKILL mid-round: no drain, no goodbye
            child.join(timeout=10.0)
            assert not child.is_alive()

            # A fresh process resumes from the journal file alone.
            resumed = RoundCoordinator.resume(
                journal_path, control_key=CONTROL_KEY
            )
            assert sorted(resumed.rounds) == [ROUND]
            assert resumed.phase(ROUND) == SERVING
            summary = await resumed.reconcile()
            # Reconcile re-opened the round under the journaled token;
            # the shards (which hold the original) accepted it — a
            # wrong token would have been refused as "already hosted".
            assert summary == {"rounds": [ROUND], "migration_rerun": False}

            # Blind resends from every producer: all duplicates.
            for producer_id in PRODUCERS:
                acks = await send_records_routed(
                    table,
                    _frames_for(producer_id),
                    key=SECRET,
                    producer_id=producer_id,
                    m=M,
                    round_id=ROUND,
                    raise_on_refusal=False,
                )
                assert [a.status for a in acks] == [
                    wire.ACK_DUPLICATE
                ] * CHUNKS

            # The resumed coordinator owns the lifecycle end-to-end.
            await resumed.drain(ROUND)
            await resumed.close_round(ROUND)
            result = await aggregate_round(
                fleet.infos(),
                control_key=CONTROL_KEY,
                round_id=ROUND,
                fan_in=2,
            )
            assert result.accumulator.n == (
                len(PRODUCERS) * CHUNKS * ROWS_PER_CHUNK
            )
            assert result.accumulator.digest() == reference_digest
            await resumed.close()
        finally:
            fleet.stop()

    asyncio.run(scenario())
