"""Reusable fault-injection harness for the collection stack.

Wraps every binary file the service opens under a chosen root in a
:class:`FaultyFile` proxy (opened **unbuffered**, so "bytes written
before the fault" is exactly the on-disk state a real crash would
leave — no hidden userspace buffer to flush during teardown), and
intercepts ``os.fsync`` for the wrapped handles.  Tests arm *triggers*:

* :meth:`FaultInjector.torn_write` — the Nth write to a matching file
  persists only a prefix, then the process "dies" (every wrapped handle
  slams shut, the rollback that a live service would run never gets to
  touch the disk);
* :meth:`FaultInjector.crash_on_fsync` — the Nth fsync of a matching
  file never returns: the crash lands exactly between the spill fsync
  and the ledger fsync when pointed at the right file;
* :meth:`FaultInjector.io_error_on_write` /
  :meth:`FaultInjector.io_error_on_fsync` — the *non-fatal* variants: the
  operation fails (ENOSPC-style) but the process survives, exercising
  the service's rollback + fail-stop repair path instead of recovery;
* :meth:`FaultInjector.short_read` — the Nth read of a matching file
  silently returns a prefix, simulating a filesystem that lost the tail
  (recovery-time torn state without any write-side fault);
* :func:`tear_tail` — chop bytes off a closed file between runs (the
  classic kill-mid-append shape);
* :func:`disconnect_mid_frame` — the transport-side fault: an
  authenticated producer ships a prefix of a record frame and drops the
  connection.

After a fatal trigger fires, ``injector.crashed`` is set and the
surviving in-process service object must be treated as dead: tear down
its event-loop half with :func:`abandon` (no file IO runs) and start a
fresh service with ``resume=True`` — the assertion every test here
builds to is that the resumed round's state is *bit-identical* to the
no-fault reference once producers blindly resend.
"""

from __future__ import annotations

import builtins
import os
from dataclasses import dataclass, field

from repro.pipeline import ServiceSession
from repro.pipeline.collect import wire


class FaultInjected(OSError):
    """The simulated hardware/OS fault (an ``OSError``, as the real
    thing would be)."""


@dataclass
class _Trigger:
    op: str  # "write" | "fsync" | "read"
    match: str  # substring of the file path
    nth: int  # 1-based index among this trigger's matching calls
    fatal: bool  # True: simulate a process crash as the fault fires
    keep: float | int | None = None  # bytes (int) / fraction (float) kept
    calls: int = 0
    fired: bool = False

    def keep_bytes(self, total: int) -> int:
        if self.keep is None:
            return total // 2
        if isinstance(self.keep, float):
            return int(total * self.keep)
        return min(int(self.keep), total)


class FaultyFile:
    """Unbuffered binary file proxy that injects planned faults."""

    def __init__(self, raw, injector: "FaultInjector", path: str) -> None:
        self._raw = raw
        self._injector = injector
        self.path = path
        self.crashed = False

    # -- fault plumbing -------------------------------------------------
    def _check_alive(self) -> None:
        if self.crashed:
            raise FaultInjected(
                f"simulated crash: handle for {self.path} is gone"
            )

    def hard_close(self) -> None:
        """Close the OS handle as a crash would: no flush, no ceremony."""
        self.crashed = True
        try:
            self._raw.close()
        except OSError:
            pass

    # -- file protocol --------------------------------------------------
    def write(self, data) -> int:
        self._check_alive()
        trigger = self._injector._pick("write", self.path)
        if trigger is not None:
            keep = trigger.keep_bytes(len(data))
            if keep:
                self._raw.write(bytes(data[:keep]))
            self._injector._fire(trigger, f"torn write to {self.path}")
        return self._raw.write(data)

    def read(self, size: int = -1) -> bytes:
        self._check_alive()
        data = self._raw.read(size)
        trigger = self._injector._pick("read", self.path)
        if trigger is not None:
            trigger.fired = True
            self._injector.fired.append(f"short read of {self.path}")
            data = data[: trigger.keep_bytes(len(data))]
        return data

    def flush(self) -> None:
        self._check_alive()
        self._raw.flush()

    def fileno(self) -> int:
        self._check_alive()
        return self._raw.fileno()

    def seek(self, *args) -> int:
        self._check_alive()
        return self._raw.seek(*args)

    def tell(self) -> int:
        self._check_alive()
        return self._raw.tell()

    def truncate(self, *args) -> int:
        self._check_alive()
        return self._raw.truncate(*args)

    def close(self) -> None:
        if not self.crashed:
            self._raw.close()

    @property
    def closed(self) -> bool:
        return self.crashed or self._raw.closed

    @property
    def name(self) -> str:
        return self.path

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __iter__(self):
        self._check_alive()
        return iter(self._raw)


@dataclass
class FaultInjector:
    """Installs the open/fsync interception and owns the trigger plan."""

    root: str | None = None
    crashed: bool = False
    armed: bool = True
    fired: list = field(default_factory=list)
    _triggers: list = field(default_factory=list)
    _files: list = field(default_factory=list)

    # -- installation ---------------------------------------------------
    def install(self, monkeypatch, root: str) -> None:
        """Patch ``builtins.open`` / ``os.fsync`` to wrap binary files
        under *root* (monkeypatch undoes both at test teardown)."""
        self.root = os.path.abspath(str(root))
        real_open = builtins.open
        real_fsync = os.fsync

        def open_with_faults(file, mode="r", *args, **kwargs):
            if (
                self.armed
                and isinstance(file, (str, os.PathLike))
                and "b" in str(mode)
            ):
                path = os.path.abspath(os.fspath(file))
                if path.startswith(self.root + os.sep) or path == self.root:
                    raw = real_open(path, mode, buffering=0)
                    wrapped = FaultyFile(raw, self, path)
                    self._files.append(wrapped)
                    return wrapped
            return real_open(file, mode, *args, **kwargs)

        def fsync_with_faults(fd):
            for wrapped in self._files:
                if wrapped.crashed or wrapped._raw.closed:
                    continue
                if wrapped._raw.fileno() == fd:
                    trigger = self._pick("fsync", wrapped.path)
                    if trigger is not None:
                        self._fire(trigger, f"fsync of {wrapped.path}")
                    break
            return real_fsync(fd)

        monkeypatch.setattr(builtins, "open", open_with_faults)
        monkeypatch.setattr(os, "fsync", fsync_with_faults)

    def disarm(self) -> None:
        """Stop wrapping new files and clear every un-fired trigger."""
        self.armed = False
        self._triggers = [t for t in self._triggers if t.fired]

    # -- trigger registration -------------------------------------------
    def torn_write(self, match: str, *, nth: int = 1, keep=None) -> None:
        """Nth write to a file matching *match*: persist a prefix, crash."""
        self._triggers.append(
            _Trigger(op="write", match=match, nth=nth, fatal=True, keep=keep)
        )

    def io_error_on_write(self, match: str, *, nth: int = 1, keep=0) -> None:
        """Nth write fails (ENOSPC-style) but the process survives."""
        self._triggers.append(
            _Trigger(op="write", match=match, nth=nth, fatal=False, keep=keep)
        )

    def crash_on_fsync(self, match: str, *, nth: int = 1) -> None:
        """Nth fsync of a matching file never returns: process crash."""
        self._triggers.append(
            _Trigger(op="fsync", match=match, nth=nth, fatal=True)
        )

    def io_error_on_fsync(self, match: str, *, nth: int = 1) -> None:
        """Nth fsync fails but the process survives (rollback path)."""
        self._triggers.append(
            _Trigger(op="fsync", match=match, nth=nth, fatal=False)
        )

    def short_read(self, match: str, *, nth: int = 1, keep=None) -> None:
        """Nth read of a matching file silently returns a prefix."""
        self._triggers.append(
            _Trigger(op="read", match=match, nth=nth, fatal=False, keep=keep)
        )

    # -- firing machinery ----------------------------------------------
    def _pick(self, op: str, path: str):
        if not self.armed:
            return None
        for trigger in self._triggers:
            if trigger.fired or trigger.op != op or trigger.match not in path:
                continue
            trigger.calls += 1
            if trigger.calls == trigger.nth:
                return trigger
        return None

    def _fire(self, trigger: _Trigger, what: str) -> None:
        trigger.fired = True
        self.fired.append(what)
        if trigger.fatal:
            self.simulate_crash()
            raise FaultInjected(f"simulated crash during {what}")
        raise FaultInjected(f"simulated IO error during {what}")

    def simulate_crash(self) -> None:
        """Slam every wrapped handle shut — the process is 'dead' now."""
        self.crashed = True
        for wrapped in self._files:
            wrapped.hard_close()


# ----------------------------------------------------------------------
# Transport- and teardown-side helpers
# ----------------------------------------------------------------------
def tear_tail(path: str, nbytes: int) -> int:
    """Chop *nbytes* off the end of *path* (kill-mid-append); returns
    the surviving size."""
    size = os.path.getsize(path)
    keep = max(0, size - int(nbytes))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


async def disconnect_mid_frame(
    host: str,
    port: int,
    *,
    key,
    producer_id: str,
    m: int,
    round_id: int = 0,
    frame: bytes,
    seq: int,
    keep: int | None = None,
) -> None:
    """Authenticate, ship a *prefix* of one record frame, vanish."""
    session = ServiceSession(
        host, port, key=key, producer_id=producer_id, m=m, round_id=round_id
    )
    await session.connect()
    record = wire.dumps(
        wire.Record(m=m, round_id=round_id, seq=seq, frame=bytes(frame))
    )
    cut = keep if keep is not None else wire.HEADER_SIZE + 5
    session._writer.write(record[:cut])
    await session._writer.drain()
    await session.close()


async def abandon(service) -> None:
    """Tear down the event-loop half of a crashed service.

    The "process" died: no file IO may run, so this never calls
    ``close()``/``abort()`` — it stops the listening socket, cancels
    connection handlers, and drains each round's scheduler task (whose
    remaining submissions fail against the closed handles without
    touching the disk).
    """
    await service._stop_serving()
    for state in service.registry.rounds():
        await state.scheduler.close()
