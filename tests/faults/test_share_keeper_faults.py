"""Fault injection for the split-trust tier: keepers die, tallies don't.

The split-trust acceptance bar extends the exactly-once one: a share
keeper that crashes mid-round (fsync-time crash, torn spill tail) and
restarts with ``resume=True`` replays to **the same blinding-word sums**
— blinding secrets derive from the stable session transcript, so a
blind resend re-ships byte-identical share frames, the keeper's ledger
dedups them, and the combined decode stays bit-identical to the direct
unblinded tally.  And the flip side: a keeper that is *permanently*
lost must fail the round loudly — the residual without its stream is
uniform noise, and the combine step refuses to present noise as counts.
"""

from __future__ import annotations

import asyncio
import os

import fault_harness
import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.kernels import resolve_sampler
from repro.mechanisms import OptimizedUnaryEncoding
from repro.pipeline import (
    CollectionService,
    CountAccumulator,
    iter_report_chunks,
    shard_bounds,
)
from repro.pipeline.collect import wire
from repro.pipeline.service import combine_accumulators, send_split_trust

M, N, CHUNK, PRODUCERS, SEED = 16, 240, 64, 2, 11
COLLECTOR_KEY = "fault-collector-key"
KEEPER_KEYS = {
    "keeper-a": "fault-keeper-a-key",
    "keeper-b": "fault-keeper-b-key",
}


def build_workload():
    """Per-producer packed chunks plus the direct (unblinded) reference."""
    mechanism = OptimizedUnaryEncoding(2.0, M)
    items = np.random.default_rng(SEED).integers(M, size=N)
    config = resolve_sampler("fast")
    children = np.random.SeedSequence(SEED).spawn(PRODUCERS)
    producer_chunks = []
    reference = CountAccumulator(M)
    for (start, stop), child in zip(shard_bounds(N, PRODUCERS), children):
        chunks = list(
            iter_report_chunks(
                mechanism,
                items[start:stop],
                chunk_size=CHUNK,
                rng=config.make_generator(child),
                packed=True,
                sampler=config,
            )
        )
        producer_chunks.append(chunks)
        for chunk in chunks:
            reference.add_packed_reports(chunk)
    return mechanism, producer_chunks, reference


@pytest.fixture(scope="module")
def workload():
    return build_workload()


def _service_specs(tmp_path):
    collector = dict(
        key=COLLECTOR_KEY,
        store_root=str(tmp_path / "collector"),
        mode="blinded",
    )
    keepers = {
        keeper_id: dict(
            key=key,
            store_root=str(tmp_path / keeper_id),
            mode="keeper",
            keeper_id=keeper_id,
        )
        for keeper_id, key in KEEPER_KEYS.items()
    }
    return collector, keepers


async def _serve_all(collector_spec, keeper_specs, *, resume=False):
    collector = CollectionService(M, resume=resume, **collector_spec)
    collector_address = await collector.serve()
    keepers, addresses = {}, {}
    for keeper_id, spec in keeper_specs.items():
        keeper = CollectionService(M, resume=resume, **spec)
        keepers[keeper_id] = keeper
        addresses[keeper_id] = await keeper.serve()
    return collector, collector_address, keepers, addresses


async def _ship_all(
    collector_address,
    addresses,
    producer_chunks,
    *,
    keeper_ids=None,
    first_index=0,
):
    """Every producer ships its full chunk stream split-trust style."""
    keeper_addresses = (
        addresses
        if keeper_ids is None
        else {kid: addresses[kid] for kid in keeper_ids}
    )
    results = []
    for index, chunks in enumerate(producer_chunks, start=first_index):
        results.append(
            await send_split_trust(
                collector_address,
                keeper_addresses,
                chunks,
                collector_key=COLLECTOR_KEY,
                keeper_keys=KEEPER_KEYS,
                producer_id=f"p{index}",
                m=M,
            )
        )
    return results


def _ingest_until_fault(injector, tmp_path, producer_chunks):
    """Phase 1: ship until the armed keeper fault fires, 'kill' victims."""
    collector_spec, keeper_specs = _service_specs(tmp_path)

    async def main():
        collector, collector_address, keepers, addresses = await _serve_all(
            collector_spec, keeper_specs
        )
        try:
            await _ship_all(collector_address, addresses, producer_chunks)
        except Exception:
            pass  # the fault firing mid-send is the point
        for service in (collector, *keepers.values()):
            if injector.crashed:
                await fault_harness.abandon(service)
            else:
                await service.abort()

    asyncio.run(main())


def _resume_and_resend(tmp_path, producer_chunks):
    """Phase 2: resume every party, blind-resend everything, combine."""
    collector_spec, keeper_specs = _service_specs(tmp_path)

    async def main():
        collector, collector_address, keepers, addresses = await _serve_all(
            collector_spec, keeper_specs, resume=True
        )
        statuses = []
        try:
            results = await _ship_all(
                collector_address, addresses, producer_chunks
            )
            for result in results:
                statuses.extend(ack.status for ack in result["collector"])
                for acks in result["keepers"].values():
                    statuses.extend(ack.status for ack in acks)
            combined = combine_accumulators(
                collector.accumulator,
                [keeper.accumulator for keeper in keepers.values()],
            )
        finally:
            for service in (collector, *keepers.values()):
                await service.close()
        return combined, statuses

    return asyncio.run(main())


def _assert_bit_identical(combined, mechanism, reference):
    assert combined.n == reference.n
    assert combined.digest() == reference.digest()
    assert np.array_equal(
        combined.estimate(mechanism), reference.estimate(mechanism)
    )


KEEPER_FAULTS = {
    "keeper-fsync-crash": lambda inj: inj.crash_on_fsync(
        os.path.join("keeper-a", ""), nth=2
    ),
    "keeper-torn-write": lambda inj: inj.torn_write(
        os.path.join("keeper-a", ""), nth=2
    ),
}


class TestKeeperCrashRecovery:
    @pytest.mark.parametrize("fault", sorted(KEEPER_FAULTS))
    def test_keeper_fault_recovers_bit_identical(
        self, fault, fault_injector, tmp_path, workload
    ):
        """Crash one keeper mid-round; restart; blind resend; the
        combined decode is bit-identical to the direct tally."""
        mechanism, producer_chunks, reference = workload
        KEEPER_FAULTS[fault](fault_injector)
        _ingest_until_fault(fault_injector, tmp_path, producer_chunks)
        assert fault_injector.fired, "the armed keeper fault never fired"
        fault_injector.disarm()
        combined, statuses = _resume_and_resend(tmp_path, producer_chunks)
        assert set(statuses) <= {wire.ACK_MERGED, wire.ACK_DUPLICATE}
        _assert_bit_identical(combined, mechanism, reference)

    def test_torn_keeper_tail_between_runs(self, tmp_path, workload):
        """Kill-mid-append on a keeper's ledger between runs: the torn
        trailing entry is dropped at load, the keeper's spill truncates
        back to the surviving committed offset (the torn spill tail),
        and the blind resend restores the round bit-identically."""
        mechanism, producer_chunks, reference = workload
        collector_spec, keeper_specs = _service_specs(tmp_path)

        async def first_run():
            collector, collector_address, keepers, addresses = (
                await _serve_all(collector_spec, keeper_specs)
            )
            # Only producer 0 lands before the "crash".
            await _ship_all(
                collector_address, addresses, producer_chunks[:1]
            )
            path = keepers["keeper-a"].ledger.path
            for service in (collector, *keepers.values()):
                await service.abort()
            return path

        ledger_path = asyncio.run(first_run())
        fault_harness.tear_tail(ledger_path, 11)  # mid-entry, torn CRC
        combined, statuses = _resume_and_resend(tmp_path, producer_chunks)
        assert statuses.count(wire.ACK_REFUSED) == 0
        assert wire.ACK_DUPLICATE in statuses  # producer 0's resend
        _assert_bit_identical(combined, mechanism, reference)


class TestPermanentlyLostKeeper:
    def test_missing_keeper_fails_loudly_not_garbage(
        self, tmp_path, workload
    ):
        """One keeper's state is simply gone: the combine refuses with a
        loud error instead of decoding the still-blinded residual."""
        _, producer_chunks, _ = workload
        collector_spec, keeper_specs = _service_specs(tmp_path)

        async def main():
            collector, collector_address, keepers, addresses = (
                await _serve_all(collector_spec, keeper_specs)
            )
            try:
                await _ship_all(
                    collector_address, addresses, producer_chunks
                )
                survivors = [keepers["keeper-a"].accumulator]
                with pytest.raises(EstimationError, match="refusing"):
                    combine_accumulators(collector.accumulator, survivors)
            finally:
                for service in (collector, *keepers.values()):
                    await service.close()

        asyncio.run(main())

    def test_keeper_that_never_saw_a_producer_fails_loudly(
        self, tmp_path, workload
    ):
        """Coverage gap: a keeper missing one producer's stream covers
        fewer rows than the collector — refused before any decode."""
        _, producer_chunks, _ = workload
        collector_spec, keeper_specs = _service_specs(tmp_path)

        async def main():
            collector, collector_address, keepers, addresses = (
                await _serve_all(collector_spec, keeper_specs)
            )
            try:
                # Producer 0 reaches both keepers; producer 1 only
                # reaches keeper-a (keeper-b was down for it).
                await _ship_all(
                    collector_address, addresses, producer_chunks[:1]
                )
                await _ship_all(
                    collector_address,
                    addresses,
                    producer_chunks[1:],
                    keeper_ids=["keeper-a"],
                    first_index=1,
                )
                with pytest.raises(Exception, match="refusing to decode"):
                    combine_accumulators(
                        collector.accumulator,
                        [k.accumulator for k in keepers.values()],
                    )
            finally:
                for service in (collector, *keepers.values()):
                    await service.close()

        asyncio.run(main())
