"""Fixtures exposing the reusable fault-injection harness.

``tests/faults/harness.py`` is loaded here by path (the suite runs in
importlib mode without package ``__init__`` files) and registered as
the importable module ``fault_harness`` so sibling test files — and any
future suite that wants to inject faults — can simply::

    import fault_harness

    def test_something(fault_injector, tmp_path):
        fault_injector.crash_on_fsync("round.ledger")
        ...

The ``fault_injector`` fixture arrives installed over ``tmp_path``:
every binary file the code under test opens below ``tmp_path`` is
wrapped (unbuffered) and subject to the triggers the test arms;
``builtins.open`` / ``os.fsync`` are restored at teardown by
``monkeypatch``.
"""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

_HARNESS_PATH = os.path.join(os.path.dirname(__file__), "harness.py")

if "fault_harness" not in sys.modules:
    spec = importlib.util.spec_from_file_location("fault_harness", _HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules["fault_harness"] = module
    spec.loader.exec_module(module)

fault_harness = sys.modules["fault_harness"]


@pytest.fixture
def fault_injector(monkeypatch, tmp_path):
    """A :class:`fault_harness.FaultInjector` armed over ``tmp_path``."""
    injector = fault_harness.FaultInjector()
    injector.install(monkeypatch, str(tmp_path))
    yield injector
    injector.disarm()
