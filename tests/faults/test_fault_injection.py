"""Fault-injection acceptance: every injected fault recovers bit-identical.

Each test arms one fault from the harness (torn spill/ledger writes,
fsync-time crashes, non-fatal fsync errors, short reads at recovery,
mid-frame disconnects, torn tails between runs), drives a real service
over a real socket into it, then resumes and has every producer blindly
resend its full stream.  The acceptance bar is the strongest one the
stack makes anywhere: the recovered round's counts and estimates are
**bit-identical** to the single-pass in-memory ``stream_counts``
reference — no loss, no double-count, for single-round and multi-round
services alike.
"""

from __future__ import annotations

import asyncio

import fault_harness
import numpy as np
import pytest

from repro.kernels import resolve_sampler
from repro.mechanisms import OptimizedUnaryEncoding
from repro.pipeline import (
    CollectionService,
    KeyRegistry,
    iter_report_chunks,
    send_records,
    shard_bounds,
    stream_counts,
)
from repro.pipeline.collect import wire

M, N, CHUNK, PRODUCERS, SEED = 16, 240, 64, 2, 11
KEY = "fault-injection-key"


def build_workload(m: int, round_id: int, seed: int = SEED):
    """Per-producer record frames plus the single-pass reference."""
    mechanism = OptimizedUnaryEncoding(2.0, m)
    items = np.random.default_rng(seed).integers(m, size=N)
    config = resolve_sampler("fast")
    children = np.random.SeedSequence(seed).spawn(PRODUCERS)
    producer_frames = []
    reference = None
    for (start, stop), child in zip(shard_bounds(N, PRODUCERS), children):
        frames = [
            wire.dump_chunk(chunk, m, round_id=round_id)
            for chunk in iter_report_chunks(
                mechanism,
                items[start:stop],
                chunk_size=CHUNK,
                rng=config.make_generator(child),
                packed=True,
                sampler=config,
            )
        ]
        producer_frames.append(frames)
        shard = stream_counts(
            mechanism,
            items[start:stop],
            chunk_size=CHUNK,
            rng=config.make_generator(child),
            packed=True,
            round_id=round_id,
            sampler=config,
        )
        reference = shard if reference is None else reference.merge(shard)
    return mechanism, producer_frames, reference


@pytest.fixture(scope="module")
def workload():
    return build_workload(M, 0)


def _ingest_until_fault(injector, root, producer_frames):
    """Phase 1: serve and send until the armed fault fires (or all lands).

    Returns the (possibly crashed) service.  On a fatal fault the
    service object is torn down the way a dead process would be — no
    file IO, no graceful close.
    """

    async def main():
        service = CollectionService(M, key=KEY, store_root=root)
        host, port = await service.serve()
        try:
            for index, frames in enumerate(producer_frames):
                await send_records(
                    host, port, frames, key=KEY, producer_id=f"p{index}", m=M
                )
        except Exception:
            pass  # the fault firing mid-send is the point
        if injector.crashed:
            await fault_harness.abandon(service)
        else:
            await service.abort()
        return service

    return asyncio.run(main())


def _resume_and_resend(root, producer_frames, *, key=KEY, m=M, round_id=0):
    """Phase 2: resume, blind-resend everything, close gracefully."""

    async def main():
        service = CollectionService(
            m, key=key, store_root=root, round_id=round_id, resume=True
        )
        host, port = await service.serve()
        statuses = []
        try:
            for index, frames in enumerate(producer_frames):
                acks = await send_records(
                    host,
                    port,
                    frames,
                    key=key,
                    producer_id=f"p{index}",
                    m=m,
                    round_id=round_id,
                )
                statuses.extend(ack.status for ack in acks)
        finally:
            await service.close()
        return service, statuses

    return asyncio.run(main())


def _assert_bit_identical(service_accumulator, mechanism, reference):
    assert service_accumulator.digest() == reference.digest()
    assert np.array_equal(
        service_accumulator.estimate(mechanism),
        reference.estimate(mechanism),
    )


FATAL_FAULTS = {
    "torn-spill-write": lambda inj: inj.torn_write(".chunks", nth=2),
    "spill-fsync-crash": lambda inj: inj.crash_on_fsync(".chunks", nth=2),
    "torn-ledger-write": lambda inj: inj.torn_write("round.ledger", nth=2, keep=7),
    "ledger-fsync-crash": lambda inj: inj.crash_on_fsync("round.ledger", nth=1),
}


class TestSingleRoundRecovery:
    @pytest.mark.parametrize("fault", sorted(FATAL_FAULTS))
    def test_crash_fault_recovers_bit_identical(
        self, fault, fault_injector, workload, tmp_path
    ):
        mechanism, producer_frames, reference = workload
        root = str(tmp_path / "round")

        FATAL_FAULTS[fault](fault_injector)
        _ingest_until_fault(fault_injector, root, producer_frames)
        assert fault_injector.fired, "the armed fault never fired"
        assert fault_injector.crashed

        fault_injector.disarm()
        service, statuses = _resume_and_resend(root, producer_frames)
        total = sum(len(frames) for frames in producer_frames)
        assert statuses.count(wire.ACK_REFUSED) == 0
        assert len(statuses) == total
        assert service.records_merged == total  # incl. pre-crash commits
        _assert_bit_identical(service.accumulator, mechanism, reference)

    def test_nonfatal_fsync_error_rolls_back_then_recovers(
        self, fault_injector, workload, tmp_path
    ):
        """The ENOSPC shape: the fsync fails but the process lives — the
        service rolls the batch back, the producer resends on a fresh
        connection, and a later restart sees a consistent round."""
        mechanism, producer_frames, reference = workload
        root = str(tmp_path / "round")
        fault_injector.io_error_on_fsync(".chunks", nth=1)

        async def main():
            service = CollectionService(M, key=KEY, store_root=root)
            host, port = await service.serve()
            statuses = []
            try:
                for index, frames in enumerate(producer_frames):
                    for attempt in range(2):  # retry after the shed
                        try:
                            acks = await send_records(
                                host,
                                port,
                                frames,
                                key=KEY,
                                producer_id=f"p{index}",
                                m=M,
                            )
                        except Exception:
                            continue  # connection died with the batch
                        statuses.extend(ack.status for ack in acks)
                        break
            finally:
                await service.close()
            return service, statuses

        service, statuses = asyncio.run(main())
        assert fault_injector.fired
        assert not fault_injector.crashed
        assert statuses.count(wire.ACK_REFUSED) == 0
        _assert_bit_identical(service.accumulator, mechanism, reference)

        # And the durable state restarts clean.
        fault_injector.disarm()
        resumed = CollectionService(M, key=KEY, store_root=root, resume=True)
        asyncio.run(resumed.abort())
        _assert_bit_identical(resumed.accumulator, mechanism, reference)

    def test_mid_frame_disconnect_then_resend(
        self, fault_injector, workload, tmp_path
    ):
        """A producer dying mid-frame merges nothing for that frame; its
        reconnect-and-resend lands everything exactly once."""
        mechanism, producer_frames, reference = workload
        root = str(tmp_path / "round")

        async def main():
            service = CollectionService(M, key=KEY, store_root=root)
            host, port = await service.serve()
            try:
                await fault_harness.disconnect_mid_frame(
                    host,
                    port,
                    key=KEY,
                    producer_id="p0",
                    m=M,
                    frame=producer_frames[0][0],
                    seq=0,
                )
                statuses = []
                for index, frames in enumerate(producer_frames):
                    acks = await send_records(
                        host, port, frames, key=KEY, producer_id=f"p{index}", m=M
                    )
                    statuses.extend(ack.status for ack in acks)
            finally:
                await service.close()
            return service, statuses

        service, statuses = asyncio.run(main())
        assert "mid-frame" in (service.last_connection_error or "") or (
            service.connections_failed >= 1
        )
        assert statuses.count(wire.ACK_REFUSED) == 0
        assert statuses.count(wire.ACK_DUPLICATE) == 0  # nothing staged twice
        _assert_bit_identical(service.accumulator, mechanism, reference)

    def test_torn_ledger_tail_between_runs(
        self, fault_injector, workload, tmp_path
    ):
        """Kill-mid-append on the *ledger*: the torn trailing entry is
        dropped at load, the spill truncates back to the surviving
        committed offset, and resends reconcile."""
        mechanism, producer_frames, reference = workload
        root = str(tmp_path / "round")
        service = _ingest_until_fault(fault_injector, root, producer_frames)
        ledger_path = service.ledger.path

        fault_harness.tear_tail(ledger_path, 11)  # mid-entry, torn CRC
        service, statuses = _resume_and_resend(root, producer_frames)
        assert statuses.count(wire.ACK_REFUSED) == 0
        # Exactly one record lost its ledger entry and was re-merged.
        assert statuses.count(wire.ACK_MERGED) == 1
        _assert_bit_identical(service.accumulator, mechanism, reference)

    def test_short_read_of_ledger_at_recovery(
        self, fault_injector, workload, tmp_path
    ):
        """A filesystem that lost the ledger tail (surfaced as a short
        read at load) behaves exactly like a torn tail: the unread
        suffix is discarded, resends reconcile, state is identical."""
        mechanism, producer_frames, reference = workload
        root = str(tmp_path / "round")
        _ingest_until_fault(fault_injector, root, producer_frames)

        fault_injector.short_read("round.ledger", nth=1)  # load() reads once
        service, statuses = _resume_and_resend(root, producer_frames)
        assert any("short read" in what for what in fault_injector.fired)
        assert statuses.count(wire.ACK_REFUSED) == 0
        _assert_bit_identical(service.accumulator, mechanism, reference)


class TestMultiRoundRecovery:
    ROUNDS = ((16, 1), (24, 2))

    @pytest.fixture(scope="class")
    def workloads(self):
        return {
            round_id: build_workload(m, round_id, seed=SEED + round_id)
            for m, round_id in self.ROUNDS
        }

    @pytest.mark.parametrize(
        "arm",
        [
            pytest.param(
                lambda inj: inj.torn_write(
                    "round_00001/shard_00000.chunks", nth=2
                ),
                id="round1-spill",
            ),
            pytest.param(
                lambda inj: inj.crash_on_fsync(
                    "round_00002/round.ledger", nth=1
                ),
                id="round2-ledger-fsync",
            ),
        ],
    )
    def test_multi_round_resume_is_bit_identical_per_round(
        self, arm, fault_injector, workloads, tmp_path
    ):
        """A fault in ONE round's files mid-ingest crashes the process;
        multi-round resume replays every round's ledger and full blind
        resends land both rounds bit-identical — records never leak
        between rounds."""
        root = str(tmp_path / "rounds")
        keys = KeyRegistry({f"p{i}": KEY + str(i) for i in range(PRODUCERS)})
        specs = [{"m": m, "round_id": rid} for m, rid in self.ROUNDS]
        arm(fault_injector)

        async def phase1():
            service = CollectionService(
                rounds=specs, keys=keys, store_root=root
            )
            host, port = await service.serve()
            try:
                # Interleave rounds and producers so the fault lands
                # amid genuinely multiplexed traffic.
                for index in range(PRODUCERS):
                    for _m, round_id in self.ROUNDS:
                        _, frames, _ = workloads[round_id]
                        await send_records(
                            host,
                            port,
                            frames[index],
                            key=KEY + str(index),
                            producer_id=f"p{index}",
                            m=workloads[round_id][2].m,
                            round_id=round_id,
                        )
            except Exception:
                pass
            if fault_injector.crashed:
                await fault_harness.abandon(service)
            else:
                await service.abort()

        asyncio.run(phase1())
        assert fault_injector.fired, "the armed fault never fired"
        fault_injector.disarm()

        async def phase2():
            service = CollectionService(
                rounds=specs, keys=keys, store_root=root, resume=True
            )
            host, port = await service.serve()
            statuses = []
            try:
                for index in range(PRODUCERS):
                    for _m, round_id in self.ROUNDS:
                        _, frames, _ = workloads[round_id]
                        acks = await send_records(
                            host,
                            port,
                            frames[index],
                            key=KEY + str(index),
                            producer_id=f"p{index}",
                            m=workloads[round_id][2].m,
                            round_id=round_id,
                        )
                        statuses.extend(ack.status for ack in acks)
            finally:
                await service.close()
            return service, statuses

        service, statuses = asyncio.run(phase2())
        assert statuses.count(wire.ACK_REFUSED) == 0
        for _m, round_id in self.ROUNDS:
            mechanism, frames, reference = workloads[round_id]
            state = service.round(round_id)
            assert state.records_merged == sum(len(f) for f in frames)
            _assert_bit_identical(state.accumulator, mechanism, reference)
