"""Unit tests for the mechanism factory."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import (
    IDUE,
    IDUEPS,
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    make_itemset_mechanism,
    make_single_item_mechanism,
)
from repro.mechanisms.factory import ITEMSET_MECHANISMS, SINGLE_ITEM_MECHANISMS


class TestSingleItemFactory:
    def test_rappor_uses_min_budget(self, toy_spec):
        mech = make_single_item_mechanism("rappor", toy_spec)
        assert isinstance(mech, SymmetricUnaryEncoding)
        assert mech.target_epsilon == pytest.approx(toy_spec.min_epsilon)

    def test_oue_uses_min_budget(self, toy_spec):
        mech = make_single_item_mechanism("oue", toy_spec)
        assert isinstance(mech, OptimizedUnaryEncoding)
        assert mech.target_epsilon == pytest.approx(toy_spec.min_epsilon)

    @pytest.mark.parametrize("name", ["idue-opt0", "idue-opt1", "idue-opt2"])
    def test_idue_variants(self, toy_spec, name):
        mech = make_single_item_mechanism(name, toy_spec)
        assert isinstance(mech, IDUE)
        assert mech.optimization.model == name.split("-")[1]

    def test_case_insensitive(self, toy_spec):
        mech = make_single_item_mechanism("RAPPOR", toy_spec)
        assert isinstance(mech, SymmetricUnaryEncoding)

    def test_unknown_name(self, toy_spec):
        with pytest.raises(ValidationError, match="unknown single-item"):
            make_single_item_mechanism("olh", toy_spec)

    def test_unknown_model_suffix(self, toy_spec):
        with pytest.raises(ValidationError, match="unknown optimization model"):
            make_single_item_mechanism("idue-opt9", toy_spec)

    def test_registry_names_all_construct(self, toy_spec):
        for name in SINGLE_ITEM_MECHANISMS:
            assert make_single_item_mechanism(name, toy_spec) is not None


class TestItemsetFactory:
    def test_ps_baselines(self, toy_spec):
        for name in ("rappor-ps", "oue-ps"):
            mech = make_itemset_mechanism(name, toy_spec, ell=3)
            assert isinstance(mech, IDUEPS)
            assert mech.ell == 3

    @pytest.mark.parametrize("name", ["idue-ps-opt0", "idue-ps-opt1", "idue-ps-opt2"])
    def test_idue_ps_variants(self, toy_spec, name):
        mech = make_itemset_mechanism(name, toy_spec, ell=2)
        assert isinstance(mech, IDUEPS)
        assert mech.base_idue.optimization.model == name.rsplit("-", 1)[1]

    def test_unknown_name(self, toy_spec):
        with pytest.raises(ValidationError, match="unknown item-set"):
            make_itemset_mechanism("svim", toy_spec, ell=2)

    def test_registry_names_all_construct(self, toy_spec):
        for name in ITEMSET_MECHANISMS:
            assert make_itemset_mechanism(name, toy_spec, ell=2) is not None
