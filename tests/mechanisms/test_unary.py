"""Unit tests for UE / SUE (RAPPOR) / OUE and the UnaryMechanism base."""

from __future__ import annotations

import numpy as np
import pytest

from repro import OptimizedUnaryEncoding, SymmetricUnaryEncoding, UnaryEncoding
from repro.exceptions import ValidationError
from repro.mechanisms.base import UnaryMechanism


class TestUnaryMechanismBase:
    def test_requires_a_greater_than_b(self):
        with pytest.raises(ValidationError, match="a\\[k\\] > b\\[k\\]"):
            UnaryMechanism([0.3, 0.5], [0.4, 0.2])

    def test_requires_equal_lengths(self):
        with pytest.raises(ValidationError):
            UnaryMechanism([0.5], [0.2, 0.1])

    def test_rejects_boundary_probabilities(self):
        with pytest.raises(ValidationError):
            UnaryMechanism([1.0], [0.5])

    def test_alpha_beta_definitions(self):
        mech = UnaryMechanism([0.6, 0.5], [0.2, 0.25])
        assert np.allclose(mech.alpha, [3.0, 2.0])
        assert np.allclose(mech.beta, [0.5, 2.0 / 3.0])

    def test_encode_one_hot(self):
        mech = UnaryMechanism([0.6] * 4, [0.2] * 4)
        bits = mech.encode(2)
        assert bits.tolist() == [0, 0, 1, 0]

    def test_encode_out_of_range(self):
        mech = UnaryMechanism([0.6] * 3, [0.2] * 3)
        with pytest.raises(ValidationError):
            mech.encode(3)

    def test_perturb_bits_shape_check(self, rng):
        mech = UnaryMechanism([0.6] * 3, [0.2] * 3)
        with pytest.raises(ValidationError):
            mech.perturb_bits([0, 1], rng)

    def test_perturb_output_is_binary_vector(self, rng):
        mech = UnaryMechanism([0.6] * 5, [0.2] * 5)
        report = mech.perturb(1, rng)
        assert report.shape == (5,)
        assert set(np.unique(report)) <= {0, 1}

    def test_perturb_many_marginals(self, rng):
        a, b = 0.7, 0.1
        mech = UnaryMechanism([a] * 3, [b] * 3)
        reports = mech.perturb_many(np.zeros(30_000, dtype=int), rng)
        freq = reports.mean(axis=0)
        assert freq[0] == pytest.approx(a, abs=0.02)
        assert freq[1] == pytest.approx(b, abs=0.02)
        assert freq[2] == pytest.approx(b, abs=0.02)

    def test_pair_ratio_bound_formula(self):
        mech = UnaryMechanism([0.6, 0.5], [0.2, 0.25])
        expected = 0.6 * (1 - 0.25) / (0.2 * (1 - 0.5))
        assert mech.pair_ratio_bound(0, 1) == pytest.approx(expected)
        assert mech.pair_ratio_bound(0, 0) == 1.0


class TestUnaryEncoding:
    def test_epsilon_formula(self):
        p, q = 0.75, 0.25
        mech = UnaryEncoding(p, q, m=4)
        assert mech.epsilon() == pytest.approx(np.log(p * (1 - q) / ((1 - p) * q)))

    def test_requires_p_greater_than_q(self):
        with pytest.raises(ValidationError):
            UnaryEncoding(0.2, 0.5, m=3)


class TestSymmetricUnaryEncoding:
    def test_rappor_probabilities(self):
        # Table II: eps = ln 4 gives p = 2/3, q = 1/3.
        mech = SymmetricUnaryEncoding(np.log(4.0), m=5)
        assert mech.p == pytest.approx(2.0 / 3.0)
        assert mech.q == pytest.approx(1.0 / 3.0)

    def test_achieves_target_epsilon(self):
        for epsilon in (0.5, 1.0, 2.0, 4.0):
            mech = SymmetricUnaryEncoding(epsilon, m=3)
            assert mech.epsilon() == pytest.approx(epsilon)

    def test_ldp_epsilon_matches_target(self):
        mech = SymmetricUnaryEncoding(1.7, m=4)
        assert mech.ldp_epsilon() == pytest.approx(1.7)


class TestOptimizedUnaryEncoding:
    def test_oue_probabilities(self):
        # Table II: eps = ln 4 gives p = 1/2, q = 1/5.
        mech = OptimizedUnaryEncoding(np.log(4.0), m=5)
        assert mech.p == pytest.approx(0.5)
        assert mech.q == pytest.approx(0.2)

    def test_achieves_target_epsilon(self):
        for epsilon in (0.5, 1.0, 3.0):
            mech = OptimizedUnaryEncoding(epsilon, m=3)
            assert mech.epsilon() == pytest.approx(epsilon)

    def test_oue_variance_beats_rappor_at_same_epsilon(self):
        """The optimization OUE performs: lower noise coefficient than SUE."""
        epsilon = 1.0
        oue = OptimizedUnaryEncoding(epsilon, m=1)
        sue = SymmetricUnaryEncoding(epsilon, m=1)

        def noise(mech):
            return mech.q * (1 - mech.q) / (mech.p - mech.q) ** 2

        assert noise(oue) < noise(sue)
