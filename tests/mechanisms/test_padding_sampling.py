"""Unit tests for the Padding-and-Sampling protocol (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PaddingSampler
from repro.exceptions import ValidationError


class TestSampleSingle:
    def test_output_in_extended_domain(self, rng):
        sampler = PaddingSampler(m=5, ell=3)
        for _ in range(100):
            out = sampler.sample([0, 2], rng)
            assert 0 <= out < sampler.extended_m

    def test_exact_length_set_never_yields_dummies(self, rng):
        sampler = PaddingSampler(m=5, ell=2)
        outputs = {sampler.sample([1, 3], rng) for _ in range(200)}
        assert outputs <= {1, 3}

    def test_oversized_set_never_yields_dummies(self, rng):
        sampler = PaddingSampler(m=5, ell=2)
        outputs = {sampler.sample([0, 1, 2, 3], rng) for _ in range(300)}
        assert outputs <= {0, 1, 2, 3}

    def test_oversized_set_uniform_over_members(self, rng):
        sampler = PaddingSampler(m=4, ell=2)
        draws = np.array([sampler.sample([0, 1, 2, 3], rng) for _ in range(20_000)])
        freq = np.bincount(draws, minlength=4) / draws.size
        assert np.allclose(freq, 0.25, atol=0.02)

    def test_undersized_set_real_marginal_is_one_over_ell(self, rng):
        sampler = PaddingSampler(m=5, ell=4)
        draws = np.array([sampler.sample([2], rng) for _ in range(20_000)])
        real_rate = np.mean(draws == 2)
        assert real_rate == pytest.approx(1.0 / 4.0, abs=0.02)

    def test_empty_set_yields_only_dummies(self, rng):
        sampler = PaddingSampler(m=3, ell=2)
        outputs = {sampler.sample([], rng) for _ in range(100)}
        assert all(out >= 3 for out in outputs)

    def test_rejects_duplicates(self, rng):
        with pytest.raises(ValidationError, match="duplicate"):
            PaddingSampler(m=5, ell=2).sample([1, 1], rng)

    def test_rejects_out_of_domain(self, rng):
        with pytest.raises(ValidationError):
            PaddingSampler(m=5, ell=2).sample([7], rng)


class TestSampleMany:
    def test_matches_single_sample_marginals(self, rng):
        """Vectorized path draws from the same marginal as Algorithm 2."""
        sampler = PaddingSampler(m=4, ell=3)
        itemset = [0, 3]
        n = 40_000
        flat = np.tile(itemset, n)
        offsets = np.arange(n + 1) * len(itemset)
        batch = sampler.sample_many(flat, offsets, rng)
        batch_freq = np.bincount(batch, minlength=sampler.extended_m) / n

        singles = np.array([sampler.sample(itemset, rng) for _ in range(n)])
        single_freq = np.bincount(singles, minlength=sampler.extended_m) / n
        assert np.allclose(batch_freq, single_freq, atol=0.02)

    def test_specific_dummy_marginal(self, rng):
        """Each dummy has marginal (ell - |x|) / ell^2 when |x| < ell."""
        sampler = PaddingSampler(m=3, ell=3)
        n = 60_000
        flat = np.zeros(n, dtype=np.int64)  # every user holds {0}
        offsets = np.arange(n + 1)
        draws = sampler.sample_many(flat, offsets, rng)
        expected = (3 - 1) / 9.0
        for dummy in range(3, 6):
            assert np.mean(draws == dummy) == pytest.approx(expected, abs=0.01)

    def test_handles_mixed_sizes(self, rng, small_itemset_dataset):
        data = small_itemset_dataset
        sampler = PaddingSampler(m=data.m, ell=3)
        out = sampler.sample_many(data.flat_items, data.offsets, rng)
        assert out.shape == (data.n,)
        assert np.all((out >= 0) & (out < sampler.extended_m))

    def test_trailing_empty_set_regression(self, rng):
        """Regression: an empty set as the *last* user used to read past
        the end of the flat array (found by hypothesis)."""
        sampler = PaddingSampler(m=3, ell=2)
        flat = np.array([0, 1, 2], dtype=np.int64)
        offsets = np.array([0, 3, 3], dtype=np.int64)  # user 1 is empty
        sampled = sampler.sample_many(flat, offsets, rng)
        assert sampled.shape == (2,)
        assert sampled[1] >= 3  # the empty user reports a dummy

    def test_all_users_empty(self, rng):
        sampler = PaddingSampler(m=4, ell=3)
        sampled = sampler.sample_many(
            np.empty(0, dtype=np.int64), np.zeros(3, dtype=np.int64), rng
        )
        assert np.all(sampled >= 4)

    def test_rejects_bad_offsets(self, rng):
        sampler = PaddingSampler(m=3, ell=2)
        with pytest.raises(ValidationError):
            sampler.sample_many([0, 1], [0, 1], rng)  # does not end at len
        with pytest.raises(ValidationError):
            sampler.sample_many([0, 1], [1, 2], rng)  # does not start at 0


class TestEta:
    def test_eta_formula(self):
        sampler = PaddingSampler(m=10, ell=4)
        assert sampler.eta(0) == 0.0
        assert sampler.eta(2) == pytest.approx(0.5)
        assert sampler.eta(4) == 1.0
        assert sampler.eta(9) == 1.0

    def test_eta_rejects_negative(self):
        with pytest.raises(ValidationError):
            PaddingSampler(m=3, ell=2).eta(-1)

    def test_real_item_sampling_probability(self):
        sampler = PaddingSampler(m=10, ell=4)
        assert sampler.real_item_sampling_probability(2) == pytest.approx(0.25)
        assert sampler.real_item_sampling_probability(8) == pytest.approx(0.125)
