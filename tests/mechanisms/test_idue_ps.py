"""Unit tests for IDUE-PS (Algorithm 3) and the Eq. (17) set budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IDUEPS, itemset_budget
from repro.exceptions import ValidationError
from repro.mechanisms.base import UnaryMechanism


class TestItemsetBudget:
    def test_single_item_budget_is_mixture(self, toy_spec):
        """|x| = 1 < ell mixes the item and dummy budgets per Eq. (17)."""
        ell = 2
        eta = 1.0 / 2.0
        eps0 = toy_spec.epsilon_of(0)
        eps_star = toy_spec.min_epsilon
        expected = np.log(eta * np.exp(eps0) + (1 - eta) * np.exp(eps_star))
        assert itemset_budget([0], toy_spec, ell) == pytest.approx(expected)

    def test_full_size_set_ignores_dummies(self, toy_spec):
        """|x| >= ell: eta = 1, the budget is the log-mean-exp of members."""
        budget = itemset_budget([0, 1], toy_spec, ell=2)
        eps = toy_spec.item_epsilons[[0, 1]]
        expected = np.log(np.mean(np.exp(eps)))
        assert budget == pytest.approx(expected)

    def test_budget_at_least_min_member(self, toy_spec):
        """Eq. (17) is >= min member budget (convexity remark in VI-B)."""
        for items in ([0], [0, 1], [1, 2, 3], [0, 1, 2, 3, 4]):
            budget = itemset_budget(items, toy_spec, ell=3)
            assert budget >= min(toy_spec.item_epsilons[list(items)]) - 1e-12

    def test_budget_at_least_average(self, toy_spec):
        """log-mean-exp >= arithmetic mean (paper's convexity argument)."""
        items = [0, 1, 2]
        budget = itemset_budget(items, toy_spec, ell=3)
        assert budget >= float(np.mean(toy_spec.item_epsilons[items])) - 1e-12

    def test_empty_set_gets_dummy_budget(self, toy_spec):
        assert itemset_budget([], toy_spec, ell=2) == pytest.approx(
            toy_spec.min_epsilon
        )

    def test_custom_dummy_epsilon(self, toy_spec):
        high = float(np.log(6.0))
        low_budget = itemset_budget([0], toy_spec, 2)
        high_budget = itemset_budget([0], toy_spec, 2, dummy_epsilon=high)
        assert high_budget > low_budget

    def test_rejects_out_of_domain_items(self, toy_spec):
        with pytest.raises(ValidationError):
            itemset_budget([9], toy_spec, 2)


class TestConstruction:
    def test_optimized_extends_with_min_level_dummies(self, toy_spec):
        mech = IDUEPS.optimized(toy_spec, ell=3, model="opt1")
        assert mech.extended_m == toy_spec.m + 3
        # Dummy bits carry the parameters of the min-budget level (level 0).
        base = mech.base_idue
        assert np.allclose(mech.a[toy_spec.m :], base.level_a[0])
        assert np.allclose(mech.b[toy_spec.m :], base.level_b[0])

    def test_optimized_real_bits_match_base_idue(self, toy_spec):
        mech = IDUEPS.optimized(toy_spec, ell=2, model="opt2")
        assert np.allclose(mech.a[: toy_spec.m], mech.base_idue.a)
        assert np.allclose(mech.b[: toy_spec.m], mech.base_idue.b)

    def test_rappor_ps_uniform_parameters(self):
        mech = IDUEPS.rappor_ps(np.log(4.0), m=5, ell=3)
        assert mech.extended_m == 8
        assert np.allclose(mech.a, 2.0 / 3.0)
        assert mech.name == "rappor-ps"

    def test_oue_ps_uniform_parameters(self):
        mech = IDUEPS.oue_ps(np.log(4.0), m=5, ell=2)
        assert np.allclose(mech.a, 0.5)
        assert np.allclose(mech.b, 0.2)

    def test_wrong_unary_width_rejected(self):
        unary = UnaryMechanism([0.6] * 5, [0.2] * 5)
        with pytest.raises(ValidationError, match="m \\+ ell"):
            IDUEPS(unary, m=5, ell=3)

    def test_itemset_budget_method_requires_optimized(self):
        mech = IDUEPS.oue_ps(1.0, m=4, ell=2)
        with pytest.raises(ValidationError):
            mech.itemset_budget([0])

    def test_itemset_budget_method(self, toy_spec):
        mech = IDUEPS.optimized(toy_spec, ell=2, model="opt1")
        direct = itemset_budget([0, 1], toy_spec, 2, toy_spec.min_epsilon)
        assert mech.itemset_budget([0, 1]) == pytest.approx(direct)


class TestPerturbation:
    def test_perturb_output_width(self, toy_spec, rng):
        mech = IDUEPS.optimized(toy_spec, ell=3, model="opt1")
        report = mech.perturb([0, 2], rng)
        assert report.shape == (toy_spec.m + 3,)
        assert set(np.unique(report)) <= {0, 1}

    def test_perturb_many_shape(self, toy_spec, rng, small_itemset_dataset):
        mech = IDUEPS.optimized(toy_spec, ell=3, model="opt2")
        reports = mech.perturb_many(
            small_itemset_dataset.flat_items, small_itemset_dataset.offsets, rng
        )
        assert reports.shape == (small_itemset_dataset.n, toy_spec.m + 3)

    def test_sampled_bit_marginal(self, toy_spec, rng):
        """A user holding item 0 with |x| = 1 < ell sets bit 0 w.p.
        b_0 + (a_0 - b_0)/ell."""
        ell = 2
        mech = IDUEPS.optimized(toy_spec, ell=ell, model="opt1")
        n = 40_000
        flat = np.zeros(n, dtype=np.int64)
        offsets = np.arange(n + 1)
        reports = mech.perturb_many(flat, offsets, rng)
        a0, b0 = mech.a[0], mech.b[0]
        expected = b0 + (a0 - b0) / ell
        assert reports[:, 0].mean() == pytest.approx(expected, abs=0.01)
