"""Unit tests for the IDUE mechanism (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AVG, MIN, BudgetSpec, IDLDP, IDUE, PolicyGraph
from repro.exceptions import ValidationError


class TestConstruction:
    def test_level_parameters_expand_to_items(self, toy_spec):
        mech = IDUE(toy_spec, [0.6, 0.7], [0.3, 0.25])
        assert mech.m == 5
        assert mech.a.tolist() == [0.6, 0.7, 0.7, 0.7, 0.7]
        assert mech.b.tolist() == [0.3, 0.25, 0.25, 0.25, 0.25]

    def test_wrong_level_count_rejected(self, toy_spec):
        with pytest.raises(ValidationError):
            IDUE(toy_spec, [0.6], [0.3])

    def test_requires_budget_spec(self):
        with pytest.raises(ValidationError):
            IDUE([1.0, 2.0], [0.6], [0.3])

    def test_level_params_read_only(self, toy_spec):
        mech = IDUE(toy_spec, [0.6, 0.7], [0.3, 0.25])
        with pytest.raises(ValueError):
            mech.level_a[0] = 0.9


class TestOptimizedConstruction:
    @pytest.mark.parametrize("model", ["opt0", "opt1", "opt2"])
    def test_optimized_satisfies_minid(self, toy_spec, model):
        mech = IDUE.optimized(toy_spec, model=model)
        assert mech.satisfies(MIN)
        assert mech.optimization.feasible

    def test_optimized_avg_satisfies_avg(self, toy_spec):
        mech = IDUE.optimized(toy_spec, r=AVG, model="opt1")
        assert mech.satisfies(AVG)

    def test_opt2_has_half_a(self, toy_spec):
        mech = IDUE.optimized(toy_spec, model="opt2")
        assert np.allclose(mech.level_a, 0.5)

    def test_opt1_has_complementary_ab(self, toy_spec):
        mech = IDUE.optimized(toy_spec, model="opt1")
        assert np.allclose(mech.level_a + mech.level_b, 1.0)

    def test_single_level_spec_accepted(self):
        spec = BudgetSpec.uniform(1.0, 4)
        mech = IDUE.optimized(spec, model="opt1")
        # With one level opt1 reduces to RAPPOR's p = e^{eps/2}/(e^{eps/2}+1).
        expected = np.exp(0.5) / (np.exp(0.5) + 1.0)
        assert mech.level_a[0] == pytest.approx(expected, rel=1e-4)


class TestPrivacyChecks:
    def test_level_pair_ratio_bound_formula(self, toy_spec):
        mech = IDUE(toy_spec, [0.6, 0.7], [0.3, 0.25])
        expected = 0.6 * (1 - 0.25) / (0.3 * (1 - 0.7))
        assert mech.level_pair_ratio_bound(0, 1) == pytest.approx(expected)

    def test_level_pair_out_of_range(self, toy_spec):
        mech = IDUE(toy_spec, [0.6, 0.7], [0.3, 0.25])
        with pytest.raises(ValidationError):
            mech.level_pair_ratio_bound(0, 5)

    def test_satisfies_detects_violation(self, toy_spec):
        # Extreme parameters for level 0 break the ln4 bound against level 1.
        mech = IDUE(toy_spec, [0.95, 0.7], [0.02, 0.25])
        assert not mech.satisfies(MIN)

    def test_satisfies_with_policy_graph_relaxation(self, three_level_spec):
        """Parameters violating a dropped cross-pair still pass the audit."""
        # Complete-graph-feasible parameters from opt1 on a star policy.
        policy = PolicyGraph.star(3, center=0)
        mech = IDUE.optimized(three_level_spec, model="opt1", policy=policy)
        assert mech.satisfies(MIN, policy=policy)

    def test_notion_object(self, toy_spec):
        mech = IDUE(toy_spec, [0.6, 0.7], [0.3, 0.25])
        notion = mech.notion(MIN)
        assert isinstance(notion, IDLDP)
        assert notion.spec is toy_spec


class TestPerturbation:
    def test_perturb_uses_per_level_parameters(self, toy_spec, rng):
        mech = IDUE(toy_spec, [0.9, 0.6], [0.05, 0.3])
        n = 20_000
        reports = mech.perturb_many(np.zeros(n, dtype=int), rng)
        freq = reports.mean(axis=0)
        assert freq[0] == pytest.approx(0.9, abs=0.02)  # a of level 0
        assert freq[1] == pytest.approx(0.3, abs=0.02)  # b of level 1

    def test_repr_includes_level_params(self, toy_spec):
        mech = IDUE(toy_spec, [0.6, 0.7], [0.3, 0.25])
        assert "t=2" in repr(mech)
