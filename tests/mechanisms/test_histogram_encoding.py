"""Unit tests for SHE / THE histogram encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import (
    SummationHistogramEncoding,
    ThresholdingHistogramEncoding,
)
from repro.mechanisms.histogram_encoding import _the_probabilities


class TestSHE:
    def test_laplace_scale(self):
        mech = SummationHistogramEncoding(2.0, m=5)
        assert mech.scale == pytest.approx(1.0)  # 2 / eps

    def test_perturb_shape_and_signal(self, rng):
        mech = SummationHistogramEncoding(1.0, m=4)
        reports = mech.perturb_many(np.full(20_000, 2, dtype=int), rng)
        means = reports.mean(axis=0)
        assert means[2] == pytest.approx(1.0, abs=0.05)
        assert means[0] == pytest.approx(0.0, abs=0.05)

    def test_estimate_counts_unbiased_statistically(self, rng):
        mech = SummationHistogramEncoding(1.5, m=6)
        n = 30_000
        items = rng.integers(6, size=n)
        truth = np.bincount(items, minlength=6)
        estimates = mech.estimate_counts(mech.perturb_many(items, rng))
        sd = np.sqrt(mech.variance_per_item(n))
        assert np.all(np.abs(estimates - truth) < 5 * sd)

    def test_variance_formula(self):
        mech = SummationHistogramEncoding(2.0, m=3)
        # 2 * b^2 per user with b = 1 -> 2n.
        assert mech.variance_per_item(1000) == pytest.approx(2000.0)

    def test_empirical_variance_matches_formula(self, rng):
        mech = SummationHistogramEncoding(1.0, m=2)
        n, trials = 500, 400
        items = np.zeros(n, dtype=int)
        estimates = np.array(
            [mech.estimate_counts(mech.perturb_many(items, rng))[0] for _ in range(trials)]
        )
        assert estimates.var() == pytest.approx(
            mech.variance_per_item(n), rel=0.3
        )

    def test_input_validation(self, rng):
        mech = SummationHistogramEncoding(1.0, m=3)
        with pytest.raises(ValidationError):
            mech.perturb(5, rng)
        with pytest.raises(ValidationError):
            mech.estimate_counts(np.zeros((4, 99)))

    def test_ldp_channel_ratio_on_grid(self):
        """Laplace density ratio for one bit is bounded by e^{eps/2} each
        for the flipped pair of bits -> e^eps overall.  Check the density
        ratio numerically on a grid for the two-bit case."""
        epsilon = 1.3
        mech = SummationHistogramEncoding(epsilon, m=2)
        b = mech.scale
        grid = np.linspace(-4, 5, 181)
        # log density of report (y0, y1) given x = 0 vs x = 1:
        # |y0 - 1| + |y1| vs |y0| + |y1 - 1|, scaled by 1/b.
        y0, y1 = np.meshgrid(grid, grid)
        log_ratio = (-(np.abs(y0 - 1) + np.abs(y1)) + (np.abs(y0) + np.abs(y1 - 1))) / b
        assert np.max(np.abs(log_ratio)) <= epsilon + 1e-9


class TestTHE:
    def test_probability_formulas(self):
        epsilon, theta = 2.0, 0.75
        p, q = _the_probabilities(epsilon, theta)
        b = 2.0 / epsilon
        assert p == pytest.approx(1 - 0.5 * np.exp((theta - 1) / b))
        assert q == pytest.approx(0.5 * np.exp(-theta / b))
        assert p > q

    def test_optimal_theta_in_range(self):
        for epsilon in (0.5, 1.0, 2.0, 4.0):
            theta = ThresholdingHistogramEncoding.optimal_theta(epsilon)
            assert 0.5 < theta < 1.0

    def test_optimal_theta_minimizes_noise(self):
        epsilon = 1.0
        theta_star = ThresholdingHistogramEncoding.optimal_theta(epsilon)

        def noise(theta):
            p, q = _the_probabilities(epsilon, theta)
            return q * (1 - q) / (p - q) ** 2

        for theta in (0.55, 0.65, 0.85, 0.95):
            assert noise(theta_star) <= noise(theta) + 1e-9

    def test_theta_bounds_enforced(self):
        with pytest.raises(ValidationError):
            ThresholdingHistogramEncoding(1.0, m=3, theta=0.4)
        with pytest.raises(ValidationError):
            ThresholdingHistogramEncoding(1.0, m=3, theta=1.2)

    def test_behaves_as_unary_encoding(self, rng):
        mech = ThresholdingHistogramEncoding(1.5, m=4)
        reports = mech.perturb_many(np.zeros(20_000, dtype=int), rng)
        freq = reports.mean(axis=0)
        assert freq[0] == pytest.approx(mech.p, abs=0.02)
        assert freq[1] == pytest.approx(mech.q, abs=0.02)

    def test_thresholding_is_contraction(self):
        """Post-processing cannot increase leakage: the binary channel's
        UE-epsilon is at most the Laplace budget."""
        epsilon = 2.0
        mech = ThresholdingHistogramEncoding(epsilon, m=3)
        assert mech.epsilon() <= epsilon + 1e-9

    def test_the_beats_she_at_moderate_epsilon(self):
        """The known result: THE's variance beats SHE's for eps ~> 0.6."""
        epsilon, n = 2.0, 10_000
        she = SummationHistogramEncoding(epsilon, m=1)
        the = ThresholdingHistogramEncoding(epsilon, m=1)
        the_var = float(n * the.q * (1 - the.q) / (the.p - the.q) ** 2)
        assert the_var < she.variance_per_item(n)
