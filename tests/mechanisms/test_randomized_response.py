"""Unit tests for binary RR and GRR."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BinaryRandomizedResponse, GeneralizedRandomizedResponse
from repro.exceptions import ValidationError


class TestBinaryRR:
    def test_truth_probability(self):
        mech = BinaryRandomizedResponse(np.log(3.0))
        assert mech.p == pytest.approx(0.75)

    def test_channel_matrix_stochastic(self):
        mech = BinaryRandomizedResponse(1.0)
        matrix = mech.channel_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert matrix[0, 0] == matrix[1, 1] == pytest.approx(mech.p)

    def test_channel_satisfies_ldp(self):
        epsilon = 0.8
        matrix = BinaryRandomizedResponse(epsilon).channel_matrix()
        ratios = matrix[0] / matrix[1]
        assert np.max(ratios) <= np.exp(epsilon) + 1e-12

    def test_perturb_output_domain(self, rng):
        mech = BinaryRandomizedResponse(1.0)
        outputs = {mech.perturb(1, rng) for _ in range(50)}
        assert outputs <= {0, 1}

    def test_perturb_rejects_non_binary(self, rng):
        with pytest.raises(ValidationError):
            BinaryRandomizedResponse(1.0).perturb(2, rng)

    def test_estimator_unbiased_statistically(self, rng):
        mech = BinaryRandomizedResponse(1.5)
        truth = np.array([1] * 3000 + [0] * 7000)
        reports = np.array([mech.perturb(int(x), rng) for x in truth])
        estimate = mech.estimate_count_of_ones(reports)
        # 3-sigma band: sd ~ sqrt(n p(1-p))/(2p-1) ~ 90 here.
        assert abs(estimate - 3000) < 300


class TestGRR:
    def test_probabilities(self):
        mech = GeneralizedRandomizedResponse(np.log(4.0), m=5)
        assert mech.p == pytest.approx(0.5)
        assert mech.q == pytest.approx(0.125)

    def test_channel_matrix_rows_stochastic(self):
        mech = GeneralizedRandomizedResponse(1.0, m=6)
        matrix = mech.channel_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_channel_satisfies_ldp(self):
        epsilon = 1.3
        matrix = GeneralizedRandomizedResponse(epsilon, m=4).channel_matrix()
        for i in range(4):
            for j in range(4):
                assert np.max(matrix[i] / matrix[j]) <= np.exp(epsilon) + 1e-12

    def test_rejects_domain_of_one(self):
        with pytest.raises(ValidationError):
            GeneralizedRandomizedResponse(1.0, m=1)

    def test_perturb_many_matches_marginals(self, rng):
        mech = GeneralizedRandomizedResponse(2.0, m=3)
        outputs = mech.perturb_many(np.zeros(30_000, dtype=int), rng)
        freq = np.bincount(outputs, minlength=3) / outputs.size
        assert freq[0] == pytest.approx(mech.p, abs=0.02)
        assert freq[1] == pytest.approx(mech.q, abs=0.02)

    def test_perturb_never_maps_other_to_self_bias(self, rng):
        """The non-truthful branch must be uniform over the m-1 others."""
        mech = GeneralizedRandomizedResponse(0.5, m=4)
        outputs = mech.perturb_many(np.full(40_000, 2, dtype=int), rng)
        freq = np.bincount(outputs, minlength=4) / outputs.size
        others = [freq[0], freq[1], freq[3]]
        assert np.allclose(others, mech.q, atol=0.02)

    def test_estimate_counts_unbiased_statistically(self, rng):
        mech = GeneralizedRandomizedResponse(2.0, m=4)
        truth = rng.integers(4, size=20_000)
        reports = mech.perturb_many(truth, rng)
        estimates = mech.estimate_counts(reports)
        true_counts = np.bincount(truth, minlength=4)
        sd = np.sqrt(mech.variance_per_item(truth.size, truth.size / 4))
        assert np.all(np.abs(estimates - true_counts) < 4 * sd)

    def test_perturb_rejects_out_of_domain(self, rng):
        with pytest.raises(ValidationError):
            GeneralizedRandomizedResponse(1.0, m=3).perturb(3, rng)
