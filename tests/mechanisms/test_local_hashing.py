"""Unit tests for the OLH baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError, ValidationError
from repro.mechanisms import OptimizedLocalHashing
from repro.mechanisms.local_hashing import _hash_buckets


class TestHashFamily:
    def test_deterministic(self):
        seeds = np.array([1, 2, 3], dtype=np.int64)
        items = np.array([7, 7, 7], dtype=np.int64)
        first = _hash_buckets(seeds, items, g=5)
        second = _hash_buckets(seeds, items, g=5)
        assert np.array_equal(first, second)

    def test_range(self):
        rng = np.random.default_rng(0)
        seeds = rng.integers(0, 2**62, size=1000)
        items = rng.integers(0, 100, size=1000)
        buckets = _hash_buckets(seeds, items, g=7)
        assert buckets.min() >= 0 and buckets.max() < 7

    def test_roughly_uniform_over_seeds(self):
        """For a fixed item, random seeds spread uniformly over buckets."""
        rng = np.random.default_rng(1)
        seeds = rng.integers(0, 2**62, size=50_000)
        items = np.full(50_000, 13, dtype=np.int64)
        buckets = _hash_buckets(seeds, items, g=4)
        freq = np.bincount(buckets, minlength=4) / buckets.size
        assert np.allclose(freq, 0.25, atol=0.01)

    def test_pairwise_collision_rate(self):
        """Two distinct items collide with probability ~ 1/g per seed."""
        rng = np.random.default_rng(2)
        seeds = rng.integers(0, 2**62, size=50_000)
        g = 5
        h1 = _hash_buckets(seeds, np.full(seeds.size, 3, np.int64), g)
        h2 = _hash_buckets(seeds, np.full(seeds.size, 9, np.int64), g)
        assert np.mean(h1 == h2) == pytest.approx(1 / g, abs=0.01)


class TestOLH:
    def test_optimal_g(self):
        mech = OptimizedLocalHashing(np.log(4.0), m=20)
        assert mech.g == 5  # round(e^eps) + 1 = 5

    def test_grr_probabilities_over_buckets(self):
        mech = OptimizedLocalHashing(1.0, m=10)
        assert mech.p == pytest.approx(
            np.exp(1.0) / (np.exp(1.0) + mech.g - 1)
        )

    def test_rejects_g_below_two(self):
        with pytest.raises(ValidationError):
            OptimizedLocalHashing(1.0, m=5, g=1)

    def test_perturb_shape(self, rng):
        mech = OptimizedLocalHashing(1.0, m=6)
        seeds, reports = mech.perturb_many([0, 1, 5], rng)
        assert seeds.shape == reports.shape == (3,)
        assert np.all((reports >= 0) & (reports < mech.g))

    def test_estimate_counts_unbiased_statistically(self, rng):
        mech = OptimizedLocalHashing(2.0, m=8)
        n = 40_000
        items = rng.integers(8, size=n)
        truth = np.bincount(items, minlength=8)
        seeds, reports = mech.perturb_many(items, rng)
        estimates = mech.estimate_counts(seeds, reports)
        sd = np.sqrt(mech.variance_per_item(n))
        assert np.all(np.abs(estimates - truth) < 5 * sd)

    def test_estimate_subset_of_items(self, rng):
        mech = OptimizedLocalHashing(1.5, m=10)
        seeds, reports = mech.perturb_many(rng.integers(10, size=2000), rng)
        subset = mech.estimate_counts(seeds, reports, items=[3, 7])
        assert subset.shape == (2,)

    def test_estimate_rejects_mismatched_lengths(self):
        mech = OptimizedLocalHashing(1.0, m=4)
        with pytest.raises(EstimationError):
            mech.estimate_counts([1, 2], [0])

    def test_variance_comparable_to_oue(self):
        """OLH's variance matches OUE's asymptotically (Wang et al.)."""
        from repro.mechanisms import OptimizedUnaryEncoding

        epsilon, n = 1.0, 10_000
        olh = OptimizedLocalHashing(epsilon, m=100)
        oue = OptimizedUnaryEncoding(epsilon, m=100)
        oue_var = float(
            n * oue.q * (1 - oue.q) / (oue.p - oue.q) ** 2
        )
        assert olh.variance_per_item(n) == pytest.approx(oue_var, rel=0.25)
