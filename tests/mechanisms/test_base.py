"""Unit tests for the Mechanism base classes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import GeneralizedRandomizedResponse
from repro.mechanisms.base import CategoricalMechanism, UnaryMechanism


class TestCategoricalBase:
    def test_perturb_many_matches_channel_marginals(self, rng):
        """The generic inverse-CDF sampler reproduces the channel rows."""
        mech = GeneralizedRandomizedResponse(1.0, m=5)
        matrix = mech.channel_matrix()
        n = 60_000
        outputs = CategoricalMechanism.perturb_many(mech, np.full(n, 3), rng)
        freq = np.bincount(outputs, minlength=5) / n
        assert np.allclose(freq, matrix[3], atol=0.01)

    def test_perturb_base_implementation(self, rng):
        mech = GeneralizedRandomizedResponse(1.0, m=4)
        out = CategoricalMechanism.perturb(mech, 2, rng)
        assert 0 <= out < 4

    def test_perturb_out_of_domain(self, rng):
        mech = GeneralizedRandomizedResponse(1.0, m=4)
        with pytest.raises(ValidationError):
            CategoricalMechanism.perturb(mech, 9, rng)

    def test_perturb_many_out_of_domain(self, rng):
        mech = GeneralizedRandomizedResponse(1.0, m=4)
        with pytest.raises(ValidationError):
            CategoricalMechanism.perturb_many(mech, [0, 4], rng)


class TestUnaryLdpEpsilon:
    def test_uniform_parameters_formula(self):
        p, q = 0.7, 0.2
        mech = UnaryMechanism([p] * 4, [q] * 4)
        expected = np.log(p * (1 - q) / ((1 - p) * q))
        assert mech.ldp_epsilon() == pytest.approx(expected)

    def test_single_bit_domain(self):
        mech = UnaryMechanism([0.8], [0.1])
        assert mech.ldp_epsilon() == pytest.approx(np.log((0.8 / 0.1) * (0.9 / 0.2)))

    def test_two_bit_heterogeneous(self):
        mech = UnaryMechanism([0.9, 0.6], [0.1, 0.3])
        # Only i != j pairs count; enumerate them explicitly.
        alpha = mech.alpha
        beta = mech.beta
        expected = max(
            np.log(alpha[0] / beta[1]),
            np.log(alpha[1] / beta[0]),
        )
        assert mech.ldp_epsilon() == pytest.approx(expected)

    def test_heterogeneous_matches_brute_force(self, rng):
        for _ in range(20):
            m = int(rng.integers(2, 6))
            a = rng.uniform(0.4, 0.9, size=m)
            b = rng.uniform(0.05, 0.3, size=m)
            mech = UnaryMechanism(a, b)
            brute = max(
                np.log(mech.alpha[i] / mech.beta[j])
                for i in range(m)
                for j in range(m)
                if i != j
            )
            assert mech.ldp_epsilon() == pytest.approx(brute, rel=1e-12)

    def test_repr(self):
        mech = UnaryMechanism([0.6, 0.7], [0.2, 0.1])
        assert "m=2" in repr(mech)


class TestChannelCdfCache:
    def test_cdf_cached_and_reused(self):
        """channel_matrix (and its O(m^2) cumsum) runs once, not per call."""
        mech = GeneralizedRandomizedResponse(1.0, m=6)
        calls = []
        original = mech.channel_matrix

        def counting():
            calls.append(1)
            return original()

        mech.channel_matrix = counting
        first = mech.channel_cdf()
        second = mech.channel_cdf()
        assert first is second
        assert len(calls) == 1
        assert np.allclose(first[:, -1], 1.0)

    def test_cache_is_read_only(self):
        mech = GeneralizedRandomizedResponse(1.0, m=4)
        with pytest.raises(ValueError):
            mech.channel_cdf()[0, 0] = 0.5

    def test_invalidate_recomputes(self):
        mech = GeneralizedRandomizedResponse(1.0, m=4)
        first = mech.channel_cdf()
        mech.invalidate_channel_cache()
        second = mech.channel_cdf()
        assert first is not second
        assert np.array_equal(first, second)

    def test_perturb_many_uses_cache(self, rng):
        """Sampling through the cached CDF keeps the channel marginals."""
        mech = GeneralizedRandomizedResponse(1.0, m=5)
        mech.channel_cdf()  # warm the cache first
        outputs = CategoricalMechanism.perturb_many(mech, np.full(40_000, 2), rng)
        freq = np.bincount(outputs, minlength=5) / 40_000
        assert np.allclose(freq, mech.channel_matrix()[2], atol=0.01)


class TestUnaryPerturbManyKernel:
    def test_marginals_match_parameters(self, rng):
        """b-noise + hot-bit overwrite realizes the per-bit Bernoulli law."""
        a = np.array([0.9, 0.7, 0.8])
        b = np.array([0.1, 0.3, 0.2])
        mech = UnaryMechanism(a, b)
        n = 60_000
        reports = mech.perturb_many(np.full(n, 1), rng)
        freq = reports.mean(axis=0)
        assert freq[1] == pytest.approx(a[1], abs=0.01)
        assert freq[0] == pytest.approx(b[0], abs=0.01)
        assert freq[2] == pytest.approx(b[2], abs=0.01)

    def test_matches_single_user_path_distribution(self, rng):
        mech = UnaryMechanism([0.8, 0.75], [0.2, 0.15])
        many = mech.perturb_many(np.zeros(30_000, dtype=int), rng)
        singles = np.stack([mech.perturb(0, rng) for _ in range(3_000)])
        assert np.allclose(many.mean(axis=0), singles.mean(axis=0), atol=0.03)

    def test_output_dtype_and_values(self, rng):
        mech = UnaryMechanism([0.9, 0.8], [0.1, 0.2])
        reports = mech.perturb_many([0, 1, 1], rng)
        assert reports.dtype == np.int8
        assert set(np.unique(reports)) <= {0, 1}

    def test_empty_batch(self, rng):
        mech = UnaryMechanism([0.9, 0.8], [0.1, 0.2])
        assert mech.perturb_many([], rng).shape == (0, 2)


class TestChannelCachePickling:
    def test_warm_cache_not_pickled(self):
        """Shard payloads ship parameters, not the O(m^2) derived CDF."""
        import pickle

        mech = GeneralizedRandomizedResponse(1.0, m=8)
        mech.channel_cdf()  # warm
        clone = pickle.loads(pickle.dumps(mech))
        assert getattr(clone, "_channel_cdf", None) is None
        assert np.array_equal(clone.channel_cdf(), mech.channel_cdf())


class TestChannelCdfNormalizationGuard:
    def test_subnormalized_rows_rejected(self):
        """The cached-CDF path keeps rng.choice's normalization guard."""

        class Broken(CategoricalMechanism):
            @property
            def m(self):
                return 3

            def channel_matrix(self):
                return np.full((3, 3), 1.0 / 6.0)  # rows sum to 0.5

        with pytest.raises(ValidationError, match="sum to 1"):
            Broken().perturb(0, np.random.default_rng(0))

    def test_negative_entries_rejected(self):
        class Negative(CategoricalMechanism):
            @property
            def m(self):
                return 3

            def channel_matrix(self):
                return np.array([[0.6, -0.1, 0.5]] * 3)  # sums to 1, invalid

        with pytest.raises(ValidationError, match="non-negative"):
            Negative().perturb(0, np.random.default_rng(0))


class TestFlatCdfSampler:
    def test_matches_per_row_inverse_cdf(self, rng):
        """The flattened searchsorted equals row-wise inverse-CDF sampling."""
        mech = GeneralizedRandomizedResponse(1.3, m=7)
        inputs = rng.integers(7, size=50_000)
        u = np.random.default_rng(0).random(inputs.size)
        fast = CategoricalMechanism.perturb_many(
            mech, inputs, np.random.default_rng(0)
        )
        rows = mech.channel_cdf()[inputs]
        reference = np.minimum((u[:, None] > rows).sum(axis=1), 6)
        assert np.array_equal(fast, reference)

    def test_flat_cache_dropped_on_invalidate_and_pickle(self):
        import pickle

        mech = GeneralizedRandomizedResponse(1.0, m=4)
        CategoricalMechanism.perturb_many(mech, np.array([0, 1]), 0)
        assert getattr(mech, "_flat_cdf", None) is not None
        clone = pickle.loads(pickle.dumps(mech))
        assert getattr(clone, "_flat_cdf", None) is None
        mech.invalidate_channel_cache()
        assert mech._flat_cdf is None

    def test_row_sum_float_slack_stays_monotone(self):
        """Rows summing to 1 +/- tiny slack cannot unsort the flat CDF."""

        class Slack(CategoricalMechanism):
            @property
            def m(self):
                return 3

            def channel_matrix(self):
                return np.array(
                    [
                        [0.5, 0.5, 4e-9],        # sums to 1 + 4e-9
                        [1e-10, 0.5, 0.5 - 1e-10],
                        [0.2, 0.3, 0.5],
                    ]
                )

        mech = Slack()
        flat = mech._flat_channel_cdf()
        assert np.all(np.diff(flat) >= 0)
        assert np.allclose(mech.channel_cdf()[:, -1], 1.0, rtol=0, atol=0)
        out = CategoricalMechanism.perturb_many(
            mech, np.array([0, 1, 2]), np.random.default_rng(0)
        )
        assert np.all((out >= 0) & (out < 3))
