"""Unit tests for the Mechanism base classes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import GeneralizedRandomizedResponse
from repro.mechanisms.base import CategoricalMechanism, UnaryMechanism


class TestCategoricalBase:
    def test_perturb_many_matches_channel_marginals(self, rng):
        """The generic inverse-CDF sampler reproduces the channel rows."""
        mech = GeneralizedRandomizedResponse(1.0, m=5)
        matrix = mech.channel_matrix()
        n = 60_000
        outputs = CategoricalMechanism.perturb_many(mech, np.full(n, 3), rng)
        freq = np.bincount(outputs, minlength=5) / n
        assert np.allclose(freq, matrix[3], atol=0.01)

    def test_perturb_base_implementation(self, rng):
        mech = GeneralizedRandomizedResponse(1.0, m=4)
        out = CategoricalMechanism.perturb(mech, 2, rng)
        assert 0 <= out < 4

    def test_perturb_out_of_domain(self, rng):
        mech = GeneralizedRandomizedResponse(1.0, m=4)
        with pytest.raises(ValidationError):
            CategoricalMechanism.perturb(mech, 9, rng)

    def test_perturb_many_out_of_domain(self, rng):
        mech = GeneralizedRandomizedResponse(1.0, m=4)
        with pytest.raises(ValidationError):
            CategoricalMechanism.perturb_many(mech, [0, 4], rng)


class TestUnaryLdpEpsilon:
    def test_uniform_parameters_formula(self):
        p, q = 0.7, 0.2
        mech = UnaryMechanism([p] * 4, [q] * 4)
        expected = np.log(p * (1 - q) / ((1 - p) * q))
        assert mech.ldp_epsilon() == pytest.approx(expected)

    def test_single_bit_domain(self):
        mech = UnaryMechanism([0.8], [0.1])
        assert mech.ldp_epsilon() == pytest.approx(np.log((0.8 / 0.1) * (0.9 / 0.2)))

    def test_two_bit_heterogeneous(self):
        mech = UnaryMechanism([0.9, 0.6], [0.1, 0.3])
        # Only i != j pairs count; enumerate them explicitly.
        alpha = mech.alpha
        beta = mech.beta
        expected = max(
            np.log(alpha[0] / beta[1]),
            np.log(alpha[1] / beta[0]),
        )
        assert mech.ldp_epsilon() == pytest.approx(expected)

    def test_heterogeneous_matches_brute_force(self, rng):
        for _ in range(20):
            m = int(rng.integers(2, 6))
            a = rng.uniform(0.4, 0.9, size=m)
            b = rng.uniform(0.05, 0.3, size=m)
            mech = UnaryMechanism(a, b)
            brute = max(
                np.log(mech.alpha[i] / mech.beta[j])
                for i in range(m)
                for j in range(m)
                if i != j
            )
            assert mech.ldp_epsilon() == pytest.approx(brute, rel=1e-12)

    def test_repr(self):
        mech = UnaryMechanism([0.6, 0.7], [0.2, 0.1])
        assert "m=2" in repr(mech)
