"""Unit tests for the fast (binomial) simulation path.

The central claim: the fast path draws aggregate counts from the *same
distribution* as the exact per-user path.  The equivalence tests compare
first and second moments of the two paths over repeated trials.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec, IDUEPS, OptimizedUnaryEncoding
from repro.exceptions import ValidationError
from repro.simulation import (
    simulate_counts_from_true,
    simulate_itemset_counts,
    simulate_single_item_counts,
)


class TestCountsFromTrue:
    def test_bounds(self, rng):
        counts = simulate_counts_from_true([50, 0, 100], 100, 0.9, 0.05, rng)
        assert np.all(counts >= 0) and np.all(counts <= 100)

    def test_expectation(self, rng):
        s = np.array([400, 100, 0])
        n = 1000
        a, b = 0.8, 0.1
        trials = 500
        acc = np.zeros(3)
        for _ in range(trials):
            acc += simulate_counts_from_true(s, n, a, b, rng)
        mean = acc / trials
        expected = s * a + (n - s) * b
        assert np.allclose(mean, expected, rtol=0.03)

    def test_rejects_counts_above_n(self, rng):
        with pytest.raises(ValidationError):
            simulate_counts_from_true([11], 10, 0.5, 0.1, rng)


class TestSingleItemCounts:
    def test_requires_counts_summing_to_n(self, rng):
        mech = OptimizedUnaryEncoding(1.0, m=3)
        with pytest.raises(ValidationError, match="sum to"):
            simulate_single_item_counts(mech, [5, 5, 5], n=10, rng=rng)

    def test_matches_exact_path_distribution(self, rng):
        """Fast and exact paths agree in mean and variance."""
        from repro.simulation import simulate_single_item_reports

        m, n = 4, 400
        mech = OptimizedUnaryEncoding(1.2, m)
        items = np.repeat(np.arange(m), n // m)
        truth = np.bincount(items, minlength=m)

        trials = 300
        fast = np.empty((trials, m))
        exact = np.empty((trials, m))
        for k in range(trials):
            fast[k] = simulate_single_item_counts(mech, truth, n, rng)
            exact[k] = simulate_single_item_reports(mech, items, rng).sum(axis=0)
        assert np.allclose(fast.mean(axis=0), exact.mean(axis=0), rtol=0.05)
        assert np.allclose(fast.var(axis=0), exact.var(axis=0), rtol=0.45)


class TestItemsetCounts:
    def test_output_covers_extended_domain(self, toy_spec, rng, small_itemset_dataset):
        mech = IDUEPS.optimized(toy_spec, ell=3, model="opt1")
        counts = simulate_itemset_counts(mech, small_itemset_dataset, rng)
        assert counts.shape == (toy_spec.m + 3,)

    def test_matches_exact_path_mean(self, toy_spec, rng, small_itemset_dataset):
        from repro.simulation import simulate_itemset_reports

        mech = IDUEPS.optimized(toy_spec, ell=2, model="opt2")
        trials = 400
        width = mech.extended_m
        fast = np.zeros(width)
        exact = np.zeros(width)
        for _ in range(trials):
            fast += simulate_itemset_counts(mech, small_itemset_dataset, rng)
            exact += simulate_itemset_reports(mech, small_itemset_dataset, rng).sum(
                axis=0
            )
        assert np.allclose(fast / trials, exact / trials, atol=0.35)

    def test_domain_mismatch(self, rng, small_itemset_dataset):
        other = IDUEPS.optimized(BudgetSpec.uniform(1.0, 7), ell=2, model="opt1")
        with pytest.raises(ValidationError):
            simulate_itemset_counts(other, small_itemset_dataset, rng)
