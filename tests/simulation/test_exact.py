"""Unit tests for the exact per-user simulation path."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IDUE, IDUEPS, OptimizedUnaryEncoding
from repro.exceptions import ValidationError
from repro.simulation import simulate_itemset_reports, simulate_single_item_reports


class TestSingleItemReports:
    def test_shape(self, rng):
        mech = OptimizedUnaryEncoding(1.0, m=6)
        reports = simulate_single_item_reports(mech, [0, 3, 5], rng)
        assert reports.shape == (3, 6)

    def test_rejects_non_unary_mechanism(self, rng):
        with pytest.raises(ValidationError):
            simulate_single_item_reports("oops", [0], rng)

    def test_marginals(self, toy_spec, rng):
        mech = IDUE.optimized(toy_spec, model="opt1")
        reports = simulate_single_item_reports(
            mech, np.zeros(30_000, dtype=int), rng
        )
        freq = reports.mean(axis=0)
        assert freq[0] == pytest.approx(mech.a[0], abs=0.01)
        assert freq[1] == pytest.approx(mech.b[1], abs=0.01)


class TestItemsetReports:
    def test_shape(self, toy_spec, rng, small_itemset_dataset):
        mech = IDUEPS.optimized(toy_spec, ell=2, model="opt1")
        reports = simulate_itemset_reports(mech, small_itemset_dataset, rng)
        assert reports.shape == (small_itemset_dataset.n, toy_spec.m + 2)

    def test_domain_mismatch_rejected(self, toy_spec, rng, small_itemset_dataset):
        from repro import BudgetSpec

        other = IDUEPS.optimized(BudgetSpec.uniform(1.0, 9), ell=2, model="opt1")
        with pytest.raises(ValidationError, match="does not match"):
            simulate_itemset_reports(other, small_itemset_dataset, rng)

    def test_rejects_non_ps_mechanism(self, rng, small_itemset_dataset):
        mech = OptimizedUnaryEncoding(1.0, m=5)
        with pytest.raises(ValidationError):
            simulate_itemset_reports(mech, small_itemset_dataset, rng)
