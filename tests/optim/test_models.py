"""Unit tests for the opt0 / opt1 / opt2 solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AVG, MIN, BudgetSpec, PolicyGraph
from repro.optim import (
    build_constraints,
    solve,
    solve_opt0,
    solve_opt1,
    solve_opt2,
    worst_case_objective,
)
from repro.exceptions import ValidationError


def _rappor_objective(spec):
    """Worst-case objective of basic RAPPOR at min{E}."""
    p = np.exp(spec.min_epsilon / 2) / (np.exp(spec.min_epsilon / 2) + 1)
    a = np.full(spec.t, p)
    return worst_case_objective(a, 1 - a, spec.level_sizes.astype(float))


def _oue_objective(spec):
    """Worst-case objective of OUE at min{E}."""
    a = np.full(spec.t, 0.5)
    b = np.full(spec.t, 1.0 / (np.exp(spec.min_epsilon) + 1.0))
    return worst_case_objective(a, b, spec.level_sizes.astype(float))


class TestOpt1:
    def test_single_level_recovers_rappor(self):
        spec = BudgetSpec.uniform(2.0, 10)
        result = solve_opt1(build_constraints(spec))
        expected = np.exp(1.0) / (np.exp(1.0) + 1.0)  # tau = eps/2
        assert result.a[0] == pytest.approx(expected, rel=1e-6)
        assert result.feasible

    def test_structure_constraint_holds(self, three_level_spec):
        result = solve_opt1(build_constraints(three_level_spec))
        assert np.allclose(result.a + result.b, 1.0)

    def test_feasible_on_toy(self, toy_spec):
        result = solve_opt1(build_constraints(toy_spec))
        assert result.feasible
        assert result.max_violation <= 1e-9

    def test_improves_on_rappor(self, toy_spec):
        result = solve_opt1(build_constraints(toy_spec))
        assert result.objective <= _rappor_objective(toy_spec) + 1e-6

    def test_higher_budget_levels_get_larger_tau(self, three_level_spec):
        result = solve_opt1(build_constraints(three_level_spec))
        tau = np.array(result.diagnostics["tau"])
        # Levels are sorted by ascending budget; tau should not decrease.
        assert tau[0] <= tau[-1] + 1e-6

    def test_avg_r_function(self, toy_spec):
        result = solve_opt1(build_constraints(toy_spec, r=AVG))
        assert result.feasible
        assert result.constraints.r_name == "avg"


class TestOpt2:
    def test_single_level_recovers_oue(self):
        spec = BudgetSpec.uniform(1.5, 10)
        result = solve_opt2(build_constraints(spec))
        assert result.a[0] == pytest.approx(0.5)
        assert result.b[0] == pytest.approx(1.0 / (np.exp(1.5) + 1.0), rel=1e-6)

    def test_structure_constraint_holds(self, three_level_spec):
        result = solve_opt2(build_constraints(three_level_spec))
        assert np.allclose(result.a, 0.5)

    def test_feasible_on_toy(self, toy_spec):
        result = solve_opt2(build_constraints(toy_spec))
        assert result.feasible

    def test_improves_on_oue(self, toy_spec):
        result = solve_opt2(build_constraints(toy_spec))
        assert result.objective <= _oue_objective(toy_spec) + 1e-6

    def test_higher_budget_levels_get_smaller_b(self, three_level_spec):
        result = solve_opt2(build_constraints(three_level_spec))
        assert result.b[0] >= result.b[-1] - 1e-9


class TestOpt0:
    def test_never_worse_than_structured_models(self, toy_spec):
        constraints = build_constraints(toy_spec)
        opt0 = solve_opt0(constraints)
        opt1 = solve_opt1(constraints)
        opt2 = solve_opt2(constraints)
        assert opt0.objective <= opt1.objective + 1e-6
        assert opt0.objective <= opt2.objective + 1e-6

    def test_feasible_on_toy(self, toy_spec):
        result = solve_opt0(build_constraints(toy_spec))
        assert result.feasible
        assert np.all(result.a > result.b)

    def test_beats_both_baselines(self, toy_spec):
        """Section V-D: the opt0 feasible region contains RAPPOR and OUE."""
        result = solve_opt0(build_constraints(toy_spec))
        assert result.objective <= _rappor_objective(toy_spec) + 1e-6
        assert result.objective <= _oue_objective(toy_spec) + 1e-6

    def test_table2_range(self, toy_spec):
        """IDUE's worst-case total variance must beat OUE's 9.889n on the
        toy example (the paper reports 8.68-8.86n; our optimizer finds a
        slightly better feasible point)."""
        result = solve_opt0(build_constraints(toy_spec))
        assert result.objective < 9.889
        assert result.objective > 5.0  # sanity: not absurdly low

    def test_three_levels(self, three_level_spec):
        result = solve_opt0(build_constraints(three_level_spec))
        assert result.feasible

    def test_deterministic_given_seed(self, toy_spec):
        constraints = build_constraints(toy_spec)
        first = solve_opt0(constraints, seed=7)
        second = solve_opt0(constraints, seed=7)
        assert np.allclose(first.a, second.a)
        assert np.allclose(first.b, second.b)


class TestSolveDispatcher:
    @pytest.mark.parametrize("model", ["opt0", "opt1", "opt2"])
    def test_dispatch(self, toy_spec, model):
        result = solve(toy_spec, model=model)
        assert result.model == model
        assert result.feasible

    def test_unknown_model(self, toy_spec):
        with pytest.raises(ValidationError, match="unknown model"):
            solve(toy_spec, model="opt7")

    def test_policy_graph_passthrough(self, three_level_spec):
        policy = PolicyGraph.star(3, center=0)
        constrained = solve(three_level_spec, model="opt1")
        relaxed = solve(three_level_spec, model="opt1", policy=policy)
        # Dropping constraints can only improve (or match) the objective.
        assert relaxed.objective <= constrained.objective + 1e-6

    def test_result_summary_and_recompute(self, toy_spec):
        result = solve(toy_spec, model="opt1")
        assert "opt1" in result.summary()
        assert result.recompute_objective() == pytest.approx(result.objective)


class TestMonotonicity:
    def test_objective_decreases_with_budget_scale(self, toy_spec):
        """More budget everywhere => no worse utility."""
        objectives = [
            solve(toy_spec.scaled(s), model="opt1").objective for s in (1.0, 1.5, 2.0)
        ]
        assert objectives[0] >= objectives[1] >= objectives[2]

    def test_avg_no_worse_than_min(self, toy_spec):
        """AvgID-LDP has looser pair bounds than MinID-LDP, so utility
        can only improve."""
        min_result = solve(toy_spec, r=MIN, model="opt1")
        avg_result = solve(toy_spec, r=AVG, model="opt1")
        assert avg_result.objective <= min_result.objective + 1e-6
