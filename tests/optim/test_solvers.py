"""Unit tests for the shared solver utilities and closed forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim.solvers import oue_b, rappor_tau, run_slsqp


class TestClosedForms:
    def test_rappor_tau_is_half_epsilon(self):
        assert rappor_tau(2.0) == 1.0
        assert rappor_tau(np.log(4.0)) == pytest.approx(np.log(2.0))

    def test_rappor_tau_recovers_rappor_probability(self):
        """tau = eps/2 gives a = e^{eps/2}/(e^{eps/2}+1) = RAPPOR's p."""
        epsilon = 1.6
        tau = rappor_tau(epsilon)
        a = np.exp(tau) / (np.exp(tau) + 1.0)
        expected = np.exp(epsilon / 2) / (np.exp(epsilon / 2) + 1.0)
        assert a == pytest.approx(expected)

    def test_oue_b_formula(self):
        assert oue_b(np.log(4.0)) == pytest.approx(0.2)
        assert oue_b(1.0) == pytest.approx(1.0 / (np.e + 1.0))


class TestRunSlsqp:
    def test_solves_simple_quadratic(self):
        x, diagnostics = run_slsqp(
            lambda x: float((x[0] - 3.0) ** 2),
            np.array([0.0]),
            bounds=[(-10.0, 10.0)],
        )
        assert x[0] == pytest.approx(3.0, abs=1e-6)
        assert diagnostics["success"]

    def test_respects_inequality_constraint(self):
        # minimize x^2 s.t. x >= 1
        x, _ = run_slsqp(
            lambda x: float(x[0] ** 2),
            np.array([5.0]),
            bounds=[(-10.0, 10.0)],
            constraints=[{"type": "ineq", "fun": lambda x: x[0] - 1.0}],
        )
        assert x[0] == pytest.approx(1.0, abs=1e-6)

    def test_diagnostics_fields(self):
        _, diagnostics = run_slsqp(
            lambda x: float(x[0] ** 2), np.array([1.0]), label="unit"
        )
        assert diagnostics["label"] == "unit"
        assert set(diagnostics) >= {"success", "status", "message", "iterations"}

    def test_non_finite_result_raises(self):
        # An objective that drives x to NaN through an unbounded descent
        # direction with a NaN gradient region.
        def bad(x):
            return float(np.nan)

        with pytest.raises(SolverError):
            run_slsqp(bad, np.array([1.0]), label="bad")
