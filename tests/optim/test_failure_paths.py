"""Solver failure-path tests: graceful degradation when SLSQP misbehaves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim import build_constraints, solve_opt0, solve_opt1, solve_opt2
import repro.optim.opt0 as opt0_module
import repro.optim.opt1 as opt1_module
import repro.optim.opt2 as opt2_module


@pytest.fixture
def constraints(toy_spec):
    return build_constraints(toy_spec)


def _raise_solver_error(*args, **kwargs):
    raise SolverError("injected failure")


class TestOpt0Fallbacks:
    def test_survives_total_slsqp_failure(self, constraints, monkeypatch):
        """Every SLSQP call dies; opt0 must fall back to the feasible
        opt1/opt2 seed points."""
        monkeypatch.setattr(opt0_module, "run_slsqp", _raise_solver_error)
        result = solve_opt0(constraints)
        assert result.feasible
        # The fallback is one of the structured seeds (or their blend).
        assert result.objective <= 10.0  # sane for the toy spec

    def test_raises_when_even_seeds_fail(self, constraints, monkeypatch):
        monkeypatch.setattr(opt0_module, "run_slsqp", _raise_solver_error)
        monkeypatch.setattr(
            opt0_module, "_seed_points", lambda *args, **kwargs: []
        )
        with pytest.raises(SolverError, match="no feasible candidate"):
            solve_opt0(constraints)

    def test_garbage_slsqp_output_rejected_not_returned(
        self, constraints, monkeypatch
    ):
        """SLSQP 'succeeds' but returns an infeasible point; the strict
        repair must reject it and fall back to seeds."""

        def garbage(*args, **kwargs):
            t = constraints.t
            z = np.concatenate([np.full(t, 0.99), np.full(t, 0.01), [0.0]])
            return z, {"label": "garbage", "success": True}

        monkeypatch.setattr(opt0_module, "run_slsqp", garbage)
        result = solve_opt0(constraints)
        assert result.feasible
        assert constraints.max_ratio_violation(result.a, result.b) <= 0.0


class TestOpt1Fallbacks:
    def test_stalled_solver_recovered_by_coordinate_ascent(
        self, constraints, monkeypatch
    ):
        """SLSQP returns its (feasible, suboptimal) start unchanged; the
        coordinate-ascent polish must still produce a boundary point."""

        def stall(objective, x0, **kwargs):
            return np.asarray(x0, dtype=float), {"label": "stalled", "success": False}

        monkeypatch.setattr(opt1_module, "run_slsqp", stall)
        result = solve_opt1(constraints)
        assert result.feasible
        tau = np.array(result.diagnostics["tau"])
        # At least one constraint is tight at a Pareto-maximal point.
        slacks = []
        for i, j in constraints.pairs:
            bound = constraints.bounds[i, j]
            total = 2 * tau[i] if i == j else tau[i] + tau[j]
            slacks.append(bound - total)
        assert min(slacks) == pytest.approx(0.0, abs=1e-6)


class TestOpt2Fallbacks:
    def test_stalled_solver_falls_back_to_oue_start(self, constraints, monkeypatch):
        """If SLSQP returns something worse than the OUE-style start,
        opt2 must return the start."""

        def worse(objective, x0, **kwargs):
            return np.minimum(np.asarray(x0) * 3.0, 0.49), {
                "label": "worse",
                "success": True,
            }

        monkeypatch.setattr(opt2_module, "run_slsqp", worse)
        result = solve_opt2(constraints)
        assert result.feasible
        # Never worse than OUE at the tightest bound.
        r_min = min(
            constraints.bounds[i, j]
            for i, j in constraints.pairs
            if np.isfinite(constraints.bounds[i, j])
        )
        oue_b = 1.0 / (np.exp(r_min) + 1.0)
        oue_obj = float(
            np.sum(
                constraints.sizes * oue_b * (1 - oue_b) / (0.5 - oue_b) ** 2
            )
        )
        assert result.objective <= oue_obj + 1.0 + 1e-6  # + data term bound 1
