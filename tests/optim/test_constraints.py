"""Unit tests for constraint assembly and the Eq. (10) objective."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AVG, MIN, BudgetSpec, PolicyGraph
from repro.exceptions import ValidationError
from repro.optim import build_constraints, worst_case_objective


class TestBuildConstraints:
    def test_pair_count_with_singleton_level(self, toy_spec):
        # t = 2, level 0 singleton: pairs (0,1), (1,0), (1,1) = 3 active.
        constraints = build_constraints(toy_spec)
        assert len(constraints.pairs) == 3
        assert (0, 0) not in constraints.pairs

    def test_singleton_within_kept_on_request(self, toy_spec):
        constraints = build_constraints(toy_spec, include_singleton_within=True)
        assert len(constraints.pairs) == 4  # full t^2

    def test_full_t_squared_without_singletons(self, three_level_spec):
        constraints = build_constraints(three_level_spec)
        assert len(constraints.pairs) == 9

    def test_bounds_match_r_function(self, three_level_spec):
        constraints = build_constraints(three_level_spec, r=MIN)
        eps = three_level_spec.level_epsilons
        assert constraints.log_bound(0, 2) == pytest.approx(min(eps[0], eps[2]))
        avg = build_constraints(three_level_spec, r=AVG)
        assert avg.log_bound(0, 2) == pytest.approx((eps[0] + eps[2]) / 2)

    def test_policy_graph_drops_cross_pairs(self, three_level_spec):
        policy = PolicyGraph.star(3, center=0)
        constraints = build_constraints(three_level_spec, policy=policy)
        assert (1, 2) not in constraints.pairs
        assert (2, 1) not in constraints.pairs
        assert (1, 1) in constraints.pairs  # within-level kept
        assert np.isinf(constraints.bounds[1, 2])

    def test_policy_size_mismatch(self, toy_spec):
        with pytest.raises(ValidationError):
            build_constraints(toy_spec, policy=PolicyGraph.complete(3))

    def test_all_pairs_dropped_falls_back_to_diagonal(self):
        # Two singleton levels and an empty policy: the builder falls
        # back to the within-level constraints so solvers stay sane.
        spec = BudgetSpec([1.0, 2.0])
        policy = PolicyGraph(2, [])
        constraints = build_constraints(spec, policy=policy)
        assert constraints.pairs == ((0, 0), (1, 1))


class TestFeasibilityChecks:
    def test_max_ratio_violation_sign(self, toy_spec):
        constraints = build_constraints(toy_spec)
        # RAPPOR at min budget is feasible for MinID-LDP (Lemma 1 reverse).
        p = np.exp(toy_spec.min_epsilon / 2) / (np.exp(toy_spec.min_epsilon / 2) + 1)
        a = np.array([p, p])
        b = 1.0 - a
        assert constraints.max_ratio_violation(a, b) <= 1e-12
        assert constraints.is_feasible(a, b)

    def test_infeasible_detected(self, toy_spec):
        constraints = build_constraints(toy_spec)
        a = np.array([0.99, 0.99])
        b = np.array([0.01, 0.01])
        assert constraints.max_ratio_violation(a, b) > 0
        assert not constraints.is_feasible(a, b)

    def test_ordering_violation_infeasible(self, toy_spec):
        constraints = build_constraints(toy_spec)
        a = np.array([0.3, 0.6])
        b = np.array([0.4, 0.2])  # b > a at level 0
        assert not constraints.is_feasible(a, b)


class TestWorstCaseObjective:
    def test_matches_manual_computation(self):
        a = np.array([0.6, 0.7])
        b = np.array([0.3, 0.2])
        sizes = np.array([2.0, 3.0])
        noise = 2 * 0.3 * 0.7 / 0.09 + 3 * 0.2 * 0.8 / 0.25
        data = max((1 - 0.9) / 0.3, (1 - 0.9) / 0.5)
        assert worst_case_objective(a, b, sizes) == pytest.approx(noise + data)

    def test_infinite_when_a_not_greater_than_b(self):
        assert worst_case_objective(
            np.array([0.2]), np.array([0.5]), np.array([1.0])
        ) == float("inf")

    def test_oue_toy_value_matches_table2(self):
        """OUE at eps = ln4 on 5 items: worst-case objective = 9.889."""
        a = np.full(1, 0.5)
        b = np.full(1, 0.2)
        value = worst_case_objective(a, b, np.array([5.0]))
        assert value == pytest.approx(5 * 16 / 9 + 1.0, rel=1e-6)
