"""Unit tests for mechanism/spec serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    BudgetSpec,
    IDUE,
    IDUEPS,
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    UnaryEncoding,
)
from repro.exceptions import ValidationError
from repro.io import (
    load_mechanism,
    mechanism_from_dict,
    mechanism_to_dict,
    save_mechanism,
    spec_from_dict,
    spec_to_dict,
)
from repro.mechanisms.base import UnaryMechanism


class TestSpecRoundtrip:
    def test_roundtrip(self, toy_spec):
        restored = spec_from_dict(spec_to_dict(toy_spec))
        assert restored == toy_spec

    def test_dict_is_json_compatible(self, toy_spec):
        payload = spec_to_dict(toy_spec)
        assert json.loads(json.dumps(payload)) == payload

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            spec_from_dict({"type": "Other"})
        with pytest.raises(ValidationError):
            spec_to_dict([1.0, 2.0])


class TestMechanismRoundtrip:
    def test_idue(self, toy_spec):
        mech = IDUE.optimized(toy_spec, model="opt0")
        restored = mechanism_from_dict(mechanism_to_dict(mech))
        assert isinstance(restored, IDUE)
        assert np.allclose(restored.a, mech.a)
        assert np.allclose(restored.b, mech.b)
        assert restored.spec == toy_spec

    def test_idue_ps(self, toy_spec):
        mech = IDUEPS.optimized(toy_spec, ell=3, model="opt1")
        restored = mechanism_from_dict(mechanism_to_dict(mech))
        assert isinstance(restored, IDUEPS)
        assert restored.ell == 3
        assert np.allclose(restored.a, mech.a)
        assert restored.spec == toy_spec
        # The restored mechanism still computes Eq. 17 budgets.
        assert restored.itemset_budget([0, 1]) == pytest.approx(
            mech.itemset_budget([0, 1])
        )

    def test_rappor_and_oue(self):
        for mech in (SymmetricUnaryEncoding(1.3, 7), OptimizedUnaryEncoding(0.9, 4)):
            restored = mechanism_from_dict(mechanism_to_dict(mech))
            assert type(restored) is type(mech)
            assert np.allclose(restored.a, mech.a)

    def test_generic_ue(self):
        mech = UnaryEncoding(0.7, 0.2, 5)
        restored = mechanism_from_dict(mechanism_to_dict(mech))
        assert restored.p == pytest.approx(0.7)
        assert restored.epsilon() == pytest.approx(mech.epsilon())

    def test_raw_unary(self):
        mech = UnaryMechanism([0.6, 0.8], [0.2, 0.1])
        restored = mechanism_from_dict(mechanism_to_dict(mech))
        assert np.allclose(restored.a, mech.a)

    def test_unsupported_type(self):
        with pytest.raises(ValidationError, match="cannot serialize"):
            mechanism_to_dict(object())

    def test_unknown_serialized_type(self):
        with pytest.raises(ValidationError, match="unknown"):
            mechanism_from_dict({"type": "Mystery", "version": 1})

    def test_version_check(self, toy_spec):
        payload = mechanism_to_dict(IDUE.optimized(toy_spec, model="opt1"))
        payload["version"] = 99
        with pytest.raises(ValidationError, match="version"):
            mechanism_from_dict(payload)


class TestFileRoundtrip:
    def test_save_and_load(self, toy_spec, tmp_path):
        mech = IDUEPS.optimized(toy_spec, ell=2, model="opt2")
        path = str(tmp_path / "nested" / "mechanism.json")
        save_mechanism(mech, path)
        restored = load_mechanism(path)
        assert np.allclose(restored.a, mech.a)

    def test_load_missing_file(self):
        with pytest.raises(ValidationError, match="not found"):
            load_mechanism("/nonexistent/mech.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_mechanism(str(path))

    def test_deployment_roundtrip_preserves_estimates(self, toy_spec, tmp_path, rng):
        """Solve server-side, persist, reload, collect: estimates match a
        never-serialized mechanism exactly (same parameters, same rng)."""
        from repro import FrequencyEstimator

        mech = IDUE.optimized(toy_spec, model="opt0")
        path = str(tmp_path / "deployed.json")
        save_mechanism(mech, path)
        restored = load_mechanism(path)

        items = rng.integers(toy_spec.m, size=500)
        reports_a = mech.perturb_many(items, np.random.default_rng(9))
        reports_b = restored.perturb_many(items, np.random.default_rng(9))
        assert np.array_equal(reports_a, reports_b)

        est = FrequencyEstimator.for_mechanism(restored, items.size)
        assert est.m == toy_spec.m


class TestAccumulatorIO:
    """Wire-format snapshot files via save_accumulator/load_accumulator."""

    def _accumulator(self):
        from repro.pipeline import CountAccumulator

        acc = CountAccumulator(6, round_id=4)
        acc.add_reports([[1, 0, 1, 0, 0, 1], [0, 1, 1, 0, 1, 0]])
        return acc

    def test_round_trip(self, tmp_path):
        from repro.io import load_accumulator, save_accumulator

        acc = self._accumulator()
        path = str(tmp_path / "rounds" / "round4.snapshot")
        save_accumulator(acc, path)  # creates parent directories
        restored = load_accumulator(path)
        assert restored.digest() == acc.digest()
        assert restored.n == 2 and restored.round_id == 4

    def test_load_missing_file(self):
        from repro.io import load_accumulator

        with pytest.raises(ValidationError, match="not found"):
            load_accumulator("/nonexistent/acc.snapshot")

    def test_load_corrupted_file_is_loud(self, tmp_path):
        from repro.exceptions import WireFormatError
        from repro.io import load_accumulator, save_accumulator

        path = str(tmp_path / "acc.snapshot")
        save_accumulator(self._accumulator(), path)
        blob = bytearray(open(path, "rb").read())
        blob[-2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(WireFormatError, match="checksum"):
            load_accumulator(path)

    def test_load_rejects_chunk_frame(self, tmp_path):
        from repro.io import load_accumulator
        from repro.pipeline.collect import wire

        path = tmp_path / "chunk.bin"
        path.write_bytes(wire.dump_chunk(np.zeros((1, 1), dtype=np.uint8), m=8))
        with pytest.raises(ValidationError, match="not an"):
            load_accumulator(str(path))


class TestAtomicAccumulatorSaves:
    """save_accumulator must be torn-write-proof (temp + os.replace)."""

    def _accumulator(self):
        from repro.pipeline import CountAccumulator

        acc = CountAccumulator(6, round_id=4)
        acc.add_reports([[1, 0, 1, 0, 0, 1], [0, 1, 1, 0, 1, 0]])
        return acc

    def test_save_leaves_no_temp_litter(self, tmp_path):
        import os

        from repro.io import save_accumulator

        path = tmp_path / "acc.snapshot"
        save_accumulator(self._accumulator(), str(path))
        assert os.listdir(tmp_path) == ["acc.snapshot"]

    def test_failed_save_keeps_previous_snapshot(self, tmp_path, monkeypatch):
        import os

        from repro.io import load_accumulator, save_accumulator
        from repro.pipeline import CountAccumulator

        path = str(tmp_path / "acc.snapshot")
        first = self._accumulator()
        save_accumulator(first, path)

        import repro.pipeline.collect.store as store_module

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(store_module.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            save_accumulator(CountAccumulator(6, round_id=4), path)
        monkeypatch.undo()
        assert load_accumulator(path).digest() == first.digest()
        assert os.listdir(tmp_path) == ["acc.snapshot"]
