"""Unit tests for the exception hierarchy's metadata fields."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    InfeasibleError,
    PrivacyViolationError,
    ReproError,
    SolverError,
)


class TestInfeasibleError:
    def test_carries_constraint_description(self):
        err = InfeasibleError("impossible", constraint="pair (0, 1)")
        assert err.constraint == "pair (0, 1)"
        assert isinstance(err, ReproError)

    def test_constraint_optional(self):
        assert InfeasibleError("impossible").constraint is None


class TestSolverError:
    def test_diagnostics_copied(self):
        diag = {"status": 8}
        err = SolverError("stalled", diagnostics=diag)
        diag["status"] = 0
        assert err.diagnostics == {"status": 8}

    def test_diagnostics_default_empty_dict(self):
        assert SolverError("stalled").diagnostics == {}


class TestPrivacyViolationError:
    def test_carries_evidence(self):
        err = PrivacyViolationError(
            "violated", pair=(0, 3), ratio=4.5, bound=4.0
        )
        assert err.pair == (0, 3)
        assert err.ratio == 4.5
        assert err.bound == 4.0

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise PrivacyViolationError("violated")
