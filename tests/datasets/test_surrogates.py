"""Unit tests for the Kosarak / Retail / MSNBC surrogates."""

from __future__ import annotations

import numpy as np

from repro.datasets import kosarak_like, msnbc_like, retail_like


class TestKosarakLike:
    def test_shape_and_domain(self):
        data = kosarak_like(n=2000, m=500, rng=0)
        assert data.n == 2000
        assert data.m == 500
        assert data.flat_items.max() < 500

    def test_sets_are_duplicate_free(self):
        data = kosarak_like(n=500, m=200, rng=1)
        for user_set in data.iter_sets():
            assert np.unique(user_set).size == user_set.size

    def test_heavy_tailed_sizes(self):
        data = kosarak_like(n=5000, m=1000, mean_size=8.0, rng=0)
        sizes = data.set_sizes
        assert sizes.min() >= 1
        assert sizes.max() > 2 * sizes.mean()  # a long tail exists

    def test_popularity_skew(self):
        data = kosarak_like(n=5000, m=300, rng=0)
        counts = data.true_counts()
        assert counts[0] > 5 * max(counts[200:].max(), 1)

    def test_deterministic_with_seed(self):
        a = kosarak_like(n=300, m=100, rng=5)
        b = kosarak_like(n=300, m=100, rng=5)
        assert np.array_equal(a.flat_items, b.flat_items)


class TestRetailLike:
    def test_shape(self):
        data = retail_like(n=1500, m=400, rng=0)
        assert data.n == 1500
        assert data.m == 400

    def test_mean_basket_size_close_to_target(self):
        data = retail_like(n=8000, m=2000, mean_size=10.3, rng=0)
        # Deduplication loses a little; accept a broad band around 10.3.
        assert 5.0 < data.mean_set_size() < 13.0

    def test_sizes_at_least_one(self):
        data = retail_like(n=1000, m=500, rng=2)
        assert data.set_sizes.min() >= 1


class TestMsnbcLike:
    def test_fourteen_categories(self):
        data = msnbc_like(n=3000, rng=0)
        assert data.m == 14
        assert data.flat_items.max() < 14

    def test_empty_sequences_possible_but_rare(self):
        data = msnbc_like(n=5000, mean_visits=5.7, rng=0)
        # geometric >= 1 so sets are non-empty after dedupe.
        assert data.set_sizes.min() >= 1

    def test_sets_capped_by_domain(self):
        data = msnbc_like(n=2000, rng=1)
        assert data.set_sizes.max() <= 14

    def test_extreme_length_skew_before_dedupe(self):
        """The paper highlights very uneven sequence lengths; after
        deduplication the *set sizes* still spread across the domain."""
        data = msnbc_like(n=10_000, rng=0)
        sizes = data.set_sizes
        assert sizes.min() == 1
        assert sizes.max() >= 8
