"""Unit tests for synthetic single-item generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    power_law_items,
    true_counts_from_items,
    uniform_items,
    zipf_items,
)


class TestPowerLaw:
    def test_domain_and_shape(self):
        items = power_law_items(n=5000, m=50, rng=0)
        assert items.shape == (5000,)
        assert items.min() >= 0 and items.max() < 50

    def test_heavy_head(self):
        """With alpha = 2 the first item should dominate."""
        items = power_law_items(n=50_000, m=100, alpha=2.0, rng=0)
        counts = true_counts_from_items(items, 100)
        assert counts[0] > counts[10] > counts[50]
        assert counts[0] / items.size > 0.3

    def test_monotone_decreasing_on_average(self):
        items = power_law_items(n=100_000, m=20, alpha=2.0, rng=1)
        counts = true_counts_from_items(items, 20)
        # Head strictly ordered; tail noisy but below the head.
        assert counts[0] > counts[1] > counts[2]
        assert np.all(counts[10:] <= counts[0] // 10)

    def test_deterministic_with_seed(self):
        a = power_law_items(n=100, m=10, rng=7)
        b = power_law_items(n=100, m=10, rng=7)
        assert np.array_equal(a, b)

    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(ValueError):
            power_law_items(n=10, m=5, alpha=1.0)


class TestUniform:
    def test_domain(self):
        items = uniform_items(n=1000, m=30, rng=0)
        assert items.min() >= 0 and items.max() < 30

    def test_roughly_uniform(self):
        items = uniform_items(n=60_000, m=6, rng=0)
        freq = true_counts_from_items(items, 6) / items.size
        assert np.allclose(freq, 1 / 6, atol=0.01)


class TestZipf:
    def test_domain_and_skew(self):
        items = zipf_items(n=50_000, m=100, s=1.5, rng=0)
        counts = true_counts_from_items(items, 100)
        assert counts[0] > counts[5] > counts[50]

    def test_probabilities_match_zipf_law(self):
        items = zipf_items(n=200_000, m=4, s=1.0, rng=0)
        freq = true_counts_from_items(items, 4) / items.size
        weights = 1.0 / np.arange(1, 5)
        expected = weights / weights.sum()
        assert np.allclose(freq, expected, atol=0.01)


class TestTrueCounts:
    def test_histogram(self):
        counts = true_counts_from_items([0, 1, 1, 3], m=4)
        assert counts.tolist() == [1, 2, 0, 1]

    def test_rejects_out_of_domain(self):
        with pytest.raises(ValueError):
            true_counts_from_items([5], m=3)

    def test_sum_equals_n(self):
        items = uniform_items(n=777, m=10, rng=3)
        assert true_counts_from_items(items, 10).sum() == 777
