"""Unit tests for the FIMI / sequence file loaders."""

from __future__ import annotations

import pytest

from repro.datasets import load_fimi_transactions, load_sequences
from repro.exceptions import DatasetError


@pytest.fixture
def fimi_file(tmp_path):
    path = tmp_path / "transactions.dat"
    path.write_text("1 2 3\n2 4\n\n1 4 4\n")
    return str(path)


@pytest.fixture
def sequence_file(tmp_path):
    path = tmp_path / "msnbc.seq"
    path.write_text("1 1 2\n3\n2 2 2 1\n")
    return str(path)


class TestFimiLoader:
    def test_loads_and_remaps_dense(self, fimi_file):
        data = load_fimi_transactions(fimi_file)
        assert data.n == 3  # blank line skipped
        assert data.m == 4  # items {1,2,3,4} -> {0..3}

    def test_dedupes_within_transaction(self, fimi_file):
        data = load_fimi_transactions(fimi_file)
        assert data.set_sizes.tolist() == [3, 2, 2]  # "1 4 4" -> {1, 4}

    def test_max_users_cap(self, fimi_file):
        data = load_fimi_transactions(fimi_file, max_users=2)
        assert data.n == 2

    def test_remap_is_first_seen_order(self, fimi_file):
        data = load_fimi_transactions(fimi_file)
        # First transaction "1 2 3" becomes ids [0, 1, 2].
        assert data.user_items(0).tolist() == [0, 1, 2]

    def test_missing_file(self):
        with pytest.raises(DatasetError, match="not found"):
            load_fimi_transactions("/nonexistent/file.dat")

    def test_non_integer_token(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_text("1 two 3\n")
        with pytest.raises(DatasetError, match="non-integer"):
            load_fimi_transactions(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.dat"
        path.write_text("\n\n")
        with pytest.raises(DatasetError, match="empty"):
            load_fimi_transactions(str(path))


class TestSequenceLoader:
    def test_dedupes_sequences_into_sets(self, sequence_file):
        data = load_sequences(sequence_file)
        assert data.n == 3
        assert data.set_sizes.tolist() == [2, 1, 2]  # "2 2 2 1" -> {2, 1}

    def test_domain_size(self, sequence_file):
        data = load_sequences(sequence_file)
        assert data.m == 3  # categories {1, 2, 3}

    def test_max_users(self, sequence_file):
        data = load_sequences(sequence_file, max_users=1)
        assert data.n == 1
