"""Unit tests for budget-assignment strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DEFAULT_LEVEL_MULTIPLIERS,
    DEFAULT_LEVEL_PROPORTIONS,
    assign_budgets,
    exponential_level_distribution,
    paper_default_spec,
)
from repro.exceptions import BudgetError


class TestAssignBudgets:
    def test_every_level_populated(self, rng):
        spec = assign_budgets(100, [1.0, 2.0, 3.0], [0.1, 0.1, 0.8], rng)
        assert spec.t == 3
        assert np.all(spec.level_sizes >= 1)

    def test_proportions_respected_statistically(self, rng):
        spec = assign_budgets(20_000, [1.0, 4.0], [0.2, 0.8], rng)
        fractions = spec.level_sizes / spec.m
        assert fractions[0] == pytest.approx(0.2, abs=0.02)

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(BudgetError):
            assign_budgets(10, [1.0, 2.0], [1.0], rng)

    def test_rejects_bad_proportion_sum(self, rng):
        with pytest.raises(BudgetError, match="sum to 1"):
            assign_budgets(10, [1.0, 2.0], [0.5, 0.6], rng)

    def test_rejects_m_below_t_with_seeding(self, rng):
        with pytest.raises(BudgetError, match="m >= t"):
            assign_budgets(2, [1.0, 2.0, 3.0], [0.3, 0.3, 0.4], rng)

    def test_deterministic_with_seed(self):
        a = assign_budgets(50, [1.0, 2.0], [0.5, 0.5], rng=3)
        b = assign_budgets(50, [1.0, 2.0], [0.5, 0.5], rng=3)
        assert a == b


class TestExponentialLevels:
    def test_budget_range(self):
        epsilons, proportions = exponential_level_distribution(2.0, t=20)
        assert epsilons.min() == pytest.approx(2.0)
        assert epsilons.max() == pytest.approx(8.0)
        assert epsilons.size == 20
        assert proportions.sum() == pytest.approx(1.0)

    def test_proportions_increase_with_budget(self):
        """P(level) ∝ e^eps: least-sensitive levels hold the most items."""
        _, proportions = exponential_level_distribution(1.0, t=10)
        assert np.all(np.diff(proportions) > 0)

    def test_exponential_ratio(self):
        epsilons, proportions = exponential_level_distribution(1.0, t=5)
        ratios = proportions[1:] / proportions[:-1]
        expected = np.exp(np.diff(epsilons))
        assert np.allclose(ratios, expected)

    def test_single_level(self):
        epsilons, proportions = exponential_level_distribution(1.5, t=1)
        assert epsilons.tolist() == [1.5]
        assert proportions.tolist() == [1.0]

    def test_rejects_bad_multipliers(self):
        with pytest.raises(BudgetError):
            exponential_level_distribution(1.0, t=5, low_multiplier=4.0, high_multiplier=1.0)


class TestPaperDefaultSpec:
    def test_four_levels_with_default_multipliers(self, rng):
        spec = paper_default_spec(1.0, m=1000, rng=rng)
        assert spec.t == 4
        assert np.allclose(spec.level_epsilons, DEFAULT_LEVEL_MULTIPLIERS)

    def test_dominant_level_is_least_sensitive(self, rng):
        spec = paper_default_spec(1.0, m=5000, rng=rng)
        fractions = spec.level_sizes / spec.m
        assert fractions[-1] == pytest.approx(
            DEFAULT_LEVEL_PROPORTIONS[-1], abs=0.03
        )

    def test_scales_with_epsilon(self, rng):
        spec = paper_default_spec(2.5, m=100, rng=rng)
        assert spec.min_epsilon == pytest.approx(2.5)
        assert spec.max_epsilon == pytest.approx(10.0)
