"""Unit tests for ItemsetDataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import ItemsetDataset
from repro.exceptions import DatasetError


class TestConstruction:
    def test_from_sets(self, small_itemset_dataset):
        data = small_itemset_dataset
        assert data.n == 6
        assert data.m == 5
        assert data.set_sizes.tolist() == [2, 1, 4, 2, 1, 5]

    def test_from_sets_dedupes_by_default(self):
        data = ItemsetDataset.from_sets([[1, 1, 2, 1]], m=3)
        assert data.user_items(0).tolist() == [1, 2]

    def test_from_sets_preserves_order_on_dedupe(self):
        data = ItemsetDataset.from_sets([[3, 0, 3, 1]], m=4)
        assert data.user_items(0).tolist() == [3, 0, 1]

    def test_from_sets_keep_duplicates(self):
        data = ItemsetDataset.from_sets([[1, 1, 2]], m=3, dedupe=False)
        assert data.user_items(0).tolist() == [1, 1, 2]

    def test_from_single_items(self):
        data = ItemsetDataset.from_single_items([2, 0, 1], m=3)
        assert data.n == 3
        assert np.all(data.set_sizes == 1)

    def test_rejects_bad_offsets(self):
        with pytest.raises(DatasetError):
            ItemsetDataset([0, 1], [0, 1], m=3)  # last offset != len
        with pytest.raises(DatasetError):
            ItemsetDataset([0, 1], [1, 2], m=3)  # first offset != 0
        with pytest.raises(DatasetError):
            ItemsetDataset([0, 1], [0, 2, 1, 2], m=3)  # decreasing

    def test_rejects_out_of_domain_items(self):
        with pytest.raises(DatasetError):
            ItemsetDataset([0, 7], [0, 2], m=3)

    def test_empty_sets_allowed(self):
        data = ItemsetDataset.from_sets([[], [0]], m=2)
        assert data.set_sizes.tolist() == [0, 1]


class TestAccessors:
    def test_true_counts(self, small_itemset_dataset):
        counts = small_itemset_dataset.true_counts()
        # item 0 in users {0, 2, 5}; item 4 in {2, 4, 5}.
        assert counts.tolist() == [3, 3, 3, 3, 3]

    def test_true_counts_empty_dataset(self):
        data = ItemsetDataset.from_sets([[]], m=4)
        assert data.true_counts().tolist() == [0, 0, 0, 0]

    def test_user_items_bounds(self, small_itemset_dataset):
        with pytest.raises(DatasetError):
            small_itemset_dataset.user_items(6)

    def test_iter_sets(self, small_itemset_dataset):
        sets = list(small_itemset_dataset.iter_sets())
        assert len(sets) == 6
        assert sets[1].tolist() == [2]

    def test_first_items_skips_empty(self):
        data = ItemsetDataset.from_sets([[], [2, 1], [0]], m=3)
        assert data.first_items().tolist() == [2, 0]

    def test_first_items_strict_mode(self):
        data = ItemsetDataset.from_sets([[], [1]], m=2)
        with pytest.raises(DatasetError):
            data.first_items(skip_empty=False)

    def test_mean_set_size(self, small_itemset_dataset):
        assert small_itemset_dataset.mean_set_size() == pytest.approx(15 / 6)

    def test_subset_users(self, small_itemset_dataset):
        sub = small_itemset_dataset.subset_users([0, 2])
        assert sub.n == 2
        assert sub.user_items(1).tolist() == [0, 2, 3, 4]

    def test_subset_users_bounds(self, small_itemset_dataset):
        with pytest.raises(DatasetError):
            small_itemset_dataset.subset_users([99])

    def test_len_and_repr(self, small_itemset_dataset):
        assert len(small_itemset_dataset) == 6
        assert "n=6" in repr(small_itemset_dataset)

    def test_arrays_read_only(self, small_itemset_dataset):
        with pytest.raises(ValueError):
            small_itemset_dataset.flat_items[0] = 9


class TestSliceUsers:
    def test_contiguous_slice_matches_subset(self, small_itemset_dataset):
        ds = small_itemset_dataset
        sliced = ds.slice_users(1, 4)
        subset = ds.subset_users([1, 2, 3])
        assert sliced.n == 3
        assert np.array_equal(sliced.flat_items, subset.flat_items)
        assert np.array_equal(sliced.offsets, subset.offsets)

    def test_empty_range(self, small_itemset_dataset):
        sliced = small_itemset_dataset.slice_users(2, 2)
        assert sliced.n == 0

    def test_rejects_bad_range(self, small_itemset_dataset):
        with pytest.raises(DatasetError):
            small_itemset_dataset.slice_users(4, 2)
        with pytest.raises(DatasetError):
            small_itemset_dataset.slice_users(0, 99)
