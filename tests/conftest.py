"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec
from repro.datasets import ItemsetDataset


@pytest.fixture
def rng():
    """A fixed-seed generator; reseeded per test function."""
    return np.random.default_rng(12345)


@pytest.fixture
def toy_spec():
    """Table II's budgets: item 0 at ln 4, items 1..4 at ln 6."""
    return BudgetSpec.from_level_sizes([np.log(4.0), np.log(6.0)], [1, 4])


@pytest.fixture
def three_level_spec():
    """A 3-level spec with distinct sizes, exercising asymmetric weights."""
    return BudgetSpec.from_level_sizes([0.5, 1.0, 2.0], [2, 3, 5])


@pytest.fixture
def small_itemset_dataset():
    """Six users over a 5-item domain with mixed set sizes (incl. size > 3)."""
    sets = [
        [0, 1],
        [2],
        [0, 2, 3, 4],
        [1, 3],
        [4],
        [0, 1, 2, 3, 4],
    ]
    return ItemsetDataset.from_sets(sets, m=5)
