"""Regenerate the committed wire-format golden fixtures.

Run from the repo root after a deliberate (versioned!) format change::

    PYTHONPATH=src python tests/fixtures/make_wire_fixtures.py

The fixtures pin wire-format version 1 byte for byte — if this script
produces different bytes than the committed files without a version
bump, that is a silent format break and the golden tests will say so.
Keep the builders here in sync with the expectations hardcoded in
``tests/pipeline/test_wire_golden.py`` (the duplication is the pin).
"""

from __future__ import annotations

import os

import numpy as np

from repro.pipeline import CountAccumulator
from repro.pipeline.collect import wire

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "wire")

SNAPSHOT_FILE = "snapshot_v1_m12_n5_round3.bin"
CHUNK_FILE = "chunk_v1_m21_k4_round7.bin"
HELLO_FILE = "hello_v2_m16_round2.bin"
CHALLENGE_V2_FILE = "challenge_v2_m16_round2.bin"
CHALLENGE_V3_FILE = "challenge_v3_m16_round2.bin"
PROOF_FILE = "proof_v2_m16_round2.bin"
RECORD_FILE = "record_v2_m21_seq9_round7.bin"
ACK_FILE = "ack_v2_m16_seq9_round2.bin"
CONTROL_REQUEST_FILE = "control_request_v4_drain_round2.bin"
CONTROL_REPLY_FILE = "control_reply_v4_ok_round2.bin"
BLINDED_FILE = "blinded_v5_m5_n4_round2.bin"
SHARE_FILE = "share_v5_m5_n4_round2.bin"

# Deterministic handshake bytes: fixtures must be reproducible, so the
# nonces/token/MAC are fixed patterns, not fresh randomness.
CLIENT_NONCE = bytes(range(16))
SERVER_NONCE = bytes(range(16, 32))
ROUND_TOKEN = bytes(range(32, 48))
PROOF_MAC = bytes(range(64, 96))
CONTROL_NONCE = bytes(range(48, 64))
CONTROL_MAC = bytes(range(96, 128))
CONTROL_ATTACHMENT = b"attached-snapshot-bytes"


def golden_snapshot() -> CountAccumulator:
    """m=12 round: 5 users with a fixed, human-checkable count vector."""
    return CountAccumulator.from_state(
        12, np.array([5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 0]), 5, round_id=3
    )


def golden_chunk() -> wire.PackedChunk:
    """m=21 chunk (pad bits in play): 4 fixed rows, one per corner case."""
    bits = np.zeros((4, 21), dtype=np.uint8)
    bits[0, :] = 1  # all ones
    bits[1, 0] = bits[1, 20] = 1  # first and last bit
    bits[2, ::2] = 1  # alternating
    # row 3: all zeros
    return wire.PackedChunk(m=21, round_id=7, rows=np.packbits(bits, axis=1))


def golden_hello() -> wire.SessionHello:
    """m=16 round-2 hello from a fixed producer with a fixed nonce."""
    return wire.SessionHello(
        m=16, round_id=2, producer_id="tally-node-7", nonce=CLIENT_NONCE
    )


def golden_challenge_v2() -> wire.SessionChallenge:
    """Single-round (tokenless) challenge: must stay a version-2 frame."""
    return wire.SessionChallenge(m=16, round_id=2, nonce=SERVER_NONCE)


def golden_challenge_v3() -> wire.SessionChallenge:
    """Round-scoped challenge: server nonce plus the registration token."""
    return wire.SessionChallenge(
        m=16, round_id=2, nonce=SERVER_NONCE, round_token=ROUND_TOKEN
    )


def golden_proof() -> wire.SessionProof:
    return wire.SessionProof(m=16, round_id=2, mac=PROOF_MAC)


def golden_record() -> wire.Record:
    """A record envelope wrapping the golden chunk frame verbatim."""
    return wire.Record(m=21, round_id=7, seq=9, frame=wire.dumps(golden_chunk()))


def golden_ack() -> wire.Ack:
    return wire.Ack(
        m=16, round_id=2, seq=9, status=wire.ACK_DUPLICATE, detail="already merged"
    )


def golden_control_request() -> wire.ControlRequest:
    """A drain of round 2: op + nonce + canonical-JSON body + MAC."""
    return wire.ControlRequest(
        op="drain",
        nonce=CONTROL_NONCE,
        body={"round_id": 2},
        mac=CONTROL_MAC,
    )


def golden_control_reply() -> wire.ControlReply:
    """An OK reply echoing the request nonce, with an attachment."""
    return wire.ControlReply(
        status=wire.CONTROL_OK,
        nonce=CONTROL_NONCE,
        body={"phase": "draining", "round_id": 2},
        attachment=CONTROL_ATTACHMENT,
        mac=CONTROL_MAC,
    )


def golden_blinded_counts() -> wire.BlindedCounts:
    """m=5 blinded counts with wraparound in play: two words sit above
    any possible plain count (2^64-1 and 2^63), pinning that the wire
    carries the full uint64 range, not just values <= n."""
    words = np.array(
        [3, 2**64 - 1, 0, 2**63, 41], dtype=np.uint64
    )
    return wire.BlindedCounts(m=5, round_id=2, n=4, words=words)


def golden_blinding_share() -> wire.BlindingShare:
    """One keeper's m=5 blinding words for the same chunk — subtracting
    these from the golden blinded counts mod 2^64 must land every word
    back inside [0, n=4] (the combine-identity the share tests pin)."""
    words = np.array(
        [1, 2**64 - 3, 2**64 - 4, 2**63 - 1, 40], dtype=np.uint64
    )
    return wire.BlindingShare(m=5, round_id=2, n=4, words=words)


def main() -> None:
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    for name, obj in (
        (SNAPSHOT_FILE, golden_snapshot()),
        (CHUNK_FILE, golden_chunk()),
        (HELLO_FILE, golden_hello()),
        (CHALLENGE_V2_FILE, golden_challenge_v2()),
        (CHALLENGE_V3_FILE, golden_challenge_v3()),
        (PROOF_FILE, golden_proof()),
        (RECORD_FILE, golden_record()),
        (ACK_FILE, golden_ack()),
        (CONTROL_REQUEST_FILE, golden_control_request()),
        (CONTROL_REPLY_FILE, golden_control_reply()),
        (BLINDED_FILE, golden_blinded_counts()),
        (SHARE_FILE, golden_blinding_share()),
    ):
        path = os.path.join(FIXTURE_DIR, name)
        with open(path, "wb") as handle:
            handle.write(wire.dumps(obj))
        print(f"wrote {path} ({os.path.getsize(path)} bytes)")


if __name__ == "__main__":
    main()
