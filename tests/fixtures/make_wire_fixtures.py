"""Regenerate the committed wire-format golden fixtures.

Run from the repo root after a deliberate (versioned!) format change::

    PYTHONPATH=src python tests/fixtures/make_wire_fixtures.py

The fixtures pin wire-format version 1 byte for byte — if this script
produces different bytes than the committed files without a version
bump, that is a silent format break and the golden tests will say so.
Keep the builders here in sync with the expectations hardcoded in
``tests/pipeline/test_wire_golden.py`` (the duplication is the pin).
"""

from __future__ import annotations

import os

import numpy as np

from repro.pipeline import CountAccumulator
from repro.pipeline.collect import wire

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "wire")

SNAPSHOT_FILE = "snapshot_v1_m12_n5_round3.bin"
CHUNK_FILE = "chunk_v1_m21_k4_round7.bin"


def golden_snapshot() -> CountAccumulator:
    """m=12 round: 5 users with a fixed, human-checkable count vector."""
    return CountAccumulator.from_state(
        12, np.array([5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 0]), 5, round_id=3
    )


def golden_chunk() -> wire.PackedChunk:
    """m=21 chunk (pad bits in play): 4 fixed rows, one per corner case."""
    bits = np.zeros((4, 21), dtype=np.uint8)
    bits[0, :] = 1  # all ones
    bits[1, 0] = bits[1, 20] = 1  # first and last bit
    bits[2, ::2] = 1  # alternating
    # row 3: all zeros
    return wire.PackedChunk(m=21, round_id=7, rows=np.packbits(bits, axis=1))


def main() -> None:
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    for name, obj in ((SNAPSHOT_FILE, golden_snapshot()), (CHUNK_FILE, golden_chunk())):
        path = os.path.join(FIXTURE_DIR, name)
        with open(path, "wb") as handle:
            handle.write(wire.dumps(obj))
        print(f"wrote {path} ({os.path.getsize(path)} bytes)")


if __name__ == "__main__":
    main()
