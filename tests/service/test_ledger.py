"""Tests for the idempotency ledger: dedup, durability, torn-tail repair."""

from __future__ import annotations

import hashlib
import os

import pytest

from repro.exceptions import LedgerError
from repro.pipeline.service.ledger import DIGEST_SIZE, IdempotencyLedger


def _digest(tag: bytes) -> bytes:
    return hashlib.sha256(tag).digest()


@pytest.fixture
def ledger_path(tmp_path) -> str:
    return str(tmp_path / "round.ledger")


def _committed(path: str, entries) -> IdempotencyLedger:
    ledger = IdempotencyLedger(path)
    ledger.load()
    for producer, seq, tag, end in entries:
        ledger.append(producer, seq, _digest(tag), end)
    ledger.sync()
    ledger.close()
    return ledger


class TestRecordFlow:
    def test_append_then_seen(self, ledger_path):
        ledger = IdempotencyLedger(ledger_path)
        assert ledger.load() == 0
        ledger.append("p", 0, _digest(b"a"), 100)
        entry = ledger.seen("p", 0)
        assert entry.digest == _digest(b"a") and entry.spill_end == 100
        assert ledger.seen("p", 1) is None
        assert ledger.seen("q", 0) is None
        ledger.close()

    def test_double_append_refused(self, ledger_path):
        ledger = IdempotencyLedger(ledger_path)
        ledger.load()
        ledger.append("p", 0, _digest(b"a"), 100)
        with pytest.raises(LedgerError, match="already ledgered"):
            ledger.append("p", 0, _digest(b"b"), 200)
        ledger.close()

    def test_wrong_digest_size_refused(self, ledger_path):
        ledger = IdempotencyLedger(ledger_path)
        ledger.load()
        with pytest.raises(LedgerError, match=f"{DIGEST_SIZE} bytes"):
            ledger.append("p", 0, b"short", 10)
        ledger.close()

    def test_append_before_load_refused(self, ledger_path):
        with pytest.raises(LedgerError, match="not open"):
            IdempotencyLedger(ledger_path).append("p", 0, _digest(b"a"), 1)


class TestPersistence:
    def test_reload_round_trip(self, ledger_path):
        entries = [
            ("edge-1", 0, b"a", 90),
            ("edge-1", 1, b"b", 180),
            ("edge-2", 0, b"c", 260),
        ]
        _committed(ledger_path, entries)
        reloaded = IdempotencyLedger(ledger_path)
        assert reloaded.load() == 3
        assert reloaded.committed_offset == 260
        for producer, seq, tag, end in entries:
            entry = reloaded.seen(producer, seq)
            assert entry.digest == _digest(tag)
            assert entry.spill_end == end
        assert [e.seq for e in reloaded.entries()] == [0, 1, 0]
        reloaded.close()

    def test_missing_file_loads_empty(self, ledger_path):
        ledger = IdempotencyLedger(ledger_path)
        assert ledger.load() == 0
        assert ledger.committed_offset == 0
        ledger.close()

    def test_unicode_producer_ids_round_trip(self, ledger_path):
        _committed(ledger_path, [("producteur-été", 7, b"x", 50)])
        reloaded = IdempotencyLedger(ledger_path)
        reloaded.load()
        assert reloaded.seen("producteur-été", 7) is not None
        reloaded.close()


class TestTornTailRecovery:
    def test_torn_tail_is_truncated(self, ledger_path):
        _committed(ledger_path, [("p", 0, b"a", 90), ("p", 1, b"b", 180)])
        intact = os.path.getsize(ledger_path)
        with open(ledger_path, "ab") as handle:
            handle.write(b"\x00\x01\x02")  # crash mid-append
        reloaded = IdempotencyLedger(ledger_path)
        assert reloaded.load() == 2
        assert reloaded.recovered_bytes_discarded == 3
        assert os.path.getsize(ledger_path) == intact
        assert reloaded.committed_offset == 180
        reloaded.close()

    def test_corrupt_entry_stops_the_parse(self, ledger_path):
        _committed(ledger_path, [("p", 0, b"a", 90), ("p", 1, b"b", 180)])
        size = os.path.getsize(ledger_path)
        with open(ledger_path, "r+b") as handle:
            handle.seek(size // 2 + 6)  # inside the second entry
            handle.write(b"\xff")
        reloaded = IdempotencyLedger(ledger_path)
        assert reloaded.load() == 1
        assert reloaded.seen("p", 0) is not None
        assert reloaded.seen("p", 1) is None
        assert reloaded.committed_offset == 90
        reloaded.close()

    def test_appending_after_recovery_works(self, ledger_path):
        _committed(ledger_path, [("p", 0, b"a", 90)])
        with open(ledger_path, "ab") as handle:
            handle.write(b"torn")
        ledger = IdempotencyLedger(ledger_path)
        ledger.load()
        ledger.append("p", 1, _digest(b"b"), 180)
        ledger.sync()
        ledger.close()
        reloaded = IdempotencyLedger(ledger_path)
        assert reloaded.load() == 2
        reloaded.close()

    def test_duplicate_committed_entries_are_corruption(self, ledger_path):
        _committed(ledger_path, [("p", 0, b"a", 90)])
        blob = open(ledger_path, "rb").read()
        with open(ledger_path, "ab") as handle:
            handle.write(blob)  # the same entry twice cannot happen honestly
        reloaded = IdempotencyLedger(ledger_path)
        with pytest.raises(LedgerError, match="two entries"):
            reloaded.load()
