"""Behavioral tests for the exactly-once CollectionService.

Covers the four pillars one by one: authentication (wrong-key producers
merge nothing), idempotency (resends ack as duplicates, equivocation is
refused), backpressure/quotas (oversized frames, per-connection quotas,
session capacity shedding), and resumability (covered in depth by
``tests/integration/test_service_end_to_end.py``).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import AuthenticationError, ValidationError
from repro.pipeline import (
    CollectionService,
    CountAccumulator,
    ServiceLimits,
    ServiceSession,
    send_records,
)
from repro.pipeline.collect import wire

M = 16
KEY = "0011223344556677"


def _chunk_frame(k=5, seed=0, m=M, round_id=0) -> bytes:
    rng = np.random.default_rng(seed)
    bits = (rng.random((k, m)) < 0.5).astype(np.uint8)
    return wire.dump_chunk(np.packbits(bits, axis=1), m, round_id=round_id)


def _snapshot_frame(n=4, seed=1, m=M, round_id=0) -> bytes:
    rng = np.random.default_rng(seed)
    acc = CountAccumulator(m, round_id=round_id)
    acc.add_reports((rng.random((n, m)) < 0.5).astype(np.int8))
    return wire.dumps(acc)


def _run(scenario, tmp_path, *, limits=None, **service_kwargs):
    """Start a service, run ``scenario(service, host, port)``, close."""

    async def main():
        service = CollectionService(
            M,
            key=KEY,
            store_root=str(tmp_path / "round"),
            limits=limits,
            **service_kwargs,
        )
        host, port = await service.serve()
        try:
            result = await scenario(service, host, port)
        finally:
            await service.close()
        return service, result

    return asyncio.run(main())


class TestAuthentication:
    def test_wrong_key_merges_nothing(self, tmp_path):
        async def scenario(service, host, port):
            with pytest.raises(AuthenticationError, match="refused"):
                await send_records(
                    host,
                    port,
                    [_chunk_frame()],
                    key="totally-wrong-key",
                    producer_id="evil",
                    m=M,
                )

        service, _ = _run(scenario, tmp_path)
        assert service.accumulator.n == 0
        assert service.records_merged == 0
        assert service.sessions_rejected == 1
        assert "evil" not in service.producers_seen

    def test_round_mismatch_hello_refused(self, tmp_path):
        async def scenario(service, host, port):
            with pytest.raises(AuthenticationError, match="round mismatch"):
                await send_records(
                    host,
                    port,
                    [_chunk_frame()],
                    key=KEY,
                    producer_id="p",
                    m=M,
                    round_id=9,
                )

        service, _ = _run(scenario, tmp_path)
        assert service.accumulator.n == 0 and service.sessions_rejected == 1

    def test_right_key_merges(self, tmp_path):
        async def scenario(service, host, port):
            return await send_records(
                host,
                port,
                [_chunk_frame(), _snapshot_frame()],
                key=KEY,
                producer_id="edge-1",
                m=M,
            )

        service, acks = _run(scenario, tmp_path)
        assert [a.status for a in acks] == [wire.ACK_MERGED] * 2
        assert service.accumulator.n == 9  # 5 chunk rows + 4 snapshot users
        assert service.producers_seen == {"edge-1"}

    def test_bad_key_type_fails_at_construction(self, tmp_path):
        with pytest.raises(ValidationError, match="at least"):
            CollectionService(M, key="ab", store_root=str(tmp_path / "r"))


class TestExactlyOnce:
    def test_blind_resend_is_duplicate_not_double_count(self, tmp_path):
        frames = [_chunk_frame(seed=s) for s in range(3)]

        async def scenario(service, host, port):
            first = await send_records(
                host, port, frames, key=KEY, producer_id="p", m=M
            )
            digest = service.accumulator.digest()
            again = await send_records(
                host, port, frames, key=KEY, producer_id="p", m=M
            )
            return first, again, digest

        service, (first, again, digest) = _run(scenario, tmp_path)
        assert [a.status for a in first] == [wire.ACK_MERGED] * 3
        assert [a.status for a in again] == [wire.ACK_DUPLICATE] * 3
        assert service.accumulator.digest() == digest
        assert service.records_merged == 3
        assert service.records_duplicate == 3

    def test_same_seq_different_producers_both_merge(self, tmp_path):
        async def scenario(service, host, port):
            for producer in ("a", "b"):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(seed=ord(producer))],
                    key=KEY,
                    producer_id=producer,
                    m=M,
                )

        service, _ = _run(scenario, tmp_path)
        assert service.records_merged == 2

    def test_equivocation_refused_and_connection_dropped(self, tmp_path):
        async def scenario(service, host, port):
            await send_records(
                host, port, [_chunk_frame(seed=1)], key=KEY,
                producer_id="p", m=M,
            )
            digest = service.accumulator.digest()
            async with ServiceSession(
                host, port, key=KEY, producer_id="p", m=M
            ) as session:
                ack = await session.send(_chunk_frame(seed=2), 0)
            return digest, ack

        service, (digest, ack) = _run(scenario, tmp_path)
        assert ack.status == wire.ACK_REFUSED
        assert "equivocation" in ack.detail
        assert service.accumulator.digest() == digest
        assert service.records_refused == 1

    def test_concurrent_duplicate_sends_commit_once(self, tmp_path):
        frame = _chunk_frame(seed=5)

        async def scenario(service, host, port):
            return await asyncio.gather(
                *(
                    send_records(
                        host, port, [frame], key=KEY, producer_id="p", m=M
                    )
                    for _ in range(4)
                )
            )

        service, results = _run(scenario, tmp_path)
        statuses = sorted(acks[0].status for acks in results)
        assert statuses.count(wire.ACK_MERGED) == 1
        assert statuses.count(wire.ACK_DUPLICATE) == 3
        assert service.records_merged == 1
        assert service.accumulator.n == 5


class TestValidation:
    def test_record_for_wrong_round_refused(self, tmp_path):
        async def scenario(service, host, port):
            async with ServiceSession(
                host, port, key=KEY, producer_id="p", m=M
            ) as session:
                bad = wire.dump_chunk(
                    np.zeros((1, 2), dtype=np.uint8), M, round_id=9
                )
                return await session.send(bad, 0)

        service, ack = _run(scenario, tmp_path)
        assert ack.status == wire.ACK_REFUSED
        assert service.records_merged == 0

    def test_non_record_frame_after_handshake_refused(self, tmp_path):
        async def scenario(service, host, port):
            session = ServiceSession(host, port, key=KEY, producer_id="p", m=M)
            await session.connect()
            try:
                # A bare snapshot (not wrapped in a Record) is a protocol
                # error once the session is open.
                session._writer.write(_snapshot_frame())
                await session._writer.drain()
                reply = await session._read("refusal")
                return reply
            finally:
                await session.close()

        service, reply = _run(scenario, tmp_path)
        assert isinstance(reply, wire.Ack)
        assert reply.status == wire.ACK_REFUSED
        assert "expected a record" in reply.detail
        assert service.records_merged == 0

    def test_garbage_record_payload_refused(self, tmp_path):
        async def scenario(service, host, port):
            async with ServiceSession(
                host, port, key=KEY, producer_id="p", m=M
            ) as session:
                corrupt = bytearray(_chunk_frame())
                corrupt[-1] ^= 0xFF
                return await session.send(bytes(corrupt), 0)

        service, ack = _run(scenario, tmp_path)
        assert ack.status == wire.ACK_REFUSED
        assert service.records_merged == 0
        assert service.records_refused == 1


class TestQuotasAndBackpressure:
    def test_oversized_frame_refused(self, tmp_path):
        limits = ServiceLimits(max_frame_bytes=256)

        async def scenario(service, host, port):
            async with ServiceSession(
                host, port, key=KEY, producer_id="p", m=M
            ) as session:
                return await session.send(_chunk_frame(k=2000), 0)

        service, ack = _run(scenario, tmp_path, limits=limits)
        assert ack.status == wire.ACK_REFUSED
        assert "caps frames" in ack.detail
        assert service.accumulator.n == 0

    def test_connection_frame_quota_sheds_but_keeps_acked(self, tmp_path):
        # Handshake costs 2 producer frames; allow 2 records after that.
        limits = ServiceLimits(max_connection_frames=4)

        async def scenario(service, host, port):
            async with ServiceSession(
                host, port, key=KEY, producer_id="p", m=M
            ) as session:
                acks = [
                    await session.send(_chunk_frame(seed=s), s)
                    for s in range(2)
                ]
                over = await session.send(_chunk_frame(seed=9), 9)
            return acks, over

        service, (acks, over) = _run(scenario, tmp_path, limits=limits)
        assert [a.status for a in acks] == [wire.ACK_MERGED] * 2
        assert over.status == wire.ACK_REFUSED
        assert "frame quota" in over.detail
        # Shedding is not a rollback: the two acked records stay merged.
        assert service.records_merged == 2

    def test_connection_byte_quota_enforced(self, tmp_path):
        limits = ServiceLimits(max_connection_bytes=600)

        async def scenario(service, host, port):
            async with ServiceSession(
                host, port, key=KEY, producer_id="p", m=M
            ) as session:
                acks = []
                for seq in range(10):
                    ack = await session.send(_chunk_frame(seed=seq), seq)
                    acks.append(ack)
                    if ack.status == wire.ACK_REFUSED:
                        break
            return acks

        service, acks = _run(scenario, tmp_path, limits=limits)
        assert acks[-1].status == wire.ACK_REFUSED
        assert "byte quota" in acks[-1].detail
        assert service.records_merged == len(acks) - 1

    def test_session_capacity_sheds_when_wait_queue_full(self, tmp_path):
        limits = ServiceLimits(max_sessions=1, max_waiting_sessions=0)

        async def scenario(service, host, port):
            async with ServiceSession(
                host, port, key=KEY, producer_id="first", m=M
            ):
                # The slot is held; a second arrival cannot even wait.
                with pytest.raises(AuthenticationError, match="capacity"):
                    await send_records(
                        host,
                        port,
                        [_chunk_frame()],
                        key=KEY,
                        producer_id="second",
                        m=M,
                    )

        service, _ = _run(scenario, tmp_path, limits=limits)
        assert service.sessions_shed == 1

    def test_stalled_arrivals_proceed_once_a_slot_frees(self, tmp_path):
        limits = ServiceLimits(max_sessions=1, max_waiting_sessions=8)

        async def scenario(service, host, port):
            acks = await asyncio.gather(
                *(
                    send_records(
                        host,
                        port,
                        [_chunk_frame(seed=s)],
                        key=KEY,
                        producer_id=f"p{s}",
                        m=M,
                    )
                    for s in range(5)
                )
            )
            return acks

        service, acks = _run(scenario, tmp_path, limits=limits)
        assert all(batch[0].status == wire.ACK_MERGED for batch in acks)
        assert service.records_merged == 5
        assert service.sessions_shed == 0


class TestLifecycle:
    def test_fresh_start_over_existing_round_refused(self, tmp_path):
        async def scenario(service, host, port):
            await send_records(
                host, port, [_chunk_frame()], key=KEY, producer_id="p", m=M
            )

        _run(scenario, tmp_path)
        with pytest.raises(ValidationError, match="resume"):
            CollectionService(M, key=KEY, store_root=str(tmp_path / "round"))

    def test_close_cancels_stalled_session(self, tmp_path):
        async def main():
            service = CollectionService(
                M, key=KEY, store_root=str(tmp_path / "round")
            )
            host, port = await service.serve()
            session = ServiceSession(host, port, key=KEY, producer_id="p", m=M)
            await session.connect()  # authenticated, then... nothing
            await asyncio.sleep(0.05)
            await asyncio.wait_for(service.close(), timeout=2.0)
            await session.close()
            return service

        service = asyncio.run(main())
        assert service.connections_failed == 1
        assert "closed during" in service.last_connection_error

    def test_stats_shape(self, tmp_path):
        async def scenario(service, host, port):
            await send_records(
                host, port, [_chunk_frame()], key=KEY, producer_id="p", m=M
            )

        service, _ = _run(scenario, tmp_path)
        stats = service.stats()
        assert stats["records_merged"] == 1
        assert stats["producers"] == ["p"]
        assert stats["n"] == service.accumulator.n


class TestTimeouts:
    def test_slow_loris_handshake_is_reaped_and_slot_freed(self, tmp_path):
        """An unauthenticated connection that sends nothing must not hold
        a session slot past the handshake deadline."""
        limits = ServiceLimits(
            max_sessions=1,
            max_waiting_sessions=0,
            handshake_timeout_seconds=0.1,
        )

        async def main():
            service = CollectionService(
                M, key=KEY, store_root=str(tmp_path / "round"), limits=limits
            )
            host, port = await service.serve()
            try:
                # The attacker: connects, says nothing, holds the slot.
                _, loris = await asyncio.open_connection(host, port)
                await asyncio.sleep(0.3)  # past the handshake deadline
                # The slot must be free again for a real producer.
                acks = await send_records(
                    host,
                    port,
                    [_chunk_frame()],
                    key=KEY,
                    producer_id="legit",
                    m=M,
                )
                loris.close()
            finally:
                await service.close()
            return service, acks

        service, acks = asyncio.run(main())
        assert [a.status for a in acks] == [wire.ACK_MERGED]
        assert service.sessions_rejected == 1
        assert service.records_merged == 1

    def test_idle_authenticated_session_is_reaped(self, tmp_path):
        limits = ServiceLimits(
            max_sessions=1,
            max_waiting_sessions=0,
            session_idle_seconds=0.1,
        )

        async def main():
            service = CollectionService(
                M, key=KEY, store_root=str(tmp_path / "round"), limits=limits
            )
            host, port = await service.serve()
            try:
                idler = ServiceSession(
                    host, port, key=KEY, producer_id="idler", m=M
                )
                await idler.connect()  # authenticated, then silence
                await asyncio.sleep(0.3)  # past the idle deadline
                acks = await send_records(
                    host,
                    port,
                    [_chunk_frame()],
                    key=KEY,
                    producer_id="legit",
                    m=M,
                )
                await idler.close()
            finally:
                await service.close()
            return service, acks

        service, acks = asyncio.run(main())
        assert [a.status for a in acks] == [wire.ACK_MERGED]
        assert "idle" in service.last_connection_error


class TestCommitFailureRepair:
    def test_failed_fsync_rolls_the_spill_back(self, tmp_path):
        """An fsync error mid-commit must not leave spilled frames without
        ledger entries — that state would make the round unrecoverable."""

        async def main():
            service = CollectionService(
                M, key=KEY, store_root=str(tmp_path / "round")
            )
            host, port = await service.serve()
            real_sync = service._writer.sync
            service._writer.sync = lambda: (_ for _ in ()).throw(
                OSError("simulated ENOSPC")
            )
            try:
                with pytest.raises(Exception):
                    await send_records(
                        host,
                        port,
                        [_chunk_frame(seed=1)],
                        key=KEY,
                        producer_id="p",
                        m=M,
                    )
                # The failed batch rolled back: spill boundary equals the
                # ledger's committed offset, nothing merged.
                assert service._writer.end_offset == 0
                assert service.ledger.committed_offset == 0
                assert service.accumulator.n == 0
                # Disk "recovers"; the producer's blind resend merges once.
                service._writer.sync = real_sync
                acks = await send_records(
                    host,
                    port,
                    [_chunk_frame(seed=1)],
                    key=KEY,
                    producer_id="p",
                    m=M,
                )
            finally:
                await service.close()
            return service, acks

        service, acks = asyncio.run(main())
        assert [a.status for a in acks] == [wire.ACK_MERGED]
        assert service.records_merged == 1
        # The closed round restarts cleanly — the invariant the rollback
        # exists to protect.
        resumed = CollectionService(
            M, key=KEY, store_root=str(tmp_path / "round"), resume=True
        )
        assert resumed.recovered_records == 1

    def test_close_during_inline_commit_stays_consistent(self, tmp_path):
        """Cancelling handlers mid-commit (service shutdown) must not
        abandon a batch between its fsyncs: close() drains shielded
        commits, and a resume sees a consistent round."""

        async def main():
            service = CollectionService(
                M, key=KEY, store_root=str(tmp_path / "round")
            )
            host, port = await service.serve()
            real_sync = service._writer.sync

            def slow_sync():
                import time

                time.sleep(0.15)  # hold the commit in its fsync window
                real_sync()

            service._writer.sync = slow_sync
            session = ServiceSession(host, port, key=KEY, producer_id="p", m=M)
            await session.connect()
            await session.send_nowait(_chunk_frame(seed=2), 0)
            await asyncio.sleep(0.05)  # let the batch enter its commit
            await asyncio.wait_for(service.close(), timeout=5.0)
            await session.close()
            return service

        asyncio.run(main())
        # Whatever the ack's fate, durable state must be self-consistent:
        # the record is either fully committed (drained shielded commit)
        # or fully absent — resume must never see spill/ledger skew.
        resumed = CollectionService(
            M, key=KEY, store_root=str(tmp_path / "round"), resume=True
        )
        assert resumed.recovered_records in (0, 1)
        assert resumed.accumulator.n == 5 * resumed.recovered_records


class TestPipelineFlowControl:
    def test_large_batch_does_not_deadlock(self, tmp_path):
        """Thousands of records in one send_records call must complete:
        the bounded in-flight window keeps unread acks from filling the
        socket buffers and flow-control-deadlocking both sides."""
        frames = [_chunk_frame(k=1, seed=s) for s in range(3000)]

        async def main():
            service = CollectionService(
                M, key=KEY, store_root=str(tmp_path / "round")
            )
            host, port = await service.serve()
            try:
                acks = await asyncio.wait_for(
                    send_records(
                        host, port, frames, key=KEY, producer_id="bulk", m=M
                    ),
                    timeout=60.0,
                )
            finally:
                await service.close()
            return service, acks

        service, acks = asyncio.run(main())
        assert len(acks) == 3000
        assert all(a.status == wire.ACK_MERGED for a in acks)
        assert service.records_merged == 3000
        assert service.accumulator.n == 3000

    def test_mid_frame_stall_is_dropped_and_slot_freed(self, tmp_path):
        """A producer that sends a header and then stalls mid-payload is
        broken, not idle: the connection drops (staged records are
        simply resent later) and the session slot frees."""
        limits = ServiceLimits(
            max_sessions=1,
            max_waiting_sessions=0,
            session_idle_seconds=0.1,
        )

        async def main():
            service = CollectionService(
                M, key=KEY, store_root=str(tmp_path / "round"), limits=limits
            )
            host, port = await service.serve()
            try:
                staller = ServiceSession(
                    host, port, key=KEY, producer_id="staller", m=M
                )
                await staller.connect()
                # One complete record (staged), then a torn one.
                await staller.send_nowait(_chunk_frame(seed=1), 0)
                record = wire.dumps(
                    wire.Record(
                        m=M, round_id=0, seq=1, frame=_chunk_frame(seed=2)
                    )
                )
                staller._writer.write(record[: wire.HEADER_SIZE + 3])
                await staller._writer.drain()
                await asyncio.sleep(0.4)  # past the payload deadline
                acks = await send_records(
                    host,
                    port,
                    [_chunk_frame(seed=9)],
                    key=KEY,
                    producer_id="legit",
                    m=M,
                )
                await staller.close()
            finally:
                await service.close()
            return service, acks

        service, acks = asyncio.run(main())
        assert [a.status for a in acks] == [wire.ACK_MERGED]
        assert "mid-frame" in service.last_connection_error
