"""The authenticated control plane: verbs, MACs, and per-round limits.

Control operations (status / drain / close-round / retire-round /
open-round / pull-state / route-table / route-update) ride version-4
wire frames, MAC'd under the fleet's control key with the requester's
nonce echoed in the MAC'd reply — a recorded reply can never answer a
later request.  These tests drive every verb against a live service,
pin the refusal paths (wrong key, no control plane, unknown op,
un-hosted round), and cover the per-round :class:`ServiceLimits`
override surface end to end: validation errors must name the offending
round.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import ControlError, ValidationError
from repro.pipeline import CollectionService, ServiceLimits, send_records
from repro.pipeline.collect import wire
from repro.pipeline.service import control_call
from repro.pipeline.service.auth import (
    control_reply_mac,
    control_request_mac,
    derive_round_key,
    verify_control_reply_mac,
    verify_control_request_mac,
)

M = 16
KEY = "0011223344556677"
CONTROL_KEY = "fleet-control-secret"


def _chunk_frame(k=4, seed=0, m=M, round_id=0) -> bytes:
    rng = np.random.default_rng(seed)
    bits = (rng.random((k, m)) < 0.5).astype(np.uint8)
    return wire.dump_chunk(np.packbits(bits, axis=1), m, round_id=round_id)


def _run(scenario, tmp_path, **service_kwargs):
    async def main():
        service = CollectionService(
            M,
            key=KEY,
            store_root=str(tmp_path / "round"),
            control_key=CONTROL_KEY,
            **service_kwargs,
        )
        host, port = await service.serve()
        try:
            result = await scenario(service, host, port)
        finally:
            await service.close()
        return service, result

    return asyncio.run(main())


class TestControlMacs:
    REQUEST = dict(
        op="drain", nonce=bytes(range(16)), body={"round_id": 2}
    )
    KEYB = derive_round_key(CONTROL_KEY)

    def test_request_mac_round_trips(self):
        mac = control_request_mac(self.KEYB, **self.REQUEST)
        assert verify_control_request_mac(self.KEYB, mac, **self.REQUEST)

    def test_reply_mac_is_role_separated(self):
        """A request MAC must never verify as a reply MAC — captured
        request frames cannot be replayed as authenticated answers."""
        request_mac = control_request_mac(self.KEYB, **self.REQUEST)
        assert not verify_control_reply_mac(
            self.KEYB,
            request_mac,
            status=wire.CONTROL_OK,
            nonce=self.REQUEST["nonce"],
            body=self.REQUEST["body"],
            attachment=b"",
        )

    def test_reply_mac_binds_the_attachment(self):
        mac = control_reply_mac(
            self.KEYB,
            status=wire.CONTROL_OK,
            nonce=bytes(16),
            body={},
            attachment=b"snapshot-bytes",
        )
        assert not verify_control_reply_mac(
            self.KEYB,
            mac,
            status=wire.CONTROL_OK,
            nonce=bytes(16),
            body={},
            attachment=b"tampered-bytes",
        )

    def test_body_key_order_is_irrelevant(self):
        mac = control_request_mac(
            self.KEYB, op="status", nonce=bytes(16), body={"a": 1, "b": 2}
        )
        assert verify_control_request_mac(
            self.KEYB, mac, op="status", nonce=bytes(16), body={"b": 2, "a": 1}
        )


class TestControlVerbs:
    def test_status_reports_service_and_round(self, tmp_path):
        async def scenario(service, host, port):
            stats, _ = await control_call(
                host, port, key=CONTROL_KEY, op="status"
            )
            round_stats, _ = await control_call(
                host, port, key=CONTROL_KEY, op="status", body={"round_id": 0}
            )
            return stats, round_stats

        _, (stats, round_stats) = _run(scenario, tmp_path)
        assert stats["records_merged"] == 0
        assert round_stats["phase"] == "serving"
        assert round_stats["m"] == M

    def test_drain_close_retire_drive_the_lifecycle(self, tmp_path):
        async def scenario(service, host, port):
            phases = []
            for op in ("drain", "close-round", "retire-round"):
                body, _ = await control_call(
                    host, port, key=CONTROL_KEY, op=op, body={"round_id": 0}
                )
                phases.append(body.get("phase"))
            return phases

        service, phases = _run(scenario, tmp_path)
        assert phases == ["draining", "closed", "retired"]
        assert service.registry.get(0) is None

    def test_drained_round_refuses_sessions(self, tmp_path):
        from repro.exceptions import AuthenticationError

        async def scenario(service, host, port):
            await control_call(
                host, port, key=CONTROL_KEY, op="drain", body={"round_id": 0}
            )
            with pytest.raises(AuthenticationError, match="draining"):
                await send_records(
                    host,
                    port,
                    [_chunk_frame()],
                    key=KEY,
                    producer_id="late-producer",
                    m=M,
                )

        _run(scenario, tmp_path)

    def test_pull_state_ships_a_digest_verified_snapshot(self, tmp_path):
        async def scenario(service, host, port):
            await send_records(
                host,
                port,
                [_chunk_frame()],
                key=KEY,
                producer_id="edge-1",
                m=M,
            )
            body, attachment = await control_call(
                host, port, key=CONTROL_KEY, op="pull-state",
                body={"round_id": 0},
            )
            pulled = wire.loads(attachment)
            assert isinstance(pulled, type(service.accumulator))
            assert pulled.digest() == body["digest"]
            assert pulled.digest() == service.accumulator.digest()
            assert body["records_merged"] == 1

        _run(scenario, tmp_path)

    def test_open_round_registers_a_new_round(self, tmp_path):
        async def scenario(service, host, port):
            token = bytes(range(16)).hex()
            body, _ = await control_call(
                host, port, key=CONTROL_KEY, op="open-round",
                body={"m": 32, "round_id": 9, "token": token},
            )
            assert body["phase"] == "serving"
            assert service.registry.get(9).m == 32
            assert service.registry.get(9).token == bytes(range(16))

        _run(scenario, tmp_path)

    def test_route_update_and_route_table_round_trip(self, tmp_path):
        from repro.pipeline.service import RoutingTable, ShardInfo

        async def scenario(service, host, port):
            table = RoutingTable(
                [ShardInfo("alpha", "127.0.0.1", 7001)], epoch=5
            )
            await control_call(
                host, port, key=CONTROL_KEY, op="route-update",
                body={"table": table.to_payload()},
            )
            body, _ = await control_call(
                host, port, key=CONTROL_KEY, op="route-table"
            )
            clone = RoutingTable.from_payload(body["table"])
            assert clone.epoch == 5 and clone.names() == ["alpha"]
            # Anti-rollback: an older epoch is refused.
            with pytest.raises(ControlError, match="epoch"):
                await control_call(
                    host, port, key=CONTROL_KEY, op="route-update",
                    body={"table": RoutingTable(
                        [ShardInfo("alpha", "127.0.0.1", 7001)], epoch=4
                    ).to_payload()},
                )

        _run(scenario, tmp_path)


class TestRoutedTableRefresh:
    """A routed sender holding a stale table mid-rebalance: with the
    control key it refreshes via ``route-table`` instead of failing."""

    def _services(self, tmp_path):
        alpha = CollectionService(
            M,
            key=KEY,
            store_root=str(tmp_path / "alpha"),
            round_id=1,
            control_key=CONTROL_KEY,
            shard_name="alpha",
        )
        beta = CollectionService(
            M,
            key=KEY,
            store_root=str(tmp_path / "beta"),
            round_id=1,
            control_key=CONTROL_KEY,
            shard_name="beta",
        )
        return alpha, beta

    def test_dead_owner_address_refreshes_and_lands(self, tmp_path):
        """Mid-rebalance a shard was re-addressed; the stale table's
        owner address is dead.  Regression: the routed sender used to
        retry the same table and surface the connection error — now one
        ``route-table`` refresh finds the live address."""
        from repro.pipeline.service import RoutingTable, ShardInfo
        from repro.pipeline.service.client import send_records_routed

        async def main():
            alpha, beta = self._services(tmp_path)
            ha, pa = await alpha.serve()
            hb, pb = await beta.serve()
            try:
                # Find a port nobody is listening on for the stale entry.
                import socket

                probe = socket.socket()
                probe.bind(("127.0.0.1", 0))
                dead_port = probe.getsockname()[1]
                probe.close()

                stale = RoutingTable(
                    [
                        ShardInfo("alpha", ha, pa),
                        ShardInfo("beta", hb, dead_port),
                    ],
                    epoch=1,
                )
                fresh = RoutingTable(
                    [
                        ShardInfo("alpha", ha, pa),
                        ShardInfo("beta", hb, pb),
                    ],
                    epoch=2,
                )
                alpha.install_routing(fresh)
                beta.install_routing(fresh)
                producer = next(
                    f"p-{i}"
                    for i in range(200)
                    if fresh.owner(f"p-{i}").name == "beta"
                )
                frames = [_chunk_frame(seed=7, round_id=1)]

                # Without the control key the dead address stays fatal.
                with pytest.raises((ConnectionError, OSError)):
                    await send_records_routed(
                        stale,
                        frames,
                        key=KEY,
                        producer_id=producer,
                        m=M,
                        round_id=1,
                    )

                acks = await send_records_routed(
                    stale,
                    frames,
                    key=KEY,
                    producer_id=producer,
                    m=M,
                    round_id=1,
                    control_key=CONTROL_KEY,
                )
                assert [a.status for a in acks] == [wire.ACK_MERGED]
                assert beta.records_merged == 1
            finally:
                await alpha.close()
                await beta.close()

        asyncio.run(main())

    def test_refresh_helper_picks_the_newest_epoch(self, tmp_path):
        """Mid-rebalance the shards legitimately disagree; the refresh
        must trust the maximum epoch, not the first answer."""
        from repro.pipeline.service import RoutingTable, ShardInfo
        from repro.pipeline.service.client import refresh_routing_table

        async def main():
            alpha, beta = self._services(tmp_path)
            ha, pa = await alpha.serve()
            hb, pb = await beta.serve()
            try:
                a_info = ShardInfo("alpha", ha, pa)
                b_info = ShardInfo("beta", hb, pb)
                stale = RoutingTable([a_info, b_info], epoch=1)
                alpha.install_routing(RoutingTable([a_info, b_info], epoch=2))
                beta.install_routing(RoutingTable([a_info, b_info], epoch=5))

                fresh = await refresh_routing_table(
                    stale, control_key=CONTROL_KEY
                )
                assert fresh is not None and fresh.epoch == 5

                # Already-newest tables find nothing newer.
                assert (
                    await refresh_routing_table(
                        RoutingTable([a_info, b_info], epoch=9),
                        control_key=CONTROL_KEY,
                    )
                    is None
                )
            finally:
                await alpha.close()
                await beta.close()

        asyncio.run(main())


class TestControlRefusals:
    def test_wrong_control_key_is_refused(self, tmp_path):
        async def scenario(service, host, port):
            with pytest.raises(ControlError):
                await control_call(
                    host, port, key="wrong-control-key", op="status"
                )

        service, _ = _run(scenario, tmp_path)
        assert service.records_merged == 0

    def test_service_without_control_plane_refuses(self, tmp_path):
        async def main():
            service = CollectionService(
                M, key=KEY, store_root=str(tmp_path / "plain")
            )
            host, port = await service.serve()
            try:
                with pytest.raises(ControlError, match="not enabled"):
                    await control_call(
                        host, port, key=CONTROL_KEY, op="status"
                    )
            finally:
                await service.close()

        asyncio.run(main())

    def test_unknown_op_names_the_vocabulary(self, tmp_path):
        async def scenario(service, host, port):
            with pytest.raises(ControlError, match="self-destruct"):
                await control_call(
                    host, port, key=CONTROL_KEY, op="self-destruct"
                )

        _run(scenario, tmp_path)

    def test_unhosted_round_is_a_loud_error_reply(self, tmp_path):
        async def scenario(service, host, port):
            with pytest.raises(ControlError, match="99"):
                await control_call(
                    host, port, key=CONTROL_KEY, op="drain",
                    body={"round_id": 99},
                )

        _run(scenario, tmp_path)


class TestServiceLimitsOverrides:
    def test_overrides_replace_named_fields_only(self):
        limits = ServiceLimits()
        tuned = limits.with_overrides({"max_sessions": 3})
        assert tuned.max_sessions == 3
        assert tuned.max_frame_bytes == limits.max_frame_bytes

    def test_unknown_field_is_loud(self):
        with pytest.raises(ValueError, match="no_such_knob"):
            ServiceLimits().with_overrides({"no_such_knob": 1})

    def test_bad_value_is_revalidated(self):
        with pytest.raises((ValidationError, ValueError)):
            ServiceLimits().with_overrides({"max_sessions": 0})

    def test_add_round_error_names_the_round(self, tmp_path):
        async def main():
            service = CollectionService(
                rounds=[{"m": M, "round_id": 0}],
                key=KEY,
                store_root=str(tmp_path / "svc"),
                control_key=CONTROL_KEY,
            )
            try:
                with pytest.raises(
                    ValidationError, match=r"round 7: invalid limits override"
                ):
                    service.add_round(M, 7, limits={"bogus_field": 1})
            finally:
                await service.close()

        asyncio.run(main())

    def test_open_round_op_applies_overrides(self, tmp_path):
        async def scenario(service, host, port):
            await control_call(
                host, port, key=CONTROL_KEY, op="open-round",
                body={
                    "m": M,
                    "round_id": 3,
                    "limits": {"max_producer_bytes": 1024},
                },
            )
            assert service.registry.get(3).limits.max_producer_bytes == 1024
            with pytest.raises(ControlError, match="round 4"):
                await control_call(
                    host, port, key=CONTROL_KEY, op="open-round",
                    body={"m": M, "round_id": 4, "limits": {"nope": 1}},
                )

        _run(scenario, tmp_path)
