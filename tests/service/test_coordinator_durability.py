"""Coordinator durability: journal, resume, reconcile, announcements.

The in-process half of the coordinator crash story (the cross-process
SIGKILL version lives in ``tests/faults``): a coordinator given a
journal writes every durable decision before acting, a "crashed"
coordinator (the object is simply abandoned, its journal file left
behind) resumes from the file alone — round table, tokens, lifecycle
phases, fleet addresses, half-finished migrations — and its
``reconcile`` is idempotent against shards that never noticed anything.
Also covers the coordinator's own control endpoint: ``join-fleet``
growing the ring under a live round and ``hello-coordinator``
re-announcing a restarted shard.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.pipeline import CollectionService
from repro.pipeline.collect import wire
from repro.pipeline.service import (
    CoordinatorJournal,
    RoundCoordinator,
    control_call,
    send_records_routed,
)
from repro.pipeline.service.lifecycle import CLOSED, SERVING

M = 16
ROUND = 4
KEY = "0011223344556677"
CONTROL_KEY = "fleet-control-secret"
PRODUCERS = [f"producer-{i:02d}" for i in range(12)]


def _chunk_frame(seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    bits = (rng.random((4, M)) < 0.5).astype(np.uint8)
    return wire.dump_chunk(np.packbits(bits, axis=1), M, round_id=ROUND)


class _Fleet:
    """N bare in-process shard services (control plane only at first)."""

    def __init__(self, tmp_path, names):
        self.tmp_path = tmp_path
        self.names = list(names)
        self.services: dict[str, CollectionService] = {}
        self.infos = []

    async def __aenter__(self):
        from repro.pipeline.service import ShardInfo

        for name in self.names:
            service = CollectionService(
                rounds=[],
                key=KEY,
                store_root=str(self.tmp_path / name),
                control_key=CONTROL_KEY,
                shard_name=name,
            )
            host, port = await service.serve()
            self.services[name] = service
            self.infos.append(ShardInfo(name, host, port))
        return self

    async def __aexit__(self, *exc):
        for service in self.services.values():
            await service.close()

    async def add(self, name):
        from repro.pipeline.service import ShardInfo

        service = CollectionService(
            rounds=[],
            key=KEY,
            store_root=str(self.tmp_path / name),
            control_key=CONTROL_KEY,
            shard_name=name,
        )
        host, port = await service.serve()
        self.services[name] = service
        info = ShardInfo(name, host, port)
        self.infos.append(info)
        return info

    def total_merged(self) -> int:
        return sum(
            service.records_merged for service in self.services.values()
        )


def _journal_path(tmp_path) -> str:
    return str(tmp_path / "coordinator.journal")


async def _seed_round(coordinator, table):
    await coordinator.push_routing()
    await coordinator.register_round(M, ROUND)
    for index, producer in enumerate(PRODUCERS):
        await send_records_routed(
            table,
            [_chunk_frame(index)],
            key=KEY,
            producer_id=producer,
            m=M,
            round_id=ROUND,
        )


class TestResume:
    def test_resume_rebuilds_rounds_tokens_and_fleet(self, tmp_path):
        async def scenario():
            async with _Fleet(tmp_path, ["alpha", "beta"]) as fleet:
                coordinator = RoundCoordinator(
                    fleet.infos,
                    control_key=CONTROL_KEY,
                    journal=_journal_path(tmp_path),
                )
                await _seed_round(coordinator, coordinator.table)
                token = coordinator.rounds[ROUND].token
                # "kill -9": the object is abandoned, nothing closed.
                del coordinator

                resumed = RoundCoordinator.resume(
                    _journal_path(tmp_path), control_key=CONTROL_KEY
                )
                assert [s.name for s in resumed.table.shards()] == [
                    "alpha",
                    "beta",
                ]
                assert resumed.rounds[ROUND].token == token
                assert resumed.rounds[ROUND].m == M
                assert resumed.phase(ROUND) == SERVING

                summary = await resumed.reconcile()
                assert summary == {
                    "rounds": [ROUND],
                    "migration_rerun": False,
                }
                # The resumed coordinator owns the round for real:
                # lifecycle verbs work and keep journaling.
                await resumed.drain(ROUND)
                await resumed.close_round(ROUND)
                assert fleet.total_merged() == len(PRODUCERS)
                await resumed.close()

                # A second resume replays the post-crash transitions too.
                final = RoundCoordinator.resume(
                    _journal_path(tmp_path), control_key=CONTROL_KEY
                )
                assert final.phase(ROUND) == CLOSED
                await final.close()

        asyncio.run(scenario())

    def test_fresh_constructor_refuses_a_used_journal(self, tmp_path):
        journal = CoordinatorJournal(_journal_path(tmp_path))
        journal.load()
        journal.append({"kind": "fleet", "epoch": 1, "replicas": 64,
                        "shards": {"alpha": ["127.0.0.1", 7001]}})
        journal.close()
        from repro.pipeline.service import ShardInfo

        with pytest.raises(ValidationError, match="resume"):
            RoundCoordinator(
                [ShardInfo("alpha", "127.0.0.1", 7001)],
                control_key=CONTROL_KEY,
                journal=_journal_path(tmp_path),
            )

    def test_resume_without_fleet_snapshot_is_loud(self, tmp_path):
        journal = CoordinatorJournal(_journal_path(tmp_path))
        journal.load()
        journal.close()
        with pytest.raises(ValidationError, match="no fleet snapshot"):
            RoundCoordinator.resume(
                _journal_path(tmp_path), control_key=CONTROL_KEY
            )

    def test_retired_rounds_stay_forgotten_on_replay(self, tmp_path):
        async def scenario():
            async with _Fleet(tmp_path, ["alpha"]) as fleet:
                coordinator = RoundCoordinator(
                    fleet.infos,
                    control_key=CONTROL_KEY,
                    journal=_journal_path(tmp_path),
                )
                await coordinator.push_routing()
                await coordinator.register_round(M, ROUND)
                await coordinator.drain(ROUND)
                await coordinator.close_round(ROUND)
                await coordinator.retire(ROUND)

                resumed = RoundCoordinator.resume(
                    _journal_path(tmp_path), control_key=CONTROL_KEY
                )
                assert resumed.rounds == {}
                summary = await resumed.reconcile()
                assert summary["rounds"] == []
                await resumed.close()

        asyncio.run(scenario())

    def test_interrupted_migration_is_rerun_on_reconcile(self, tmp_path):
        """Crash between ``migrate pending`` and ``done``: the resumed
        coordinator finishes the transfer, records intact."""

        async def scenario():
            async with _Fleet(tmp_path, ["alpha", "beta"]) as fleet:
                journal_path = _journal_path(tmp_path)
                coordinator = RoundCoordinator(
                    fleet.infos,
                    control_key=CONTROL_KEY,
                    journal=journal_path,
                )
                await _seed_round(coordinator, coordinator.table)
                merged_before = fleet.total_merged()
                gamma = await fleet.add("gamma")

                # Run the full join (opens the round on gamma, then
                # migrates), then forge the crash point by truncating
                # the journal back past the ``done`` marker — the file
                # is exactly what a coordinator killed between the
                # record transfer and its final fsync leaves behind.
                await coordinator.join_shard(gamma)
                events = coordinator.journal.events()
                assert events[-1]["kind"] == "migrate"
                assert events[-1]["state"] == "done"
                del coordinator
                rewound = CoordinatorJournal(str(tmp_path / "rewound"))
                rewound.load()
                for event in events[:-1]:
                    rewound.append(event)
                rewound.close()

                resumed = RoundCoordinator.resume(
                    str(tmp_path / "rewound"), control_key=CONTROL_KEY
                )
                assert resumed.pending_migration is not None
                summary = await resumed.reconcile()
                assert summary["migration_rerun"] is True
                assert resumed.pending_migration is None

                # Zero loss, zero double-count, and gamma really owns
                # its slice now.
                assert fleet.total_merged() == merged_before
                assert fleet.services["gamma"].records_merged > 0
                await resumed.drain(ROUND)
                await resumed.close_round(ROUND)
                await resumed.close()

        asyncio.run(scenario())


class TestAnnouncements:
    def test_join_fleet_grows_the_ring_and_moves_records(self, tmp_path):
        async def scenario():
            async with _Fleet(tmp_path, ["alpha", "beta"]) as fleet:
                coordinator = RoundCoordinator(
                    fleet.infos,
                    control_key=CONTROL_KEY,
                    journal=_journal_path(tmp_path),
                )
                await _seed_round(coordinator, coordinator.table)
                merged_before = fleet.total_merged()
                host, port = await coordinator.serve()

                gamma = await fleet.add("gamma")
                reply, _ = await control_call(
                    host,
                    port,
                    key=CONTROL_KEY,
                    op="join-fleet",
                    body={
                        "name": "gamma",
                        "host": gamma.host,
                        "port": gamma.port,
                    },
                )
                assert reply["joined"] is True
                assert reply["epoch"] == coordinator.table.epoch
                assert "gamma" in coordinator.table.names()
                # Records followed their producers onto the newcomer.
                assert fleet.total_merged() == merged_before
                assert fleet.services["gamma"].records_merged > 0
                assert (
                    fleet.services["gamma"].records_merged
                    == reply["installed"]
                )

                # The moved producers' blind resends dedup on gamma.
                for index, producer in enumerate(PRODUCERS):
                    acks = await send_records_routed(
                        coordinator.table,
                        [_chunk_frame(index)],
                        key=KEY,
                        producer_id=producer,
                        m=M,
                        round_id=ROUND,
                        raise_on_refusal=False,
                    )
                    assert [a.status for a in acks] == [wire.ACK_DUPLICATE]
                await coordinator.close()

        asyncio.run(scenario())

    def test_hello_coordinator_readdresses_a_known_shard(self, tmp_path):
        async def scenario():
            async with _Fleet(tmp_path, ["alpha", "beta"]) as fleet:
                coordinator = RoundCoordinator(
                    fleet.infos,
                    control_key=CONTROL_KEY,
                )
                await _seed_round(coordinator, coordinator.table)
                host, port = await coordinator.serve()

                # "Restart" beta: same name, same store, new socket.
                beta = fleet.services.pop("beta")
                await beta.close()
                rebound = CollectionService(
                    rounds=[],
                    key=KEY,
                    store_root=str(tmp_path / "beta"),
                    control_key=CONTROL_KEY,
                    shard_name="beta",
                    resume=True,
                )
                new_host, new_port = await rebound.serve()
                fleet.services["beta"] = rebound

                reply, _ = await control_call(
                    host,
                    port,
                    key=CONTROL_KEY,
                    op="hello-coordinator",
                    body={
                        "name": "beta",
                        "host": new_host,
                        "port": new_port,
                    },
                )
                assert reply["known"] is True
                assert reply["rounds"] == [ROUND]
                new_address = {
                    s.name: (s.host, s.port)
                    for s in coordinator.table.shards()
                }
                assert new_address["beta"] == (new_host, new_port)
                # The recovered shard serves its old slice: every
                # producer's blind resend is a duplicate somewhere.
                for index, producer in enumerate(PRODUCERS):
                    acks = await send_records_routed(
                        coordinator.table,
                        [_chunk_frame(index)],
                        key=KEY,
                        producer_id=producer,
                        m=M,
                        round_id=ROUND,
                        raise_on_refusal=False,
                    )
                    assert [a.status for a in acks] == [wire.ACK_DUPLICATE]
                unknown, _ = await control_call(
                    host,
                    port,
                    key=CONTROL_KEY,
                    op="hello-coordinator",
                    body={"name": "nobody", "host": "127.0.0.1", "port": 1},
                )
                assert unknown["known"] is False
                await coordinator.close()

        asyncio.run(scenario())
