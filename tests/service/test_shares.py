"""Behavioral tests for the split-trust share layer.

Four stories, bottom up:

* :class:`BlindedAccumulator` is role-pinned party state — it absorbs
  only its own role's frames, merges only like state, and its snapshot
  frame round-trips exactly;
* the membership digest is an order-independent additive fingerprint of
  the committed ``(producer, seq)`` set, with loud decode errors;
* the transcript helpers (:func:`derive_share_secret`,
  :func:`keeper_party_label`) are deterministic and domain-separated —
  every keeper, producer, round, and geometry gets its own stream;
* a real 1-collector + 2-keeper deployment over sockets: the combined
  decode is **bit-identical to the direct unblinded tally** for chunks
  drawn from *both* samplers, blind resends ack as duplicates on every
  party, and the parties' membership digests agree.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import OptimizedUnaryEncoding
from repro.exceptions import AuthenticationError, ValidationError
from repro.kernels import BITEXACT, FAST
from repro.pipeline import CollectionService, CountAccumulator
from repro.pipeline.collect import wire
from repro.pipeline.engine import iter_report_chunks
from repro.pipeline.service import (
    MODE_KEEPER,
    ROLE_BLINDED,
    ROLE_KEEPER,
    BlindedAccumulator,
    combine_accumulators,
    derive_share_secret,
    keeper_party_label,
    send_records,
    send_split_trust,
)
from repro.pipeline.service.shares import (
    add_member,
    blind_report_chunk,
    decode_member_digest,
    empty_member_digest,
    encode_member_digest,
    member_stamp,
)

M = 16
COLLECTOR_KEY = "collector-key-0011223344556677"
KEEPER_KEYS = {
    "keeper-a": "keeper-a-key-8899aabbccddeeff",
    "keeper-b": "keeper-b-key-ffeeddccbbaa9988",
}


def _packed(k=5, seed=0, m=M):
    rng = np.random.default_rng(seed)
    bits = (rng.random((k, m)) < 0.5).astype(np.uint8)
    return np.packbits(bits, axis=1), bits


class TestBlindedAccumulator:
    def test_rejects_unknown_role(self):
        with pytest.raises(ValidationError, match="role"):
            BlindedAccumulator(M, role="auditor")

    def test_absorbs_only_its_own_roles_frames(self):
        blinded = BlindedAccumulator(M, role=ROLE_BLINDED)
        keeper = BlindedAccumulator(M, role=ROLE_KEEPER)
        words = np.arange(M, dtype=np.uint64)
        counts_frame = wire.BlindedCounts(m=M, round_id=0, n=3, words=words)
        share_frame = wire.BlindingShare(m=M, round_id=0, n=3, words=words)
        blinded.absorb_frame(counts_frame)
        keeper.absorb_frame(share_frame)
        with pytest.raises(ValidationError):
            blinded.absorb_frame(share_frame)
        with pytest.raises(ValidationError):
            keeper.absorb_frame(counts_frame)
        assert blinded.n == keeper.n == 3

    def test_absorb_checks_geometry_and_round(self):
        acc = BlindedAccumulator(M, round_id=2)
        with pytest.raises(ValidationError):
            acc.absorb_frame(
                wire.BlindedCounts(
                    m=M + 1,
                    round_id=2,
                    n=1,
                    words=np.zeros(M + 1, dtype=np.uint64),
                )
            )
        with pytest.raises(ValidationError):
            acc.absorb_frame(
                wire.BlindedCounts(
                    m=M, round_id=3, n=1, words=np.zeros(M, dtype=np.uint64)
                )
            )
        assert acc.n == 0

    def test_accumulates_mod_2_64(self):
        acc = BlindedAccumulator(4)
        big = np.full(4, 2**64 - 1, dtype=np.uint64)
        acc.absorb_frame(wire.BlindedCounts(m=4, round_id=0, n=1, words=big))
        acc.absorb_frame(
            wire.BlindedCounts(
                m=4, round_id=0, n=2, words=np.full(4, 3, dtype=np.uint64)
            )
        )
        assert acc.n == 3
        assert acc.words().tolist() == [2, 2, 2, 2]  # wrapped, loudly exact

    def test_state_frame_round_trips(self):
        for role in (ROLE_BLINDED, ROLE_KEEPER):
            acc = BlindedAccumulator(M, round_id=5, role=role)
            frame_cls = (
                wire.BlindedCounts if role == ROLE_BLINDED else (
                    wire.BlindingShare
                )
            )
            acc.absorb_frame(
                frame_cls(
                    m=M,
                    round_id=5,
                    n=7,
                    words=np.arange(M, dtype=np.uint64) * np.uint64(3),
                )
            )
            resurrected = BlindedAccumulator.from_frame(
                wire.loads(wire.dumps(acc.state_frame()))
            )
            assert resurrected.role == role
            assert resurrected.n == acc.n
            assert resurrected.digest() == acc.digest()
            assert np.array_equal(resurrected.words(), acc.words())

    def test_digest_separates_roles(self):
        # Identical words, n, and geometry — different party: a keeper
        # state can never masquerade as the blinded collector's.
        blinded = BlindedAccumulator(M, role=ROLE_BLINDED)
        keeper = BlindedAccumulator(M, role=ROLE_KEEPER)
        assert blinded.digest() != keeper.digest()

    def test_merge_requires_same_role_and_geometry(self):
        a = BlindedAccumulator(M, role=ROLE_KEEPER)
        with pytest.raises(ValidationError):
            a.merge(BlindedAccumulator(M, role=ROLE_BLINDED))
        with pytest.raises(ValidationError):
            a.merge(BlindedAccumulator(M + 1, role=ROLE_KEEPER))


class TestMembershipDigest:
    def test_order_independent_and_duplicate_sensitive(self):
        records = [("edge-1", 0), ("edge-1", 1), ("edge-2", 0)]
        forward = empty_member_digest()
        backward = empty_member_digest()
        for pid, seq in records:
            add_member(forward, pid, seq)
        for pid, seq in reversed(records):
            add_member(backward, pid, seq)
        assert np.array_equal(forward, backward)
        add_member(backward, "edge-1", 0)  # replaying a commit changes it
        assert not np.array_equal(forward, backward)

    def test_stamp_distinguishes_producer_and_seq(self):
        stamps = {
            bytes(member_stamp(pid, seq).tobytes())
            for pid, seq in (
                ("p", 0), ("p", 1), ("q", 0), ("p1", 0), ("p", 2**40)
            )
        }
        assert len(stamps) == 5

    def test_encode_decode_round_trip(self):
        digest = empty_member_digest()
        add_member(digest, "tally-node-7", 9)
        text = encode_member_digest(digest)
        assert np.array_equal(decode_member_digest(text), digest)

    def test_decode_refuses_malformed_text(self):
        with pytest.raises(ValidationError):
            decode_member_digest("not-hex")
        with pytest.raises(ValidationError):
            decode_member_digest("abcd")  # wrong length


class TestTranscriptHelpers:
    def test_share_secret_is_deterministic_and_domain_separated(self):
        base = dict(m=M, round_id=2, producer_id="p", keeper_id="keeper-a")
        key = b"producer-key-at-keeper-a"
        secret = derive_share_secret(key, **base)
        assert secret == derive_share_secret(key, **base)
        for tweak in (
            {"m": M + 1},
            {"round_id": 3},
            {"producer_id": "q"},
            {"keeper_id": "keeper-b"},
        ):
            assert secret != derive_share_secret(key, **{**base, **tweak})
        assert secret != derive_share_secret(b"another-producer-key", **base)

    def test_keeper_party_label_is_deterministic_per_keeper(self):
        a = keeper_party_label("keeper-a")
        assert a == keeper_party_label("keeper-a")
        assert a != keeper_party_label("keeper-b")
        with pytest.raises(ValidationError):
            keeper_party_label("")

    def test_blind_report_chunk_needs_secrets(self):
        packed, _ = _packed()
        with pytest.raises(ValidationError, match="keeper"):
            blind_report_chunk(packed, m=M, round_id=0, seq=0, secrets={})


class TestServiceModeValidation:
    def test_keeper_mode_requires_keeper_id(self, tmp_path):
        with pytest.raises(ValidationError, match="keeper"):
            CollectionService(
                M,
                key=COLLECTOR_KEY,
                store_root=str(tmp_path / "r"),
                mode=MODE_KEEPER,
            )

    def test_unknown_mode_is_refused(self, tmp_path):
        with pytest.raises(ValidationError, match="mode"):
            CollectionService(
                M,
                key=COLLECTOR_KEY,
                store_root=str(tmp_path / "r"),
                mode="plaintext",
            )

    def test_collect_mode_rejects_keeper_id(self, tmp_path):
        with pytest.raises(ValidationError, match="keeper"):
            CollectionService(
                M,
                key=COLLECTOR_KEY,
                store_root=str(tmp_path / "r"),
                keeper_id="keeper-a",
            )


class _Deployment:
    """One blinded collector plus len(KEEPER_KEYS) keepers, in-process."""

    def __init__(self, tmp_path):
        self.tmp_path = tmp_path
        self.collector = None
        self.keepers = {}
        self.addresses = {}

    async def __aenter__(self):
        self.collector = CollectionService(
            M,
            key=COLLECTOR_KEY,
            store_root=str(self.tmp_path / "collector"),
            mode="blinded",
        )
        self.collector_address = await self.collector.serve()
        for keeper_id, key in KEEPER_KEYS.items():
            keeper = CollectionService(
                M,
                key=key,
                store_root=str(self.tmp_path / keeper_id),
                mode=MODE_KEEPER,
                keeper_id=keeper_id,
            )
            self.keepers[keeper_id] = keeper
            self.addresses[keeper_id] = await keeper.serve()
        return self

    async def __aexit__(self, *exc):
        await self.collector.close()
        for keeper in self.keepers.values():
            await keeper.close()

    async def ship(self, chunks, producer_id="edge-1", start_seq=0):
        return await send_split_trust(
            self.collector_address,
            self.addresses,
            chunks,
            collector_key=COLLECTOR_KEY,
            keeper_keys=KEEPER_KEYS,
            producer_id=producer_id,
            m=M,
            start_seq=start_seq,
        )

    def combine(self) -> CountAccumulator:
        return combine_accumulators(
            self.collector.accumulator,
            [keeper.accumulator for keeper in self.keepers.values()],
        )


class TestSplitTrustEndToEnd:
    @pytest.mark.parametrize("sampler", [BITEXACT, FAST], ids=["bitexact", "fast"])
    def test_combined_decode_bit_identical_to_direct_tally(
        self, tmp_path, sampler
    ):
        """The exactness contract, per sampler: blinding costs nothing."""
        mechanism = OptimizedUnaryEncoding(1.1, M)
        items = np.arange(200) % M
        chunks = list(
            iter_report_chunks(
                mechanism,
                items,
                chunk_size=64,
                rng=sampler.make_generator(7),
                packed=True,
                sampler=sampler,
            )
        )
        direct = CountAccumulator(M)
        for chunk in chunks:
            direct.add_packed_reports(chunk)

        async def scenario():
            async with _Deployment(tmp_path) as deployment:
                acks = await deployment.ship(chunks)
                return deployment.combine(), acks

        combined, acks = asyncio.run(scenario())
        assert all(
            ack.status == wire.ACK_MERGED for ack in acks["collector"]
        )
        assert combined.n == direct.n == len(items)
        assert np.array_equal(combined.counts(), direct.counts())
        assert combined.digest() == direct.digest()

    def test_blind_resend_is_duplicate_on_every_party(self, tmp_path):
        packed, bits = _packed(k=9, seed=3)

        async def scenario():
            async with _Deployment(tmp_path) as deployment:
                first = await deployment.ship([packed])
                again = await deployment.ship([packed])
                return deployment.combine(), first, again, {
                    "collector": deployment.collector.records_merged,
                    **{
                        kid: keeper.records_merged
                        for kid, keeper in deployment.keepers.items()
                    },
                }

        combined, first, again, merged = asyncio.run(scenario())
        assert [a.status for a in first["collector"]] == [wire.ACK_MERGED]
        assert [a.status for a in again["collector"]] == [wire.ACK_DUPLICATE]
        for keeper_id in KEEPER_KEYS:
            assert [a.status for a in first["keepers"][keeper_id]] == [
                wire.ACK_MERGED
            ]
            assert [a.status for a in again["keepers"][keeper_id]] == [
                wire.ACK_DUPLICATE
            ]
        assert merged == {"collector": 1, "keeper-a": 1, "keeper-b": 1}
        assert np.array_equal(
            combined.counts(), bits.sum(axis=0).astype(np.int64)
        )

    def test_membership_digests_agree_across_parties(self, tmp_path):
        chunks = [_packed(k=4, seed=s)[0] for s in range(3)]

        async def scenario():
            async with _Deployment(tmp_path) as deployment:
                await deployment.ship(chunks, producer_id="edge-1")
                await deployment.ship(
                    chunks[:1], producer_id="edge-2", start_seq=0
                )
                digests = {
                    "collector": encode_member_digest(
                        deployment.collector._single_round().member_digest
                    ),
                }
                for kid, keeper in deployment.keepers.items():
                    digests[kid] = encode_member_digest(
                        keeper._single_round().member_digest
                    )
                return digests

        digests = asyncio.run(scenario())
        assert len(set(digests.values())) == 1

    def test_collector_key_cannot_authenticate_to_a_keeper(self, tmp_path):
        """Separate key universes: holding the collector's registry key
        gets an attacker nothing at any keeper (and so no secrets)."""
        packed, _ = _packed()
        words = np.zeros(M, dtype=np.uint64)
        share = wire.BlindingShare(m=M, round_id=0, n=1, words=words)

        async def scenario():
            async with _Deployment(tmp_path) as deployment:
                host, port = deployment.addresses["keeper-a"]
                with pytest.raises(AuthenticationError):
                    await send_records(
                        host,
                        port,
                        [share],
                        key=COLLECTOR_KEY,
                        producer_id="edge-1",
                        m=M,
                        party=keeper_party_label("keeper-a"),
                    )
                return deployment.keepers["keeper-a"].accumulator.n

        assert asyncio.run(scenario()) == 0

    def test_keeper_session_requires_the_party_label(self, tmp_path):
        """A producer that omits the keeper party label fails the MAC
        transcript — the keeper role is bound into the handshake."""
        words = np.zeros(M, dtype=np.uint64)
        share = wire.BlindingShare(m=M, round_id=0, n=1, words=words)

        async def scenario():
            async with _Deployment(tmp_path) as deployment:
                host, port = deployment.addresses["keeper-a"]
                with pytest.raises(AuthenticationError):
                    await send_records(
                        host,
                        port,
                        [share],
                        key=KEEPER_KEYS["keeper-a"],
                        producer_id="edge-1",
                        m=M,
                    )
                return deployment.keepers["keeper-a"].accumulator.n

        assert asyncio.run(scenario()) == 0

    def test_plain_chunk_is_refused_by_share_parties(self, tmp_path):
        """A raw packed chunk frame must never merge into a blinded
        round — the collector's ingest accepts only BlindedCounts."""
        packed, _ = _packed(k=2)
        chunk_frame = wire.dump_chunk(packed, M, round_id=0)

        async def scenario():
            async with _Deployment(tmp_path) as deployment:
                host, port = deployment.collector_address
                acks = await send_records(
                    host,
                    port,
                    [chunk_frame],
                    key=COLLECTOR_KEY,
                    producer_id="edge-1",
                    m=M,
                    raise_on_refusal=False,
                )
                return acks, deployment.collector.accumulator.n

        acks, n = asyncio.run(scenario())
        assert [a.status for a in acks] == [wire.ACK_REFUSED]
        assert n == 0
