"""The coordinator journal: CRC framing, torn tails, replay fidelity.

:class:`~repro.pipeline.service.journal.CoordinatorJournal` is the
durable half of coordinator crash recovery, so its failure modes are
pinned the same way the idempotency ledger's are: a torn tail (crash
mid-append) must truncate away without touching earlier records, a
corrupted record must stop the parse at the corruption, and a re-loaded
journal must replay byte-for-byte the events that were appended.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.exceptions import LedgerError
from repro.pipeline.service import CoordinatorJournal
from repro.pipeline.service.journal import JOURNAL_MAX_BODY

EVENTS = [
    {"kind": "fleet", "epoch": 1, "replicas": 64,
     "shards": {"alpha": ["127.0.0.1", 7001]}},
    {"kind": "register", "round_id": 3, "m": 16,
     "token": "00" * 16, "mode": "collect"},
    {"kind": "phase", "round_id": 3, "phase": "serving"},
    {"kind": "migrate", "state": "pending", "epoch": 2},
]


def _journal(tmp_path, name="coordinator.journal") -> CoordinatorJournal:
    return CoordinatorJournal(str(tmp_path / name))


class TestRoundTrip:
    def test_append_then_reload_replays_in_order(self, tmp_path):
        journal = _journal(tmp_path)
        assert journal.load() == 0
        for event in EVENTS:
            journal.append(event)
        assert len(journal) == len(EVENTS)
        journal.close()

        fresh = CoordinatorJournal(journal.path)
        assert fresh.load() == len(EVENTS)
        assert fresh.events() == EVENTS
        assert fresh.recovered_bytes_discarded == 0
        fresh.close()

    def test_reload_keeps_appending(self, tmp_path):
        journal = _journal(tmp_path)
        journal.load()
        journal.append(EVENTS[0])
        journal.close()
        reopened = CoordinatorJournal(journal.path)
        reopened.load()
        reopened.append(EVENTS[1])
        reopened.close()
        final = CoordinatorJournal(journal.path)
        assert final.load() == 2
        assert final.events() == EVENTS[:2]
        final.close()

    def test_load_twice_is_refused(self, tmp_path):
        journal = _journal(tmp_path)
        journal.load()
        with pytest.raises(LedgerError, match="already open"):
            journal.load()
        journal.close()

    def test_append_before_load_is_refused(self, tmp_path):
        with pytest.raises(LedgerError, match="load"):
            _journal(tmp_path).append(EVENTS[0])


class TestValidation:
    def test_non_dict_event_is_refused(self, tmp_path):
        journal = _journal(tmp_path)
        journal.load()
        with pytest.raises(LedgerError, match="'kind'"):
            journal.append(["not", "a", "dict"])
        with pytest.raises(LedgerError, match="'kind'"):
            journal.append({"no_kind": True})
        journal.close()

    def test_oversized_event_is_refused(self, tmp_path):
        journal = _journal(tmp_path)
        journal.load()
        with pytest.raises(LedgerError, match="exceeds"):
            journal.append({"kind": "x", "pad": "a" * (JOURNAL_MAX_BODY + 1)})
        # The refusal left nothing behind.
        journal.close()
        fresh = CoordinatorJournal(journal.path)
        assert fresh.load() == 0
        fresh.close()

    def test_valid_json_non_event_file_is_loud(self, tmp_path):
        """A CRC-valid record that is JSON but not an event dict means
        the file is some OTHER CRC-framed log — refuse, don't truncate."""
        path = tmp_path / "impostor.journal"
        body = json.dumps([1, 2, 3]).encode()
        path.write_bytes(
            struct.pack("<II", zlib.crc32(body), len(body)) + body
        )
        journal = CoordinatorJournal(str(path))
        with pytest.raises(LedgerError, match="not a coordinator journal"):
            journal.load()


class TestTornTails:
    def _written(self, tmp_path) -> bytes:
        journal = _journal(tmp_path)
        journal.load()
        for event in EVENTS:
            journal.append(event)
        journal.close()
        with open(journal.path, "rb") as handle:
            return handle.read()

    @pytest.mark.parametrize("chop", [1, 3, 7])
    def test_torn_tail_truncates_to_last_whole_record(self, tmp_path, chop):
        blob = self._written(tmp_path)
        path = tmp_path / "coordinator.journal"
        path.write_bytes(blob[:-chop])
        journal = CoordinatorJournal(str(path))
        assert journal.load() == len(EVENTS) - 1
        assert journal.events() == EVENTS[:-1]
        assert journal.recovered_bytes_discarded > 0
        # The truncation is durable: a second load sees a clean file.
        journal.close()
        again = CoordinatorJournal(str(path))
        assert again.load() == len(EVENTS) - 1
        assert again.recovered_bytes_discarded == 0
        again.close()

    def test_corrupted_crc_stops_the_parse_there(self, tmp_path):
        blob = self._written(tmp_path)
        # Flip a byte inside the SECOND record's body: record 1 must
        # survive, records 2+ are untrusted and discarded.
        head = struct.Struct("<II")
        _, first_len = head.unpack_from(blob, 0)
        second_body_at = head.size + first_len + head.size
        corrupted = bytearray(blob)
        corrupted[second_body_at] ^= 0xFF
        path = tmp_path / "coordinator.journal"
        path.write_bytes(bytes(corrupted))
        journal = CoordinatorJournal(str(path))
        assert journal.load() == 1
        assert journal.events() == EVENTS[:1]
        journal.close()

    def test_absurd_length_field_does_not_allocate(self, tmp_path):
        path = tmp_path / "coordinator.journal"
        path.write_bytes(struct.pack("<II", 0, 1 << 31))
        journal = CoordinatorJournal(str(path))
        assert journal.load() == 0
        assert journal.recovered_bytes_discarded == 8
        journal.close()
