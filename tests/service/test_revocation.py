"""Producer revocation: keyfile section, hot reload, reaping, oracle-free.

Revocation is the ban hammer rotation cannot swing: deleting a
producer's key line stops *new* handshakes, but a compromised producer
holding an open session could keep streaming until the round closes.
The ``[revoked]`` keyfile section (and :meth:`KeyRegistry.revoke`)
bans the id outright: lookups return ``None`` even when a key line or
default key would apply, new handshakes fail byte-for-byte like a
wrong key (no enumeration oracle), and open sessions are reaped —
what they already staged commits, what they send next is refused.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import AuthenticationError, ValidationError
from repro.pipeline import (
    CollectionService,
    KeyRegistry,
    ServiceSession,
    send_records,
)
from repro.pipeline.collect import wire

M = 16
SECRET = "0011223344556677"


def _chunk_frame(k=3, seed=0) -> bytes:
    rng = np.random.default_rng(seed)
    bits = (rng.random((k, M)) < 0.5).astype(np.uint8)
    return wire.dump_chunk(np.packbits(bits, axis=1), M, round_id=0)


def _write_keyfile(path, body: str) -> None:
    path.write_text(body, encoding="utf-8")


class TestKeyfileParsing:
    def test_revoked_section_parses_and_bans(self, tmp_path):
        keyfile = tmp_path / "keys.txt"
        _write_keyfile(
            keyfile,
            f"edge-1 = {SECRET}\nedge-2 = {SECRET}\n\n[revoked]\nedge-2\n",
        )
        registry = KeyRegistry.from_file(str(keyfile))
        assert registry.lookup("edge-1") is not None
        assert registry.lookup("edge-2") is None
        assert registry.is_revoked("edge-2")
        assert not registry.is_revoked("edge-1")

    def test_revocation_beats_the_default_key(self, tmp_path):
        keyfile = tmp_path / "keys.txt"
        _write_keyfile(
            keyfile, f"* = {SECRET}\n[revoked]\nbanned-node\n"
        )
        registry = KeyRegistry.from_file(str(keyfile))
        assert registry.lookup("anyone-else") is not None
        assert registry.lookup("banned-node") is None

    def test_optional_keys_header_is_byte_compatible(self, tmp_path):
        bare = tmp_path / "bare.txt"
        headed = tmp_path / "headed.txt"
        _write_keyfile(bare, f"edge-1 = {SECRET}\n")
        _write_keyfile(headed, f"[keys]\nedge-1 = {SECRET}\n")
        assert KeyRegistry.from_file(str(bare)).lookup(
            "edge-1"
        ) == KeyRegistry.from_file(str(headed)).lookup("edge-1")

    def test_unknown_section_is_loud(self, tmp_path):
        keyfile = tmp_path / "keys.txt"
        _write_keyfile(keyfile, f"edge-1 = {SECRET}\n[banhammer]\nedge-1\n")
        with pytest.raises(ValidationError, match="banhammer"):
            KeyRegistry.from_file(str(keyfile))

    def test_duplicate_revocation_is_loud(self, tmp_path):
        keyfile = tmp_path / "keys.txt"
        _write_keyfile(
            keyfile, f"edge-1 = {SECRET}\n[revoked]\nedge-9\nedge-9\n"
        )
        with pytest.raises(ValidationError, match="edge-9"):
            KeyRegistry.from_file(str(keyfile))

    def test_key_line_inside_revoked_section_is_loud(self, tmp_path):
        keyfile = tmp_path / "keys.txt"
        _write_keyfile(
            keyfile, f"[revoked]\nedge-1 = {SECRET}\n"
        )
        with pytest.raises(ValidationError):
            KeyRegistry.from_file(str(keyfile))


class TestHotReload:
    def test_editing_the_file_revokes_without_restart(self, tmp_path):
        keyfile = tmp_path / "keys.txt"
        _write_keyfile(keyfile, f"edge-1 = {SECRET}\n")
        registry = KeyRegistry.from_file(str(keyfile))
        assert registry.lookup("edge-1") is not None
        _write_keyfile(keyfile, f"edge-1 = {SECRET}\n[revoked]\nedge-1\n")
        assert registry.lookup("edge-1") is None

    def test_deleting_the_revocation_line_unbans(self, tmp_path):
        keyfile = tmp_path / "keys.txt"
        _write_keyfile(keyfile, f"edge-1 = {SECRET}\n[revoked]\nedge-1\n")
        registry = KeyRegistry.from_file(str(keyfile))
        assert registry.lookup("edge-1") is None
        _write_keyfile(keyfile, f"edge-1 = {SECRET}\n")
        assert registry.lookup("edge-1") is not None

    def test_programmatic_revoke(self):
        registry = KeyRegistry({"edge-1": SECRET})
        assert registry.lookup("edge-1") is not None
        registry.revoke("edge-1")
        assert registry.is_revoked("edge-1")
        assert registry.lookup("edge-1") is None


def _run(scenario, tmp_path, registry):
    async def main():
        service = CollectionService(
            M, keys=registry, store_root=str(tmp_path / "round")
        )
        host, port = await service.serve()
        try:
            result = await scenario(service, host, port)
        finally:
            await service.close()
        return service, result

    return asyncio.run(main())


class TestServiceRefusals:
    def _refusal_message(self, tmp_path, subdir, registry, producer, key):
        """The exact AuthenticationError a handshake refusal produces."""

        async def scenario(service, host, port):
            with pytest.raises(AuthenticationError) as info:
                await send_records(
                    host,
                    port,
                    [_chunk_frame()],
                    key=key,
                    producer_id=producer,
                    m=M,
                )
            return str(info.value)

        _, message = _run(scenario, tmp_path / subdir, registry)
        return message

    def test_revoked_refusal_is_indistinguishable(self, tmp_path):
        """Revoked, unknown, and wrong-key producers get the same error."""
        registry = KeyRegistry({"edge-1": SECRET, "edge-2": SECRET})
        registry.revoke("edge-2")
        revoked = self._refusal_message(
            tmp_path, "b", registry, "edge-2", SECRET
        )
        unknown = self._refusal_message(
            tmp_path,
            "c",
            KeyRegistry({"edge-1": SECRET}),
            "never-registered",
            SECRET,
        )
        wrong_key = self._refusal_message(
            tmp_path,
            "d",
            KeyRegistry({"edge-1": SECRET}),
            "edge-1",
            "totally-wrong-key",
        )
        assert revoked == unknown == wrong_key

    def test_revoked_producer_merges_nothing(self, tmp_path):
        registry = KeyRegistry({"edge-1": SECRET})
        registry.revoke("edge-1")

        async def scenario(service, host, port):
            with pytest.raises(AuthenticationError):
                await send_records(
                    host,
                    port,
                    [_chunk_frame()],
                    key=SECRET,
                    producer_id="edge-1",
                    m=M,
                )

        service, _ = _run(scenario, tmp_path, registry)
        assert service.accumulator.n == 0
        assert service.stats()["sessions_reaped_revoked"] == 0


class TestSessionReaping:
    def test_open_session_is_reaped_after_revocation(self, tmp_path):
        """Mid-session revocation: staged work commits, the next frame
        is refused, and the reap counter ticks."""
        registry = KeyRegistry({"edge-1": SECRET})

        async def scenario(service, host, port):
            session = ServiceSession(
                host, port, key=SECRET, producer_id="edge-1", m=M
            )
            await session.connect()
            ack = await session.send(_chunk_frame(), 0)
            assert ack.status == wire.ACK_MERGED
            registry.revoke("edge-1")
            refusal = await session.send(_chunk_frame(seed=1), 1)
            assert refusal.status == wire.ACK_REFUSED
            assert refusal.detail == "authentication failed"
            await session.close()

        service, _ = _run(scenario, tmp_path, registry)
        assert service.accumulator.n == 3  # the pre-revocation record
        assert service.stats()["sessions_reaped_revoked"] == 1

    def test_idle_revoked_session_is_reaped_by_the_poll(self, tmp_path):
        """A producer that goes silent after revocation is still dropped
        within the idle reap poll, not held to the idle timeout."""
        registry = KeyRegistry({"edge-1": SECRET})

        async def scenario(service, host, port):
            session = ServiceSession(
                host, port, key=SECRET, producer_id="edge-1", m=M
            )
            await session.connect()
            registry.revoke("edge-1")
            # Wait past the reap poll without sending anything; the
            # server must notice and close the connection from its end.
            refusal = await asyncio.wait_for(
                session.read_ack("reap"), timeout=5.0
            )
            assert refusal.status == wire.ACK_REFUSED
            assert refusal.detail == "authentication failed"
            await session.close()

        service, _ = _run(scenario, tmp_path, registry)
        assert service.stats()["sessions_reaped_revoked"] == 1
