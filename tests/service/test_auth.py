"""Tests for the HMAC session handshake primitives."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.pipeline.service.auth import (
    MIN_KEY_BYTES,
    derive_round_key,
    fresh_nonce,
    session_mac,
    verify_session_mac,
)

KEY = derive_round_key("0123456789abcdef0123456789abcdef")
ARGS = dict(
    m=24,
    round_id=3,
    producer_id="edge-1",
    client_nonce=bytes(range(16)),
    server_nonce=bytes(range(16, 32)),
)


class TestDeriveRoundKey:
    def test_hex_strings_decode(self):
        assert derive_round_key("00ff" * 8) == bytes([0, 255]) * 8

    def test_passphrases_encode_utf8(self):
        assert derive_round_key("correct horse battery") == b"correct horse battery"

    def test_raw_bytes_pass_through(self):
        assert derive_round_key(b"\x01" * 12) == b"\x01" * 12

    def test_short_keys_refused(self):
        with pytest.raises(ValidationError, match=f"{MIN_KEY_BYTES} bytes"):
            derive_round_key("abc")

    def test_short_hex_refused_by_decoded_length(self):
        # 8 hex chars decode to 4 bytes — under the floor even though
        # the string itself is 8 characters long.
        with pytest.raises(ValidationError, match="at least"):
            derive_round_key("deadbeef")


class TestSessionMac:
    def test_deterministic(self):
        assert session_mac(KEY, **ARGS) == session_mac(KEY, **ARGS)
        assert len(session_mac(KEY, **ARGS)) == 32

    @pytest.mark.parametrize(
        "field, value",
        [
            ("m", 25),
            ("round_id", 4),
            ("producer_id", "edge-2"),
            ("client_nonce", bytes(16)),
            ("server_nonce", bytes(16)),
        ],
    )
    def test_transcript_binds_every_field(self, field, value):
        changed = {**ARGS, field: value}
        assert session_mac(KEY, **changed) != session_mac(KEY, **ARGS)

    def test_different_keys_differ(self):
        other = derive_round_key(b"another-round-key")
        assert session_mac(other, **ARGS) != session_mac(KEY, **ARGS)

    def test_producer_id_is_length_prefixed(self):
        # "ab" + nonce starting with c must not collide with "abc" +
        # shifted nonce: the length prefix separates the fields.
        one = session_mac(
            KEY,
            m=8,
            round_id=0,
            producer_id="ab",
            client_nonce=b"c" + bytes(15),
            server_nonce=bytes(16),
        )
        two = session_mac(
            KEY,
            m=8,
            round_id=0,
            producer_id="abc",
            client_nonce=bytes(15) + b"c",
            server_nonce=bytes(16),
        )
        assert one != two


class TestVerify:
    def test_round_trip(self):
        mac = session_mac(KEY, **ARGS)
        assert verify_session_mac(KEY, mac, **ARGS)

    def test_wrong_key_fails(self):
        mac = session_mac(derive_round_key(b"wrong-key-entirely"), **ARGS)
        assert not verify_session_mac(KEY, mac, **ARGS)

    def test_tampered_mac_fails(self):
        mac = bytearray(session_mac(KEY, **ARGS))
        mac[0] ^= 1
        assert not verify_session_mac(KEY, bytes(mac), **ARGS)


def test_fresh_nonces_are_fresh():
    nonces = {fresh_nonce() for _ in range(64)}
    assert len(nonces) == 64
    assert all(len(nonce) == 16 for nonce in nonces)
