"""Behavioral tests for multi-round multiplexing and per-producer keys.

The multi-tenant surface, pillar by pillar: round routing (sessions
land in exactly the round their HELLO names; unknown rounds are
refused), the per-producer :class:`KeyRegistry` (own key works, someone
else's never does, rotation applies without a restart), quota scoping
(per-producer meters survive reconnects, per-round caps don't starve
other rounds), cross-connection group commit (one fsync pair really
does cover several sessions' batches), and the monotonic idle deadline
(a slow-but-alive producer spanning two rounds outlives any
measured-from-connection-start implementation).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import AuthenticationError, ValidationError
from repro.pipeline import (
    CollectionService,
    CountAccumulator,
    KeyRegistry,
    ServiceLimits,
    ServiceSession,
    send_records,
)
from repro.pipeline.collect import wire
from repro.pipeline.service import derive_producer_key

ROUNDS = [{"m": 16, "round_id": 1}, {"m": 24, "round_id": 2}]
KEYS = {"alice": "alice-key-000001", "bob": "bob-key-00000002"}


def _chunk_frame(m, round_id, k=4, seed=0) -> bytes:
    rng = np.random.default_rng(seed)
    bits = (rng.random((k, m)) < 0.5).astype(np.uint8)
    return wire.dump_chunk(np.packbits(bits, axis=1), m, round_id=round_id)


def _run(scenario, tmp_path, *, limits=None, keys=None, rounds=None, **kwargs):
    async def main():
        service = CollectionService(
            rounds=rounds or ROUNDS,
            keys=KeyRegistry(keys or KEYS) if not isinstance(keys, KeyRegistry) else keys,
            store_root=str(tmp_path / "rounds"),
            limits=limits,
            **kwargs,
        )
        host, port = await service.serve()
        try:
            result = await scenario(service, host, port)
        finally:
            await service.close()
        return service, result

    return asyncio.run(main())


class TestRoundRouting:
    def test_concurrent_rounds_ingest_simultaneously_and_stay_isolated(
        self, tmp_path
    ):
        async def scenario(service, host, port):
            await asyncio.gather(
                send_records(
                    host,
                    port,
                    [_chunk_frame(16, 1, k=3, seed=s) for s in range(4)],
                    key=KEYS["alice"],
                    producer_id="alice",
                    m=16,
                    round_id=1,
                ),
                send_records(
                    host,
                    port,
                    [_chunk_frame(24, 2, k=5, seed=s) for s in range(4)],
                    key=KEYS["bob"],
                    producer_id="bob",
                    m=24,
                    round_id=2,
                ),
            )

        service, _ = _run(scenario, tmp_path)
        one, two = service.round(1), service.round(2)
        assert (one.accumulator.n, two.accumulator.n) == (12, 20)
        assert one.producers_seen == {"alice"}
        assert two.producers_seen == {"bob"}
        assert service.records_merged == 8

    def test_unknown_round_refused(self, tmp_path):
        async def scenario(service, host, port):
            with pytest.raises(AuthenticationError, match="round mismatch"):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(16, 9)],
                    key=KEYS["alice"],
                    producer_id="alice",
                    m=16,
                    round_id=9,
                )

        service, _ = _run(scenario, tmp_path)
        assert service.sessions_rejected == 1
        assert service.records_merged == 0

    def test_wrong_m_for_round_refused(self, tmp_path):
        async def scenario(service, host, port):
            with pytest.raises(AuthenticationError, match="round mismatch"):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(24, 1)],
                    key=KEYS["alice"],
                    producer_id="alice",
                    m=24,  # round 1 is m=16
                    round_id=1,
                )

        service, _ = _run(scenario, tmp_path)
        assert service.records_merged == 0

    def test_record_for_other_hosted_round_refused_in_session(self, tmp_path):
        """A session bound to round 1 cannot smuggle a round-2 record."""

        async def scenario(service, host, port):
            async with ServiceSession(
                host, port, key=KEYS["alice"], producer_id="alice", m=16, round_id=1
            ) as session:
                return await session.send(_chunk_frame(24, 2), 0)

        service, ack = _run(scenario, tmp_path)
        assert ack.status == wire.ACK_REFUSED
        assert service.round(2).accumulator.n == 0
        assert service.round(2).records_merged == 0

    def test_duplicate_round_id_refused(self, tmp_path):
        with pytest.raises(ValidationError, match="already hosted"):
            CollectionService(
                rounds=[(16, 1), (24, 1)],
                keys=KEYS,
                store_root=str(tmp_path / "rounds"),
            )

    def test_add_round_while_serving(self, tmp_path):
        async def scenario(service, host, port):
            service.add_round(32, 7)
            return await send_records(
                host,
                port,
                [_chunk_frame(32, 7)],
                key=KEYS["alice"],
                producer_id="alice",
                m=32,
                round_id=7,
            )

        service, acks = _run(scenario, tmp_path)
        assert [a.status for a in acks] == [wire.ACK_MERGED]
        assert service.round(7).accumulator.n == 4


class TestPerProducerKeys:
    def test_each_producer_needs_its_own_key(self, tmp_path):
        async def scenario(service, host, port):
            # bob's key cannot open an alice session...
            with pytest.raises(AuthenticationError, match="authentication"):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(16, 1)],
                    key=KEYS["bob"],
                    producer_id="alice",
                    m=16,
                    round_id=1,
                )
            # ...and an unregistered producer fails with the SAME
            # message as a wrong key — unknown ids must not be
            # distinguishable before authentication (enumeration).
            with pytest.raises(AuthenticationError, match="authentication failed"):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(16, 1)],
                    key=KEYS["alice"],
                    producer_id="mallory",
                    m=16,
                    round_id=1,
                )
            return await send_records(
                host,
                port,
                [_chunk_frame(16, 1)],
                key=KEYS["alice"],
                producer_id="alice",
                m=16,
                round_id=1,
            )

        service, acks = _run(scenario, tmp_path)
        assert [a.status for a in acks] == [wire.ACK_MERGED]
        assert service.producers_seen == {"alice"}
        assert service.sessions_rejected == 2

    def test_key_rotation_without_restart(self, tmp_path):
        registry = KeyRegistry(dict(KEYS))

        async def scenario(service, host, port):
            first = await send_records(
                host,
                port,
                [_chunk_frame(16, 1, seed=1)],
                key=KEYS["alice"],
                producer_id="alice",
                m=16,
                round_id=1,
            )
            registry.set_key("alice", "rotated-key-0001")
            # The old key is dead for new sessions...
            with pytest.raises(AuthenticationError):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(16, 1, seed=2)],
                    key=KEYS["alice"],
                    producer_id="alice",
                    m=16,
                    round_id=1,
                )
            # ...and the new one works, same running service.
            second = await send_records(
                host,
                port,
                [_chunk_frame(16, 1, seed=2)],
                key="rotated-key-0001",
                producer_id="alice",
                m=16,
                round_id=1,
                start_seq=1,
            )
            return first + second

        service, acks = _run(scenario, tmp_path, keys=registry)
        assert [a.status for a in acks] == [wire.ACK_MERGED] * 2

    def test_keyfile_rotation_applies_to_live_service(self, tmp_path):
        """Rewriting the keyfile rotates keys for the *running* service —
        the operational promise behind --keys-file."""
        path = tmp_path / "keys.txt"
        path.write_text("carol = first-key-000001\n", encoding="utf-8")
        registry = KeyRegistry.from_file(str(path))

        async def scenario(service, host, port):
            first = await send_records(
                host,
                port,
                [_chunk_frame(16, 1, seed=3)],
                key="first-key-000001",
                producer_id="carol",
                m=16,
                round_id=1,
            )
            path.write_text("carol = second-key-00002\n", encoding="utf-8")
            import os

            os.utime(path, ns=(1, 1))  # ensure the stamp visibly changes
            with pytest.raises(AuthenticationError):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(16, 1, seed=4)],
                    key="first-key-000001",
                    producer_id="carol",
                    m=16,
                    round_id=1,
                )
            second = await send_records(
                host,
                port,
                [_chunk_frame(16, 1, seed=4)],
                key="second-key-00002",
                producer_id="carol",
                m=16,
                round_id=1,
                start_seq=1,
            )
            return first + second

        service, acks = _run(scenario, tmp_path, keys=registry)
        assert [a.status for a in acks] == [wire.ACK_MERGED] * 2

    def test_same_size_rewrite_with_frozen_stat_is_observed(self, tmp_path):
        """Regression: the reload stamp was ``(st_mtime_ns, st_size)``,
        so a same-size in-place rewrite on a coarse-mtime filesystem —
        simulated here by pinning the timestamps back after the write —
        was invisible and a rotated-away key stayed live."""
        import os

        path = tmp_path / "keys.txt"
        original = "carol = first-key-000001\n"
        path.write_text(original, encoding="utf-8")
        registry = KeyRegistry.from_file(str(path))
        old_key = registry.lookup("carol")

        replacement = "carol = secnd-key-000001\n"
        assert len(replacement) == len(original)
        stat = os.stat(path)
        path.write_text(replacement, encoding="utf-8")
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))

        new_key = registry.lookup("carol")
        assert new_key is not None and new_key != old_key

    def test_same_size_revocation_with_frozen_stat_is_observed(self, tmp_path):
        """The dangerous variant of the stale-stamp bug: a revocation
        written at identical size must take effect, not leave the
        revoked producer authenticated."""
        import os

        path = tmp_path / "keys.txt"
        original = "carol = first-key-000001\n"
        revoked = "[revoked]\ncarol\n#2345678\n"
        assert len(revoked) == len(original)
        path.write_text(original, encoding="utf-8")
        registry = KeyRegistry.from_file(str(path))
        assert registry.lookup("carol") is not None

        stat = os.stat(path)
        path.write_text(revoked, encoding="utf-8")
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))

        assert registry.is_revoked("carol")
        assert registry.lookup("carol") is None

    def test_derived_producer_keys_are_registry_compatible(self, tmp_path):
        master = "fleet-master-secret"
        registry = KeyRegistry(
            {p: derive_producer_key(master, p) for p in ("n1", "n2")}
        )

        async def scenario(service, host, port):
            return await send_records(
                host,
                port,
                [_chunk_frame(16, 1)],
                key=derive_producer_key(master, "n1"),
                producer_id="n1",
                m=16,
                round_id=1,
            )

        service, acks = _run(scenario, tmp_path, keys=registry)
        assert [a.status for a in acks] == [wire.ACK_MERGED]


class TestQuotaScoping:
    def test_producer_quota_survives_reconnect(self, tmp_path):
        """Reconnecting must not reset the producer's meter — the tally
        lives with the round, not the connection."""
        limits = ServiceLimits(max_producer_frames=3)

        async def scenario(service, host, port):
            acks = []
            for seq in range(3):  # three connections, one frame each
                acks += await send_records(
                    host,
                    port,
                    [_chunk_frame(16, 1, seed=seq)],
                    key=KEYS["alice"],
                    producer_id="alice",
                    m=16,
                    round_id=1,
                    start_seq=seq,
                )
            with pytest.raises(Exception, match="frame quota"):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(16, 1, seed=9)],
                    key=KEYS["alice"],
                    producer_id="alice",
                    m=16,
                    round_id=1,
                    start_seq=9,
                )
            # A different producer on the same round is unaffected.
            return acks, await send_records(
                host,
                port,
                [_chunk_frame(16, 1, seed=5)],
                key=KEYS["bob"],
                producer_id="bob",
                m=16,
                round_id=1,
            )

        service, (acks, bob_acks) = _run(scenario, tmp_path, limits=limits)
        assert [a.status for a in acks] == [wire.ACK_MERGED] * 3
        assert [a.status for a in bob_acks] == [wire.ACK_MERGED]

    def test_round_quota_does_not_starve_other_rounds(self, tmp_path):
        limits = ServiceLimits(max_round_records=2)

        async def scenario(service, host, port):
            acks = await send_records(
                host,
                port,
                [_chunk_frame(16, 1, seed=s) for s in range(2)],
                key=KEYS["alice"],
                producer_id="alice",
                m=16,
                round_id=1,
            )
            with pytest.raises(Exception, match="record quota"):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(16, 1, seed=9)],
                    key=KEYS["alice"],
                    producer_id="alice",
                    m=16,
                    round_id=1,
                    start_seq=5,
                )
            # Round 2's meter is its own: it keeps ingesting (up to its
            # own cap) after round 1 is exhausted.
            return acks, await send_records(
                host,
                port,
                [_chunk_frame(24, 2, seed=s) for s in range(2)],
                key=KEYS["bob"],
                producer_id="bob",
                m=24,
                round_id=2,
            )

        service, (acks, other) = _run(scenario, tmp_path, limits=limits)
        assert [a.status for a in acks] == [wire.ACK_MERGED] * 2
        assert [a.status for a in other] == [wire.ACK_MERGED] * 2
        assert service.round(1).records_merged == 2
        assert service.round(2).records_merged == 2


class TestQuotaResendSafety:
    def test_blind_resend_at_quota_cap_is_free(self, tmp_path):
        """A producer at exactly its frame cap must still be able to
        blind-resend everything (duplicates dedup before they are
        charged) — otherwise exactly-once's 'resend on any doubt'
        contract and the quota system would deadlock a producer that
        lost its acks."""
        limits = ServiceLimits(max_producer_frames=3)
        frames = [_chunk_frame(16, 1, seed=s) for s in range(3)]

        async def scenario(service, host, port):
            first = await send_records(
                host,
                port,
                frames,
                key=KEYS["alice"],
                producer_id="alice",
                m=16,
                round_id=1,
            )
            again = await send_records(
                host,
                port,
                frames,  # blind resend, quota already exhausted
                key=KEYS["alice"],
                producer_id="alice",
                m=16,
                round_id=1,
            )
            return first, again

        service, (first, again) = _run(scenario, tmp_path, limits=limits)
        assert [a.status for a in first] == [wire.ACK_MERGED] * 3
        assert [a.status for a in again] == [wire.ACK_DUPLICATE] * 3

    def test_producer_quota_survives_restart_including_bytes(self, tmp_path):
        """Resume rebuilds both halves of the producer meter from the
        ledger: the committed frames AND their bytes — then resends stay
        free while fresh records are still refused."""
        limits = ServiceLimits(max_producer_frames=2)
        frames = [_chunk_frame(16, 1, seed=s) for s in range(2)]

        async def scenario(service, host, port):
            return await send_records(
                host,
                port,
                frames,
                key=KEYS["alice"],
                producer_id="alice",
                m=16,
                round_id=1,
            )

        _run(scenario, tmp_path, limits=limits)

        async def resumed():
            service = CollectionService(
                rounds=ROUNDS,
                keys=KeyRegistry(KEYS),
                store_root=str(tmp_path / "rounds"),
                limits=limits,
                resume=True,
            )
            meter = service.round(1).producer_quota("alice")
            frames_used, bytes_used = meter.frames_used, meter.bytes_used
            host, port = await service.serve()
            try:
                again = await send_records(
                    host,
                    port,
                    frames,  # resend across the restart: free
                    key=KEYS["alice"],
                    producer_id="alice",
                    m=16,
                    round_id=1,
                )
                with pytest.raises(Exception, match="frame quota"):
                    await send_records(
                        host,
                        port,
                        [_chunk_frame(16, 1, seed=9)],  # fresh: refused
                        key=KEYS["alice"],
                        producer_id="alice",
                        m=16,
                        round_id=1,
                        start_seq=9,
                    )
            finally:
                await service.close()
            return frames_used, bytes_used, again

        frames_used, bytes_used, again = asyncio.run(resumed())
        assert frames_used == 2
        assert bytes_used == sum(len(frame) for frame in frames)
        assert [a.status for a in again] == [wire.ACK_DUPLICATE] * 2

    def test_staged_but_uncommitted_records_refund_their_charge(
        self, tmp_path
    ):
        """A connection that dies after staging (mid-frame stall drops
        it) must hand back the quota charged for records that never
        committed — the resend is the protocol's recovery, and it must
        fit in the same budget."""
        limits = ServiceLimits(
            max_producer_frames=2,
            session_idle_seconds=0.15,
            # Large batch + long idle flush: staged records sit
            # uncommitted until the torn frame kills the connection.
            commit_idle_seconds=5.0,
        )
        frames = [_chunk_frame(16, 1, seed=s) for s in range(2)]

        async def scenario(service, host, port):
            dying = ServiceSession(
                host, port, key=KEYS["alice"], producer_id="alice", m=16, round_id=1
            )
            await dying.connect()
            # Stage both records without collecting acks, then stall
            # mid-frame: the whole staged batch dies with the session.
            for seq, frame in enumerate(frames):
                await dying.send_nowait(frame, seq)
            record = wire.dumps(
                wire.Record(m=16, round_id=1, seq=2, frame=frames[0])
            )
            dying._writer.write(record[: wire.HEADER_SIZE + 3])
            await dying._writer.drain()
            await asyncio.sleep(0.5)  # service reaps the stalled frame
            await dying.close()
            # The resend must succeed within the SAME 2-frame budget.
            return await send_records(
                host,
                port,
                frames,
                key=KEYS["alice"],
                producer_id="alice",
                m=16,
                round_id=1,
            )

        service, acks = _run(scenario, tmp_path, limits=limits)
        # Whatever the first connection managed to commit before dying
        # answers as DUPLICATE; the rest merge fresh — nothing refused.
        assert all(
            ack.status in (wire.ACK_MERGED, wire.ACK_DUPLICATE) for ack in acks
        )
        assert service.round(1).records_merged == 2
        meter = service.round(1).producer_quota("alice")
        assert meter.frames_used == 2  # exactly the committed records

    def test_malformed_keyfile_mid_rotation_keeps_last_good_keys(
        self, tmp_path
    ):
        """A botched keyfile edit (typo'd line, non-atomic save) must
        not lock every producer out: handshakes keep using the last
        good key set until the file parses again."""
        path = tmp_path / "keys.txt"
        path.write_text("alice = alice-key-000001\n", encoding="utf-8")
        registry = KeyRegistry.from_file(str(path))

        async def scenario(service, host, port):
            import os

            path.write_text("alice broken-line-no-equals\n", encoding="utf-8")
            os.utime(path, ns=(1, 1))
            survived = await send_records(
                host,
                port,
                [_chunk_frame(16, 1, seed=1)],
                key="alice-key-000001",
                producer_id="alice",
                m=16,
                round_id=1,
            )
            path.write_text("alice = repaired-key-0001\n", encoding="utf-8")
            os.utime(path, ns=(2, 2))
            repaired = await send_records(
                host,
                port,
                [_chunk_frame(16, 1, seed=2)],
                key="repaired-key-0001",
                producer_id="alice",
                m=16,
                round_id=1,
                start_seq=1,
            )
            return survived + repaired

        service, acks = _run(scenario, tmp_path, keys=registry)
        assert [a.status for a in acks] == [wire.ACK_MERGED] * 2
        # The broken file never caused a handshake refusal.
        assert service.sessions_rejected == 0

    def test_bad_rounds_spec_is_a_validation_error(self, tmp_path):
        for bad in ({"m": "16k", "round_id": 1}, {"m": 16}, "nonsense", (1,)):
            with pytest.raises(ValidationError, match="round spec"):
                CollectionService(
                    rounds=[bad],
                    keys=KEYS,
                    store_root=str(tmp_path / f"r{hash(str(bad)) % 100}"),
                )

    def test_failed_constructor_cleans_up_opened_rounds(self, tmp_path):
        """A bad spec after good ones must not leave the good rounds'
        freshly created files behind — the operator's corrected rerun
        must start clean, not demand resume=True for rounds that never
        ingested anything."""
        root = str(tmp_path / "rounds")
        with pytest.raises(ValidationError, match="round spec"):
            CollectionService(
                rounds=[(16, 1), (24, 2), "nonsense"],
                keys=KEYS,
                store_root=root,
            )
        # The corrected rerun works without resume.
        service = CollectionService(
            rounds=[(16, 1), (24, 2)], keys=KEYS, store_root=root
        )
        asyncio.run(service.close())

    def test_refused_charge_leaves_meters_untouched(self, tmp_path):
        """A record refused over quota must not itself burn budget: a
        later record that legitimately fits is still accepted."""
        big = _chunk_frame(16, 1, k=40, seed=1)  # 40 rows -> 80 payload B
        small = _chunk_frame(16, 1, k=2, seed=2)
        limits = ServiceLimits(max_producer_bytes=len(small) + len(big) // 2)

        async def scenario(service, host, port):
            with pytest.raises(Exception, match="byte quota"):
                await send_records(
                    host,
                    port,
                    [big],
                    key=KEYS["alice"],
                    producer_id="alice",
                    m=16,
                    round_id=1,
                )
            # The failed attempt charged nothing, so this still fits.
            return await send_records(
                host,
                port,
                [small],
                key=KEYS["alice"],
                producer_id="alice",
                m=16,
                round_id=1,
                start_seq=1,
            )

        service, acks = _run(scenario, tmp_path, limits=limits)
        assert [a.status for a in acks] == [wire.ACK_MERGED]
        meter = service.round(1).producer_quota("alice")
        assert meter.frames_used == 1
        assert meter.bytes_used == len(small)

    def test_deleting_keyfile_default_revokes_it(self, tmp_path):
        """Removing the '*' line from the keyfile revokes the fallback
        for new sessions — the same no-restart semantics as revoking a
        producer line."""
        path = tmp_path / "keys.txt"
        path.write_text(
            "alice = alice-key-000001\n* = fallback-key-0001\n",
            encoding="utf-8",
        )
        registry = KeyRegistry.from_file(str(path))

        async def scenario(service, host, port):
            first = await send_records(
                host,
                port,
                [_chunk_frame(16, 1, seed=1)],
                key="fallback-key-0001",
                producer_id="walk-in",
                m=16,
                round_id=1,
            )
            path.write_text("alice = alice-key-000001\n", encoding="utf-8")
            import os

            os.utime(path, ns=(1, 1))
            with pytest.raises(AuthenticationError):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(16, 1, seed=2)],
                    key="fallback-key-0001",
                    producer_id="walk-in-2",
                    m=16,
                    round_id=1,
                )
            return first

        service, first = _run(scenario, tmp_path, keys=registry)
        assert [a.status for a in first] == [wire.ACK_MERGED]


class TestCrossConnectionCommit:
    def test_concurrent_sessions_coalesce_into_shared_commits(self, tmp_path):
        """With many producers pipelining into one round, at least one
        commit must cover more than one session's batch — the
        cross-connection coalescing the scheduler exists for."""
        producers = 8
        keys = {f"p{i}": f"producer-key-{i:04d}" for i in range(producers)}

        async def scenario(service, host, port):
            await asyncio.gather(
                *(
                    send_records(
                        host,
                        port,
                        [_chunk_frame(16, 1, seed=17 * i + s) for s in range(6)],
                        key=keys[f"p{i}"],
                        producer_id=f"p{i}",
                        m=16,
                        round_id=1,
                    )
                    for i in range(producers)
                )
            )

        service, _ = _run(
            scenario, tmp_path, keys=keys, rounds=[{"m": 16, "round_id": 1}]
        )
        state = service.round(1)
        assert state.records_merged == 6 * producers
        assert state.scheduler.cross_connection_batches >= 1
        # Coalescing means strictly fewer fsync pairs than batches.
        assert state.scheduler.commits < 6 * producers

    def test_connection_scope_still_correct(self, tmp_path):
        limits = ServiceLimits(commit_scope="connection")

        async def scenario(service, host, port):
            results = await asyncio.gather(
                *(
                    send_records(
                        host,
                        port,
                        [_chunk_frame(16, 1, seed=7 * i + s) for s in range(3)],
                        key=KEYS["alice"],
                        producer_id="alice",
                        m=16,
                        round_id=1,
                        start_seq=3 * i,
                    )
                    for i in range(3)
                )
            )
            return results

        service, results = _run(scenario, tmp_path, limits=limits)
        statuses = [a.status for acks in results for a in acks]
        assert statuses.count(wire.ACK_MERGED) == 9
        assert service.round(1).scheduler.cross_connection_batches == 0


class TestMonotonicDeadlines:
    def test_slow_loris_across_two_rounds_is_not_reaped(self, tmp_path):
        """The idle deadline measures from the last completed frame on
        the monotonic clock — NOT from connection start.  A producer
        trickling records to two rounds, with every gap under the idle
        deadline but a total engagement far over it, must never be
        reaped.  (A from-connection-start implementation fails this.)"""
        limits = ServiceLimits(session_idle_seconds=0.3)

        async def scenario(service, host, port):
            statuses = []
            sessions = {}
            for round_id, m in ((1, 16), (2, 24)):
                sessions[round_id] = ServiceSession(
                    host,
                    port,
                    key=KEYS["alice"],
                    producer_id="alice",
                    m=m,
                    round_id=round_id,
                )
                await sessions[round_id].connect()
            try:
                # 6 records alternating between rounds, ~0.12s apart:
                # total ≈ 0.7s >> 0.3s idle deadline, every gap under it.
                for seq in range(3):
                    for round_id, m in ((1, 16), (2, 24)):
                        await asyncio.sleep(0.12)
                        ack = await sessions[round_id].send(
                            _chunk_frame(m, round_id, seed=seq), seq
                        )
                        statuses.append(ack.status)
            finally:
                for session in sessions.values():
                    await session.close()
            return statuses

        service, statuses = _run(scenario, tmp_path, limits=limits)
        assert statuses == [wire.ACK_MERGED] * 6
        assert service.last_connection_error != "session idle timeout"
        assert service.round(1).accumulator.n == 12
        assert service.round(2).accumulator.n == 12

    def test_truly_idle_session_still_reaped(self, tmp_path):
        """The regression guard's dual: the monotonic deadline still
        reaps a producer that authenticates and then goes silent."""
        limits = ServiceLimits(session_idle_seconds=0.15)

        async def scenario(service, host, port):
            idler = ServiceSession(
                host, port, key=KEYS["alice"], producer_id="alice", m=16, round_id=1
            )
            await idler.connect()
            await asyncio.sleep(0.5)
            await idler.close()

        service, _ = _run(scenario, tmp_path, limits=limits)
        assert service.last_connection_error == "session idle timeout"

    def test_resume_replays_every_rounds_ledger(self, tmp_path):
        """Multi-round resume is per round: each ledger replays into its
        own accumulator, digests intact."""

        async def scenario(service, host, port):
            for m, round_id, producer in ((16, 1, "alice"), (24, 2, "bob")):
                await send_records(
                    host,
                    port,
                    [_chunk_frame(m, round_id, seed=s) for s in range(3)],
                    key=KEYS[producer],
                    producer_id=producer,
                    m=m,
                    round_id=round_id,
                )

        service, _ = _run(scenario, tmp_path)
        digests = {
            round_id: service.round(round_id).accumulator.digest()
            for round_id in (1, 2)
        }

        async def resume():
            resumed = CollectionService(
                rounds=ROUNDS,
                keys=KeyRegistry(KEYS),
                store_root=str(tmp_path / "rounds"),
                resume=True,
            )
            await resumed.abort()
            return resumed

        resumed = asyncio.run(resume())
        assert resumed.recovered_records == 6
        for round_id in (1, 2):
            assert resumed.round(round_id).accumulator.digest() == digests[round_id]
            assert resumed.round(round_id).recovered_records == 3
