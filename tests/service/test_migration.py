"""Shard-to-shard record migration: migrate-out / migrate-in.

The live-rebalance primitive, exercised at the control-plane level
against two real services: records committed for a producer the new
routing table moves must transfer digest-verified, dedup blind resends
on the new owner, be refused with MOVED on the old owner, and the whole
flow must be idempotent (a coordinator crash between the two ops re-runs
both).  Also pins the idempotent ``open-round`` acknowledgement and the
commit scheduler's migration pause.
"""

from __future__ import annotations

import asyncio
import hashlib

import numpy as np
import pytest

from repro.exceptions import ControlError, MovedError, ServiceError
from repro.pipeline import CollectionService
from repro.pipeline.collect import wire
from repro.pipeline.service import (
    RoutingTable,
    ShardInfo,
    control_call,
    send_records,
)

M = 16
KEY = "0011223344556677"
CONTROL_KEY = "fleet-control-secret"
CANDIDATES = [f"producer-{i:02d}" for i in range(32)]


def _chunk_frame(seed: int, round_id: int = 0) -> bytes:
    rng = np.random.default_rng(seed)
    bits = (rng.random((4, M)) < 0.5).astype(np.uint8)
    return wire.dump_chunk(np.packbits(bits, axis=1), M, round_id=round_id)


def _run_pair(scenario, tmp_path):
    """Two shard services, alpha owning everyone under the initial table."""

    async def main():
        alpha = CollectionService(
            M,
            key=KEY,
            store_root=str(tmp_path / "alpha"),
            control_key=CONTROL_KEY,
            shard_name="alpha",
        )
        beta = CollectionService(
            M,
            key=KEY,
            store_root=str(tmp_path / "beta"),
            control_key=CONTROL_KEY,
            shard_name="beta",
        )
        a_host, a_port = await alpha.serve()
        b_host, b_port = await beta.serve()
        a_info = ShardInfo("alpha", a_host, a_port)
        b_info = ShardInfo("beta", b_host, b_port)
        alpha.install_routing(RoutingTable([a_info], epoch=1))
        try:
            await scenario(alpha, beta, a_info, b_info)
        finally:
            await alpha.close()
            await beta.close()

    asyncio.run(main())


def _split_by_new_owner(a_info, b_info):
    """A (mover, stayer) producer pair under the two-shard table."""
    table = RoutingTable([a_info, b_info], epoch=2)
    movers = [p for p in CANDIDATES if table.owner(p).name == "beta"]
    stayers = [p for p in CANDIDATES if table.owner(p).name == "alpha"]
    assert movers and stayers  # the ring spreads 32 names
    return table, movers[0], stayers[0]


async def _migrate_out(info, round_id: int, epoch: int):
    return await control_call(
        info.host,
        info.port,
        key=CONTROL_KEY,
        op="migrate-out",
        body={"round_id": round_id, "epoch": epoch},
    )


async def _migrate_in(info, round_id: int, body_entries, attachment):
    offset = 0
    entries = []
    for entry in body_entries:
        frame = attachment[offset : offset + entry["length"]]
        offset += entry["length"]
        assert hashlib.sha256(frame).hexdigest() == entry["digest"]
        entries.append(
            {
                "producer": entry["producer"],
                "seq": entry["seq"],
                "digest": entry["digest"],
                "frame": frame.hex(),
            }
        )
    assert offset == len(attachment)
    reply, _ = await control_call(
        info.host,
        info.port,
        key=CONTROL_KEY,
        op="migrate-in",
        body={"round_id": round_id, "entries": entries},
    )
    return reply


class TestMigrationFlow:
    def test_records_follow_their_producer(self, tmp_path):
        async def scenario(alpha, beta, a_info, b_info):
            table2, mover, stayer = _split_by_new_owner(a_info, b_info)
            for producer, seed in ((mover, 1), (stayer, 2)):
                await send_records(
                    a_info.host,
                    a_info.port,
                    [_chunk_frame(seed), _chunk_frame(seed + 10)],
                    key=KEY,
                    producer_id=producer,
                    m=M,
                    round_id=0,
                )
            assert alpha.round(0).records_merged == 4
            digest_before = alpha.round(0).accumulator.digest()

            beta.install_routing(table2)
            await control_call(
                a_info.host, a_info.port, key=CONTROL_KEY,
                op="route-update", body={"table": table2.to_payload()},
            )
            body, attachment = await _migrate_out(a_info, 0, epoch=2)
            assert body["producers"] == [mover]
            assert [e["producer"] for e in body["entries"]] == [mover] * 2
            assert [e["seq"] for e in body["entries"]] == [0, 1]

            # The old owner already serves without the mover's records.
            state = alpha.round(0)
            assert state.records_merged == 2
            assert state.stats()["producers_excluded"] == [mover]
            assert state.accumulator.digest() != digest_before

            reply = await _migrate_in(b_info, 0, body["entries"], attachment)
            assert reply == {"round_id": 0, "installed": 2, "duplicates": 0}
            assert beta.round(0).records_merged == 2

            # Nothing lost, nothing double-counted: the two shards now
            # hold exactly the four committed records between them.
            assert (
                alpha.round(0).accumulator.n + beta.round(0).accumulator.n
                == 4 * 4  # 4 chunks of 4 rows
            )

        _run_pair(scenario, tmp_path)

    def test_transfer_is_idempotent_end_to_end(self, tmp_path):
        """Re-running migrate-out + migrate-in (the coordinator died in
        between) re-returns the same entries and dedups them all."""

        async def scenario(alpha, beta, a_info, b_info):
            table2, mover, _stayer = _split_by_new_owner(a_info, b_info)
            await send_records(
                a_info.host, a_info.port, [_chunk_frame(3)],
                key=KEY, producer_id=mover, m=M, round_id=0,
            )
            beta.install_routing(table2)
            await control_call(
                a_info.host, a_info.port, key=CONTROL_KEY,
                op="route-update", body={"table": table2.to_payload()},
            )
            first, attachment = await _migrate_out(a_info, 0, epoch=2)
            reply = await _migrate_in(b_info, 0, first["entries"], attachment)
            assert reply["installed"] == 1

            again, attachment2 = await _migrate_out(a_info, 0, epoch=2)
            assert again["entries"] == first["entries"]
            assert attachment2 == attachment
            rerun = await _migrate_in(b_info, 0, again["entries"], attachment2)
            assert rerun == {"round_id": 0, "installed": 0, "duplicates": 1}
            assert beta.round(0).records_merged == 1

        _run_pair(scenario, tmp_path)

    def test_blind_resend_lands_as_duplicate_on_new_owner(self, tmp_path):
        async def scenario(alpha, beta, a_info, b_info):
            table2, mover, _stayer = _split_by_new_owner(a_info, b_info)
            frames = [_chunk_frame(4), _chunk_frame(5)]
            await send_records(
                a_info.host, a_info.port, frames,
                key=KEY, producer_id=mover, m=M, round_id=0,
            )
            beta.install_routing(table2)
            await control_call(
                a_info.host, a_info.port, key=CONTROL_KEY,
                op="route-update", body={"table": table2.to_payload()},
            )
            body, attachment = await _migrate_out(a_info, 0, epoch=2)
            await _migrate_in(b_info, 0, body["entries"], attachment)

            # The producer blind-resends its whole batch to the new
            # owner: every record must dedup against the transferred
            # ledger entries.
            acks = await send_records(
                b_info.host, b_info.port, frames,
                key=KEY, producer_id=mover, m=M, round_id=0,
                raise_on_refusal=False,
            )
            assert [a.status for a in acks] == [wire.ACK_DUPLICATE] * 2
            assert beta.round(0).records_merged == 2

            # And the OLD owner refuses it with MOVED at the handshake.
            with pytest.raises(MovedError) as excinfo:
                await send_records(
                    a_info.host, a_info.port, frames,
                    key=KEY, producer_id=mover, m=M, round_id=0,
                )
            assert excinfo.value.shard == "beta"
            assert excinfo.value.epoch == 2

        _run_pair(scenario, tmp_path)

    def test_migrate_out_pins_the_installed_epoch(self, tmp_path):
        async def scenario(alpha, beta, a_info, b_info):
            with pytest.raises(ControlError, match="push the table first"):
                await _migrate_out(a_info, 0, epoch=7)

        _run_pair(scenario, tmp_path)


class TestIdempotentOpenRound:
    def test_same_token_reregistration_is_acknowledged(self, tmp_path):
        async def scenario(alpha, beta, a_info, b_info):
            token = "ab" * 16
            body = {"m": M, "round_id": 9, "token": token}
            first, _ = await control_call(
                a_info.host, a_info.port, key=CONTROL_KEY,
                op="open-round", body=body,
            )
            assert "already" not in first
            again, _ = await control_call(
                a_info.host, a_info.port, key=CONTROL_KEY,
                op="open-round", body=body,
            )
            assert again["already"] is True
            assert again["round_id"] == 9 and again["m"] == M

            # A DIFFERENT token is not the same coordinator: refused
            # loudly instead of silently re-scoped.
            with pytest.raises(ControlError, match="already hosted"):
                await control_call(
                    a_info.host, a_info.port, key=CONTROL_KEY,
                    op="open-round",
                    body={"m": M, "round_id": 9, "token": "cd" * 16},
                )

        _run_pair(scenario, tmp_path)


class TestSchedulerPause:
    def test_pause_is_exclusive_and_releases_queued_commits(self, tmp_path):
        async def scenario(alpha, beta, a_info, b_info):
            state = alpha.round(0)
            async with state.scheduler.paused():
                with pytest.raises(ServiceError, match="already paused"):
                    async with state.scheduler.paused():
                        pass  # pragma: no cover
                # A commit submitted during the pause queues...
                sender = asyncio.ensure_future(
                    send_records(
                        a_info.host, a_info.port, [_chunk_frame(6)],
                        key=KEY, producer_id=CANDIDATES[0], m=M, round_id=0,
                    )
                )
                await asyncio.sleep(0.05)
                assert not sender.done()
                assert state.records_merged == 0
            # ...and drains the moment the pause lifts.
            acks = await asyncio.wait_for(sender, timeout=5)
            assert [a.status for a in acks] == [wire.ACK_MERGED]
            assert state.records_merged == 1

        _run_pair(scenario, tmp_path)
