"""Consistent-hash producer routing: determinism, stability, MOVED.

The property that justifies consistent hashing over modulo assignment
is *minimal movement*: adding a shard may move producers only **onto**
the new shard, and removing one may move only **that shard's**
producers.  The hypothesis tests below pin exactly that, over random
fleets and producer populations; the unit tests pin determinism (same
names → same ring, regardless of address or insertion order), the
payload round-trip the control plane ships, and the MOVED redirect
grammar stale clients follow.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.pipeline.service.routing import (
    RoutingTable,
    ShardInfo,
    format_moved,
    parse_moved,
)

ALPHA = ShardInfo("alpha", "127.0.0.1", 7001)
BETA = ShardInfo("beta", "127.0.0.1", 7002)
GAMMA = ShardInfo("gamma", "10.0.0.9", 7003)

shard_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
    ),
    min_size=1,
    max_size=8,
    unique=True,
)
producer_ids = st.lists(
    st.text(min_size=1, max_size=24), min_size=1, max_size=64, unique=True
)


def _fleet(names: list[str]) -> list[ShardInfo]:
    return [
        ShardInfo(name, "127.0.0.1", 7000 + index)
        for index, name in enumerate(names)
    ]


class TestShardInfo:
    def test_rejects_separator_characters_in_names(self):
        for bad in ("a=b", "a b", "a\tb", "", "a\nb"):
            with pytest.raises(ValidationError):
                ShardInfo(bad, "127.0.0.1", 7000)

    def test_rejects_bad_ports(self):
        for bad in (-1, 65536, 1 << 20):
            with pytest.raises(ValidationError):
                ShardInfo("alpha", "127.0.0.1", bad)


class TestRoutingTable:
    def test_owner_is_deterministic(self):
        table = RoutingTable([ALPHA, BETA, GAMMA], epoch=1)
        again = RoutingTable([GAMMA, ALPHA, BETA], epoch=1)
        for producer in (f"producer-{i}" for i in range(50)):
            assert table.owner(producer) == again.owner(producer)

    def test_ownership_ignores_addresses(self):
        """Ring points hash names, so a shard rebinding its port after a
        crash-restart moves zero producers."""
        before = RoutingTable([ALPHA, BETA], epoch=1)
        rebound = RoutingTable(
            [ShardInfo("alpha", "127.0.0.1", 9999), BETA], epoch=2
        )
        for producer in (f"producer-{i}" for i in range(50)):
            assert before.owner(producer).name == rebound.owner(producer).name

    def test_all_shards_reachable(self):
        table = RoutingTable([ALPHA, BETA, GAMMA], epoch=1)
        owners = {
            table.owner(f"producer-{i}").name for i in range(500)
        }
        assert owners == {"alpha", "beta", "gamma"}

    def test_with_and_without_shard_bump_the_epoch(self):
        table = RoutingTable([ALPHA, BETA], epoch=3)
        grown = table.with_shard(GAMMA)
        assert grown.epoch == 4 and len(grown.shards()) == 3
        shrunk = grown.without_shard("beta")
        assert shrunk.epoch == 5 and shrunk.names() == ["alpha", "gamma"]

    def test_removing_the_last_shard_is_loud(self):
        with pytest.raises(ValidationError):
            RoutingTable([ALPHA], epoch=1).without_shard("alpha")

    def test_duplicate_names_are_loud(self):
        with pytest.raises(ValidationError):
            RoutingTable(
                [ALPHA, ShardInfo("alpha", "10.0.0.2", 8000)], epoch=1
            )

    def test_payload_round_trip(self):
        table = RoutingTable([ALPHA, BETA, GAMMA], epoch=7)
        clone = RoutingTable.from_payload(table.to_payload())
        assert clone.epoch == 7
        assert clone.names() == table.names()
        for producer in (f"p-{i}" for i in range(100)):
            assert clone.owner(producer) == table.owner(producer)


class TestMovedGrammar:
    def test_round_trip(self):
        message = format_moved(9, GAMMA)
        epoch, name, host, port = parse_moved(message)
        assert (epoch, name, host, port) == (9, "gamma", "10.0.0.9", 7003)

    def test_parse_rejects_non_moved_text(self):
        assert parse_moved("authentication failed") is None

    def test_format_is_the_documented_grammar(self):
        assert format_moved(3, ALPHA) == (
            "MOVED epoch=3 shard=alpha addr=127.0.0.1:7001"
        )

    def test_ipv6_hosts_travel_bracketed_and_round_trip(self):
        # Regression: the old host pattern ([^\s:]+) forbade colons, so
        # an IPv6 redirect parsed as None and the client treated the
        # MOVED as a plain refusal.
        shard = ShardInfo("v6", "::1", 9000)
        message = format_moved(2, shard)
        assert message == "MOVED epoch=2 shard=v6 addr=[::1]:9000"
        assert parse_moved(message) == (2, "v6", "::1", 9000)
        full = ShardInfo("v6full", "2001:db8::42", 7443)
        assert parse_moved(format_moved(5, full)) == (
            5, "v6full", "2001:db8::42", 7443
        )

    def test_legacy_unbracketed_ipv4_still_parses(self):
        assert parse_moved("MOVED epoch=2 shard=a addr=10.0.0.9:9000") == (
            2, "a", "10.0.0.9", 9000
        )
        # The pre-fix failure mode stays a refusal, never a bad split.
        assert parse_moved("MOVED epoch=2 shard=a addr=::1:9000") is None


class TestStabilityProperties:
    """The minimal-movement contract, over random fleets."""

    @settings(max_examples=60, deadline=None)
    @given(names=shard_names, producers=producer_ids)
    def test_adding_a_shard_only_moves_producers_onto_it(
        self, names, producers
    ):
        table = RoutingTable(_fleet(names), epoch=1)
        new = ShardInfo("zz-new-shard", "127.0.0.1", 9000)
        grown = table.with_shard(new)
        for producer in producers:
            before = table.owner(producer).name
            after = grown.owner(producer).name
            assert after in (before, new.name)

    @settings(max_examples=60, deadline=None)
    @given(names=shard_names, producers=producer_ids, data=st.data())
    def test_removing_a_shard_only_moves_its_own_producers(
        self, names, producers, data
    ):
        if len(names) < 2:
            return  # removing the only shard is a (tested) error
        table = RoutingTable(_fleet(names), epoch=1)
        victim = data.draw(st.sampled_from(names))
        shrunk = table.without_shard(victim)
        for producer in producers:
            before = table.owner(producer).name
            after = shrunk.owner(producer).name
            if before != victim:
                assert after == before
            else:
                assert after != victim

    @settings(max_examples=30, deadline=None)
    @given(names=shard_names, producers=producer_ids)
    def test_remove_then_readd_restores_every_assignment(
        self, names, producers
    ):
        if len(names) < 2:
            return
        table = RoutingTable(_fleet(names), epoch=1)
        victim = table.shards()[0]
        cycled = table.without_shard(victim.name).with_shard(victim)
        for producer in producers:
            assert cycled.owner(producer).name == table.owner(producer).name
