"""The round lifecycle state machine, exhaustively.

``open → serving → draining → closed → retired`` with forward-only
skips — the one authoritative answer to "what is round 7 doing?".
These tests enumerate the complete transition relation (every legal
move succeeds, every one of the remaining 5x5 - 7 moves raises),
then pin the behavior the machine gates in a real
:class:`~repro.pipeline.service.rounds.RoundState`: draining refuses
new records while staged work still commits, and retiring frees the
round's store handles so its id can be re-registered.
"""

from __future__ import annotations

import asyncio
import itertools

import pytest

from repro.exceptions import ValidationError
from repro.pipeline.collect import wire
from repro.pipeline.service.lifecycle import (
    CLOSED,
    DRAINING,
    LEGAL_TRANSITIONS,
    OPEN,
    PHASES,
    RETIRED,
    SERVING,
    RoundLifecycle,
)
from repro.pipeline.service.quotas import ServiceLimits
from repro.pipeline.service.rounds import RoundRegistry

ILLEGAL = [
    pair
    for pair in itertools.product(PHASES, repeat=2)
    if pair not in LEGAL_TRANSITIONS
]


class TestTransitionRelation:
    def test_relation_is_exactly_the_documented_seven(self):
        assert LEGAL_TRANSITIONS == {
            (OPEN, SERVING),
            (OPEN, DRAINING),
            (OPEN, CLOSED),
            (SERVING, DRAINING),
            (SERVING, CLOSED),
            (DRAINING, CLOSED),
            (CLOSED, RETIRED),
        }

    @pytest.mark.parametrize("source,target", sorted(LEGAL_TRANSITIONS))
    def test_every_legal_transition_succeeds(self, source, target):
        lifecycle = RoundLifecycle(7, phase=source)
        assert lifecycle.can_transition(target)
        lifecycle.transition(target)
        assert lifecycle.phase == target

    @pytest.mark.parametrize("source,target", ILLEGAL)
    def test_every_illegal_transition_raises(self, source, target):
        lifecycle = RoundLifecycle(7, phase=source)
        assert not lifecycle.can_transition(target)
        with pytest.raises(ValidationError, match="cannot move"):
            lifecycle.transition(target)
        assert lifecycle.phase == source  # unchanged after the refusal

    def test_transitions_never_move_backward(self):
        order = {phase: index for index, phase in enumerate(PHASES)}
        assert all(order[a] < order[b] for a, b in LEGAL_TRANSITIONS)

    def test_retired_is_terminal(self):
        assert not any(a == RETIRED for a, _ in LEGAL_TRANSITIONS)
        assert RoundLifecycle(1, phase=RETIRED).is_terminal

    def test_retired_only_reachable_from_closed(self):
        assert [a for a, b in LEGAL_TRANSITIONS if b == RETIRED] == [CLOSED]

    def test_unknown_phase_is_loud(self):
        with pytest.raises(ValidationError, match="unknown lifecycle phase"):
            RoundLifecycle(1, phase="paused")
        with pytest.raises(ValidationError, match="unknown lifecycle phase"):
            RoundLifecycle(1).transition("paused")

    def test_error_names_round_and_legal_targets(self):
        with pytest.raises(ValidationError, match=r"round 42 .*'serving'"):
            RoundLifecycle(42, phase=CLOSED).transition(SERVING)


class TestQueries:
    def test_only_serving_accepts_anything(self):
        for phase in PHASES:
            lifecycle = RoundLifecycle(1, phase=phase)
            assert lifecycle.accepts_sessions == (phase == SERVING)
            assert lifecycle.accepts_records == (phase == SERVING)

    def test_require_passes_and_fails_loudly(self):
        lifecycle = RoundLifecycle(3, phase=DRAINING)
        lifecycle.require(DRAINING, CLOSED)
        with pytest.raises(ValidationError, match="round 3 is 'draining'"):
            lifecycle.require(SERVING)


def _record_frame(m: int, round_id: int, seq: int) -> wire.Record:
    import numpy as np

    rows = np.packbits(np.ones((1, m), dtype=np.uint8), axis=1)
    inner = wire.dump_chunk(rows, m, round_id=round_id)
    return wire.Record(m=m, round_id=round_id, seq=seq, frame=inner)


class TestRoundStateGates:
    """The machine wired into a real round: staging and handle release."""

    def _open(self, tmp_path, **kwargs):
        from repro.pipeline import ShardStore

        registry = RoundRegistry()
        state = registry.open_round(
            8, 5, ShardStore(str(tmp_path)), ServiceLimits(), **kwargs
        )
        return registry, state

    def test_open_round_serves_by_default(self, tmp_path):
        registry, state = self._open(tmp_path)
        assert state.lifecycle.phase == SERVING
        asyncio.run(state.close())

    def test_coordinator_managed_round_starts_open(self, tmp_path):
        registry, state = self._open(tmp_path, serve=False)
        assert state.lifecycle.phase == OPEN
        result = state.stage_record("edge-1", _record_frame(8, 5, 0), {})
        assert result["status"] == "refused"
        assert "round 5 is open" in result["detail"]
        asyncio.run(state.close())

    def test_draining_refuses_new_records_but_staged_work_commits(
        self, tmp_path
    ):
        async def scenario():
            registry, state = self._open(tmp_path)
            staged: dict[int, bytes] = {}
            fresh = state.stage_record("edge-1", _record_frame(8, 5, 0), staged)
            assert fresh["status"] == "fresh"
            staged[0] = fresh["frame"]
            state.drain()
            # Already-staged work still commits and is acked...
            await state.scheduler.submit("edge-1", [fresh])
            assert fresh["status"] == "merged"
            assert state.accumulator.n == 1
            # ...but nothing new may stage.
            late = state.stage_record("edge-1", _record_frame(8, 5, 1), {})
            assert late["status"] == "refused"
            assert "round 5 is draining" in late["detail"]
            await state.close()
            assert state.lifecycle.phase == CLOSED

        asyncio.run(scenario())

    def test_retire_requires_close_and_frees_handles(self, tmp_path):
        async def scenario():
            registry, state = self._open(tmp_path)
            fresh = state.stage_record("edge-1", _record_frame(8, 5, 0), {})
            await state.scheduler.submit("edge-1", [fresh])
            with pytest.raises(ValidationError, match="cannot move"):
                registry.retire(5)  # still serving: refused, still hosted
            assert registry.get(5) is state
            await state.close()
            retired = registry.retire(5)
            assert retired.lifecycle.phase == RETIRED
            assert registry.get(5) is None
            # Handles are freed: the writer refuses further appends...
            with pytest.raises(ValidationError, match="closed"):
                state.writer.append_frame(b"late")
            # ...and the id is re-registrable as a fresh incarnation
            # over the same durable state.
            from repro.pipeline import ShardStore

            reopened = registry.open_round(
                8, 5, ShardStore(str(tmp_path)), ServiceLimits(), resume=True
            )
            assert reopened.accumulator.n == 1  # the committed record
            assert reopened.token != state.token  # new incarnation
            await reopened.close()

        asyncio.run(scenario())

    def test_retire_unknown_round_is_loud(self, tmp_path):
        registry, state = self._open(tmp_path)
        with pytest.raises(ValidationError, match="round 9 is not hosted"):
            registry.retire(9)
        asyncio.run(state.close())
