"""Unit tests for the exhaustive (full output-distribution) audits.

These tests verify the paper's theorems *numerically*, with no closed
forms: Definition 2 on the IDUE channel and Theorem 4 on IDUE-PS.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec, IDLDP, IDUE, IDUEPS, LDP, MIN, OptimizedUnaryEncoding
from repro.audit import (
    enumerate_outputs,
    itemset_channel_row,
    unary_channel,
    verify_idue_ps_exhaustive,
    verify_unary_exhaustive,
)
from repro.exceptions import PrivacyViolationError, ValidationError


@pytest.fixture
def tiny_spec():
    """3 items, 2 levels — small enough for the power-set audit."""
    return BudgetSpec([np.log(3.0), np.log(5.0), np.log(5.0)])


class TestEnumerateOutputs:
    def test_all_distinct_rows(self):
        outputs = enumerate_outputs(3)
        assert outputs.shape == (8, 3)
        assert len({tuple(row) for row in outputs}) == 8

    def test_rejects_large_m(self):
        with pytest.raises(ValidationError):
            enumerate_outputs(20)


class TestUnaryChannel:
    def test_rows_are_distributions(self, tiny_spec):
        mech = IDUE.optimized(tiny_spec, model="opt0")
        channel = unary_channel(mech)
        assert channel.shape == (3, 8)
        assert np.allclose(channel.sum(axis=1), 1.0)

    def test_matches_direct_probability(self):
        """Spot-check Pr(y | v_0) against the product formula."""
        mech = OptimizedUnaryEncoding(1.0, m=2)
        channel = unary_channel(mech)
        a, b = mech.a[0], mech.b[0]
        # Output code 1 = bits [1, 0] (bit k = (code >> k) & 1).
        assert channel[0, 1] == pytest.approx(a * (1 - b))
        # Output code 2 = bits [0, 1].
        assert channel[0, 2] == pytest.approx((1 - a) * b)


class TestVerifyUnaryExhaustive:
    @pytest.mark.parametrize("model", ["opt0", "opt1", "opt2"])
    def test_idue_satisfies_definition_2(self, tiny_spec, model):
        mech = IDUE.optimized(tiny_spec, model=model)
        margin = verify_unary_exhaustive(mech, IDLDP(tiny_spec, MIN))
        assert margin >= -1e-9

    def test_exhaustive_agrees_with_closed_form(self, tiny_spec):
        """The worst channel ratio equals alpha_i / beta_j exactly."""
        mech = IDUE.optimized(tiny_spec, model="opt1")
        channel = unary_channel(mech)
        for i in range(3):
            for j in range(3):
                if i == j:
                    continue
                worst = np.max(channel[i] / channel[j])
                assert worst == pytest.approx(
                    mech.pair_ratio_bound(i, j), rel=1e-9
                )

    def test_violation_detected(self, tiny_spec):
        mech = IDUE(tiny_spec, [0.95, 0.6], [0.02, 0.3])
        with pytest.raises(PrivacyViolationError):
            verify_unary_exhaustive(mech, IDLDP(tiny_spec, MIN))

    def test_oue_exhaustive_at_own_epsilon(self):
        epsilon = 1.1
        mech = OptimizedUnaryEncoding(epsilon, m=4)
        margin = verify_unary_exhaustive(mech, LDP(epsilon))
        assert margin == pytest.approx(0.0, abs=1e-9)


class TestItemsetChannel:
    def test_rows_are_distributions(self, tiny_spec):
        mech = IDUEPS.optimized(tiny_spec, ell=2, model="opt1")
        one_hot = unary_channel(mech.unary)
        for itemset in ([0], [0, 1], [0, 1, 2], []):
            row = itemset_channel_row(mech, itemset, one_hot)
            assert row.sum() == pytest.approx(1.0)

    def test_mixture_weights(self, tiny_spec):
        """|x| = 1, ell = 2: row = 1/2 real + 1/2 dummy-average."""
        mech = IDUEPS.optimized(tiny_spec, ell=2, model="opt1")
        one_hot = unary_channel(mech.unary)
        row = itemset_channel_row(mech, [1], one_hot)
        dummies = one_hot[3:].mean(axis=0)
        expected = 0.5 * one_hot[1] + 0.5 * dummies
        assert np.allclose(row, expected)

    def test_monte_carlo_agreement(self, tiny_spec, rng):
        """The analytic item-set channel matches simulated Algorithm 3."""
        mech = IDUEPS.optimized(tiny_spec, ell=2, model="opt2")
        one_hot = unary_channel(mech.unary)
        itemset = [0, 2]
        row = itemset_channel_row(mech, itemset, one_hot)
        width = mech.extended_m
        weights = (1 << np.arange(width)).astype(np.int64)
        n = 40_000
        codes = np.empty(n, dtype=np.int64)
        for k in range(n):
            codes[k] = int(mech.perturb(itemset, rng).astype(np.int64) @ weights)
        empirical = np.bincount(codes, minlength=2**width) / n
        assert np.allclose(empirical, row, atol=0.01)


class TestTheorem4:
    def test_idue_ps_satisfies_minid_exhaustively(self, tiny_spec):
        """Theorem 4, verified literally over the whole power set."""
        for model in ("opt0", "opt1", "opt2"):
            mech = IDUEPS.optimized(tiny_spec, ell=2, model=model)
            margin = verify_idue_ps_exhaustive(mech, tiny_spec)
            assert margin >= -1e-9

    def test_larger_ell(self, tiny_spec):
        mech = IDUEPS.optimized(tiny_spec, ell=3, model="opt1")
        assert verify_idue_ps_exhaustive(mech, tiny_spec) >= -1e-9

    def test_toy_table2_domain(self, toy_spec):
        """Theorem 4 on the full Table II domain (m=5, ell=2, sets <= 3)."""
        mech = IDUEPS.optimized(toy_spec, ell=2, model="opt0")
        margin = verify_idue_ps_exhaustive(mech, toy_spec, max_set_size=3)
        assert margin >= -1e-9

    def test_extended_domain_size_guard(self, toy_spec):
        mech = IDUEPS.optimized(toy_spec, ell=12, model="opt1")
        with pytest.raises(ValidationError, match="too large"):
            verify_idue_ps_exhaustive(mech, toy_spec)

    def test_spec_mismatch(self, tiny_spec, toy_spec):
        mech = IDUEPS.optimized(tiny_spec, ell=2, model="opt1")
        with pytest.raises(ValidationError):
            verify_idue_ps_exhaustive(mech, toy_spec)
