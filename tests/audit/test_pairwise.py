"""Unit tests for the analytic pairwise audit."""

from __future__ import annotations

import pytest

from repro import AVG, MIN, BudgetSpec, IDLDP, IDUE, LDP, OptimizedUnaryEncoding
from repro.audit import audit_unary_pairwise
from repro.exceptions import PrivacyViolationError, ValidationError


class TestAuditPasses:
    @pytest.mark.parametrize("model", ["opt0", "opt1", "opt2"])
    def test_optimized_idue_passes_minid(self, toy_spec, model):
        mech = IDUE.optimized(toy_spec, model=model)
        report = audit_unary_pairwise(mech, IDLDP(toy_spec, MIN))
        assert report.passed
        assert report.margin >= -1e-9
        report.raise_if_failed()  # must not raise

    def test_oue_passes_its_own_ldp(self):
        epsilon = 1.3
        mech = OptimizedUnaryEncoding(epsilon, m=10)
        report = audit_unary_pairwise(mech, LDP(epsilon))
        assert report.passed
        # OUE is tight at its own epsilon.
        assert report.margin == pytest.approx(0.0, abs=1e-9)

    def test_oue_at_min_budget_passes_minid(self, toy_spec):
        """Lemma 1 reverse: min{E}-LDP implies E-MinID-LDP."""
        mech = OptimizedUnaryEncoding(toy_spec.min_epsilon, toy_spec.m)
        report = audit_unary_pairwise(mech, IDLDP(toy_spec, MIN))
        assert report.passed

    def test_avg_notion(self, toy_spec):
        mech = IDUE.optimized(toy_spec, r=AVG, model="opt1")
        assert audit_unary_pairwise(mech, IDLDP(toy_spec, AVG)).passed


class TestAuditFails:
    def test_oue_at_max_budget_fails_minid(self, toy_spec):
        """Using max{E} for everything violates the sensitive level."""
        mech = OptimizedUnaryEncoding(toy_spec.max_epsilon, toy_spec.m)
        report = audit_unary_pairwise(mech, IDLDP(toy_spec, MIN))
        assert not report.passed
        with pytest.raises(PrivacyViolationError) as excinfo:
            report.raise_if_failed()
        assert excinfo.value.ratio > excinfo.value.bound

    def test_violating_idue_parameters_detected(self, toy_spec):
        mech = IDUE(toy_spec, [0.95, 0.7], [0.02, 0.25])
        report = audit_unary_pairwise(mech, IDLDP(toy_spec, MIN))
        assert not report.passed
        assert report.worst_ratio > report.worst_bound


class TestAuditMechanics:
    def test_grouping_counts_pairs_compactly(self, toy_spec):
        mech = IDUE.optimized(toy_spec, model="opt1")
        report = audit_unary_pairwise(mech, IDLDP(toy_spec, MIN))
        # Two groups; singleton level has no within pair: 2*2 - 1 = 3.
        assert report.n_pairs_checked == 3

    def test_singleton_level_within_pair_skipped(self):
        """A domain of two singleton levels has only cross pairs."""
        spec = BudgetSpec([1.0, 2.0])
        mech = IDUE.optimized(spec, model="opt1")
        report = audit_unary_pairwise(mech, IDLDP(spec, MIN))
        assert report.n_pairs_checked == 2

    def test_ldp_notion_on_uniform_mechanism_groups_to_one(self):
        mech = OptimizedUnaryEncoding(1.0, m=50)
        report = audit_unary_pairwise(mech, LDP(1.0))
        assert report.n_pairs_checked == 1  # one group, within-pair only

    def test_domain_mismatch(self, toy_spec):
        mech = OptimizedUnaryEncoding(1.0, m=3)
        with pytest.raises(ValidationError):
            audit_unary_pairwise(mech, IDLDP(toy_spec, MIN))

    def test_non_unary_mechanism_rejected(self, toy_spec):
        with pytest.raises(ValidationError):
            audit_unary_pairwise("mechanism", IDLDP(toy_spec, MIN))
