"""Failure-injection tests: the audits must catch realistic bugs.

Each test plants a bug an implementation could plausibly ship — swapped
parameters, stale level mapping, budget-unit confusion — and verifies
that at least one audit layer rejects the corrupted mechanism.  This is
the safety net that makes refactoring the mechanisms safe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec, IDLDP, IDUE, MIN
from repro.audit import (
    audit_unary_pairwise,
    empirical_channel,
    empirical_max_ratio,
    verify_unary_exhaustive,
)
from repro.exceptions import PrivacyViolationError, ValidationError
from repro.mechanisms.base import UnaryMechanism


@pytest.fixture
def spec():
    return BudgetSpec([0.6, 2.5, 2.5])


@pytest.fixture
def good(spec):
    return IDUE.optimized(spec, model="opt0")


class TestParameterBugs:
    def test_sensitive_level_dropped_from_solve(self, spec):
        """Bug: the solve ran against a spec that forgot the sensitive
        level (everything treated as eps = 2.5)."""
        uniform = IDUE.optimized(BudgetSpec.uniform(2.5, spec.m), model="opt0")
        corrupted = IDUE(spec, uniform.level_a.repeat(spec.t), uniform.level_b.repeat(spec.t))
        report = audit_unary_pairwise(corrupted, IDLDP(spec, MIN))
        assert not report.passed

    def test_level_swap_is_utility_not_privacy_bug(self, spec, good):
        """Swapping the level parameters permutes a symmetric constraint
        set, so it stays private — the audit must NOT cry wolf — but it
        wastes the relaxed budget (worse objective)."""
        from repro.optim import worst_case_objective

        swapped = IDUE(spec, good.level_a[::-1].copy(), good.level_b[::-1].copy())
        assert audit_unary_pairwise(swapped, IDLDP(spec, MIN)).passed
        sizes = spec.level_sizes.astype(float)
        assert worst_case_objective(
            swapped.level_a, swapped.level_b, sizes
        ) > worst_case_objective(good.level_a, good.level_b, sizes)

    def test_budget_units_confused(self, spec):
        """Bug: solving with budgets accidentally doubled (e.g. someone
        passes e^eps where eps was expected upstream)."""
        inflated = IDUE.optimized(spec.scaled(2.0), model="opt1")
        # Same parameters claimed against the *real* spec must fail.
        corrupted = IDUE(spec, inflated.level_a, inflated.level_b)
        assert not audit_unary_pairwise(corrupted, IDLDP(spec, MIN)).passed

    def test_single_bit_drift(self, spec, good):
        """Bug: one bit's b parameter drifts far below its level value
        (e.g. an expand() indexing error).  Caught by the exhaustive
        channel audit even when the level-granular summary looks fine."""
        a = np.asarray(good.a).copy()
        b = np.asarray(good.b).copy()
        b[1] = b[1] / 8.0  # bit 1 now under-randomizes the zero case
        corrupted = UnaryMechanism(a, b)
        with pytest.raises(PrivacyViolationError):
            verify_unary_exhaustive(corrupted, IDLDP(spec, MIN))

    def test_ab_swap_rejected_at_construction(self, good):
        """Bug: a and b swapped entirely — constructor must refuse
        (a > b is an invariant, not an audit finding)."""
        with pytest.raises(ValidationError):
            UnaryMechanism(np.asarray(good.b), np.asarray(good.a))


class TestBehaviouralBugs:
    def test_sampler_that_ignores_parameters(self, spec, good, rng):
        """Bug: the device samples from the wrong distribution even
        though the advertised parameters are fine.  Only the behavioural
        (Monte-Carlo) audit can catch this class."""

        class LyingMechanism(UnaryMechanism):
            """Claims good parameters, perturbs with leaky ones."""

            def perturb_many(self, xs, rng=None):
                honest = UnaryMechanism(
                    np.minimum(np.asarray(self.a) * 1.6, 0.98),
                    np.asarray(self.b) / 3.0,
                )
                return honest.perturb_many(xs, rng)

        liar = LyingMechanism(np.asarray(good.a), np.asarray(good.b))
        # The parameter-level audit is fooled...
        assert audit_unary_pairwise(liar, IDLDP(spec, MIN)).passed
        # ...but the behavioural audit is not.
        estimate = empirical_channel(liar, inputs=[0, 1], n_samples=80_000, rng=rng)
        bound = np.exp(min(spec.epsilon_of(0), spec.epsilon_of(1)))
        ratio = empirical_max_ratio(estimate, 0, 1, min_probability=5e-3)
        assert ratio > bound * 1.2

    def test_honest_mechanism_passes_behavioural_audit(self, spec, good, rng):
        """Control for the test above: the honest mechanism passes."""
        estimate = empirical_channel(good, inputs=[0, 1], n_samples=80_000, rng=rng)
        bound = np.exp(min(spec.epsilon_of(0), spec.epsilon_of(1)))
        ratio = empirical_max_ratio(estimate, 0, 1, min_probability=5e-3)
        assert ratio <= bound * 1.15
