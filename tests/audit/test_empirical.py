"""Unit tests for Monte-Carlo privacy audits."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BudgetSpec,
    GeneralizedRandomizedResponse,
    IDUE,
    OptimizedUnaryEncoding,
)
from repro.audit import empirical_channel, empirical_max_ratio
from repro.exceptions import ValidationError


class TestEmpiricalChannel:
    def test_categorical_channel_close_to_analytic(self, rng):
        mech = GeneralizedRandomizedResponse(1.5, m=4)
        estimate = empirical_channel(mech, inputs=range(4), n_samples=30_000, rng=rng)
        assert np.allclose(estimate, mech.channel_matrix(), atol=0.01)

    def test_unary_channel_rows_sum_to_one(self, rng):
        mech = OptimizedUnaryEncoding(1.0, m=3)
        estimate = empirical_channel(mech, inputs=[0, 1], n_samples=5000, rng=rng)
        assert estimate.shape == (2, 8)
        assert np.allclose(estimate.sum(axis=1), 1.0)

    def test_unary_domain_guard(self, rng):
        mech = OptimizedUnaryEncoding(1.0, m=20)
        with pytest.raises(ValidationError, match="m <= 16"):
            empirical_channel(mech, inputs=[0], rng=rng)

    def test_empty_inputs_rejected(self, rng):
        mech = GeneralizedRandomizedResponse(1.0, m=3)
        with pytest.raises(ValidationError):
            empirical_channel(mech, inputs=[], rng=rng)

    def test_unsupported_mechanism(self, rng):
        with pytest.raises(ValidationError):
            empirical_channel(object(), inputs=[0], rng=rng)


class TestEmpiricalMaxRatio:
    def test_grr_ratio_within_ldp_bound(self, rng):
        epsilon = 1.2
        mech = GeneralizedRandomizedResponse(epsilon, m=4)
        estimate = empirical_channel(mech, inputs=range(4), n_samples=50_000, rng=rng)
        for x in range(4):
            for y in range(4):
                if x == y:
                    continue
                ratio = empirical_max_ratio(estimate, x, y)
                assert ratio <= np.exp(epsilon) * 1.10  # 10% statistical slack

    def test_idue_behavioural_audit(self, rng):
        """End-to-end: sampled IDUE behaviour respects the MinID bounds."""
        spec = BudgetSpec([np.log(3.0), np.log(6.0), np.log(6.0)])
        mech = IDUE.optimized(spec, model="opt0")
        estimate = empirical_channel(mech, inputs=range(3), n_samples=120_000, rng=rng)
        for i in range(3):
            for j in range(3):
                if i == j:
                    continue
                bound = np.exp(min(spec.epsilon_of(i), spec.epsilon_of(j)))
                ratio = empirical_max_ratio(estimate, i, j, min_probability=5e-3)
                assert ratio <= bound * 1.15

    def test_min_probability_filter(self):
        channel = np.array([[0.999, 0.001], [0.5, 0.5]])
        ratio = empirical_max_ratio(channel, 0, 1, min_probability=0.01)
        # The (0.001 / 0.5) column is filtered out; only column 0 counts.
        assert ratio == pytest.approx(0.999 / 0.5)

    def test_no_common_support_rejected(self):
        channel = np.array([[1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ValidationError, match="empirical mass"):
            empirical_max_ratio(channel, 0, 1, min_probability=0.5)

    def test_row_bounds_check(self):
        with pytest.raises(ValidationError):
            empirical_max_ratio(np.eye(2), 0, 5)
