"""Unit tests for multi-dimensional categorical collection."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec
from repro.exceptions import BudgetError, ValidationError
from repro.extensions import MultiAttributeCollector


@pytest.fixture
def specs():
    return [
        BudgetSpec.from_level_sizes([1.0, 2.0], [1, 3]),  # attribute 0: m=4
        BudgetSpec.uniform(1.5, 6),  # attribute 1: m=6
    ]


@pytest.fixture
def columns(rng, specs):
    n = 6000
    return [rng.integers(spec.m, size=n) for spec in specs]


class TestConstruction:
    def test_one_mechanism_per_attribute(self, specs):
        collector = MultiAttributeCollector(specs, strategy="split", model="opt1")
        assert collector.d == 2
        assert collector.mechanisms[0].m == 4
        assert collector.mechanisms[1].m == 6

    def test_unknown_strategy(self, specs):
        with pytest.raises(ValidationError):
            MultiAttributeCollector(specs, strategy="hybrid")

    def test_empty_specs(self):
        with pytest.raises(ValidationError):
            MultiAttributeCollector([])

    def test_non_spec_rejected(self):
        with pytest.raises(ValidationError):
            MultiAttributeCollector([[1.0, 2.0]])


class TestSplitStrategy:
    def test_counts_per_attribute(self, specs, columns, rng):
        collector = MultiAttributeCollector(specs, strategy="split", model="opt1")
        counts = collector.simulate_collection(columns, rng)
        assert len(counts) == 2
        assert counts[0].shape == (4,)
        assert counts[1].shape == (6,)

    def test_marginals_unbiased_statistically(self, specs, columns, rng):
        collector = MultiAttributeCollector(specs, strategy="split", model="opt1")
        n = columns[0].size
        trials = 40
        acc = [np.zeros(4), np.zeros(6)]
        for _ in range(trials):
            counts = collector.simulate_collection(columns, rng)
            estimates = collector.estimate_marginals(counts, n)
            acc[0] += estimates[0]
            acc[1] += estimates[1]
        for k, col in enumerate(columns):
            truth = np.bincount(col, minlength=collector.mechanisms[k].m)
            assert np.allclose(acc[k] / trials, truth, atol=0.03 * n)

    def test_budget_verification(self, specs, columns, rng):
        collector = MultiAttributeCollector(specs, strategy="split", model="opt1")
        generous = [spec.scaled(2.0) for spec in specs]
        collector.verify_budget(generous)  # must not raise
        tight = [spec.scaled(0.5) for spec in specs]
        with pytest.raises(BudgetError):
            collector.verify_budget(tight)

    def test_verify_budget_length_check(self, specs):
        collector = MultiAttributeCollector(specs, strategy="split", model="opt1")
        with pytest.raises(ValidationError):
            collector.verify_budget([specs[0]])


class TestSampleStrategy:
    def test_each_user_counted_once(self, specs, columns, rng):
        collector = MultiAttributeCollector(specs, strategy="sample", model="opt1")
        collector.simulate_collection(columns, rng)
        sizes = collector._last_group_sizes
        assert sum(sizes) == columns[0].size

    def test_marginals_rescaled_and_unbiased(self, specs, columns, rng):
        collector = MultiAttributeCollector(specs, strategy="sample", model="opt1")
        n = columns[0].size
        trials = 60
        acc = [np.zeros(4), np.zeros(6)]
        for _ in range(trials):
            counts = collector.simulate_collection(columns, rng)
            estimates = collector.estimate_marginals(counts, n)
            acc[0] += estimates[0]
            acc[1] += estimates[1]
        for k, col in enumerate(columns):
            truth = np.bincount(col, minlength=collector.mechanisms[k].m)
            assert np.allclose(acc[k] / trials, truth, atol=0.05 * n)

    def test_sample_needs_group_sizes(self, specs, rng):
        collector = MultiAttributeCollector(specs, strategy="sample", model="opt1")
        counts = [np.zeros(4), np.zeros(6)]
        with pytest.raises(ValidationError, match="group_sizes"):
            collector.estimate_marginals(counts, n=10)

    def test_sample_beats_split_per_attribute_variance(self, specs, rng):
        """With d = 2 and equal budgets, sampling wins: half the users at
        full budget beats all users at half budget (the usual LDP rule).
        Verified empirically on one attribute."""
        n = 20_000
        columns = [rng.integers(spec.m, size=n) for spec in specs]
        truth0 = np.bincount(columns[0], minlength=4)

        split = MultiAttributeCollector(
            [spec.scaled(0.5) for spec in specs], strategy="split", model="opt1"
        )
        sample = MultiAttributeCollector(specs, strategy="sample", model="opt1")

        def mse(collector, trials=25):
            total = 0.0
            for _ in range(trials):
                counts = collector.simulate_collection(columns, rng)
                est = collector.estimate_marginals(counts, n)
                total += float(np.sum((est[0] - truth0) ** 2))
            return total / trials

        assert mse(sample) < mse(split)
