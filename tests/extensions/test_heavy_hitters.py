"""Unit tests for the two-phase heavy-hitter protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec
from repro.datasets import ItemsetDataset
from repro.exceptions import ValidationError
from repro.extensions import TwoPhaseHeavyHitter


def _dataset_with_hitters(m: int, n: int, hitters, rng) -> ItemsetDataset:
    """Every user holds most of *hitters* plus one random rare item."""
    sets = []
    for _ in range(n):
        base = [h for h in hitters if rng.random() < 0.85]
        rare = [int(rng.integers(len(hitters), m))]
        sets.append(list(dict.fromkeys(base + rare)))
    return ItemsetDataset.from_sets(sets, m=m)


@pytest.fixture
def protocol():
    spec = BudgetSpec.uniform(3.0, 30)
    return TwoPhaseHeavyHitter(spec, ell=3, k=3, candidate_factor=3)


class TestConstruction:
    def test_parameters_validated(self):
        spec = BudgetSpec.uniform(1.0, 10)
        with pytest.raises(ValidationError):
            TwoPhaseHeavyHitter(spec, ell=2, k=11)  # k > m
        with pytest.raises(ValidationError):
            TwoPhaseHeavyHitter(spec, ell=2, k=2, phase1_fraction=0.0)
        with pytest.raises(ValidationError):
            TwoPhaseHeavyHitter(spec, ell=2, k=2, phase1_fraction=1.0)

    def test_mechanism_is_idue_ps(self, protocol):
        assert protocol.mechanism.ell == 3
        assert protocol.mechanism.m == 30


class TestUserSplit:
    def test_disjoint_and_complete(self, protocol, rng):
        phase1, phase2 = protocol.split_users(100, rng)
        combined = np.concatenate([phase1, phase2])
        assert sorted(combined.tolist()) == list(range(100))
        assert set(phase1.tolist()).isdisjoint(phase2.tolist())

    def test_fraction_respected(self, rng):
        spec = BudgetSpec.uniform(1.0, 10)
        protocol = TwoPhaseHeavyHitter(spec, ell=2, k=2, phase1_fraction=0.25)
        phase1, phase2 = protocol.split_users(1000, rng)
        assert phase1.size == 250
        assert phase2.size == 750

    def test_both_phases_nonempty_even_for_tiny_n(self, protocol, rng):
        phase1, phase2 = protocol.split_users(2, rng)
        assert phase1.size == 1 and phase2.size == 1


class TestEndToEnd:
    def test_identifies_planted_hitters(self, protocol, rng):
        hitters = (0, 1, 2)
        data = _dataset_with_hitters(30, 12_000, hitters, rng)
        result = protocol.run(data, rng)
        assert set(result.top_items.tolist()) == set(hitters)

    def test_candidates_superset_of_result(self, protocol, rng):
        data = _dataset_with_hitters(30, 5_000, (0, 1, 2), rng)
        result = protocol.run(data, rng)
        assert set(result.top_items.tolist()) <= set(result.candidates.tolist())
        assert len(result.candidates) == 9  # candidate_factor * k

    def test_estimates_scaled_to_population(self, protocol, rng):
        hitters = (0, 1, 2)
        n = 12_000
        data = _dataset_with_hitters(30, n, hitters, rng)
        result = protocol.run(data, rng)
        truth = data.true_counts()
        for item in result.top_items:
            estimate = result.estimates[int(item)]
            assert estimate == pytest.approx(truth[item], rel=0.3)

    def test_domain_mismatch(self, protocol, rng):
        data = ItemsetDataset.from_sets([[0]], m=7)
        with pytest.raises(ValidationError):
            protocol.run(data, rng)

    def test_candidate_factor_capped_by_domain(self, rng):
        spec = BudgetSpec.uniform(2.0, 5)
        protocol = TwoPhaseHeavyHitter(spec, ell=2, k=2, candidate_factor=10)
        data = _dataset_with_hitters(5, 2_000, (0,), rng)
        result = protocol.run(data, rng)
        assert len(result.candidates) == 5  # capped at m
