"""Unit tests for the PLDP combination (personalized scale factors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IDLDP, MIN
from repro.audit import audit_unary_pairwise
from repro.exceptions import ValidationError
from repro.extensions import PLDPCollector


@pytest.fixture
def collector(toy_spec):
    return PLDPCollector(toy_spec, thetas=[0.5, 1.0, 2.0], model="opt1")


class TestConstruction:
    def test_one_group_per_theta(self, collector):
        assert collector.thetas == [0.5, 1.0, 2.0]
        assert len(collector.groups) == 3

    def test_each_group_satisfies_its_scaled_spec(self, collector, toy_spec):
        """A user with factor theta gets exactly theta * E protection."""
        for theta, group in collector.groups.items():
            notion = IDLDP(toy_spec.scaled(theta), MIN)
            assert audit_unary_pairwise(group.mechanism, notion).passed

    def test_mechanism_for_unknown_theta(self, collector):
        with pytest.raises(ValidationError, match="not a configured"):
            collector.mechanism_for(3.0)

    def test_empty_thetas_rejected(self, toy_spec):
        with pytest.raises(ValidationError):
            PLDPCollector(toy_spec, thetas=[])

    def test_duplicate_thetas_collapsed(self, toy_spec):
        collector = PLDPCollector(toy_spec, thetas=[1.0, 1.0, 2.0], model="opt1")
        assert collector.thetas == [1.0, 2.0]

    def test_stricter_users_get_noisier_mechanisms(self, collector):
        """Smaller theta (stronger privacy) => larger noise coefficient."""
        strict = collector.groups[0.5]
        relaxed = collector.groups[2.0]
        assert np.all(strict.noise_weight <= relaxed.noise_weight + 1e-12)


class TestCollection:
    def test_simulation_groups_users(self, collector, rng):
        n = 3000
        items = rng.integers(collector.m, size=n)
        thetas = rng.choice([0.5, 1.0, 2.0], size=n)
        counts = collector.simulate_collection(items, thetas, rng)
        assert set(counts) <= {0.5, 1.0, 2.0}
        for c in counts.values():
            assert c.shape == (collector.m,)

    def test_unconfigured_theta_rejected(self, collector, rng):
        items = np.zeros(10, dtype=int)
        thetas = np.full(10, 7.0)
        with pytest.raises(ValidationError, match="unconfigured"):
            collector.simulate_collection(items, thetas, rng)

    def test_length_mismatch(self, collector, rng):
        with pytest.raises(ValidationError):
            collector.simulate_collection([0, 1], [1.0], rng)

    def test_combined_estimate_unbiased_statistically(self, collector, rng):
        n = 4000
        items = rng.integers(collector.m, size=n)
        thetas = rng.choice([0.5, 1.0, 2.0], size=n, p=[0.2, 0.5, 0.3])
        truth = np.bincount(items, minlength=collector.m)
        sizes = {t: int(np.sum(thetas == t)) for t in (0.5, 1.0, 2.0)}

        trials = 60
        acc = np.zeros(collector.m)
        for _ in range(trials):
            counts = collector.simulate_collection(items, thetas, rng)
            acc += collector.estimate(counts, sizes)
        mean_estimate = acc / trials
        assert np.allclose(mean_estimate, truth, atol=0.15 * n / collector.m + 30)

    def test_distribution_estimate_weights_by_group_quality(self, collector, rng):
        """All groups share one distribution; the combined estimate must
        be a convex combination (sums to ~1 after the weighting)."""
        n = 6000
        probabilities = np.array([0.4, 0.3, 0.15, 0.1, 0.05])
        items = rng.choice(collector.m, size=n, p=probabilities)
        thetas = rng.choice([0.5, 2.0], size=n)
        sizes = {t: int(np.sum(thetas == t)) for t in (0.5, 2.0)}
        counts = collector.simulate_collection(items, thetas, rng)
        estimate = collector.estimate_distribution(counts, sizes)
        assert estimate.sum() == pytest.approx(1.0, abs=0.15)
        assert np.argmax(estimate) == 0

    def test_estimate_rejects_unknown_group(self, collector):
        with pytest.raises(ValidationError):
            collector.estimate({7.0: np.zeros(collector.m)}, {7.0: 10})
