"""Unit tests for the internal validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._validation import (
    as_int_array,
    check_budget,
    check_budget_vector,
    check_non_negative_int,
    check_open_probability,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_probability_vector,
    check_rng,
)
from repro.exceptions import ValidationError


class TestCheckPositiveInt:
    def test_accepts_plain_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="x must be >= 1"):
            check_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, "x")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative_int(-1, "x")


class TestCheckPositiveFloat:
    def test_accepts_int_and_converts(self):
        value = check_positive_float(2, "x")
        assert value == 2.0 and isinstance(value, float)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_float(0.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive_float(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_positive_float(float("inf"), "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_positive_float("abc", "x")


class TestProbabilityChecks:
    def test_closed_interval_endpoints_allowed(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_open_interval_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            check_open_probability(0.0, "p")
        with pytest.raises(ValidationError):
            check_open_probability(1.0, "p")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")

    def test_vector_open_interval(self):
        arr = check_probability_vector([0.2, 0.8], "p", open_interval=True)
        assert arr.dtype == float
        with pytest.raises(ValidationError):
            check_probability_vector([0.0, 0.5], "p", open_interval=True)

    def test_vector_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_probability_vector([[0.1, 0.2]], "p")

    def test_vector_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_probability_vector([], "p")

    def test_vector_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_probability_vector([0.1, float("nan")], "p")


class TestBudgetChecks:
    def test_budget_positive(self):
        assert check_budget(0.5) == 0.5

    def test_budget_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_budget(0.0)

    def test_budget_vector(self):
        arr = check_budget_vector([1.0, 2.0])
        assert arr.tolist() == [1.0, 2.0]

    def test_budget_vector_rejects_negative_entry(self):
        with pytest.raises(ValidationError):
            check_budget_vector([1.0, -0.1])


class TestCheckRng:
    def test_none_gives_generator(self):
        assert isinstance(check_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = check_rng(42).random(3)
        b = check_rng(42).random(3)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert check_rng(gen) is gen

    def test_rejects_other_types(self):
        with pytest.raises(ValidationError):
            check_rng("seed")


class TestAsIntArray:
    def test_accepts_int_list(self):
        arr = as_int_array([1, 2, 3], "x")
        assert arr.dtype == np.int64

    def test_accepts_integral_floats(self):
        arr = as_int_array([1.0, 2.0], "x")
        assert arr.tolist() == [1, 2]

    def test_rejects_fractional_floats(self):
        with pytest.raises(ValidationError):
            as_int_array([1.5], "x")

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            as_int_array([[1, 2]], "x")
