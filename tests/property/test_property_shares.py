"""Property-based tests for split-trust blinding (hypothesis).

The whole split-trust construction rests on one algebraic identity:
for any report matrix, any keeper population, and any partition of the
reports into chunks,

    combine(blind(counts) accumulated per party)  ==  plain counts,

word for word, because additive blinding mod 2^64 is a group operation
and every party's accumulator is a mod-2^64 sum.  These tests drive
exactly that identity through the public API —
:func:`~repro.pipeline.service.shares.blind_report_chunk`,
:class:`~repro.pipeline.service.shares.BlindedAccumulator`, and
:func:`~repro.pipeline.service.shares.combine_accumulators` — for
arbitrary packed matrices, share counts 1–5, and chunk partitions, and
pin the mod-2^64 wraparound cases explicitly (a blinded word *below*
the plain count decodes only via wraparound).

Alongside the identity: blinding determinism (the resend/recovery
contract — same transcript, same words), and loud refusal when a
share stream is missing, duplicated, or tampered — the "never decode
garbage" half of the contract.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.estimation.merge import combine_shares
from repro.exceptions import EstimationError, ValidationError
from repro.pipeline import CountAccumulator
from repro.pipeline.service import (
    ROLE_KEEPER,
    BlindedAccumulator,
    blind_report_chunk,
    blinding_words,
    combine_accumulators,
    derive_share_secret,
)

SETTINGS = settings(max_examples=40, deadline=None)

# An arbitrary report stream: m in [1, 24], up to 24 report rows of m
# bits each, and a keeper population of 1-5.
report_plans = st.tuples(
    st.integers(min_value=1, max_value=24),  # m
    st.lists(st.integers(min_value=0, max_value=2**24 - 1), max_size=24),
    st.integers(min_value=1, max_value=5),  # keepers
    st.randoms(use_true_random=False),  # chunk partition choices
)


def _bits(row_ints, m: int) -> np.ndarray:
    """Rows of m bits from arbitrary ints (bit i of the int -> column i)."""
    k = len(row_ints)
    bits = np.zeros((k, m), dtype=np.uint8)
    for r, value in enumerate(row_ints):
        for c in range(m):
            bits[r, c] = (value >> c) & 1
    return bits


def _partition(k: int, rng) -> list[tuple[int, int]]:
    """A random partition of range(k) into contiguous non-empty chunks."""
    if k == 0:
        return []
    cuts = sorted(rng.sample(range(1, k), rng.randint(0, k - 1))) if k > 1 else []
    edges = [0, *cuts, k]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


def _secrets(m: int, round_id: int, producer: str, n_keepers: int) -> dict:
    key = b"property-suite-master-key"
    return {
        f"keeper-{j}": derive_share_secret(
            key,
            m=m,
            round_id=round_id,
            producer_id=producer,
            keeper_id=f"keeper-{j}",
        )
        for j in range(n_keepers)
    }


class TestBlindSplitCombineIsIdentity:
    @given(report_plans)
    @SETTINGS
    def test_combined_decode_equals_direct_tally(self, plan):
        m, row_ints, n_keepers, rng = plan
        round_id = 6
        bits = _bits(row_ints, m)
        packed = np.packbits(bits, axis=1)
        secrets = _secrets(m, round_id, "prop-producer", n_keepers)

        direct = CountAccumulator(m, round_id=round_id)
        blinded_acc = BlindedAccumulator(m, round_id=round_id)
        keeper_accs = {
            kid: BlindedAccumulator(m, round_id=round_id, role=ROLE_KEEPER)
            for kid in secrets
        }
        for seq, (lo, hi) in enumerate(_partition(len(row_ints), rng)):
            chunk = packed[lo:hi]
            direct.add_packed_reports(chunk)
            blinded, shares = blind_report_chunk(
                chunk, m=m, round_id=round_id, seq=seq, secrets=secrets
            )
            blinded_acc.absorb_frame(blinded)
            for kid, share in shares.items():
                keeper_accs[kid].absorb_frame(share)

        combined = combine_accumulators(blinded_acc, keeper_accs.values())
        assert combined.n == direct.n == len(row_ints)
        assert np.array_equal(combined.counts(), direct.counts())
        assert combined.digest() == direct.digest()

    @given(report_plans)
    @SETTINGS
    def test_any_strict_keeper_subset_decodes_nothing(self, plan):
        """Dropping even one keeper leaves the residual non-count.

        With >= 1 report and >= 1 missing 64-bit blinding stream the
        residual words are uniform mod 2^64; the chance all of them
        land inside [0, n] is ~ (n+1)/2^64 per word.  combine must
        refuse rather than hand back those random words.
        """
        m, row_ints, n_keepers, rng = plan
        assume(row_ints)  # empty rounds decode trivially from any subset
        round_id = 6
        packed = np.packbits(_bits(row_ints, m), axis=1)
        secrets = _secrets(m, round_id, "prop-producer", n_keepers)

        blinded_acc = BlindedAccumulator(m, round_id=round_id)
        keeper_accs = {
            kid: BlindedAccumulator(m, round_id=round_id, role=ROLE_KEEPER)
            for kid in secrets
        }
        blinded, shares = blind_report_chunk(
            packed, m=m, round_id=round_id, seq=0, secrets=secrets
        )
        blinded_acc.absorb_frame(blinded)
        for kid, share in shares.items():
            keeper_accs[kid].absorb_frame(share)

        dropped = rng.choice(sorted(keeper_accs))
        survivors = [
            acc for kid, acc in keeper_accs.items() if kid != dropped
        ]
        # Missing-keeper decode must refuse — the residual still carries
        # the dropped keeper's uniform blinding words, so it is not a
        # valid count vector (except with probability ~ m*(n+1)/2^64).
        with pytest.raises(EstimationError):
            combine_accumulators(blinded_acc, survivors)


class TestBlindingWordsContract:
    @given(
        st.binary(min_size=1, max_size=48),
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=1, max_value=64),
    )
    @SETTINGS
    def test_deterministic_per_transcript(self, secret, seq, m):
        a = blinding_words(secret, seq, m)
        b = blinding_words(secret, seq, m)
        assert a.dtype == np.uint64
        assert a.shape == (m,)
        assert np.array_equal(a, b)

    @given(
        st.binary(min_size=1, max_size=48),
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=8, max_value=64),
    )
    @SETTINGS
    def test_distinct_seqs_give_distinct_streams(self, secret, seq, m):
        a = blinding_words(secret, seq, m)
        b = blinding_words(secret, seq + 1, m)
        # 8+ words of 64 bits each: collision probability ~ 2^-512.
        assert not np.array_equal(a, b)

    def test_prefix_stability_is_not_promised_across_m(self):
        # Document the actual contract: the words are a function of
        # (secret, seq, m) jointly; no prefix relation across m is
        # required, only determinism at fixed m (checked above).
        a = blinding_words(b"k", 0, 4)
        assert a.shape == (4,)


class TestWraparoundPinnedExplicitly:
    def test_combine_shares_wraps_mod_2_64(self):
        # blinded word 1 sits *below* the share word: the true count 3
        # is reachable only by wrapping through 2^64.
        blinded = np.array([1, 0, 2**64 - 1], dtype=np.uint64)
        share = np.array([2**64 - 2, 2**64 - 4, 2**64 - 5], dtype=np.uint64)
        counts = combine_shares(blinded, [share], n=5)
        assert counts.dtype == np.int64
        assert counts.tolist() == [3, 4, 4]

    def test_multi_share_wraparound_cancels_exactly(self):
        m = 3
        true = np.array([5, 0, 2], dtype=np.uint64)
        r1 = np.array([2**64 - 1, 2**63, 7], dtype=np.uint64)
        r2 = np.array([2**63 + 12, 2**63 - 1, 2**64 - 3], dtype=np.uint64)
        with np.errstate(over="ignore"):
            blinded = true + r1 + r2
        counts = combine_shares(blinded, [r1, r2], n=5)
        assert counts.tolist() == [5, 0, 2]

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**64 - 1),
            min_size=1,
            max_size=16,
        ),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=30),
    )
    @SETTINGS
    def test_identity_for_arbitrary_uint64_shares(self, share_seed, k, n):
        """counts + sum(R_j) - sum(R_j) == counts for any R_j words."""
        m = len(share_seed)
        rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence(7)))
        true = rng.integers(0, n + 1, size=m).astype(np.uint64)
        shares = []
        base = np.array(share_seed, dtype=np.uint64)
        for j in range(k):
            with np.errstate(over="ignore"):
                shares.append(base * np.uint64(j + 1) + np.uint64(j))
        with np.errstate(over="ignore"):
            blinded = true + sum(shares, start=np.zeros(m, dtype=np.uint64))
        counts = combine_shares(blinded, shares, n=n)
        assert np.array_equal(counts.astype(np.uint64), true)


class TestCombineRefusals:
    def _parts(self, n_keepers: int = 3):
        m, round_id = 6, 2
        rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence(3)))
        bits = rng.integers(0, 2, size=(9, m)).astype(np.uint8)
        packed = np.packbits(bits, axis=1)
        secrets = _secrets(m, round_id, "refusal-producer", n_keepers)
        blinded_acc = BlindedAccumulator(m, round_id=round_id)
        keeper_accs = {
            kid: BlindedAccumulator(m, round_id=round_id, role=ROLE_KEEPER)
            for kid in secrets
        }
        blinded, shares = blind_report_chunk(
            packed, m=m, round_id=round_id, seq=0, secrets=secrets
        )
        blinded_acc.absorb_frame(blinded)
        for kid, share in shares.items():
            keeper_accs[kid].absorb_frame(share)
        return bits, blinded_acc, keeper_accs

    def test_duplicated_share_stream_is_refused(self):
        _, blinded_acc, keeper_accs = self._parts()
        accs = list(keeper_accs.values())
        with pytest.raises(EstimationError, match="refusing to decode"):
            combine_accumulators(blinded_acc, [*accs, accs[0]])

    def test_dropped_share_stream_is_refused(self):
        _, blinded_acc, keeper_accs = self._parts()
        accs = list(keeper_accs.values())
        with pytest.raises(EstimationError):
            combine_accumulators(blinded_acc, accs[:-1])

    def test_role_confusion_is_refused(self):
        _, blinded_acc, keeper_accs = self._parts()
        accs = list(keeper_accs.values())
        with pytest.raises(ValidationError, match="role"):
            combine_accumulators(accs[0], [blinded_acc, *accs[1:]])

    def test_intact_streams_decode(self):
        bits, blinded_acc, keeper_accs = self._parts()
        combined = combine_accumulators(blinded_acc, keeper_accs.values())
        assert np.array_equal(
            combined.counts(), bits.sum(axis=0).astype(np.int64)
        )
