"""Property-based tests for the optimization models (hypothesis).

The solvers must return *feasible* parameters for any reasonable budget
configuration — that is the privacy guarantee, so we hammer it harder
than any other invariant.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BudgetSpec
from repro.optim import build_constraints, solve_opt0, solve_opt1, solve_opt2

level_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=6.0, allow_nan=False),
        st.integers(min_value=1, max_value=50),
    ),
    min_size=1,
    max_size=5,
).map(
    lambda pairs: BudgetSpec.from_level_sizes(
        # Perturb duplicates so levels stay distinct.
        [eps + k * 1e-3 for k, (eps, _) in enumerate(pairs)],
        [size for _, size in pairs],
    )
)


class TestOpt1Properties:
    @given(level_specs)
    @settings(max_examples=40, deadline=None)
    def test_always_feasible(self, spec):
        result = solve_opt1(build_constraints(spec))
        assert result.feasible
        assert np.all(result.a > result.b)
        assert np.allclose(result.a + result.b, 1.0)

    @given(level_specs)
    @settings(max_examples=25, deadline=None)
    def test_no_worse_than_rappor(self, spec):
        from repro.optim import worst_case_objective

        result = solve_opt1(build_constraints(spec))
        p = np.exp(spec.min_epsilon / 2) / (np.exp(spec.min_epsilon / 2) + 1)
        a = np.full(spec.t, p)
        rappor = worst_case_objective(a, 1 - a, spec.level_sizes.astype(float))
        assert result.objective <= rappor * (1 + 1e-6)


class TestOpt2Properties:
    @given(level_specs)
    @settings(max_examples=40, deadline=None)
    def test_always_feasible(self, spec):
        result = solve_opt2(build_constraints(spec))
        assert result.feasible
        assert np.allclose(result.a, 0.5)
        assert np.all(result.b < 0.5)
        assert np.all(result.b > 0.0)


class TestOpt0Properties:
    @given(level_specs)
    @settings(max_examples=15, deadline=None)
    def test_always_feasible_and_dominant(self, spec):
        constraints = build_constraints(spec)
        opt0 = solve_opt0(constraints)
        assert opt0.feasible
        # Dominance over the structured models (its seeds).
        opt1 = solve_opt1(constraints)
        opt2 = solve_opt2(constraints)
        assert opt0.objective <= opt1.objective * (1 + 1e-9) + 1e-9
        assert opt0.objective <= opt2.objective * (1 + 1e-9) + 1e-9

    @given(level_specs)
    @settings(max_examples=15, deadline=None)
    def test_strict_constraint_satisfaction(self, spec):
        """opt0 output violates no constraint at all (zero tolerance)."""
        constraints = build_constraints(spec)
        result = solve_opt0(constraints)
        assert constraints.max_ratio_violation(result.a, result.b) <= 0.0
