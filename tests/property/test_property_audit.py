"""Property-based cross-validation of the audit layers (hypothesis).

The pairwise audit uses the closed-form worst ratio of Section V-B; the
exhaustive audit enumerates the channel.  On random mechanisms the two
must agree exactly — a strong check that both the closed form and the
channel construction are right.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BudgetSpec, IDLDP, LDP, MIN
from repro.audit import audit_unary_pairwise, unary_channel
from repro.mechanisms.base import UnaryMechanism

ab_pairs = st.lists(
    st.tuples(
        st.floats(min_value=0.30, max_value=0.95),
        st.floats(min_value=0.03, max_value=0.25),
    ),
    min_size=2,
    max_size=5,
)


def _mechanism(params) -> UnaryMechanism:
    a = np.array([p[0] for p in params])
    b = np.array([p[1] for p in params])
    return UnaryMechanism(a, b)


class TestClosedFormMatchesChannel:
    @given(ab_pairs)
    @settings(max_examples=30, deadline=None)
    def test_pair_ratio_bound_equals_channel_max(self, params):
        """a_i(1-b_j) / (b_i(1-a_j)) == max_y Pr(y|v_i)/Pr(y|v_j)."""
        mech = _mechanism(params)
        channel = unary_channel(mech)
        for i in range(mech.m):
            for j in range(mech.m):
                if i == j:
                    continue
                channel_max = float(np.max(channel[i] / channel[j]))
                assert channel_max == pytest.approx(
                    mech.pair_ratio_bound(i, j), rel=1e-9
                )

    @given(ab_pairs)
    @settings(max_examples=30, deadline=None)
    def test_ldp_epsilon_bounds_every_channel_ratio(self, params):
        """mech.ldp_epsilon() really is the channel's worst log-ratio."""
        mech = _mechanism(params)
        channel = np.log(unary_channel(mech))
        worst = max(
            float(np.max(channel[i] - channel[j]))
            for i in range(mech.m)
            for j in range(mech.m)
            if i != j
        )
        assert mech.ldp_epsilon() == pytest.approx(worst, rel=1e-9)


class TestAuditConsistency:
    @given(ab_pairs, st.floats(min_value=0.3, max_value=4.0))
    @settings(max_examples=30, deadline=None)
    def test_pairwise_verdict_matches_direct_ldp_check(self, params, epsilon):
        """The pairwise audit against eps-LDP agrees with comparing the
        mechanism's own ldp_epsilon to eps."""
        mech = _mechanism(params)
        report = audit_unary_pairwise(mech, LDP(epsilon))
        should_pass = mech.ldp_epsilon() <= epsilon + 1e-9
        assert report.passed == should_pass

    @given(ab_pairs)
    @settings(max_examples=20, deadline=None)
    def test_minid_verdict_consistent_across_levels(self, params):
        """Audit verdict is invariant to how items are grouped into a
        spec when the budgets and parameters are the same per item."""
        mech = _mechanism(params)
        m = mech.m
        budgets = np.linspace(1.0, 2.0, m)
        spec = BudgetSpec(budgets)
        direct = all(
            mech.pair_ratio_bound(i, j)
            <= np.exp(min(budgets[i], budgets[j])) * (1 + 1e-9)
            for i in range(m)
            for j in range(m)
            if i != j
        )
        report = audit_unary_pairwise(mech, IDLDP(spec, MIN))
        assert report.passed == direct
