"""Property-based tests for the collection subsystem (hypothesis).

Three algebraic identities must hold for *every* input, not just the
cases a hand-written test thinks of:

* serialize → deserialize is the identity on accumulator state and on
  packed chunks (and re-serialization is byte-stable);
* ``merge_all`` over an arbitrary partition of the users equals the
  single-pass aggregation — with every shard making a wire round trip
  first, the cross-machine shape;
* spill → replay through a :class:`ShardStore` reproduces the in-memory
  counts bit for bit, for both the ``bitexact`` and ``fast`` samplers.
"""

from __future__ import annotations

import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms import OptimizedUnaryEncoding
from repro.pipeline import CountAccumulator, ShardStore, stream_counts
from repro.pipeline.collect import wire

widths = st.integers(min_value=1, max_value=70)
round_ids = st.integers(min_value=-(2**31), max_value=2**31)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _random_accumulator(m, round_id, seed, n_max=40) -> CountAccumulator:
    rng = np.random.default_rng(seed)
    acc = CountAccumulator(m, round_id=round_id)
    n = int(rng.integers(0, n_max))
    if n:
        acc.add_reports((rng.random((n, m)) < rng.random()).astype(np.int8))
    return acc


class TestSerializeDeserializeIdentity:
    @given(widths, round_ids, seeds)
    @settings(max_examples=60, deadline=None)
    def test_snapshot_identity(self, m, round_id, seed):
        acc = _random_accumulator(m, round_id, seed)
        blob = wire.dumps(acc)
        clone = wire.loads(blob)
        assert clone.m == acc.m and clone.n == acc.n
        assert clone.round_id == acc.round_id
        assert np.array_equal(clone.counts(), acc.counts())
        # Byte-stable: encoding is a function of the state alone.
        assert wire.dumps(clone) == blob

    @given(widths, round_ids, seeds, st.integers(min_value=0, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_chunk_identity(self, m, round_id, seed, k):
        rng = np.random.default_rng(seed)
        bits = (rng.random((k, m)) < 0.5).astype(np.uint8)
        chunk = wire.PackedChunk(
            m=m, round_id=round_id, rows=np.packbits(bits, axis=1)
        )
        blob = wire.dumps(chunk)
        clone = wire.loads(blob)
        assert clone.m == m and clone.round_id == round_id and clone.n == k
        assert np.array_equal(clone.rows, chunk.rows)
        assert wire.dumps(clone) == blob

    @given(widths, round_ids, seeds)
    @settings(max_examples=40, deadline=None)
    def test_deserialized_merge_equals_direct_merge(self, m, round_id, seed):
        """serialize → deserialize → merge is merge: the wire adds nothing."""
        one = _random_accumulator(m, round_id, seed)
        two = _random_accumulator(m, round_id, seed + 1)
        direct = CountAccumulator.merge_all([one, two])
        via_wire = CountAccumulator.merge_all(
            [wire.loads(wire.dumps(one)), wire.loads(wire.dumps(two))]
        )
        assert via_wire.digest() == direct.digest()


class TestPartitionInvariance:
    @given(
        seeds,
        st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_all_over_any_partition_equals_single_pass(self, seed, sizes):
        """Users split across arbitrary shard sizes, each shard round-
        tripped through the wire, merge to the single-pass state."""
        m = 13
        rng = np.random.default_rng(seed)
        reports = (rng.random((sum(sizes), m)) < 0.35).astype(np.int8)
        single = CountAccumulator(m)
        single.add_reports(reports)
        shards, start = [], 0
        for size in sizes:
            shard = CountAccumulator(m)
            shard.add_reports(reports[start : start + size])
            shards.append(wire.loads(wire.dumps(shard)))
            start += size
        merged = CountAccumulator.merge_all(shards)
        assert merged.digest() == single.digest()


class TestSpillReplayBitExact:
    @given(seeds, st.sampled_from(["bitexact", "fast"]))
    @settings(max_examples=12, deadline=None)
    def test_spill_replay_reproduces_memory_counts(self, seed, sampler):
        """Spilling every chunk while streaming, then replaying the spill
        out of core, lands on the identical accumulator — per sampler."""
        m, n = 19, 300
        mechanism = OptimizedUnaryEncoding(2.0, m)
        items = np.random.default_rng(seed).integers(m, size=n)
        in_memory = stream_counts(
            mechanism, items, chunk_size=64, rng=seed, packed=True, sampler=sampler
        )
        with tempfile.TemporaryDirectory() as root:
            store = ShardStore(root)
            with store.writer(0, m) as writer:
                spilled = stream_counts(
                    mechanism,
                    items,
                    chunk_size=64,
                    rng=seed,
                    packed=True,
                    sampler=sampler,
                    chunk_sink=writer.write,
                )
            replayed = store.replay_shard(0)
        assert spilled.digest() == in_memory.digest()
        assert replayed.digest() == in_memory.digest()
        assert np.array_equal(replayed.counts(), in_memory.counts())
