"""Property-based tests for estimation (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FrequencyEstimator
from repro.datasets import ItemsetDataset
from repro.estimation import norm_sub, ps_expected_counts, top_k_items

ab_strategy = st.tuples(
    st.floats(min_value=0.35, max_value=0.95),
    st.floats(min_value=0.02, max_value=0.3),
)


class TestEstimatorAlgebra:
    @given(
        st.lists(ab_strategy, min_size=1, max_size=6),
        st.data(),
    )
    @settings(max_examples=50)
    def test_calibration_inverts_expectation(self, params, data):
        """estimate(E[counts]) == true counts, for any parameters."""
        a = np.array([p[0] for p in params])
        b = np.array([p[1] for p in params])
        n = data.draw(st.integers(min_value=1, max_value=10_000))
        truth = np.array(
            [data.draw(st.integers(min_value=0, max_value=n)) for _ in params],
            dtype=float,
        )
        estimator = FrequencyEstimator(a, b, n)
        recovered = estimator.estimate(estimator.expected_counts(truth))
        assert np.allclose(recovered, truth, atol=1e-6)

    @given(st.lists(ab_strategy, min_size=1, max_size=4), st.integers(1, 6))
    @settings(max_examples=30)
    def test_ps_scaling_linear_in_ell(self, params, ell):
        a = np.array([p[0] for p in params])
        b = np.array([p[1] for p in params])
        base = FrequencyEstimator(a, b, n=100, ell=1)
        scaled = FrequencyEstimator(a, b, n=100, ell=ell)
        counts = np.full(a.size, 40.0)
        assert np.allclose(scaled.estimate(counts), ell * base.estimate(counts))


class TestPSBiasProperty:
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40)
    def test_expected_counts_never_exceed_truth(self, set_size, ell):
        """E[estimate] == truth when |x| <= ell, strictly less otherwise."""
        items = list(range(set_size))
        data = ItemsetDataset.from_sets([items] * 10, m=8)
        expected = ps_expected_counts(data, ell)
        truth = data.true_counts().astype(float)
        if set_size <= ell:
            assert np.allclose(expected[:set_size], truth[:set_size])
        else:
            assert np.all(expected[:set_size] < truth[:set_size])


class TestNormSubProperties:
    @given(
        st.lists(st.floats(min_value=-50, max_value=100, allow_nan=False), min_size=1, max_size=20),
        st.floats(min_value=0, max_value=200),
    )
    @settings(max_examples=60)
    def test_output_nonnegative_and_sums_to_total(self, estimates, total):
        arr = np.asarray(estimates)
        result = norm_sub(arr, total)
        assert np.all(result >= 0.0)
        if result.sum() > 0:
            assert result.sum() == pytest.approx(total, rel=1e-6, abs=1e-6)


class TestTopKProperties:
    @given(
        st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=30),
        st.data(),
    )
    @settings(max_examples=50)
    def test_topk_returns_k_distinct_best_items(self, estimates, data):
        arr = np.asarray(estimates)
        k = data.draw(st.integers(min_value=1, max_value=arr.size))
        top = top_k_items(arr, k)
        assert len(set(top.tolist())) == k
        worst_selected = arr[top].min()
        not_selected = np.delete(arr, top)
        if not_selected.size:
            assert np.all(not_selected <= worst_selected + 1e-12)
