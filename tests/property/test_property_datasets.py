"""Property-based tests for datasets and simulation (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PaddingSampler
from repro.datasets import ItemsetDataset
from repro.simulation import simulate_counts_from_true

sets_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=9), min_size=0, max_size=8),
    min_size=1,
    max_size=30,
)


class TestItemsetDatasetProperties:
    @given(sets_strategy)
    def test_roundtrip_through_csr(self, raw_sets):
        data = ItemsetDataset.from_sets(raw_sets, m=10)
        rebuilt = [list(s) for s in data.iter_sets()]
        deduped = [list(dict.fromkeys(s)) for s in raw_sets]
        assert rebuilt == deduped

    @given(sets_strategy)
    def test_true_counts_match_membership(self, raw_sets):
        data = ItemsetDataset.from_sets(raw_sets, m=10)
        counts = data.true_counts()
        for item in range(10):
            expected = sum(1 for s in raw_sets if item in s)
            assert counts[item] == expected

    @given(sets_strategy)
    def test_set_sizes_sum_to_flat_length(self, raw_sets):
        data = ItemsetDataset.from_sets(raw_sets, m=10)
        assert int(data.set_sizes.sum()) == data.flat_items.size

    @given(sets_strategy, st.integers(min_value=1, max_value=5))
    def test_subset_users_preserves_content(self, raw_sets, seed):
        data = ItemsetDataset.from_sets(raw_sets, m=10)
        rng = np.random.default_rng(seed)
        ids = rng.choice(data.n, size=min(3, data.n), replace=False)
        sub = data.subset_users(ids)
        for k, u in enumerate(ids):
            assert sub.user_items(k).tolist() == data.user_items(int(u)).tolist()


class TestSimulationProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40)
    def test_counts_within_bounds(self, ones, seed):
        n = 50
        rng = np.random.default_rng(seed)
        counts = simulate_counts_from_true(ones, n, 0.7, 0.2, rng)
        assert np.all(counts >= 0)
        assert np.all(counts <= n)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25)
    def test_degenerate_probabilities_near_limits(self, seed):
        """a near 1 and b near 0: counts concentrate on the holders."""
        rng = np.random.default_rng(seed)
        ones = np.array([30, 0])
        counts = simulate_counts_from_true(ones, 30, 0.999, 0.001, rng)
        assert counts[0] >= 25
        assert counts[1] <= 5

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_ps_sample_many_total_is_n(self, m, ell, seed):
        """Every user contributes exactly one sampled element."""
        rng = np.random.default_rng(seed)
        sets = [
            rng.choice(m, size=int(rng.integers(0, m + 1)), replace=False).tolist()
            for _ in range(20)
        ]
        data = ItemsetDataset.from_sets(sets, m=m)
        sampler = PaddingSampler(m, ell)
        sampled = sampler.sample_many(data.flat_items, data.offsets, rng)
        assert sampled.size == data.n
        histogram = np.bincount(sampled, minlength=m + ell)
        assert int(histogram.sum()) == data.n
