"""Cross-backend equivalence properties (hypothesis).

Every registered compute backend must be interchangeable with the numpy
baseline under the kernel contracts:

* the packed columnwise popcount is exact integer math, so counts are
  byte-identical on every backend, for every matrix;
* ``exactness="bitexact"`` sampling runs the frozen float64 path, which
  never reaches a compute backend — fixed-seed packed output is
  therefore byte-identical regardless of the configured backend;
* ``exactness="fast"`` sampling may consume the generator differently
  per backend (the threaded backend spawns child streams per tile), so
  only the *distribution* is pinned: per-bit rates must sit inside a
  wide exact binomial envelope.

Backends whose optional dependency is absent (numba without the
``numba`` extra) are skipped cleanly, never failed: the suite's job is
to verify every backend that *can* run here, and CI runs it again with
the extra installed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.kernels import (
    BITEXACT,
    FAST,
    available_compute_backends,
    get_compute_backend,
    packed_column_counts,
    packed_width,
)
from repro.mechanisms import OptimizedUnaryEncoding

BACKENDS = sorted(available_compute_backends())


def _backend_param(name):
    return pytest.param(name, id=name)


@pytest.fixture(params=[_backend_param(name) for name in BACKENDS])
def backend_name(request):
    return request.param


packed_matrices = st.builds(
    lambda seed, rows, m: (seed, rows, m),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rows=st.integers(min_value=0, max_value=600),
    m=st.integers(min_value=1, max_value=257),
)


@given(case=packed_matrices)
@settings(max_examples=40, deadline=None)
def test_popcount_identical_across_backends(case):
    seed, rows, m = case
    width = packed_width(m)
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 256, size=(rows, width), dtype=np.uint8)
    pad_bits = 8 * width - m
    if pad_bits:
        matrix[:, -1] &= (0xFF << pad_bits) & 0xFF
    expected = packed_column_counts(matrix, m)
    for name in BACKENDS:
        counts = get_compute_backend(name).packed_column_counts(matrix, m)
        assert counts.dtype == np.int64
        assert np.array_equal(counts, expected), name


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=1, max_value=300),
    m=st.integers(min_value=1, max_value=96),
)
@settings(max_examples=25, deadline=None)
def test_bitexact_output_identical_across_backends(seed, n, m):
    # Bitexact sampling is compute-independent by construction; this
    # property pins that the plumbing really keeps it that way.
    mechanism = OptimizedUnaryEncoding(1.5, m)
    items = np.arange(n, dtype=np.int64) % m
    base = mechanism.perturb_many_packed(
        items, np.random.default_rng(seed), sampler=BITEXACT
    )
    for name in BACKENDS:
        out = mechanism.perturb_many_packed(
            items, np.random.default_rng(seed), sampler=BITEXACT.with_compute(name)
        )
        assert np.array_equal(out, base), name


def test_bitexact_accumulator_state_identical_across_backends():
    from repro.pipeline import CountAccumulator

    rng = np.random.default_rng(77)
    m = 171
    matrix = rng.integers(0, 256, size=(4096, packed_width(m)), dtype=np.uint8)
    pad_bits = 8 * packed_width(m) - m
    matrix[:, -1] &= (0xFF << pad_bits) & 0xFF
    digests = set()
    for name in BACKENDS:
        acc = CountAccumulator(m, compute=name)
        acc.add_packed_reports(matrix)
        digests.add(acc.digest())
    assert len(digests) == 1


def test_fast_per_bit_rates_match_distribution(backend_name):
    # Fast sampling is distribution-correct per backend, not
    # stream-identical: check each backend's empirical per-bit rate
    # against an exact binomial envelope so the test is deterministic
    # yet catches any systematic bias a backend could introduce.
    p = 47.0 / 256.0
    n = 40_000
    sampler = FAST.with_compute(backend_name)
    backend = sampler.compute_backend()
    out = backend.packed_bernoulli(
        p, n, sampler.make_generator(np.random.SeedSequence(1234))
    )
    ones = int(np.unpackbits(out, axis=1, count=1).sum())
    lo, hi = stats.binom.ppf([1e-10, 1.0 - 1e-10], n, p)
    assert lo <= ones <= hi, (backend_name, ones, (lo, hi))


def test_fast_stream_counts_distribution_across_backends(backend_name):
    # End to end: the engine with sampler="fast" on each backend lands
    # inside the envelope the mechanism's law implies per bit.
    from repro.pipeline import stream_counts

    m, n = 32, 20_000
    mechanism = OptimizedUnaryEncoding(2.0, m)
    sampler = FAST.with_compute(backend_name)
    acc = stream_counts(
        mechanism,
        np.zeros(n, dtype=np.int64),
        chunk_size=4096,
        rng=sampler.make_generator(np.random.SeedSequence(9)),
        packed=True,
        sampler=sampler,
    )
    counts = acc.counts()
    # Bit 0 fires at rate a (the true item); the rest at rate b.
    for index, rate in [(0, mechanism.a[0]), (1, mechanism.b[1])]:
        lo, hi = stats.binom.ppf([1e-10, 1.0 - 1e-10], n, rate)
        assert lo <= counts[index] <= hi, (backend_name, index)


def test_absent_backends_skip_cleanly():
    # The suite parameterizes over *available* backends only; a backend
    # registered but missing its dependency must not appear (and must
    # still be resolvable-with-a-clear-error, covered in unit tests).
    from repro.kernels import compute_backend_names

    for name in set(compute_backend_names()) - set(BACKENDS):
        assert name not in BACKENDS
