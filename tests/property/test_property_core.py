"""Property-based tests for core privacy abstractions (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AVG, MAX, MIN, BudgetSpec, IDLDP
from repro.core.notions import ldp_budget_implied_by_minid

budgets_strategy = st.lists(
    st.floats(min_value=0.05, max_value=8.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
)


class TestBudgetSpecProperties:
    @given(budgets_strategy)
    def test_levels_partition_domain(self, budgets):
        spec = BudgetSpec(budgets)
        assert int(spec.level_sizes.sum()) == spec.m
        items = [i for level in spec.levels() for i in level.items]
        assert sorted(items) == list(range(spec.m))

    @given(budgets_strategy)
    def test_item_epsilons_consistent_with_levels(self, budgets):
        spec = BudgetSpec(budgets)
        for level in spec.levels():
            for item in level.items:
                assert spec.epsilon_of(item) == pytest.approx(level.epsilon)

    @given(budgets_strategy, st.floats(min_value=0.1, max_value=10.0))
    def test_scaling_preserves_structure(self, budgets, factor):
        spec = BudgetSpec(budgets)
        scaled = spec.scaled(factor)
        assert scaled.t == spec.t
        assert np.array_equal(scaled.item_level, spec.item_level)
        assert np.allclose(scaled.item_epsilons, spec.item_epsilons * factor)

    @given(budgets_strategy)
    def test_min_max_bracket_all_items(self, budgets):
        spec = BudgetSpec(budgets)
        assert spec.min_epsilon <= spec.item_epsilons.min() + 1e-12
        assert spec.max_epsilon >= spec.item_epsilons.max() - 1e-12


class TestRFunctionProperties:
    @given(budgets_strategy)
    def test_min_avg_max_ordering(self, budgets):
        """min <= avg <= max holds entry-wise on every pair matrix."""
        eps = np.asarray(BudgetSpec(budgets).level_epsilons)
        min_m = MIN.pairwise_matrix(eps)
        avg_m = AVG.pairwise_matrix(eps)
        max_m = MAX.pairwise_matrix(eps)
        assert np.all(min_m <= avg_m + 1e-12)
        assert np.all(avg_m <= max_m + 1e-12)

    @given(budgets_strategy)
    def test_pair_budget_symmetry(self, budgets):
        spec = BudgetSpec(budgets)
        notion = IDLDP(spec, MIN)
        for i in range(min(spec.m, 4)):
            for j in range(min(spec.m, 4)):
                assert notion.pair_budget(i, j) == pytest.approx(
                    notion.pair_budget(j, i)
                )

    @given(budgets_strategy)
    def test_lemma1_sandwich(self, budgets):
        """min{E} <= implied-LDP budget <= min(max E, 2 min E)."""
        eps = np.asarray(budgets)
        implied = ldp_budget_implied_by_minid(eps)
        assert implied >= eps.min() - 1e-12
        assert implied <= min(eps.max(), 2 * eps.min()) + 1e-12


class TestCompositionProperties:
    @given(
        budgets_strategy,
        st.lists(st.floats(min_value=0.01, max_value=0.2), min_size=1, max_size=5),
    )
    @settings(max_examples=30)
    def test_composed_budget_is_sum(self, budgets, fractions):
        """Theorem 2: recorded budgets add element-wise, in any order."""
        from repro import CompositionAccountant

        spec = BudgetSpec(budgets)
        accountant = CompositionAccountant(spec)
        total_fraction = sum(fractions)
        if total_fraction > 1.0:
            fractions = [f / total_fraction for f in fractions]
        for fraction in fractions:
            accountant.record(BudgetSpec(spec.item_epsilons * fraction))
        expected = spec.item_epsilons * sum(fractions)
        assert np.allclose(accountant.spent(), expected)
