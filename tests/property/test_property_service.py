"""Property-based tests for the key registry and multi-round router.

Two families of properties, both adversarially relevant:

* **Isolation**: for *any* set of hosted rounds and *any* interleaving
  of record submissions across rounds, producers, and connections
  (including duplicate and out-of-order submissions), every record
  lands in exactly the round its envelope names and in no other —
  each round's final counts equal the plain merge of exactly its own
  fresh records.  The router never cross-merges.
* **Authentication**: a PROOF computed with anything other than the
  producer's own registered key is always refused, for arbitrary
  producer populations, key assignments, and wrong-key choices
  (another producer's key, a perturbed key, the default key when an
  individual key exists).  And :class:`KeyRegistry` lookup/rotation
  semantics hold for arbitrary keyfiles.

The isolation property drives the real commit pipeline
(:class:`RoundRegistry` + :class:`GroupCommitScheduler` on disk) but
feeds it through the staging API directly rather than sockets, so
hypothesis can afford many examples; the socket path is pinned by the
behavioral and fault-injection suites.
"""

from __future__ import annotations

import asyncio
import os
import tempfile

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pipeline import CountAccumulator, KeyRegistry, RoundRegistry, ShardStore
from repro.pipeline.collect import wire
from repro.pipeline.service import derive_producer_key, session_mac
from repro.pipeline.service.auth import verify_session_mac
from repro.pipeline.service.quotas import ServiceLimits

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

round_plans = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=24),  # m
        st.integers(min_value=-3, max_value=40),  # round_id
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda spec: spec[1],
)

# A submission plan: (round_index, producer_index, seq, payload_seed).
submission_plans = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=2**16),
    ),
    min_size=1,
    max_size=24,
)


def _chunk_frame(m: int, round_id: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    k = int(rng.integers(1, 5))
    bits = (rng.random((k, m)) < 0.5).astype(np.uint8)
    return wire.dump_chunk(np.packbits(bits, axis=1), m, round_id=round_id)


class TestRouterNeverCrossMerges:
    @SETTINGS
    @given(rounds=round_plans, plan=submission_plans)
    def test_interleaved_submissions_stay_in_their_round(self, rounds, plan):
        with tempfile.TemporaryDirectory() as root:
            store = ShardStore(root)
            limits = ServiceLimits()
            registry = RoundRegistry()
            states = [
                registry.open_round(
                    m,
                    round_id,
                    store.namespaced(f"round_{index}"),
                    limits,
                    scoped=True,
                )
                for index, (m, round_id) in enumerate(rounds)
            ]

            # Expected per-round state: merge exactly the records whose
            # (producer, seq) is fresh for that round, in plan order.
            expected = {
                state.round_id: CountAccumulator(
                    state.m, round_id=state.round_id
                )
                for state in states
            }
            first_payload: dict[tuple[int, str, int], bytes] = {}

            async def drive() -> None:
                for round_index, producer_index, seq, seed in plan:
                    state = states[round_index % len(states)]
                    producer = f"producer-{producer_index}"
                    key = (state.round_id, producer, seq)
                    frame = first_payload.setdefault(
                        key, _chunk_frame(state.m, state.round_id, seed)
                    )
                    record = wire.Record(
                        m=state.m,
                        round_id=state.round_id,
                        seq=seq,
                        frame=frame,
                    )
                    staged = state.stage_record(producer, record, {})
                    assert staged["status"] in ("fresh", "verify-dup")
                    if staged["status"] == "fresh":
                        expected[state.round_id].add_packed_reports(
                            wire.loads(frame).rows
                        )
                    await state.scheduler.submit(producer, [staged])
                    assert staged["status"] in ("merged", "duplicate")
                for state in states:
                    await state.close(snapshot=True)

            asyncio.run(drive())

            for state in states:
                # In-memory: the round holds exactly its own records.
                assert (
                    state.accumulator.digest()
                    == expected[state.round_id].digest()
                )
                # And so does its durable state, independently replayed.
                if state.records_merged:
                    replayed = state.store.replay_shard(0)
                    assert np.array_equal(
                        replayed.counts(),
                        expected[state.round_id].counts(),
                    )

    @SETTINGS
    @given(rounds=round_plans)
    def test_round_tokens_are_unique_per_registration(self, rounds):
        with tempfile.TemporaryDirectory() as root:
            store = ShardStore(root)
            registry = RoundRegistry()
            states = [
                registry.open_round(
                    m,
                    round_id,
                    store.namespaced(f"round_{index}"),
                    ServiceLimits(),
                    scoped=True,
                )
                for index, (m, round_id) in enumerate(rounds)
            ]
            tokens = [state.token for state in states]
            assert len(set(tokens)) == len(tokens)
            assert all(len(token) == 16 for token in tokens)

            async def teardown():
                for state in states:
                    await state.close(snapshot=False)

            asyncio.run(teardown())


producer_ids = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="=\n\r#* ", exclude_categories=("C",)
    ),
    min_size=1,
    max_size=12,
).map(str.strip).filter(bool)


class TestPerProducerKeys:
    @SETTINGS
    @given(
        producers=st.lists(producer_ids, min_size=2, max_size=5, unique=True),
        master=st.binary(min_size=8, max_size=32),
        victim=st.integers(min_value=0, max_value=4),
        thief=st.integers(min_value=0, max_value=4),
        geometry=st.tuples(
            st.integers(min_value=1, max_value=64),
            st.integers(min_value=-5, max_value=5),
        ),
    )
    def test_wrong_per_producer_key_proof_is_always_refused(
        self, producers, master, victim, thief, geometry
    ):
        """A proof for producer V minted with any key other than V's own
        never verifies — including every other producer's key and the
        registry default."""
        m, round_id = geometry
        registry = KeyRegistry(
            {p: derive_producer_key(master, p) for p in producers},
            default_key=b"default-key-0123",
        )
        victim_id = producers[victim % len(producers)]
        thief_id = producers[thief % len(producers)]
        client_nonce, server_nonce = os.urandom(16), os.urandom(16)
        token = os.urandom(16)

        right_key = registry.lookup(victim_id)
        assert right_key == derive_producer_key(master, victim_id)
        good = session_mac(
            right_key,
            m=m,
            round_id=round_id,
            producer_id=victim_id,
            client_nonce=client_nonce,
            server_nonce=server_nonce,
            round_token=token,
        )
        assert verify_session_mac(
            right_key,
            good,
            m=m,
            round_id=round_id,
            producer_id=victim_id,
            client_nonce=client_nonce,
            server_nonce=server_nonce,
            round_token=token,
        )

        wrong_keys = [b"default-key-0123", bytes(right_key)[::-1] + b"x"]
        if thief_id != victim_id:
            wrong_keys.append(registry.lookup(thief_id))
        for wrong in wrong_keys:
            forged = session_mac(
                wrong,
                m=m,
                round_id=round_id,
                producer_id=victim_id,
                client_nonce=client_nonce,
                server_nonce=server_nonce,
                round_token=token,
            )
            assert not verify_session_mac(
                right_key,
                forged,
                m=m,
                round_id=round_id,
                producer_id=victim_id,
                client_nonce=client_nonce,
                server_nonce=server_nonce,
                round_token=token,
            )
        # A proof for the right key but the wrong round token is dead too.
        stale = session_mac(
            right_key,
            m=m,
            round_id=round_id,
            producer_id=victim_id,
            client_nonce=client_nonce,
            server_nonce=server_nonce,
            round_token=os.urandom(16),
        )
        assert not verify_session_mac(
            right_key,
            stale,
            m=m,
            round_id=round_id,
            producer_id=victim_id,
            client_nonce=client_nonce,
            server_nonce=server_nonce,
            round_token=token,
        )

    @SETTINGS
    @given(
        entries=st.dictionaries(
            producer_ids,
            st.binary(min_size=8, max_size=24),
            min_size=1,
            max_size=5,
        ),
        rotated=st.binary(min_size=8, max_size=24),
    )
    def test_keyfile_roundtrip_and_rotation(self, entries, rotated):
        """Writing a keyfile, loading it, rotating one line, and looking
        up again always reflects the file — the hot-reload contract."""
        with tempfile.TemporaryDirectory() as root:
            path = os.path.join(root, "keys.txt")
            lines = [
                f"{producer} = {secret.hex()}"
                for producer, secret in entries.items()
            ]
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
            registry = KeyRegistry.from_file(path)
            for producer, secret in entries.items():
                assert registry.lookup(producer) == secret
            assert registry.lookup("never-registered-producer") is None

            target = sorted(entries)[0]
            rewritten = [
                f"{producer} = "
                f"{rotated.hex() if producer == target else secret.hex()}"
                for producer, secret in entries.items()
            ]
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("\n".join(rewritten) + "\n")
            os.utime(path, ns=(1, 1))  # force a visible stamp change
            assert registry.lookup(target) == rotated
            for producer, secret in entries.items():
                if producer != target:
                    assert registry.lookup(producer) == secret
