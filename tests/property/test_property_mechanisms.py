"""Property-based tests for mechanisms (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BudgetSpec, IDUE, MIN, PaddingSampler, itemset_budget
from repro.audit import audit_unary_pairwise
from repro.core.notions import IDLDP

small_budgets = st.lists(
    st.floats(min_value=0.2, max_value=4.0, allow_nan=False),
    min_size=2,
    max_size=6,
)


class TestIDUEPrivacyProperty:
    @given(small_budgets, st.sampled_from(["opt0", "opt1", "opt2"]))
    @settings(max_examples=25, deadline=None)
    def test_optimized_idue_always_satisfies_minid(self, budgets, model):
        """The core privacy invariant, over random budget configurations."""
        spec = BudgetSpec(budgets)
        mech = IDUE.optimized(spec, model=model)
        report = audit_unary_pairwise(mech, IDLDP(spec, MIN))
        assert report.passed


class TestPaddingSamplerProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=6),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_sample_always_in_extended_domain(self, m, ell, data):
        sampler = PaddingSampler(m, ell)
        size = data.draw(st.integers(min_value=0, max_value=m))
        itemset = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=m - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        out = sampler.sample(itemset, rng)
        assert 0 <= out < m + ell
        if len(itemset) >= ell:
            assert out in itemset  # no dummies once the set fills the pad

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=8))
    def test_eta_bounds(self, size, ell):
        sampler = PaddingSampler(m=25, ell=ell)
        eta = sampler.eta(size)
        assert 0.0 < eta <= 1.0
        if size >= ell:
            assert eta == 1.0


class TestItemsetBudgetProperties:
    @given(small_budgets, st.integers(min_value=1, max_value=5), st.data())
    @settings(max_examples=50, deadline=None)
    def test_eq17_bracketed_by_member_budgets(self, budgets, ell, data):
        """min member <= set budget <= max(max member, eps*)."""
        spec = BudgetSpec(budgets)
        size = data.draw(st.integers(min_value=1, max_value=spec.m))
        items = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=spec.m - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        budget = itemset_budget(items, spec, ell)
        members = spec.item_epsilons[items]
        assert budget >= min(members.min(), spec.min_epsilon) - 1e-9
        assert budget <= max(members.max(), spec.min_epsilon) + 1e-9

    @given(small_budgets, st.data())
    @settings(max_examples=30, deadline=None)
    def test_eq17_monotone_in_ell_for_fixed_small_set(self, budgets, data):
        """For |x| < ell, growing ell mixes in more of the dummy budget,
        pulling the set budget toward eps* = min{E} (from above)."""
        spec = BudgetSpec(budgets)
        item = data.draw(st.integers(min_value=0, max_value=spec.m - 1))
        values = [itemset_budget([item], spec, ell) for ell in (1, 2, 4, 8)]
        eps_star = spec.min_epsilon
        deltas = [abs(v - eps_star) for v in values]
        assert all(deltas[k + 1] <= deltas[k] + 1e-12 for k in range(len(deltas) - 1))
