"""Property-based tests for the packed sampling kernels (hypothesis).

The kernel must honour its distributional contract for *every*
probability, not just friendly ones: dyadic thresholds, values straddling
a fixed-point plane boundary, denormal-scale probabilities, and both
complement branches.  Empirical rates are checked against a wide exact
binomial envelope so the properties stay deterministic under fixed
hypothesis seeds yet would catch any systematic off-by-one in the
threshold arithmetic (a 1/256 rate bias is hundreds of sigmas here).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.kernels import FAST, packed_bernoulli, packed_column_counts

# Any probability, with the awkward regions force-included.
probabilities = st.one_of(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.sampled_from(
        [
            0.0,
            1.0,
            0.5,
            2.0**-8,
            47.0 / 256.0,
            47.5 / 256.0,
            1.0 - 2.0**-8,
            2.0**-53,
            2.0**-60,
            1.0 - 2.0**-53,
        ]
    ),
)


def _empirical_ones(p: float, n_lanes: int, seed: int, precision: int = 8) -> int:
    m = 64
    n = -(-n_lanes // m)
    packed = packed_bernoulli(
        np.full(m, p), n, FAST.make_generator(seed), precision=precision
    )
    return int(packed_column_counts(packed, m).sum()), n * m


class TestKernelRateProperty:
    @given(probabilities, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_rate_within_exact_binomial_envelope(self, p, seed):
        ones, lanes = _empirical_ones(p, 40_000, seed)
        if lanes * p < 1e-6:
            # Expected ones < 1e-6 (incl. subnormal p, which overflows
            # scipy's binomtest): a single set bit would itself be a
            # < 1e-6-probability event, same confidence as the envelope.
            assert ones == 0
            return
        if lanes * (1.0 - p) < 1e-6:
            assert ones == lanes
            return
        # Two-sided exact binomial test at a 1e-9 envelope: passes with
        # overwhelming probability for a faithful kernel, fails for any
        # fixed-point rounding bias >= 2^-9 (which would be > 30 sigma).
        assert stats.binomtest(ones, lanes, p).pvalue > 1e-9

    @given(
        probabilities,
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_edges_exact_at_any_precision(self, p, precision, seed):
        """p = 0 / p = 1 stay exact whatever the plane budget is."""
        ones, lanes = _empirical_ones(p, 4_096, seed, precision=precision)
        if p == 0.0:
            assert ones == 0
        elif p == 1.0:
            assert ones == lanes
        else:
            assert 0 <= ones <= lanes

    @given(
        st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_plane_boundary_has_no_off_by_one(self, jitter_steps, seed):
        """Sweep p across a plane threshold in sub-plane steps.

        An off-by-one in the fixed-point comparison shows up as the rate
        snapping to the wrong side of ``k / 2^8`` for p just below or
        just above it.
        """
        p = float(np.clip(47.0 / 256.0 + jitter_steps * 2.0**-10, 0.0, 1.0))
        ones, lanes = _empirical_ones(p, 40_000, seed)
        assert stats.binomtest(ones, lanes, p).pvalue > 1e-9

    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=77),
    )
    @settings(max_examples=40, deadline=None)
    def test_wire_format_invariants(self, p, n, m):
        """Pad bits zero, shape ceil(m/8), for every (p, n, m)."""
        packed = packed_bernoulli(np.full(m, p), n, FAST.make_generator(0))
        width = -(-m // 8)
        assert packed.shape == (n, width)
        pad_bits = 8 * width - m
        if pad_bits:
            assert not np.any(packed[:, -1] & ((1 << pad_bits) - 1))
