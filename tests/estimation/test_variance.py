"""Unit tests for variance/MSE theory (Eq. 9 and the PS extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IDUEPS
from repro.datasets import ItemsetDataset
from repro.estimation import (
    FrequencyEstimator,
    ps_estimator_mse,
    ps_expected_counts,
    ps_moment_sums,
    ue_estimator_variance,
    ue_total_mse,
)
from repro.exceptions import ValidationError
from repro.simulation import simulate_itemset_counts


class TestUEVariance:
    def test_table2_rappor_value(self):
        """RAPPOR at eps = ln4: Var = 2n per item (Table II)."""
        n = 1000
        var = ue_estimator_variance(n, 2 / 3, 1 / 3, [0.0])
        assert var[0] == pytest.approx(2 * n)

    def test_table2_oue_value(self):
        """OUE at eps = ln4: Var = (16/9) n + c_i (Table II)."""
        n = 900
        c = 123.0
        var = ue_estimator_variance(n, 0.5, 0.2, [c])
        assert var[0] == pytest.approx(16 / 9 * n + c)

    def test_total_is_sum(self):
        n = 100
        counts = [10.0, 20.0, 70.0]
        per_item = ue_estimator_variance(n, 0.6, 0.2, counts)
        assert ue_total_mse(n, 0.6, 0.2, counts) == pytest.approx(per_item.sum())

    def test_rejects_counts_above_n(self):
        with pytest.raises(ValidationError):
            ue_estimator_variance(10, 0.6, 0.2, [11.0])

    def test_rejects_a_below_b(self):
        with pytest.raises(ValidationError):
            ue_estimator_variance(10, 0.2, 0.6, [1.0])

    def test_variance_matches_empirical(self, rng):
        """Eq. 9 against the empirical variance of the fast simulator."""
        from repro.mechanisms import OptimizedUnaryEncoding
        from repro.simulation import simulate_single_item_counts

        n, m = 5000, 4
        mech = OptimizedUnaryEncoding(1.0, m)
        truth = np.array([2500, 1500, 800, 200])
        est = FrequencyEstimator.for_mechanism(mech, n)
        trials = 400
        estimates = np.empty((trials, m))
        for k in range(trials):
            counts = simulate_single_item_counts(mech, truth, n, rng)
            estimates[k] = est.estimate(counts)
        empirical_var = estimates.var(axis=0)
        theory = ue_estimator_variance(n, mech.a, mech.b, truth)
        # Sample variance of 400 trials: ~15% relative tolerance.
        assert np.allclose(empirical_var, theory, rtol=0.3)


class TestPSMoments:
    def test_moment_sums_manual(self):
        """Hand-computed s_i and q_i on a tiny dataset."""
        data = ItemsetDataset.from_sets([[0, 1], [0]], m=3)
        ell = 2
        # User 0: |x| = 2 -> pi = 1/2 for items 0, 1.
        # User 1: |x| = 1 < ell -> pi = 1/2 for item 0.
        s, q = ps_moment_sums(data, ell)
        assert s.tolist() == [1.0, 0.5, 0.0]
        assert q.tolist() == [0.5, 0.25, 0.0]

    def test_truncation_reduces_pi(self):
        data = ItemsetDataset.from_sets([[0, 1, 2, 3]], m=4)
        s, _ = ps_moment_sums(data, ell=2)
        assert np.allclose(s, 0.25)  # 1/max(4, 2)

    def test_expected_counts_unbiased_when_no_truncation(self):
        data = ItemsetDataset.from_sets([[0, 1], [1], [0, 2]], m=3)
        expected = ps_expected_counts(data, ell=3)
        assert np.allclose(expected, data.true_counts())

    def test_expected_counts_biased_down_under_truncation(self):
        data = ItemsetDataset.from_sets([[0, 1, 2, 3, 4]], m=5)
        expected = ps_expected_counts(data, ell=2)
        assert np.all(expected < data.true_counts())


class TestPSEstimatorMSE:
    def test_mse_decomposition(self, toy_spec, small_itemset_dataset):
        mech = IDUEPS.optimized(toy_spec, ell=3, model="opt1")
        mse, var, bias = ps_estimator_mse(
            small_itemset_dataset, 3, mech.a[:5], mech.b[:5]
        )
        assert np.allclose(mse, var + bias**2)
        assert np.all(var > 0)

    def test_matches_empirical_mse(self, toy_spec, rng):
        """Exact PS theory against Monte-Carlo over many trials."""
        sets = [[0, 1], [2], [0, 2, 3], [1, 3, 4], [4], [0, 1, 2, 3, 4]] * 50
        data = ItemsetDataset.from_sets(sets, m=5)
        ell = 3
        mech = IDUEPS.optimized(toy_spec, ell=ell, model="opt2")
        est = FrequencyEstimator.for_mechanism(mech, data.n)
        truth = data.true_counts().astype(float)

        trials = 600
        sq_err = np.zeros(5)
        for _ in range(trials):
            counts = simulate_itemset_counts(mech, data, rng)
            sq_err += (est.estimate(counts) - truth) ** 2
        empirical_mse = sq_err / trials
        theory_mse, _, _ = ps_estimator_mse(data, ell, mech.a[:5], mech.b[:5])
        assert np.allclose(empirical_mse, theory_mse, rtol=0.35)
