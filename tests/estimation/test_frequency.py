"""Unit tests for the unbiased frequency estimator (Theorem 3 / Eq. 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FrequencyEstimator, IDUE, IDUEPS, OptimizedUnaryEncoding
from repro.exceptions import EstimationError, ValidationError


class TestConstruction:
    def test_rejects_equal_ab(self):
        with pytest.raises(EstimationError, match="undefined"):
            FrequencyEstimator([0.5, 0.5], [0.5, 0.2], n=10)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            FrequencyEstimator([0.5], [0.2, 0.3], n=10)

    def test_for_unary_mechanism(self):
        mech = OptimizedUnaryEncoding(1.0, m=4)
        est = FrequencyEstimator.for_mechanism(mech, n=100)
        assert est.m == 4
        assert est.ell == 1

    def test_for_idue_ps_slices_real_bits(self, toy_spec):
        mech = IDUEPS.optimized(toy_spec, ell=3, model="opt1")
        est = FrequencyEstimator.for_mechanism(mech, n=50)
        assert est.m == toy_spec.m  # dummy bits excluded
        assert est.ell == 3


class TestCalibration:
    def test_exact_inverse_of_expected_counts(self):
        """estimate(E[c]) == c* exactly (Theorem 3 algebra)."""
        a = np.array([0.6, 0.7, 0.55])
        b = np.array([0.2, 0.1, 0.3])
        n = 1000
        est = FrequencyEstimator(a, b, n)
        truth = np.array([200, 300, 500])
        expected_counts = est.expected_counts(truth)
        recovered = est.estimate(expected_counts)
        assert np.allclose(recovered, truth)

    def test_ps_scaling(self):
        est = FrequencyEstimator([0.6], [0.2], n=100, ell=4)
        # counts = n*b + s*(a-b) with s = 10 sampled holders -> c* = ell*s.
        counts = np.array([100 * 0.2 + 10 * 0.4])
        assert est.estimate(counts)[0] == pytest.approx(40.0)

    def test_extra_dummy_counts_ignored(self):
        est = FrequencyEstimator([0.6, 0.7], [0.2, 0.1], n=10)
        counts = np.array([5, 6, 3, 2])  # two trailing dummy-bit counts
        assert est.estimate(counts).shape == (2,)

    def test_estimate_frequencies_divides_by_n(self):
        est = FrequencyEstimator([0.6], [0.2], n=100)
        counts = np.array([60.0])
        assert est.estimate_frequencies(counts)[0] == pytest.approx(
            est.estimate(counts)[0] / 100.0
        )

    def test_counts_validation(self):
        est = FrequencyEstimator([0.6], [0.2], n=10)
        with pytest.raises(EstimationError):
            est.estimate(np.array([-1.0]))
        with pytest.raises(EstimationError):
            est.estimate(np.array([11.0]))
        with pytest.raises(EstimationError):
            est.estimate(np.zeros((2, 2)))

    def test_expected_counts_shape_check(self):
        est = FrequencyEstimator([0.6, 0.7], [0.2, 0.1], n=10)
        with pytest.raises(EstimationError):
            est.expected_counts([1.0])


class TestStatisticalUnbiasedness:
    def test_idue_estimates_unbiased(self, toy_spec, rng):
        """Average estimate over many trials converges to the truth."""
        mech = IDUE.optimized(toy_spec, model="opt0")
        n = 2000
        items = rng.integers(toy_spec.m, size=n)
        truth = np.bincount(items, minlength=toy_spec.m)
        est = FrequencyEstimator.for_mechanism(mech, n)
        trials = 60
        acc = np.zeros(toy_spec.m)
        for _ in range(trials):
            reports = mech.perturb_many(items, rng)
            acc += est.estimate(reports.sum(axis=0))
        mean_estimate = acc / trials
        # Tolerance ~ 4 sigma of the trial-mean.
        sd = np.sqrt(
            n * mech.b * (1 - mech.b) / (mech.a - mech.b) ** 2 / trials
        )
        assert np.all(np.abs(mean_estimate - truth) < 4 * sd + 1e-9)
