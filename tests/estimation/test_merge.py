"""Unit tests for multi-round estimate merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec, FrequencyEstimator, IDUE
from repro.estimation import RoundEstimate, merge_round_estimates
from repro.exceptions import EstimationError, ValidationError
from repro.simulation import simulate_single_item_counts


class TestRoundEstimate:
    def test_from_counts(self):
        est = FrequencyEstimator([0.6, 0.7], [0.2, 0.1], n=100)
        round_est = RoundEstimate.from_counts(est, np.array([40.0, 30.0]))
        assert round_est.estimates.shape == (2,)
        expected_noise = 100 * 0.2 * 0.8 / 0.4**2
        assert round_est.noise_variance[0] == pytest.approx(expected_noise)

    def test_ps_scaling_in_noise(self):
        est = FrequencyEstimator([0.6], [0.2], n=100, ell=3)
        round_est = RoundEstimate.from_counts(est, np.array([40.0]))
        assert round_est.noise_variance[0] == pytest.approx(
            9 * 100 * 0.2 * 0.8 / 0.4**2
        )

    def test_type_check(self):
        with pytest.raises(ValidationError):
            RoundEstimate.from_counts("estimator", [1.0])


class TestMerge:
    def test_equal_rounds_reduce_to_mean(self):
        a = RoundEstimate(np.array([10.0, 20.0]), np.array([4.0, 4.0]))
        b = RoundEstimate(np.array([14.0, 22.0]), np.array([4.0, 4.0]))
        merged, variance = merge_round_estimates([a, b])
        assert merged.tolist() == [12.0, 21.0]
        assert variance.tolist() == [2.0, 2.0]

    def test_weights_favor_low_variance_round(self):
        precise = RoundEstimate(np.array([10.0]), np.array([1.0]))
        noisy = RoundEstimate(np.array([50.0]), np.array([9.0]))
        merged, _ = merge_round_estimates([precise, noisy])
        # Weighted mean = (10/1 + 50/9) / (1 + 1/9) = 14.
        assert merged[0] == pytest.approx(14.0)

    def test_empty_rounds_rejected(self):
        with pytest.raises(EstimationError):
            merge_round_estimates([])

    def test_domain_mismatch(self):
        a = RoundEstimate(np.zeros(2), np.ones(2))
        b = RoundEstimate(np.zeros(3), np.ones(3))
        with pytest.raises(ValidationError):
            merge_round_estimates([a, b])

    def test_nonpositive_variance_rejected(self):
        bad = RoundEstimate(np.zeros(2), np.array([1.0, 0.0]))
        with pytest.raises(EstimationError):
            merge_round_estimates([bad])

    def test_merging_halves_empirical_variance(self, toy_spec, rng):
        """Two half-budget rounds merged ≈ the Theorem 2 use case; the
        merged estimator's spread shrinks by ~1/2 vs a single round."""
        half = BudgetSpec(toy_spec.item_epsilons / 2.0)
        mech = IDUE.optimized(half, model="opt1")
        n = 4000
        truth = np.array([800, 800, 800, 800, 800])
        estimator = FrequencyEstimator.for_mechanism(mech, n)

        trials = 150
        single_err = np.empty(trials)
        merged_err = np.empty(trials)
        for k in range(trials):
            counts1 = simulate_single_item_counts(mech, truth, n, rng)
            counts2 = simulate_single_item_counts(mech, truth, n, rng)
            r1 = RoundEstimate.from_counts(estimator, counts1)
            r2 = RoundEstimate.from_counts(estimator, counts2)
            merged, _ = merge_round_estimates([r1, r2])
            single_err[k] = r1.estimates[0] - truth[0]
            merged_err[k] = merged[0] - truth[0]
        ratio = merged_err.var() / single_err.var()
        assert ratio == pytest.approx(0.5, abs=0.2)

    def test_merged_variance_matches_report(self):
        rounds = [
            RoundEstimate(np.array([5.0]), np.array([2.0])),
            RoundEstimate(np.array([7.0]), np.array([6.0])),
        ]
        _, variance = merge_round_estimates(rounds)
        assert variance[0] == pytest.approx(1.0 / (1 / 2 + 1 / 6))


class TestRoundEstimateSerialization:
    """Cross-machine rounds: to_dict/from_dict is a JSON-safe identity."""

    def test_dict_round_trip(self):
        import json

        original = RoundEstimate(np.array([5.0, 7.5]), np.array([2.0, 3.0]))
        payload = json.loads(json.dumps(original.to_dict()))
        restored = RoundEstimate.from_dict(payload)
        assert np.array_equal(restored.estimates, original.estimates)
        assert np.array_equal(restored.noise_variance, original.noise_variance)

    def test_restored_rounds_merge_identically(self):
        rounds = [
            RoundEstimate(np.array([5.0]), np.array([2.0])),
            RoundEstimate(np.array([7.0]), np.array([6.0])),
        ]
        direct, direct_var = merge_round_estimates(rounds)
        shipped = [RoundEstimate.from_dict(r.to_dict()) for r in rounds]
        merged, merged_var = merge_round_estimates(shipped)
        assert np.array_equal(merged, direct)
        assert np.array_equal(merged_var, direct_var)

    def test_from_dict_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="not a serialized"):
            RoundEstimate.from_dict({"type": "Mechanism"})

    def test_from_dict_rejects_future_version(self):
        payload = RoundEstimate(np.array([1.0]), np.array([1.0])).to_dict()
        payload["version"] = 9
        with pytest.raises(ValidationError, match="version 9"):
            RoundEstimate.from_dict(payload)

    def test_from_dict_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError, match="same"):
            RoundEstimate.from_dict(
                {
                    "type": "RoundEstimate",
                    "version": 1,
                    "estimates": [1.0, 2.0],
                    "noise_variance": [1.0],
                }
            )


def test_round_estimate_from_dict_rejects_missing_keys():
    with pytest.raises(ValidationError, match="missing"):
        RoundEstimate.from_dict({"type": "RoundEstimate", "version": 1})


def test_round_estimate_from_dict_rejects_ragged_payload():
    with pytest.raises(ValidationError, match="non-numeric"):
        RoundEstimate.from_dict(
            {
                "type": "RoundEstimate",
                "version": 1,
                "estimates": [[1.0], [2.0, 3.0]],
                "noise_variance": [1.0],
            }
        )


def test_round_estimate_from_dict_rejects_string_entries():
    with pytest.raises(ValidationError, match="non-numeric"):
        RoundEstimate.from_dict(
            {
                "type": "RoundEstimate",
                "version": 1,
                "estimates": ["many"],
                "noise_variance": [1.0],
            }
        )


class TestFromDictShapeAndVersionSkew:
    """Satellite coverage: the remaining from_dict refusal paths."""

    def test_rejects_non_dict_payload(self):
        with pytest.raises(ValidationError, match="not a serialized"):
            RoundEstimate.from_dict([1.0, 2.0])

    def test_rejects_missing_version(self):
        with pytest.raises(ValidationError, match="version None"):
            RoundEstimate.from_dict(
                {"type": "RoundEstimate", "estimates": [1.0], "noise_variance": [1.0]}
            )

    def test_rejects_stale_version_zero(self):
        payload = RoundEstimate(np.array([1.0]), np.array([1.0])).to_dict()
        payload["version"] = 0
        with pytest.raises(ValidationError, match="version 0"):
            RoundEstimate.from_dict(payload)

    def test_rejects_two_dimensional_estimates(self):
        with pytest.raises(ValidationError, match="1-D"):
            RoundEstimate.from_dict(
                {
                    "type": "RoundEstimate",
                    "version": 1,
                    "estimates": [[1.0, 2.0], [3.0, 4.0]],
                    "noise_variance": [[1.0, 1.0], [1.0, 1.0]],
                }
            )

    def test_rejects_wrong_m_between_fields(self):
        # The remote's estimates and noise profile disagree on m.
        with pytest.raises(ValidationError, match="same"):
            RoundEstimate.from_dict(
                {
                    "type": "RoundEstimate",
                    "version": 1,
                    "estimates": [1.0, 2.0, 3.0],
                    "noise_variance": [1.0, 2.0],
                }
            )

    def test_wrong_m_across_rounds_fails_at_merge(self):
        # Two structurally valid rounds of different m must be refused
        # by the merge, not silently broadcast.
        one = RoundEstimate.from_dict(
            RoundEstimate(np.ones(3), np.ones(3)).to_dict()
        )
        other = RoundEstimate.from_dict(
            RoundEstimate(np.ones(2), np.ones(2)).to_dict()
        )
        with pytest.raises(ValidationError, match="same item domain"):
            merge_round_estimates([one, other])
