"""Unit tests for data-driven padding-length selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec, IDUEPS
from repro.datasets import ItemsetDataset
from repro.estimation import predict_total_mse, select_padding_length
from repro.exceptions import ValidationError


@pytest.fixture
def uniform_sets():
    """Every user holds exactly 3 of 8 items."""
    rng = np.random.default_rng(0)
    sets = [rng.choice(8, size=3, replace=False).tolist() for _ in range(400)]
    return ItemsetDataset.from_sets(sets, m=8)


@pytest.fixture
def spec():
    return BudgetSpec.uniform(2.0, 8)


class TestPredict:
    def test_matches_direct_theory(self, uniform_sets, spec):
        from repro.estimation import ps_estimator_mse

        ell = 3
        mech = IDUEPS.optimized(spec, ell, model="opt0")
        mse, _, _ = ps_estimator_mse(uniform_sets, ell, mech.a[:8], mech.b[:8])
        assert predict_total_mse(uniform_sets, ell, spec) == pytest.approx(
            float(mse.sum())
        )

    def test_domain_mismatch(self, uniform_sets):
        with pytest.raises(ValidationError):
            predict_total_mse(uniform_sets, 2, BudgetSpec.uniform(1.0, 5))


class TestSelect:
    def test_uniform_sizes_select_exact_length(self, uniform_sets, spec):
        """With every set of size 3, ell = 3 is unbiased with the least
        variance inflation — the predictor must find it."""
        choice = select_padding_length(uniform_sets, spec, candidates=range(1, 7))
        assert choice.ell == 3

    def test_curve_reported_for_all_candidates(self, uniform_sets, spec):
        choice = select_padding_length(uniform_sets, spec, candidates=[1, 3, 5])
        assert set(choice.curve) == {1, 3, 5}
        assert choice.predicted_mse == min(choice.curve.values())

    def test_default_candidates_cover_size_profile(self, spec):
        rng = np.random.default_rng(1)
        sets = [
            rng.choice(8, size=rng.integers(1, 6), replace=False).tolist()
            for _ in range(300)
        ]
        data = ItemsetDataset.from_sets(sets, m=8)
        choice = select_padding_length(data, spec)
        assert 1 <= choice.ell <= 20

    def test_bias_dominates_small_ell_for_large_sets(self, spec):
        """Sets of size 6 with ell = 1 are heavily truncation-biased, so
        the curve must decrease from ell = 1 toward ell = 6."""
        rng = np.random.default_rng(2)
        sets = [rng.choice(8, size=6, replace=False).tolist() for _ in range(300)]
        data = ItemsetDataset.from_sets(sets, m=8)
        choice = select_padding_length(data, spec, candidates=range(1, 8))
        assert choice.curve[1] > choice.curve[choice.ell]
        # The optimum balances residual truncation bias against the
        # ell^2 variance factor; it lands just below the true set size.
        assert 4 <= choice.ell <= 6

    def test_selected_length_wins_empirically(self, uniform_sets, spec, rng):
        """The predicted-optimal ell has lower *measured* MSE than a
        clearly bad one."""
        from repro.experiments import empirical_total_mse_itemset

        choice = select_padding_length(uniform_sets, spec, candidates=range(1, 7))
        good = IDUEPS.optimized(spec, choice.ell, model="opt0")
        bad = IDUEPS.optimized(spec, 1, model="opt0")
        good_mse = empirical_total_mse_itemset(good, uniform_sets, trials=20, rng=rng)
        bad_mse = empirical_total_mse_itemset(bad, uniform_sets, trials=20, rng=rng)
        assert good_mse < bad_mse

    def test_target_n_shifts_optimum_upward(self, spec):
        """Variance scales with n, squared bias with n^2: predicting for
        a much larger population must weight bias more and therefore
        never select a smaller ell."""
        rng = np.random.default_rng(3)
        sets = [
            rng.choice(8, size=int(rng.integers(2, 7)), replace=False).tolist()
            for _ in range(400)
        ]
        data = ItemsetDataset.from_sets(sets, m=8)
        small = select_padding_length(data, spec, candidates=range(1, 8))
        large = select_padding_length(
            data, spec, candidates=range(1, 8), target_n=40 * data.n
        )
        assert large.ell >= small.ell

    def test_target_n_equal_to_sample_is_identity(self, uniform_sets, spec):
        plain = select_padding_length(uniform_sets, spec, candidates=[2, 3])
        explicit = select_padding_length(
            uniform_sets, spec, candidates=[2, 3], target_n=uniform_sets.n
        )
        assert plain.curve == pytest.approx(explicit.curve)

    def test_validation(self, uniform_sets, spec):
        with pytest.raises(ValidationError):
            select_padding_length(uniform_sets, spec, candidates=[])
        with pytest.raises(ValidationError):
            select_padding_length(uniform_sets, spec, candidates=[0, 2])
        with pytest.raises(ValidationError):
            select_padding_length([[0, 1]], spec)
