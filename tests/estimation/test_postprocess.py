"""Unit tests for estimate post-processing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation import clip_nonnegative, norm_sub, normalize_to_total
from repro.exceptions import ValidationError


class TestClip:
    def test_clips_negatives(self):
        result = clip_nonnegative([-3.0, 0.0, 5.0])
        assert result.tolist() == [0.0, 0.0, 5.0]

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            clip_nonnegative([[1.0]])


class TestNormalize:
    def test_rescales_to_total(self):
        result = normalize_to_total([1.0, 3.0], total=8.0)
        assert result.tolist() == [2.0, 6.0]

    def test_clips_before_rescaling(self):
        result = normalize_to_total([-1.0, 4.0], total=8.0)
        assert result.tolist() == [0.0, 8.0]

    def test_rejects_all_zero(self):
        with pytest.raises(ValidationError):
            normalize_to_total([-1.0, -2.0], total=5.0)

    def test_rejects_negative_total(self):
        with pytest.raises(ValidationError):
            normalize_to_total([1.0], total=-1.0)


class TestNormSub:
    def test_preserves_total(self):
        estimates = np.array([10.0, -2.0, 5.0, 3.0])
        result = norm_sub(estimates, total=12.0)
        assert result.sum() == pytest.approx(12.0)
        assert np.all(result >= 0.0)

    def test_already_consistent_input_shifted_uniformly(self):
        estimates = np.array([6.0, 4.0])
        result = norm_sub(estimates, total=8.0)
        # Uniform shift of (10-8)/2 = 1 from each.
        assert result.tolist() == [5.0, 3.0]

    def test_zero_total(self):
        result = norm_sub(np.array([5.0, 1.0]), total=0.0)
        assert np.all(result == 0.0)

    def test_negative_entries_zeroed_not_spread(self):
        estimates = np.array([100.0, -50.0])
        result = norm_sub(estimates, total=50.0)
        assert result[1] == 0.0
        assert result[0] == pytest.approx(50.0)

    def test_preserves_order(self):
        estimates = np.array([9.0, 1.0, 5.0, -3.0])
        result = norm_sub(estimates, total=10.0)
        ranked_in = np.argsort(-estimates)
        ranked_out = np.argsort(-result, kind="stable")
        # Positive survivors keep their relative order.
        surviving = result[ranked_in] > 0
        assert np.array_equal(ranked_in[surviving], ranked_out[: surviving.sum()])

    def test_rejects_negative_total(self):
        with pytest.raises(ValidationError):
            norm_sub(np.array([1.0]), total=-2.0)


class TestNormSubDegenerateFallback:
    def test_equal_estimates_tiny_total(self):
        """Hypothesis-found: equal estimates + tiny total emptied the
        active set through float cancellation and crashed the fallback."""
        estimates = np.full(3, 43.077250468611865)
        total = 1.2932086007437759e-269
        result = norm_sub(estimates, total)
        assert np.all(result >= 0.0)
        # rel-only: an abs tolerance would let an all-zero (mass-dropping)
        # result pass vacuously at this magnitude of total.
        assert result.sum() == pytest.approx(total, rel=1e-6)

    def test_negative_estimates_positive_total(self):
        result = norm_sub(np.array([-5.0, -3.0]), 4.0)
        assert np.all(result >= 0.0)
        assert result.sum() == pytest.approx(4.0)

    def test_empty_estimates_positive_total_rejected(self):
        with pytest.raises(ValidationError):
            norm_sub(np.array([]), 1.0)
