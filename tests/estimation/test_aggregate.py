"""Unit tests for report aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Aggregator
from repro.estimation import aggregate_reports
from repro.exceptions import ValidationError


class TestAggregateReports:
    def test_column_sums(self):
        reports = np.array([[1, 0, 1], [0, 0, 1], [1, 1, 1]])
        assert aggregate_reports(reports).tolist() == [2, 1, 3]

    def test_rejects_non_binary(self):
        with pytest.raises(ValidationError):
            aggregate_reports(np.array([[0, 2]]))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            aggregate_reports(np.array([1, 0, 1]))


class TestAggregator:
    def test_streaming_matches_batch(self, rng):
        reports = (rng.random((50, 4)) < 0.3).astype(np.int8)
        streaming = Aggregator(4)
        for row in reports:
            streaming.add(row)
        assert streaming.n == 50
        assert np.array_equal(streaming.counts(), aggregate_reports(reports))

    def test_add_many(self, rng):
        reports = (rng.random((30, 3)) < 0.5).astype(np.int8)
        agg = Aggregator(3)
        agg.add_many(reports[:10])
        agg.add_many(reports[10:])
        assert agg.n == 30
        assert np.array_equal(agg.counts(), reports.sum(axis=0))

    def test_merge_distributed_collection(self, rng):
        reports = (rng.random((40, 3)) < 0.4).astype(np.int8)
        left, right = Aggregator(3), Aggregator(3)
        left.add_many(reports[:25])
        right.add_many(reports[25:])
        left.merge(right)
        assert left.n == 40
        assert np.array_equal(left.counts(), reports.sum(axis=0))

    def test_merge_width_mismatch(self):
        with pytest.raises(ValidationError):
            Aggregator(3).merge(Aggregator(4))

    def test_add_shape_check(self):
        with pytest.raises(ValidationError):
            Aggregator(3).add([0, 1])

    def test_add_binary_check(self):
        with pytest.raises(ValidationError):
            Aggregator(2).add([0, 5])

    def test_counts_returns_copy(self):
        agg = Aggregator(2)
        agg.add([1, 0])
        counts = agg.counts()
        counts[0] = 99
        assert agg.counts()[0] == 1
