"""Unit tests for heavy-hitter identification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation import top_k_items, top_k_metrics
from repro.exceptions import ValidationError


class TestTopKItems:
    def test_descending_order(self):
        result = top_k_items([1.0, 9.0, 4.0, 7.0], k=3)
        assert result.tolist() == [1, 3, 2]

    def test_deterministic_tie_breaking_by_id(self):
        result = top_k_items([5.0, 5.0, 5.0], k=2)
        assert result.tolist() == [0, 1]

    def test_k_equals_m(self):
        result = top_k_items([3.0, 1.0, 2.0], k=3)
        assert result.tolist() == [0, 2, 1]

    def test_k_too_large(self):
        with pytest.raises(ValidationError):
            top_k_items([1.0, 2.0], k=3)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            top_k_items([[1.0, 2.0]], k=1)


class TestTopKMetrics:
    def test_perfect_recovery(self):
        truth = np.array([100.0, 80.0, 60.0, 10.0, 5.0])
        metrics = top_k_metrics(truth, truth, k=3)
        assert metrics["precision"] == 1.0
        assert metrics["ncr"] == 1.0

    def test_disjoint_recovery(self):
        truth = np.array([100.0, 80.0, 1.0, 2.0])
        estimates = np.array([0.0, 0.0, 50.0, 60.0])
        metrics = top_k_metrics(estimates, truth, k=2)
        assert metrics["precision"] == 0.0
        assert metrics["ncr"] == 0.0

    def test_partial_overlap_with_rank_credit(self):
        truth = np.array([100.0, 80.0, 60.0])
        # Estimated order: item 1 first, then item 2; misses item 0.
        estimates = np.array([0.0, 70.0, 50.0])
        metrics = top_k_metrics(estimates, truth, k=2)
        assert metrics["precision"] == pytest.approx(0.5)
        # Item 1 is rank 2 in the truth -> credit 1 of a perfect 3.
        assert metrics["ncr"] == pytest.approx(1.0 / 3.0)

    def test_metric_reports_id_arrays(self):
        truth = np.array([5.0, 9.0, 1.0])
        metrics = top_k_metrics(truth, truth, k=2)
        assert metrics["true_top"].tolist() == [1, 0]
        assert metrics["estimated_top"].tolist() == [1, 0]
