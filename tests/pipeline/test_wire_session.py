"""Tests for the version-2 session frames: handshake, record, ack.

Version gating is the contract under test: core data frames (kinds 1-2)
still encode as version 1 — their bytes are pinned by the golden
fixtures — while session frames encode as version 2, and a reader
refuses any kind paired with the wrong version.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.exceptions import ValidationError, WireFormatError
from repro.pipeline import CountAccumulator
from repro.pipeline.collect import wire

NONCE = bytes(range(16))
MAC = bytes(range(32))


def _session_objects():
    snapshot = CountAccumulator(8, round_id=3)
    return [
        wire.SessionHello(m=8, round_id=3, producer_id="edge-7", nonce=NONCE),
        wire.SessionChallenge(m=8, round_id=3, nonce=NONCE),
        wire.SessionProof(m=8, round_id=3, mac=MAC),
        wire.Record(m=8, round_id=3, seq=42, frame=wire.dumps(snapshot)),
        wire.Ack(
            m=8, round_id=3, seq=42, status=wire.ACK_MERGED, detail="ok"
        ),
    ]


def _rewrite_version(frame: bytes, version: int) -> bytes:
    bad = bytearray(frame)
    bad[4:6] = struct.pack("<H", version)
    bad[36:40] = struct.pack("<I", zlib.crc32(bytes(bad[:36])))
    return bytes(bad)


class TestSessionRoundTrips:
    @pytest.mark.parametrize(
        "obj", _session_objects(), ids=lambda o: type(o).__name__
    )
    def test_round_trip_identity(self, obj):
        assert wire.loads(wire.dumps(obj)) == obj

    def test_session_frames_carry_version_2(self):
        for obj in _session_objects():
            frame = wire.dumps(obj)
            assert int.from_bytes(frame[4:6], "little") == 2

    def test_core_frames_still_carry_version_1(self):
        frame = wire.dumps(CountAccumulator(8))
        assert int.from_bytes(frame[4:6], "little") == 1

    def test_record_decodes_inner_frame(self):
        acc = CountAccumulator(8, round_id=1)
        acc.add_reports(np.ones((3, 8), dtype=np.int8))
        record = wire.Record(m=8, round_id=1, seq=0, frame=wire.dumps(acc))
        inner = wire.loads(wire.dumps(record)).decode()
        assert inner.digest() == acc.digest()

    def test_non_ascii_producer_id(self):
        hello = wire.SessionHello(
            m=8, round_id=0, producer_id="producteur-été", nonce=NONCE
        )
        assert wire.loads(wire.dumps(hello)).producer_id == "producteur-été"


class TestVersionGating:
    def test_session_kind_with_version_1_refused(self):
        frame = _rewrite_version(wire.dumps(_session_objects()[0]), 1)
        with pytest.raises(WireFormatError, match="require wire-format version 2"):
            wire.loads(frame)

    def test_core_kind_with_version_2_refused(self):
        frame = _rewrite_version(wire.dumps(CountAccumulator(8)), 2)
        with pytest.raises(WireFormatError, match="require wire-format version 1"):
            wire.loads(frame)

    def test_future_version_names_supported_versions(self):
        frame = _rewrite_version(wire.dumps(CountAccumulator(8)), 7)
        with pytest.raises(WireFormatError, match=r"version 7.*supports version 1"):
            wire.loads(frame)


class TestEncodingValidation:
    def test_empty_producer_id_refused(self):
        hello = wire.SessionHello(m=8, round_id=0, producer_id="", nonce=NONCE)
        with pytest.raises(ValidationError, match="non-empty"):
            wire.dumps(hello)

    def test_wrong_nonce_size_refused(self):
        hello = wire.SessionHello(
            m=8, round_id=0, producer_id="p", nonce=b"short"
        )
        with pytest.raises(ValidationError, match="16 bytes"):
            wire.dumps(hello)

    def test_wrong_mac_size_refused(self):
        with pytest.raises(ValidationError, match="32 bytes"):
            wire.dumps(wire.SessionProof(m=8, round_id=0, mac=b"tiny"))

    def test_negative_seq_refused(self):
        record = wire.Record(
            m=8, round_id=0, seq=-1, frame=wire.dumps(CountAccumulator(8))
        )
        with pytest.raises(ValidationError, match="non-negative"):
            wire.dumps(record)

    def test_record_must_wrap_a_whole_frame(self):
        record = wire.Record(m=8, round_id=0, seq=0, frame=b"tiny")
        with pytest.raises(ValidationError, match="complete core frame"):
            wire.dumps(record)

    def test_unknown_ack_status_refused(self):
        ack = wire.Ack(m=8, round_id=0, seq=0, status=99)
        with pytest.raises(ValidationError, match="status"):
            wire.dumps(ack)


class TestDecodingValidation:
    def test_truncated_hello_payload_refused(self):
        frame = bytearray(wire.dumps(_session_objects()[0]))
        # Claim a longer producer id than the payload holds.
        payload_start = wire.HEADER_SIZE
        frame[payload_start : payload_start + 2] = struct.pack("<H", 200)
        # Fix the payload CRC so only the semantic check can object.
        frame[-4:] = struct.pack(
            "<I", zlib.crc32(bytes(frame[payload_start:-4]))
        )
        with pytest.raises(WireFormatError, match="payload must be"):
            wire.loads(bytes(frame))

    def test_ack_with_unknown_status_refused(self):
        good = wire.dumps(
            wire.Ack(m=8, round_id=0, seq=0, status=wire.ACK_MERGED)
        )
        frame = bytearray(good)
        frame[wire.HEADER_SIZE : wire.HEADER_SIZE + 2] = struct.pack("<H", 88)
        frame[-4:] = struct.pack(
            "<I", zlib.crc32(bytes(frame[wire.HEADER_SIZE : -4]))
        )
        with pytest.raises(WireFormatError, match="status 88"):
            wire.loads(bytes(frame))

    def test_corrupt_session_payload_fails_checksum(self):
        frame = bytearray(wire.dumps(_session_objects()[2]))
        frame[wire.HEADER_SIZE] ^= 0xFF
        with pytest.raises(WireFormatError, match="payload checksum"):
            wire.loads(bytes(frame))
