"""Version-4 control frames: golden fixtures, round-trips, loudness.

Control frames carry the scale-out tier's coordination verbs (drain,
close, pull-state, route-update, ...) between coordinator, shards, and
aggregator.  They ride the same `IDLP` header as every other frame but
carry no producer data — geometry is pinned to (m=1, n=0, round=0) and
the target round travels in the JSON body.  These tests pin the byte
layout (golden fixtures), the canonical body encoding the MACs depend
on, and the failure modes: truncation anywhere in the variable-length
payload must raise :class:`WireFormatError`, never return a partially
parsed frame.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.exceptions import ValidationError, WireFormatError
from repro.pipeline.collect import wire

FIXTURE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "fixtures",
    "wire",
)
REQUEST_PATH = os.path.join(FIXTURE_DIR, "control_request_v4_drain_round2.bin")
REPLY_PATH = os.path.join(FIXTURE_DIR, "control_reply_v4_ok_round2.bin")

# Pinned constants, duplicated from make_wire_fixtures.py on purpose.
CONTROL_NONCE = bytes(range(48, 64))
CONTROL_MAC = bytes(range(96, 128))
CONTROL_ATTACHMENT = b"attached-snapshot-bytes"


def _read(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


class TestGoldenControlRequest:
    def test_decodes_to_pinned_fields(self):
        request = wire.loads(_read(REQUEST_PATH))
        assert isinstance(request, wire.ControlRequest)
        assert request.op == "drain"
        assert request.nonce == CONTROL_NONCE
        assert request.body == {"round_id": 2}
        assert request.mac == CONTROL_MAC

    def test_reencodes_byte_exact(self):
        blob = _read(REQUEST_PATH)
        assert wire.dumps(wire.loads(blob)) == blob

    def test_fresh_encode_matches_committed_bytes(self):
        request = wire.ControlRequest(
            op="drain",
            nonce=CONTROL_NONCE,
            body={"round_id": 2},
            mac=CONTROL_MAC,
        )
        assert wire.dumps(request) == _read(REQUEST_PATH)


class TestGoldenControlReply:
    def test_decodes_to_pinned_fields(self):
        reply = wire.loads(_read(REPLY_PATH))
        assert isinstance(reply, wire.ControlReply)
        assert reply.status == wire.CONTROL_OK
        assert reply.nonce == CONTROL_NONCE
        assert reply.body == {"phase": "draining", "round_id": 2}
        assert reply.attachment == CONTROL_ATTACHMENT
        assert reply.mac == CONTROL_MAC

    def test_reencodes_byte_exact(self):
        blob = _read(REPLY_PATH)
        assert wire.dumps(wire.loads(blob)) == blob

    def test_fresh_encode_matches_committed_bytes(self):
        reply = wire.ControlReply(
            status=wire.CONTROL_OK,
            nonce=CONTROL_NONCE,
            body={"phase": "draining", "round_id": 2},
            attachment=CONTROL_ATTACHMENT,
            mac=CONTROL_MAC,
        )
        assert wire.dumps(reply) == _read(REPLY_PATH)


class TestCanonicalBody:
    def test_key_order_never_changes_the_bytes(self):
        assert wire.encode_control_body(
            {"b": 1, "a": 2}
        ) == wire.encode_control_body({"a": 2, "b": 1})

    def test_no_whitespace(self):
        assert wire.encode_control_body({"a": [1, 2]}) == b'{"a":[1,2]}'

    def test_non_dict_refused(self):
        with pytest.raises(ValidationError, match="must be a dict"):
            wire.encode_control_body(["not", "a", "dict"])

    def test_unserializable_refused(self):
        with pytest.raises(ValidationError, match="not JSON-serializable"):
            wire.encode_control_body({"key": object()})

    def test_non_json_body_decode_is_loud(self):
        with pytest.raises(WireFormatError, match="not valid JSON"):
            wire.decode_control_body(b"\xff\xfe", "control-request")

    def test_non_object_body_decode_is_loud(self):
        with pytest.raises(WireFormatError, match="JSON object"):
            wire.decode_control_body(b"[1,2]", "control-request")


class TestRoundTrips:
    @pytest.mark.parametrize(
        "request_",
        [
            wire.ControlRequest(op="status", nonce=bytes(16)),
            wire.ControlRequest(
                op="open-round",
                nonce=CONTROL_NONCE,
                body={"m": 64, "round_id": 9, "token": "ab" * 16},
                mac=bytes(range(32)),
            ),
            wire.ControlRequest(
                op="x" * wire.CONTROL_OP_MAX_BYTES, nonce=bytes(16)
            ),
        ],
    )
    def test_request_round_trip(self, request_):
        assert wire.loads(wire.dumps(request_)) == request_

    @pytest.mark.parametrize(
        "reply",
        [
            wire.ControlReply(status=wire.CONTROL_OK, nonce=bytes(16)),
            wire.ControlReply(
                status=wire.CONTROL_ERROR,
                nonce=CONTROL_NONCE,
                body={"detail": "round 9 is not hosted"},
            ),
            wire.ControlReply(
                status=wire.CONTROL_OK,
                nonce=bytes(16),
                body={"digest": "ff" * 32},
                attachment=bytes(range(256)) * 4,
            ),
        ],
    )
    def test_reply_round_trip(self, reply):
        assert wire.loads(wire.dumps(reply)) == reply

    def test_empty_attachment_stays_empty(self):
        reply = wire.loads(
            wire.dumps(wire.ControlReply(status=wire.CONTROL_OK, nonce=bytes(16)))
        )
        assert reply.attachment == b""


class TestEncodeRefusals:
    def test_oversized_op_refused(self):
        with pytest.raises(ValidationError, match="op"):
            wire.dumps(
                wire.ControlRequest(
                    op="y" * (wire.CONTROL_OP_MAX_BYTES + 1), nonce=bytes(16)
                )
            )

    def test_bad_reply_status_refused(self):
        with pytest.raises(ValidationError, match="status"):
            wire.dumps(wire.ControlReply(status=7, nonce=bytes(16)))


def _reframe_truncated(blob: bytes, kind: int, cut: int) -> bytes:
    """Re-seal a frame whose *payload* lost its last *cut* bytes.

    Slicing the outer blob only exercises the frame-length check; this
    rebuilds a checksum-valid frame around the truncated payload, so the
    *inner* control parser is what must refuse it.
    """
    payload = blob[wire.HEADER_SIZE :][:-cut]
    return wire._frame(kind, 1, 0, 0, payload)


class TestTruncationIsLoud:
    """Every variable-length field boundary must fail loudly when cut."""

    @pytest.mark.parametrize("cut", [1, 16, 32, 33, 50, 74])
    def test_cut_request_payloads_never_parse_silently(self, cut):
        blob = _read(REQUEST_PATH)
        with pytest.raises(WireFormatError):
            wire.loads(
                _reframe_truncated(blob, wire.KIND_CONTROL_REQUEST, cut)
            )

    @pytest.mark.parametrize("cut", [1, 8, 23, 24, 40, 60, 100])
    def test_cut_reply_payloads_never_parse_silently(self, cut):
        blob = _read(REPLY_PATH)
        with pytest.raises(WireFormatError):
            wire.loads(_reframe_truncated(blob, wire.KIND_CONTROL_REPLY, cut))

    def test_outer_truncation_is_loud_too(self):
        for path in (REQUEST_PATH, REPLY_PATH):
            with pytest.raises(WireFormatError, match="truncated"):
                wire.loads(_read(path)[:-3])

    def test_oversized_op_length_claim_is_loud(self):
        blob = _read(REQUEST_PATH)
        payload = bytearray(blob[wire.HEADER_SIZE :])
        payload[0:2] = struct.pack("<H", wire.CONTROL_OP_MAX_BYTES + 1)
        with pytest.raises(WireFormatError, match="65-byte op"):
            wire.loads(
                wire._frame(wire.KIND_CONTROL_REQUEST, 1, 0, 0, bytes(payload))
            )
