"""Golden-fixture tests pinning the version-5 split-trust share frames.

The split-trust tier introduced wire-format version 5: blinded
per-bit counts (kind 10, :class:`~repro.pipeline.collect.wire.
BlindedCounts`) and one keeper's blinding words (kind 11,
:class:`~repro.pipeline.collect.wire.BlindingShare`).  Both carry a
length-``m`` little-endian ``uint64`` word vector as the payload and
the covered row count ``n`` in the header.  The contract these
fixtures pin:

* the **version-5** frames have exactly the documented layout — the
  committed bytes decode to the pinned field values, re-encode
  byte-for-byte, and a fresh encode from the pinned values matches the
  committed file;
* the full ``uint64`` range travels: the golden words include
  ``2^64 - 1`` and ``2^63``, and subtracting the golden share from the
  golden blinded counts mod 2^64 lands every word back inside
  ``[0, n]`` — the combine identity the share tests rely on;
* adding version 5 changed **nothing** below it: every committed
  v1–v4 fixture still round-trips byte-identically through the
  current codec;
* decoding is version gated both ways: a share payload claiming
  version 2 is refused, as is a truncated word vector.

Expectations are duplicated from ``tests/fixtures/make_wire_fixtures.py``
on purpose — the duplication is what pins producer and consumer
together.
"""

from __future__ import annotations

import glob
import os
import struct
import zlib

import numpy as np
import pytest

from repro.exceptions import WireFormatError
from repro.pipeline.collect import wire

FIXTURE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "fixtures",
    "wire",
)

BLINDED_FILE = "blinded_v5_m5_n4_round2.bin"
SHARE_FILE = "share_v5_m5_n4_round2.bin"

BLINDED_WORDS = np.array(
    [3, 2**64 - 1, 0, 2**63, 41], dtype=np.uint64
)
SHARE_WORDS = np.array(
    [1, 2**64 - 3, 2**64 - 4, 2**63 - 1, 40], dtype=np.uint64
)


def _read(name: str) -> bytes:
    with open(os.path.join(FIXTURE_DIR, name), "rb") as handle:
        return handle.read()


def _fix_header_crc(frame: bytearray) -> bytes:
    frame[36:40] = struct.pack("<I", zlib.crc32(bytes(frame[:36])))
    return bytes(frame)


class TestGoldenBlindedCounts:
    def test_decodes_to_pinned_state(self):
        obj = wire.loads(_read(BLINDED_FILE))
        assert isinstance(obj, wire.BlindedCounts)
        assert obj.m == 5
        assert obj.round_id == 2
        assert obj.n == 4
        assert obj.words.dtype == np.uint64
        assert np.array_equal(obj.words, BLINDED_WORDS)

    def test_reencodes_byte_identically(self):
        blob = _read(BLINDED_FILE)
        assert wire.dumps(wire.loads(blob)) == blob

    def test_fresh_encode_matches_committed(self):
        fresh = wire.dumps(
            wire.BlindedCounts(m=5, round_id=2, n=4, words=BLINDED_WORDS)
        )
        assert fresh == _read(BLINDED_FILE)

    def test_header_pins_version_and_kind(self):
        blob = _read(BLINDED_FILE)
        magic, version, kind, m, n, round_id, length = struct.unpack_from(
            "<4sHHQQqI", blob
        )
        assert magic == b"IDLP"
        assert version == wire.WIRE_VERSION_SHARES == 5
        assert kind == wire.KIND_BLINDED == 10
        assert (m, n, round_id) == (5, 4, 2)
        assert length == 8 * 5  # payload is m LE u64 words, nothing else


class TestGoldenBlindingShare:
    def test_decodes_to_pinned_state(self):
        obj = wire.loads(_read(SHARE_FILE))
        assert isinstance(obj, wire.BlindingShare)
        assert obj.m == 5
        assert obj.round_id == 2
        assert obj.n == 4
        assert obj.words.dtype == np.uint64
        assert np.array_equal(obj.words, SHARE_WORDS)

    def test_reencodes_byte_identically(self):
        blob = _read(SHARE_FILE)
        assert wire.dumps(wire.loads(blob)) == blob

    def test_fresh_encode_matches_committed(self):
        fresh = wire.dumps(
            wire.BlindingShare(m=5, round_id=2, n=4, words=SHARE_WORDS)
        )
        assert fresh == _read(SHARE_FILE)

    def test_golden_pair_combines_inside_counts_range(self):
        # The two fixtures are a matched pair: blinded - share mod 2^64
        # must be a valid count vector for n=4, exercising wraparound
        # (word 2 decodes 0 - (2^64-4) = 4) on the way.
        blinded = wire.loads(_read(BLINDED_FILE))
        share = wire.loads(_read(SHARE_FILE))
        with np.errstate(over="ignore"):
            residual = blinded.words - share.words
        assert np.array_equal(
            residual, np.array([2, 2, 4, 1, 1], dtype=np.uint64)
        )
        assert residual.max() <= blinded.n


class TestPriorVersionsUntouched:
    """Adding v5 must not move a byte of any committed v1-v4 fixture."""

    @pytest.mark.parametrize(
        "name",
        sorted(
            os.path.basename(path)
            for path in glob.glob(os.path.join(FIXTURE_DIR, "*.bin"))
            if "_v5_" not in os.path.basename(path)
        ),
    )
    def test_committed_fixture_roundtrips_byte_identically(self, name):
        blob = _read(name)
        assert wire.dumps(wire.loads(blob)) == blob

    def test_all_four_prior_versions_are_covered(self):
        versions = {
            os.path.basename(path).split("_v")[1][0]
            for path in glob.glob(os.path.join(FIXTURE_DIR, "*.bin"))
        }
        assert versions == {"1", "2", "3", "4", "5"}


class TestShareFramesAreVersionGated:
    def test_share_frame_claiming_version_2_is_refused(self):
        frame = bytearray(_read(SHARE_FILE))
        struct.pack_into("<H", frame, 4, wire.WIRE_VERSION_SESSION)
        with pytest.raises(WireFormatError, match="version"):
            wire.loads(_fix_header_crc(frame))

    def test_blinded_frame_claiming_version_1_is_refused(self):
        frame = bytearray(_read(BLINDED_FILE))
        struct.pack_into("<H", frame, 4, wire.WIRE_VERSION)
        with pytest.raises(WireFormatError, match="version"):
            wire.loads(_fix_header_crc(frame))

    def test_truncated_word_vector_is_refused(self):
        frame = bytearray(_read(BLINDED_FILE))
        # Claim m=6 in the header: the 40-byte payload no longer matches
        # the promised 8*m words.
        struct.pack_into("<Q", frame, 8, 6)
        with pytest.raises(WireFormatError):
            wire.loads(_fix_header_crc(frame))

    def test_flipped_payload_bit_is_loud(self):
        frame = bytearray(_read(BLINDED_FILE))
        frame[-1] ^= 0x01
        with pytest.raises(WireFormatError, match="checksum|crc|corrupt"):
            wire.loads(bytes(frame))
