"""Tests for the disk-backed ShardStore: spill, replay, audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError, WireFormatError
from repro.pipeline import CountAccumulator, ShardStore
from repro.pipeline.collect import wire


def _spill_one_shard(store, shard_id, bits, *, m, round_id=0, chunk=3):
    """Spill *bits* (k x m 0/1) in small chunks and snapshot the result."""
    acc = CountAccumulator(m, round_id=round_id)
    with store.writer(shard_id, m, round_id=round_id) as writer:
        for start in range(0, len(bits), chunk):
            rows = np.packbits(bits[start : start + chunk], axis=1)
            writer.write(rows)
            acc.add_packed_reports(rows)
    store.write_snapshot(shard_id, acc)
    return acc


class TestSpillReplay:
    def test_replay_shard_reproduces_counts(self, tmp_path, rng):
        m = 21
        store = ShardStore(tmp_path / "round")
        bits = (rng.random((17, m)) < 0.3).astype(np.uint8)
        acc = _spill_one_shard(store, 0, bits, m=m)
        replayed = store.replay_shard(0)
        assert replayed.digest() == acc.digest()
        assert np.array_equal(replayed.counts(), bits.sum(axis=0))

    def test_replay_merges_all_shards(self, tmp_path, rng):
        m = 10
        store = ShardStore(tmp_path / "round")
        total = CountAccumulator(m)
        for shard_id in range(3):
            bits = (rng.random((8, m)) < 0.5).astype(np.uint8)
            total.merge(_spill_one_shard(store, shard_id, bits, m=m))
        assert store.shard_ids() == [0, 1, 2]
        assert store.replay().digest() == total.digest()

    def test_empty_shard_replays_to_empty_accumulator(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        with store.writer(4, 12, round_id=9):
            pass  # no chunks written
        replayed = store.replay_shard(4)
        assert replayed.n == 0 and replayed.m == 12 and replayed.round_id == 9

    def test_replay_missing_shard_rejected(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        with pytest.raises(ValidationError, match="no spilled chunks"):
            store.replay_shard(0)

    def test_replay_empty_store_rejected(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        with pytest.raises(ValidationError, match="no spilled shards"):
            store.replay()

    def test_closed_writer_rejects_writes(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        writer = store.writer(0, 8)
        writer.close()
        with pytest.raises(ValidationError, match="closed"):
            writer.write(np.zeros((1, 1), dtype=np.uint8))

    def test_mixed_round_chunk_file_rejected(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        rows = np.zeros((2, 1), dtype=np.uint8)
        with open(store.chunk_path(0), "wb") as handle:
            handle.write(wire.dump_chunk(rows, 8, round_id=0))
            handle.write(wire.dump_chunk(rows, 8, round_id=1))
        with pytest.raises(WireFormatError, match="mixes"):
            store.replay_shard(0)

    def test_snapshot_frame_in_chunk_file_rejected(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        with open(store.chunk_path(0), "wb") as handle:
            wire.write_frame(handle, CountAccumulator(8))
        with pytest.raises(WireFormatError, match="non-chunk"):
            store.replay_shard(0)


class TestAudit:
    def test_audit_passes_on_faithful_spill(self, tmp_path, rng):
        m = 9
        store = ShardStore(tmp_path / "round")
        for shard_id in range(2):
            bits = (rng.random((11, m)) < 0.4).astype(np.uint8)
            _spill_one_shard(store, shard_id, bits, m=m)
        audit = store.audit()
        assert set(audit) == {0, 1}
        assert all(entry["match"] for entry in audit.values())
        assert all(
            entry["snapshot_digest"] == entry["replay_digest"]
            for entry in audit.values()
        )

    def test_audit_catches_tampered_snapshot(self, tmp_path, rng):
        """A snapshot that disagrees with its spilled chunks must fail."""
        m = 9
        store = ShardStore(tmp_path / "round")
        bits = (rng.random((11, m)) < 0.4).astype(np.uint8)
        _spill_one_shard(store, 0, bits, m=m)
        forged = CountAccumulator(m)
        forged.add_reports(np.ones((3, m), dtype=np.int8))
        store.write_snapshot(0, forged)
        audit = store.audit()
        assert audit[0]["match"] is False

    def test_audit_flags_missing_snapshot(self, tmp_path, rng):
        store = ShardStore(tmp_path / "round")
        with store.writer(0, 8) as writer:
            writer.write(np.zeros((2, 1), dtype=np.uint8))
        audit = store.audit()
        assert audit[0]["snapshot_digest"] is None
        assert audit[0]["match"] is False

    def test_corrupted_spill_file_fails_loudly(self, tmp_path, rng):
        """Bit rot in a spill file must surface as WireFormatError, not as
        silently different counts."""
        m = 16
        store = ShardStore(tmp_path / "round")
        bits = (rng.random((20, m)) < 0.5).astype(np.uint8)
        _spill_one_shard(store, 0, bits, m=m)
        path = store.chunk_path(0)
        with open(path, "r+b") as handle:
            handle.seek(wire.HEADER_SIZE + 1)  # inside the first payload
            byte = handle.read(1)
            handle.seek(wire.HEADER_SIZE + 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WireFormatError, match="checksum"):
            store.replay_shard(0)

    def test_truncated_spill_file_fails_loudly(self, tmp_path, rng):
        """A spill file cut off mid-frame (crashed writer) must not replay
        as merely a shorter round."""
        m = 16
        store = ShardStore(tmp_path / "round")
        bits = (rng.random((20, m)) < 0.5).astype(np.uint8)
        _spill_one_shard(store, 0, bits, m=m)
        path = store.chunk_path(0)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:-7])
        with pytest.raises(WireFormatError, match="truncated"):
            store.replay_shard(0)


class TestBookkeeping:
    def test_spilled_bytes_counts_chunk_files_only(self, tmp_path, rng):
        import os

        m = 8
        store = ShardStore(tmp_path / "round")
        bits = (rng.random((6, m)) < 0.5).astype(np.uint8)
        _spill_one_shard(store, 0, bits, m=m)
        assert store.spilled_bytes() == os.path.getsize(store.chunk_path(0))

    def test_writer_tracks_rows_and_frames(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        with store.writer(0, 8) as writer:
            writer.write(np.zeros((3, 1), dtype=np.uint8))
            writer.write(np.zeros((2, 1), dtype=np.uint8))
            assert writer.rows_written == 5
            assert writer.frames_written == 2
            assert writer.bytes_written > 0


class TestForeignFilesIgnored:
    def test_shard_ids_skip_non_shard_names(self, tmp_path, rng):
        store = ShardStore(tmp_path / "round")
        bits = (rng.random((5, 8)) < 0.5).astype(np.uint8)
        _spill_one_shard(store, 0, bits, m=8)
        # operator litter that must not break the round
        (tmp_path / "round" / "shard_00001_old.chunks").write_bytes(b"backup")
        (tmp_path / "round" / "notes.txt").write_text("scratch")
        assert store.shard_ids() == [0]
        assert store.replay().n == 5
        assert store.audit()[0]["match"]


class TestReplayAndAudit:
    def test_single_pass_equals_separate_calls(self, tmp_path, rng):
        m = 11
        store = ShardStore(tmp_path / "round")
        for shard_id in range(3):
            bits = (rng.random((9, m)) < 0.4).astype(np.uint8)
            _spill_one_shard(store, shard_id, bits, m=m)
        merged, report = store.replay_and_audit()
        assert merged.digest() == store.replay().digest()
        assert report == store.audit()
        assert all(entry["match"] for entry in report.values())

    def test_empty_store_rejected(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        with pytest.raises(ValidationError, match="no spilled shards"):
            store.replay_and_audit()
