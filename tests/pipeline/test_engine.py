"""Tests for the chunked streaming engine.

The load-bearing claims: (1) with a single chunk the streamed counts are
*bit-identical* to a one-shot ``perturb_many`` under the same generator
(the engine runs the real kernel, not an approximation); (2) the
streamed counts follow the same distribution
``simulate_counts_from_true`` draws from; (3) memory-shaping options
(chunking, packing) never change the counts for a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import IDUEPS, OptimizedUnaryEncoding
from repro.datasets import ItemsetDataset
from repro.exceptions import ValidationError
from repro.mechanisms import GeneralizedRandomizedResponse
from repro.pipeline import iter_report_chunks, report_width, stream_counts
from repro.simulation import simulate_counts_from_true


@pytest.fixture
def unary_workload(rng):
    m, n = 24, 5_000
    mechanism = OptimizedUnaryEncoding(1.5, m)
    items = rng.integers(m, size=n)
    return mechanism, items


class TestReportWidth:
    def test_unary_width_is_m(self):
        assert report_width(OptimizedUnaryEncoding(1.0, 7)) == 7

    def test_idueps_width_includes_dummies(self, toy_spec):
        mech = IDUEPS.optimized(toy_spec, ell=3, model="opt1")
        assert report_width(mech) == toy_spec.m + 3


class TestFixedSeedEquivalence:
    def test_single_chunk_matches_one_shot_kernel(self, unary_workload):
        """chunk_size >= n consumes the RNG exactly like perturb_many."""
        mechanism, items = unary_workload
        acc = stream_counts(
            mechanism, items, chunk_size=items.size, rng=np.random.default_rng(7)
        )
        reference = mechanism.perturb_many(items, np.random.default_rng(7))
        assert np.array_equal(acc.counts(), reference.sum(axis=0))
        assert acc.n == items.size

    def test_chunked_runs_are_deterministic(self, unary_workload):
        mechanism, items = unary_workload
        one = stream_counts(mechanism, items, chunk_size=321, rng=3)
        two = stream_counts(mechanism, items, chunk_size=321, rng=3)
        assert np.array_equal(one.counts(), two.counts())

    def test_packed_wire_format_preserves_counts(self, unary_workload):
        mechanism, items = unary_workload
        plain = stream_counts(mechanism, items, chunk_size=512, rng=3)
        packed = stream_counts(mechanism, items, chunk_size=512, rng=3, packed=True)
        assert np.array_equal(plain.counts(), packed.counts())
        assert plain.n == packed.n

    def test_manual_chunk_iteration_matches_stream(self, unary_workload):
        mechanism, items = unary_workload
        total = np.zeros(mechanism.m, dtype=np.int64)
        for chunk in iter_report_chunks(mechanism, items, chunk_size=700, rng=5):
            total += chunk.sum(axis=0)
        acc = stream_counts(mechanism, items, chunk_size=700, rng=5)
        assert np.array_equal(acc.counts(), total)


class TestDistributionalConsistency:
    def test_streamed_counts_match_binomial_law(self, unary_workload):
        """Streamed-exact and simulate_counts_from_true agree in moments."""
        mechanism, items = unary_workload
        m, n = mechanism.m, items.size
        truth = np.bincount(items, minlength=m)
        rng = np.random.default_rng(42)
        trials = 120
        streamed = np.empty((trials, m))
        fast = np.empty((trials, m))
        for k in range(trials):
            streamed[k] = stream_counts(
                mechanism, items, chunk_size=1024, rng=rng
            ).counts()
            fast[k] = simulate_counts_from_true(
                truth, n, mechanism.a, mechanism.b, rng
            )
        # Identical exact means: truth * a + (n - truth) * b.
        expected = truth * mechanism.a + (n - truth) * mechanism.b
        tol = 6 * np.sqrt(expected.max() / trials)
        assert np.allclose(streamed.mean(axis=0), expected, atol=tol)
        assert np.allclose(fast.mean(axis=0), expected, atol=tol)
        # Variances agree within a loose statistical band.
        assert np.allclose(
            streamed.var(axis=0), fast.var(axis=0), rtol=0.9, atol=n * 0.01
        )

    def test_itemset_streaming_matches_fast_mean(self, toy_spec, rng):
        mechanism = IDUEPS.optimized(toy_spec, ell=2, model="opt2")
        sets = [
            rng.choice(toy_spec.m, size=int(rng.integers(1, 4)), replace=False)
            for _ in range(400)
        ]
        dataset = ItemsetDataset.from_sets([s.tolist() for s in sets], m=toy_spec.m)
        trials = 150
        width = mechanism.extended_m
        streamed = np.empty((trials, width))
        for k in range(trials):
            streamed[k] = stream_counts(
                mechanism, dataset, chunk_size=64, rng=rng
            ).counts()
        sampled_mean = np.zeros(width)
        for k in range(trials):
            sampled = mechanism.sampler.sample_many(
                dataset.flat_items, dataset.offsets, rng
            )
            hist = np.bincount(sampled, minlength=width)
            sampled_mean += hist * mechanism.a + (dataset.n - hist) * mechanism.b
        sampled_mean /= trials
        assert np.allclose(
            streamed.mean(axis=0), sampled_mean, atol=6 * np.sqrt(dataset.n / 4)
        )


class TestCategoricalStreaming:
    def test_grr_streamed_histogram(self, rng):
        m, n = 9, 4_000
        mechanism = GeneralizedRandomizedResponse(2.0, m)
        items = rng.integers(m, size=n)
        acc = stream_counts(mechanism, items, chunk_size=333, rng=rng)
        assert acc.n == n
        assert int(acc.counts().sum()) == n  # one id per user

    def test_packed_rejected_for_categorical(self, rng):
        mechanism = GeneralizedRandomizedResponse(2.0, 4)
        with pytest.raises(ValidationError, match="packed"):
            list(
                iter_report_chunks(
                    mechanism, np.array([0, 1]), rng=rng, packed=True
                )
            )


class TestValidation:
    def test_rejects_out_of_domain_items(self, unary_workload):
        mechanism, _ = unary_workload
        with pytest.raises(ValidationError, match="domain"):
            stream_counts(mechanism, np.array([0, mechanism.m]), rng=0)

    def test_rejects_mismatched_dataset_domain(self, toy_spec):
        mechanism = IDUEPS.optimized(toy_spec, ell=2, model="opt1")
        dataset = ItemsetDataset.from_sets([[0]], m=toy_spec.m + 1)
        with pytest.raises(ValidationError, match="domain"):
            stream_counts(mechanism, dataset, rng=0)

    def test_rejects_unsupported_mechanism(self):
        with pytest.raises(ValidationError, match="stream"):
            list(iter_report_chunks(object(), np.array([0]), rng=0))

    def test_rejects_mismatched_accumulator_width(self, unary_workload):
        from repro.pipeline import CountAccumulator

        mechanism, items = unary_workload
        with pytest.raises(ValidationError, match="width"):
            stream_counts(
                mechanism, items, rng=0, accumulator=CountAccumulator(mechanism.m + 1)
            )

    def test_existing_accumulator_continues_round(self, unary_workload):
        from repro.pipeline import CountAccumulator

        mechanism, items = unary_workload
        acc = CountAccumulator(mechanism.m)
        stream_counts(mechanism, items[:100], rng=1, accumulator=acc)
        stream_counts(mechanism, items[100:300], rng=2, accumulator=acc)
        assert acc.n == 300


class TestRoundTagging:
    def test_round_id_conflict_with_accumulator_rejected(self, unary_workload):
        from repro.pipeline import CountAccumulator

        mechanism, items = unary_workload
        acc = CountAccumulator(mechanism.m, round_id=2)
        with pytest.raises(ValidationError, match="round"):
            stream_counts(mechanism, items, rng=0, round_id=1, accumulator=acc)

    def test_matching_round_id_accepted(self, unary_workload):
        from repro.pipeline import CountAccumulator

        mechanism, items = unary_workload
        acc = CountAccumulator(mechanism.m, round_id=2)
        out = stream_counts(
            mechanism, items[:50], rng=0, round_id=2, accumulator=acc
        )
        assert out is acc and out.n == 50

    def test_fresh_accumulator_gets_round_id(self, unary_workload):
        mechanism, items = unary_workload
        acc = stream_counts(mechanism, items[:10], rng=0, round_id=5)
        assert acc.round_id == 5
