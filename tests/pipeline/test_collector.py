"""Tests for the asyncio Collector: queue feed, socket feed, refusals."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import ValidationError, WireFormatError
from repro.pipeline import Collector, CountAccumulator, send_frames
from repro.pipeline.collect import wire


def _snapshot(m=8, n=6, round_id=0, seed=0) -> CountAccumulator:
    rng = np.random.default_rng(seed)
    acc = CountAccumulator(m, round_id=round_id)
    acc.add_reports((rng.random((n, m)) < 0.5).astype(np.int8))
    return acc


def _chunk(m=8, k=4, round_id=0, seed=1) -> wire.PackedChunk:
    rng = np.random.default_rng(seed)
    bits = (rng.random((k, m)) < 0.5).astype(np.uint8)
    return wire.PackedChunk(m=m, round_id=round_id, rows=np.packbits(bits, axis=1))


class TestDirectIngestion:
    def test_snapshot_and_chunk_interleave(self):
        collector = Collector(8)
        snap, chunk = _snapshot(), _chunk()
        collector.ingest(snap)
        collector.ingest(chunk)
        expected = CountAccumulator(8)
        expected.merge(snap)
        expected.add_packed_reports(chunk.rows)
        assert collector.accumulator.digest() == expected.digest()
        assert collector.frames_ingested == 2

    def test_ingest_bytes_counts_bytes(self):
        collector = Collector(8)
        frame = wire.dumps(_snapshot())
        collector.ingest_bytes(frame)
        assert collector.bytes_ingested == len(frame)

    def test_wrong_width_chunk_refused(self):
        with pytest.raises(ValidationError, match="width"):
            Collector(8).ingest(_chunk(m=16))

    def test_wrong_round_chunk_refused(self):
        with pytest.raises(ValidationError, match="round"):
            Collector(8, round_id=0).ingest(_chunk(round_id=3))

    def test_wrong_round_snapshot_refused(self):
        with pytest.raises(ValidationError, match="round"):
            Collector(8, round_id=0).ingest(_snapshot(round_id=1))

    def test_corrupt_frame_refused(self):
        frame = bytearray(wire.dumps(_snapshot()))
        frame[-1] ^= 0xFF
        with pytest.raises(WireFormatError, match="checksum"):
            Collector(8).ingest_bytes(bytes(frame))

    def test_unknown_object_refused(self):
        with pytest.raises(ValidationError, match="cannot ingest"):
            Collector(8).ingest([1, 2, 3])


class TestQueueFeed:
    def test_consume_until_sentinel(self):
        async def scenario():
            collector = Collector(8)
            queue: asyncio.Queue = asyncio.Queue()
            await queue.put(wire.dumps(_snapshot(seed=1)))
            await queue.put(_chunk(seed=2))  # decoded objects also accepted
            await queue.put(None)
            return await collector.consume(queue), collector

        merged, collector = asyncio.run(scenario())
        assert merged == 2
        assert collector.frames_ingested == 2
        assert collector.accumulator.n == 10  # 6 snapshot users + 4 chunk rows

    def test_concurrent_producers_one_consumer(self):
        """Many producer tasks feeding one queue merge to the exact total."""

        async def scenario():
            collector = Collector(8)
            queue: asyncio.Queue = asyncio.Queue(maxsize=4)

            async def produce(seed):
                await queue.put(wire.dumps(_snapshot(seed=seed)))

            consumer = asyncio.ensure_future(collector.consume(queue))
            await asyncio.gather(*(produce(seed) for seed in range(10)))
            await queue.put(None)
            await consumer
            return collector

        collector = asyncio.run(scenario())
        expected = CountAccumulator.merge_all(_snapshot(seed=s) for s in range(10))
        assert collector.accumulator.digest() == expected.digest()


class TestSocketFeed:
    def test_frames_over_localhost_socket(self):
        async def scenario():
            collector = Collector(8)
            host, port = await collector.serve()
            try:
                acked = await send_frames(
                    host, port, [_snapshot(seed=3), _chunk(seed=4)]
                )
            finally:
                await collector.close()
            return acked, collector

        acked, collector = asyncio.run(scenario())
        assert acked == 2
        expected = CountAccumulator(8)
        expected.merge(_snapshot(seed=3))
        expected.add_packed_reports(_chunk(seed=4).rows)
        assert collector.accumulator.digest() == expected.digest()

    def test_multiple_connections_merge_exactly(self):
        async def scenario():
            collector = Collector(8)
            host, port = await collector.serve()
            try:
                acks = await asyncio.gather(
                    *(
                        send_frames(host, port, [_snapshot(seed=seed)])
                        for seed in range(6)
                    )
                )
            finally:
                await collector.close()
            return acks, collector

        acks, collector = asyncio.run(scenario())
        assert acks == [1] * 6
        expected = CountAccumulator.merge_all(_snapshot(seed=s) for s in range(6))
        assert collector.accumulator.digest() == expected.digest()
        assert collector.frames_ingested == 6

    def test_close_cancels_stalled_connection(self):
        """A producer that connects and then stalls forever must not be
        able to hang collector shutdown: close() cancels the in-flight
        handler and discards its staging."""

        async def scenario():
            collector = Collector(8)
            host, port = await collector.serve()
            reader, writer = await asyncio.open_connection(host, port)
            # Half a frame, then silence: the handler is mid-read.
            writer.write(wire.dumps(_snapshot())[:10])
            await writer.drain()
            await asyncio.sleep(0.05)
            await asyncio.wait_for(collector.close(), timeout=2.0)
            writer.close()
            return collector

        collector = asyncio.run(scenario())
        assert collector.accumulator.n == 0  # nothing partial merged
        assert collector.connections_failed == 1
        assert "closed during" in collector.last_connection_error

    def test_close_after_clean_streams_keeps_state(self):
        """Cancellation on close must not disturb already-merged rounds."""

        async def scenario():
            collector = Collector(8)
            host, port = await collector.serve()
            await send_frames(host, port, [_snapshot(seed=8)])
            await collector.close()
            return collector

        collector = asyncio.run(scenario())
        assert collector.frames_ingested == 1
        assert collector.connections_failed == 0

    def test_serve_twice_rejected(self):
        async def scenario():
            collector = Collector(8)
            await collector.serve()
            try:
                with pytest.raises(ValidationError, match="already serving"):
                    await collector.serve()
            finally:
                await collector.close()

        asyncio.run(scenario())

    def test_close_without_serve_is_noop(self):
        asyncio.run(Collector(8).close())


class TestConnectionTransactionality:
    def test_corrupt_stream_merges_nothing_and_retry_counts_once(self):
        """A connection dying on a corrupt frame must contribute zero state
        — so the producer's full resend lands exactly once, not twice."""

        async def scenario():
            collector = Collector(8)
            host, port = await collector.serve()
            good = wire.dumps(_snapshot(seed=5))
            corrupt = bytearray(wire.dumps(_chunk(seed=6)))
            corrupt[-1] ^= 0xFF
            try:
                with pytest.raises(WireFormatError, match="hung up"):
                    await send_frames(host, port, [good, bytes(corrupt)])
                assert collector.accumulator.n == 0  # good frame NOT merged
                assert collector.frames_ingested == 0
                assert collector.connections_failed == 1
                assert "checksum" in collector.last_connection_error
                # the retry with repaired frames merges exactly once
                acked = await send_frames(
                    host, port, [good, wire.dumps(_chunk(seed=6))]
                )
            finally:
                await collector.close()
            return acked, collector

        acked, collector = asyncio.run(scenario())
        assert acked == 2
        expected = CountAccumulator(8)
        expected.merge(_snapshot(seed=5))
        expected.add_packed_reports(_chunk(seed=6).rows)
        assert collector.accumulator.digest() == expected.digest()

    def test_mismatched_round_stream_is_rejected_whole(self):
        """Semantic refusal (wrong round) drops the connection's staging
        just like corruption does."""

        async def scenario():
            collector = Collector(8, round_id=0)
            host, port = await collector.serve()
            try:
                with pytest.raises(WireFormatError, match="hung up"):
                    await send_frames(
                        host,
                        port,
                        [_snapshot(seed=1), _snapshot(seed=2, round_id=9)],
                    )
            finally:
                await collector.close()
            return collector

        collector = asyncio.run(scenario())
        assert collector.accumulator.n == 0
        assert collector.connections_failed == 1
        assert "round" in collector.last_connection_error

    def test_failed_connection_does_not_kill_server(self):
        """Other producers keep working after one connection fails."""

        async def scenario():
            collector = Collector(8)
            host, port = await collector.serve()
            try:
                with pytest.raises(WireFormatError, match="hung up"):
                    await send_frames(host, port, [b"garbage-not-a-frame" * 4])
                acked = await send_frames(host, port, [_snapshot(seed=3)])
            finally:
                await collector.close()
            return acked, collector

        acked, collector = asyncio.run(scenario())
        assert acked == 1 and collector.frames_ingested == 1
