"""Golden-fixture tests pinning wire-format version 1 byte for byte.

The committed fixtures under ``tests/fixtures/wire/`` are the contract
with every producer that has ever written a frame: spill files on disk,
snapshots archived by collectors, frames in flight between releases.
These tests assert (a) the committed bytes still decode to exactly the
objects that produced them, (b) re-encoding reproduces the committed
bytes exactly, and (c) every corruption a transport can inflict —
wrong magic, bumped version, truncation, flipped payload/header bits —
fails loudly with a :class:`WireFormatError` naming the failure mode.

If a deliberate format change breaks these tests, bump ``WIRE_VERSION``,
regenerate via ``tests/fixtures/make_wire_fixtures.py``, and keep the
version-1 decode path working; never regenerate to paper over an
accidental diff.
"""

from __future__ import annotations

import os
import struct
import zlib

import numpy as np
import pytest

from repro.exceptions import WireFormatError
from repro.pipeline import CountAccumulator
from repro.pipeline.collect import wire

FIXTURE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "fixtures", "wire"
)
SNAPSHOT_PATH = os.path.join(FIXTURE_DIR, "snapshot_v1_m12_n5_round3.bin")
CHUNK_PATH = os.path.join(FIXTURE_DIR, "chunk_v1_m21_k4_round7.bin")

# The expected decoded state, duplicated from make_wire_fixtures.py on
# purpose: the duplication is what pins producer and consumer together.
SNAPSHOT_COUNTS = [5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 0]


def _expected_chunk_bits() -> np.ndarray:
    bits = np.zeros((4, 21), dtype=np.uint8)
    bits[0, :] = 1
    bits[1, 0] = bits[1, 20] = 1
    bits[2, ::2] = 1
    return bits


def _read(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _fix_header_crc(frame: bytearray) -> bytearray:
    """Recompute the header CRC after tampering with header fields."""
    frame[36:40] = struct.pack("<I", zlib.crc32(bytes(frame[:36])))
    return frame


class TestGoldenSnapshot:
    def test_decodes_to_pinned_state(self):
        acc = wire.loads(_read(SNAPSHOT_PATH))
        assert isinstance(acc, CountAccumulator)
        assert acc.m == 12 and acc.n == 5 and acc.round_id == 3
        assert acc.counts().tolist() == SNAPSHOT_COUNTS

    def test_reencodes_byte_exact(self):
        blob = _read(SNAPSHOT_PATH)
        assert wire.dumps(wire.loads(blob)) == blob

    def test_fresh_encode_matches_committed_bytes(self):
        acc = CountAccumulator.from_state(
            12, np.array(SNAPSHOT_COUNTS), 5, round_id=3
        )
        assert wire.dumps(acc) == _read(SNAPSHOT_PATH)


class TestGoldenChunk:
    def test_decodes_to_pinned_rows(self):
        chunk = wire.loads(_read(CHUNK_PATH))
        assert isinstance(chunk, wire.PackedChunk)
        assert chunk.m == 21 and chunk.round_id == 7 and chunk.n == 4
        assert np.array_equal(
            chunk.rows, np.packbits(_expected_chunk_bits(), axis=1)
        )

    def test_reencodes_byte_exact(self):
        blob = _read(CHUNK_PATH)
        assert wire.dumps(wire.loads(blob)) == blob

    def test_chunk_feeds_accumulator(self):
        """The pinned chunk aggregates to the obvious per-bit counts."""
        chunk = wire.loads(_read(CHUNK_PATH))
        acc = CountAccumulator(21, round_id=7)
        acc.add_packed_reports(chunk.rows)
        assert np.array_equal(
            acc.counts(), _expected_chunk_bits().sum(axis=0).astype(np.int64)
        )


@pytest.fixture(params=[SNAPSHOT_PATH, CHUNK_PATH], ids=["snapshot", "chunk"])
def golden_frame(request) -> bytes:
    return _read(request.param)


class TestCorruptionIsLoud:
    def test_wrong_magic(self, golden_frame):
        bad = b"NOPE" + golden_frame[4:]
        with pytest.raises(WireFormatError, match="magic"):
            wire.loads(bad)

    def test_future_version_names_both_versions(self, golden_frame):
        bad = bytearray(golden_frame)
        bad[4:6] = struct.pack("<H", 99)
        _fix_header_crc(bad)
        with pytest.raises(WireFormatError, match=r"version 99.*supports version 1"):
            wire.loads(bytes(bad))

    def test_truncated_header(self, golden_frame):
        with pytest.raises(WireFormatError, match="truncated"):
            wire.loads(golden_frame[: wire.HEADER_SIZE - 7])

    def test_truncated_payload(self, golden_frame):
        with pytest.raises(WireFormatError, match="truncated"):
            wire.loads(golden_frame[:-5])

    def test_flipped_payload_bit_fails_checksum(self, golden_frame):
        bad = bytearray(golden_frame)
        bad[wire.HEADER_SIZE] ^= 0x01
        with pytest.raises(WireFormatError, match="payload checksum"):
            wire.loads(bytes(bad))

    def test_corrupted_header_field_fails_header_checksum(self, golden_frame):
        bad = bytearray(golden_frame)
        bad[8] ^= 0xFF  # the m field; CRC not recomputed
        with pytest.raises(WireFormatError, match="header checksum"):
            wire.loads(bytes(bad))

    def test_trailing_garbage_rejected(self, golden_frame):
        with pytest.raises(WireFormatError, match="trailing"):
            wire.loads(golden_frame + b"\x00")
