"""Unit tests for the wire-format encoder/decoder and stream IO."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.exceptions import ValidationError, WireFormatError
from repro.pipeline import CountAccumulator
from repro.pipeline.collect import wire


def _accumulator(m=9, n=7, round_id=2, seed=0) -> CountAccumulator:
    rng = np.random.default_rng(seed)
    acc = CountAccumulator(m, round_id=round_id)
    acc.add_reports((rng.random((n, m)) < 0.4).astype(np.int8))
    return acc


def _chunk(m=21, k=5, round_id=2, seed=1) -> wire.PackedChunk:
    rng = np.random.default_rng(seed)
    bits = (rng.random((k, m)) < 0.5).astype(np.uint8)
    return wire.PackedChunk(m=m, round_id=round_id, rows=np.packbits(bits, axis=1))


class TestSnapshotRoundTrip:
    def test_state_survives(self):
        acc = _accumulator()
        clone = wire.loads(wire.dumps(acc))
        assert clone.m == acc.m and clone.n == acc.n
        assert clone.round_id == acc.round_id
        assert np.array_equal(clone.counts(), acc.counts())
        assert clone.digest() == acc.digest()

    def test_empty_accumulator_round_trips(self):
        acc = CountAccumulator(4, round_id=-3)
        clone = wire.loads(wire.dumps(acc))
        assert clone.n == 0 and clone.round_id == -3
        assert clone.counts().tolist() == [0, 0, 0, 0]

    def test_negative_round_id_survives(self):
        clone = wire.loads(wire.dumps(CountAccumulator(2, round_id=-1)))
        assert clone.round_id == -1

    def test_loaded_snapshot_is_mergeable(self):
        acc = _accumulator()
        merged = wire.loads(wire.dumps(acc)).merge(wire.loads(wire.dumps(acc)))
        assert merged.n == 2 * acc.n
        assert np.array_equal(merged.counts(), 2 * acc.counts())

    def test_invalid_state_rejected_on_load(self):
        """A frame claiming counts > n is structurally valid but semantically
        impossible; the decoder must refuse it, checksum or no checksum."""
        acc = CountAccumulator.from_state(3, np.array([2, 1, 0]), 2, round_id=0)
        blob = bytearray(wire.dumps(acc))
        # Rewrite n (header bytes 16:24) to 1 < max(counts) and re-CRC.
        import struct
        import zlib

        blob[16:24] = struct.pack("<Q", 1)
        blob[36:40] = struct.pack("<I", zlib.crc32(bytes(blob[:36])))
        with pytest.raises(WireFormatError, match="snapshot state is invalid"):
            wire.loads(bytes(blob))


class TestChunkRoundTrip:
    def test_rows_survive(self):
        chunk = _chunk()
        clone = wire.loads(wire.dumps(chunk))
        assert clone.m == chunk.m and clone.round_id == chunk.round_id
        assert clone.n == chunk.n
        assert np.array_equal(clone.rows, chunk.rows)

    def test_zero_row_chunk_round_trips(self):
        chunk = wire.PackedChunk(m=16, round_id=0, rows=np.empty((0, 2), np.uint8))
        clone = wire.loads(wire.dumps(chunk))
        assert clone.n == 0 and clone.rows.shape == (0, 2)

    def test_dump_chunk_rejects_wrong_width(self):
        with pytest.raises(ValidationError, match="shape"):
            wire.dump_chunk(np.zeros((2, 3), dtype=np.uint8), m=16)

    def test_dump_chunk_rejects_wrong_dtype(self):
        with pytest.raises(ValidationError, match="uint8"):
            wire.dump_chunk(np.zeros((2, 2), dtype=np.int64), m=16)

    def test_dumps_rejects_unknown_objects(self):
        with pytest.raises(ValidationError, match="cannot serialize"):
            wire.dumps({"counts": [1, 2]})


class TestStreamIO:
    def test_concatenated_frames_iterate_in_order(self):
        objs = [_accumulator(seed=3), _chunk(seed=4), _accumulator(m=5, seed=5)]
        buffer = io.BytesIO()
        for obj in objs:
            wire.write_frame(buffer, obj)
        buffer.seek(0)
        decoded = list(wire.iter_frames(buffer))
        assert len(decoded) == 3
        assert isinstance(decoded[0], CountAccumulator)
        assert isinstance(decoded[1], wire.PackedChunk)
        assert decoded[0].digest() == objs[0].digest()
        assert np.array_equal(decoded[1].rows, objs[1].rows)
        assert decoded[2].digest() == objs[2].digest()

    def test_read_frame_returns_none_at_clean_eof(self):
        buffer = io.BytesIO()
        wire.write_frame(buffer, _accumulator())
        buffer.seek(0)
        assert wire.read_frame(buffer) is not None
        assert wire.read_frame(buffer) is None

    def test_read_frame_raises_on_midframe_eof(self):
        buffer = io.BytesIO()
        wire.write_frame(buffer, _accumulator())
        truncated = io.BytesIO(buffer.getvalue()[:-3])
        with pytest.raises(WireFormatError, match="truncated"):
            list(wire.iter_frames(truncated))

    def test_write_frame_returns_byte_count(self):
        buffer = io.BytesIO()
        written = wire.write_frame(buffer, _accumulator(m=8))
        assert written == len(buffer.getvalue())
        assert written == wire.HEADER_SIZE + 8 * 8 + 4
