"""Sampler plumbing through the streaming pipeline.

Covers the acceptance contract of the kernels subsystem:

* ``"fast"`` estimates are statistically indistinguishable from
  ``"bitexact"`` estimates (chi-square on the per-bit counts, both
  tested against the same analytic law);
* the packed fast path, the unpacked fast path and the bitexact path
  all feed the same :class:`CountAccumulator` protocol (user tallies,
  merge, estimation);
* ``ShardedRunner`` stays reproducible per ``(seed, sampler)`` and its
  sampler reaches every worker;
* the bitexact pipeline output is byte-identical to the pre-kernel
  code path.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro import IDUE, OptimizedUnaryEncoding, SymmetricUnaryEncoding
from repro.datasets import paper_default_spec, true_counts_from_items, zipf_items
from repro.kernels import BITEXACT, FAST, SamplerConfig
from repro.pipeline import CountAccumulator, ShardedRunner, stream_counts

N, M = 12_000, 96


@pytest.fixture(scope="module")
def workload():
    items = zipf_items(N, M, rng=0)
    truth = true_counts_from_items(items, M)
    return OptimizedUnaryEncoding(1.2, M), items, truth


def _per_bit_probabilities(mechanism, truth):
    """Analytic P(y_k = 1) for the workload: mixture of a- and b-laws."""
    fractions = truth / truth.sum()
    return fractions * mechanism.a + (1.0 - fractions) * mechanism.b


class TestFastMatchesBitexactDistribution:
    def test_chi_square_both_samplers_fit_the_same_law(self, workload):
        """The acceptance check: per-bit counts from both samplers are
        Binomial(n, p_k) for the *same* analytic p_k; chi-square accepts
        both at the same confidence."""
        mechanism, items, truth = workload
        probabilities = _per_bit_probabilities(mechanism, truth)
        expected = N * probabilities
        variance = expected * (1.0 - probabilities)
        for sampler, packed in ((BITEXACT, False), (FAST, True)):
            accumulator = stream_counts(
                mechanism,
                items,
                chunk_size=1024,
                rng=sampler.make_generator(42),
                packed=packed,
                sampler=sampler,
            )
            statistic = float(
                (((accumulator.counts() - expected) ** 2) / variance).sum()
            )
            p_value = stats.chi2.sf(statistic, df=M)
            assert p_value > 1e-6, f"{sampler.exactness} failed goodness of fit"

    def test_two_sample_counts_are_homogeneous(self, workload):
        """Direct fast-vs-bitexact comparison: per-bit 2x2 homogeneity,
        aggregated as a chi-square over bits."""
        mechanism, items, _ = workload
        fast = stream_counts(
            mechanism, items, rng=FAST.make_generator(1), packed=True, sampler=FAST
        ).counts()
        exact = stream_counts(
            mechanism, items, rng=BITEXACT.make_generator(2), sampler=BITEXACT
        ).counts()
        pooled = (fast + exact) / (2.0 * N)
        variance = 2.0 * N * pooled * (1.0 - pooled)
        statistic = float((((fast - exact) ** 2) / variance).sum())
        assert stats.chi2.sf(statistic, df=M) > 1e-6

    def test_estimates_agree_with_truth_at_same_scale(self, workload):
        mechanism, items, truth = workload
        mse = {}
        for name, sampler in (("bitexact", BITEXACT), ("fast", FAST)):
            accumulator = stream_counts(
                mechanism,
                items,
                rng=sampler.make_generator(5),
                packed=sampler.is_packed,
                sampler=sampler,
            )
            mse[name] = float(np.mean((accumulator.estimate(mechanism) - truth) ** 2))
        # Same estimator, same law: MSEs agree within statistical noise.
        assert 0.5 < mse["fast"] / mse["bitexact"] < 2.0

    def test_idue_fast_matches_analytic_law(self):
        """Non-uniform per-bit parameters through the per-column kernel."""
        spec = paper_default_spec(2.0, 60, rng=0)
        mechanism = IDUE.optimized(spec, model="opt0")
        items = zipf_items(8_000, 60, rng=1)
        truth = true_counts_from_items(items, 60)
        probabilities = _per_bit_probabilities(mechanism, truth)
        counts = stream_counts(
            mechanism, items, rng=FAST.make_generator(3), packed=True, sampler=FAST
        ).counts()
        expected = 8_000 * probabilities
        variance = expected * (1.0 - probabilities)
        statistic = float((((counts - expected) ** 2) / variance).sum())
        assert stats.chi2.sf(statistic, df=60) > 1e-6


class TestSamplerPlumbing:
    def test_packed_and_unpacked_fast_agree_on_protocol(self, workload):
        mechanism, items, _ = workload
        packed = stream_counts(
            mechanism, items, rng=FAST.make_generator(9), packed=True, sampler="fast"
        )
        unpacked = stream_counts(
            mechanism, items, rng=FAST.make_generator(9), packed=False, sampler="fast"
        )
        assert packed.n == unpacked.n == N
        # Same generator, same kernel draws: the packed round trip must
        # not change the counts.
        assert np.array_equal(packed.counts(), unpacked.counts())

    def test_bitexact_pipeline_is_frozen(self, workload):
        """sampler=None output equals a one-shot perturb_many (the
        pre-kernel contract) for the same generator state."""
        mechanism, items, _ = workload
        streamed = stream_counts(
            mechanism, items, chunk_size=N, rng=np.random.default_rng(11)
        )
        direct = mechanism.perturb_many(items, np.random.default_rng(11))
        assert np.array_equal(streamed.counts(), direct.sum(axis=0))

    def test_sharded_fast_reproducible_and_mergeable(self, workload):
        mechanism, items, _ = workload
        runner = ShardedRunner(
            mechanism, num_shards=3, chunk_size=1024, packed=True, sampler="fast"
        )
        first = runner.run(items, seed=21)
        second = runner.run(items, seed=21)
        assert np.array_equal(first.counts(), second.counts())
        assert first.n == N
        different = runner.run(items, seed=22)
        assert not np.array_equal(first.counts(), different.counts())

    def test_sharded_sampler_repr_and_resolution(self, workload):
        mechanism, _, _ = workload
        runner = ShardedRunner(mechanism, sampler="fast")
        assert runner.sampler is FAST
        assert "fast" in repr(runner)
        assert ShardedRunner(mechanism).sampler is BITEXACT

    def test_float32_sampler_through_engine(self, workload):
        mechanism, items, truth = workload
        sampler = SamplerConfig(dtype="float32", exactness="fast")
        accumulator = stream_counts(
            mechanism, items, rng=np.random.default_rng(13), sampler=sampler
        )
        assert accumulator.n == N
        mse = float(np.mean((accumulator.estimate(mechanism) - truth) ** 2))
        bitexact = stream_counts(
            mechanism, items, rng=np.random.default_rng(13), sampler=None
        )
        reference = float(np.mean((bitexact.estimate(mechanism) - truth) ** 2))
        assert 0.5 < mse / reference < 2.0

    def test_fast_packed_feeds_accumulator_validation(self, workload):
        """Kernel chunks satisfy the accumulator's wire-format checks
        (width, dtype, zero pad bits) for a non-multiple-of-8 domain."""
        mechanism = SymmetricUnaryEncoding(1.0, 13)
        items = zipf_items(500, 13, rng=0)
        accumulator = CountAccumulator(13)
        counts = stream_counts(
            mechanism,
            items,
            rng=FAST.make_generator(0),
            packed=True,
            sampler="fast",
            accumulator=accumulator,
        )
        assert counts is accumulator
        assert accumulator.n == 500

    def test_idueps_fast_packed_extended_domain(self):
        """Item-set input: Algorithm 3 through the packed kernel."""
        from repro import IDUEPS
        from repro.datasets import kosarak_like

        data = kosarak_like(n=1_000, m=40, rng=0)
        mechanism = IDUEPS.oue_ps(1.0, m=40, ell=3)
        accumulator = stream_counts(
            mechanism, data, rng=FAST.make_generator(1), packed=True, sampler="fast"
        )
        assert accumulator.n == 1_000
        assert accumulator.m == 43  # extended domain m + ell
        assert accumulator.counts().sum() > 0

    def test_invalid_sampler_name_rejected(self, workload):
        mechanism, items, _ = workload
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            stream_counts(mechanism, items, sampler="approximate")
