"""Zero-copy decode and mmap replay: copy-count and residency contracts.

The wire decoder promises that packed-chunk payloads are never
materialized as intermediate ``bytes``: decoded rows are numpy views
over the caller's buffer, and the only structural copies left (session
payloads, a snapshot's writable counts) announce themselves through
``wire.payload_copy_hook``.  These tests install a counting hook and
pin the copy ledger of every decode path, then exercise the mmap'd
``ShardStore.replay_shard`` against digest equality and a bounded
resident-set check.
"""

from __future__ import annotations

import os
import resource

import numpy as np
import pytest

from repro.exceptions import ValidationError, WireFormatError
from repro.kernels import packed_width
from repro.pipeline import CountAccumulator, ShardStore
from repro.pipeline.collect import wire


@pytest.fixture
def copy_log():
    """Install a counting payload-copy hook for the test's duration."""
    events = []
    previous = wire.payload_copy_hook
    wire.payload_copy_hook = lambda site, nbytes: events.append((site, nbytes))
    try:
        yield events
    finally:
        wire.payload_copy_hook = previous


def _chunk_frame(rng, n, m, round_id=0):
    width = packed_width(m)
    rows = rng.integers(0, 256, size=(n, width), dtype=np.uint8)
    pad_bits = 8 * width - m
    if pad_bits:
        rows[:, -1] &= (0xFF << pad_bits) & 0xFF
    return rows, wire.dump_chunk(rows, m, round_id=round_id)


class TestChunkDecodeIsZeroCopy:
    def test_loads_makes_no_payload_copies(self, copy_log):
        rng = np.random.default_rng(0)
        rows, frame = _chunk_frame(rng, 100, 77)
        chunk = wire.loads(frame)
        assert copy_log == []
        assert np.array_equal(chunk.rows, rows)

    def test_rows_are_a_view_over_the_input_buffer(self):
        rng = np.random.default_rng(1)
        _, frame = _chunk_frame(rng, 50, 64)
        chunk = wire.loads(frame)
        assert not chunk.rows.flags.owndata
        # bytes input -> read-only view.
        assert not chunk.rows.flags.writeable

    def test_loads_accepts_memoryview_and_bytearray(self, copy_log):
        rng = np.random.default_rng(2)
        rows, frame = _chunk_frame(rng, 20, 40)
        for buffer in (memoryview(frame), bytearray(frame)):
            chunk = wire.loads(buffer)
            assert np.array_equal(chunk.rows, rows)
        assert copy_log == []

    def test_read_only_rows_feed_the_accumulator(self):
        rng = np.random.default_rng(3)
        rows, frame = _chunk_frame(rng, 200, 130)
        chunk = wire.loads(frame)
        assert not chunk.rows.flags.writeable
        acc = CountAccumulator(130)
        acc.add_packed_reports(chunk.rows)
        expected = CountAccumulator(130)
        expected.add_packed_reports(rows)
        assert acc.digest() == expected.digest()

    def test_read_frame_payload_is_a_view(self, copy_log):
        import io

        rng = np.random.default_rng(4)
        rows, frame = _chunk_frame(rng, 64, 99)
        chunk = wire.read_frame(io.BytesIO(frame))
        assert copy_log == []
        assert not chunk.rows.flags.owndata
        assert np.array_equal(chunk.rows, rows)


class TestDecodeFrameAt:
    def test_walks_concatenated_frames_without_copies(self, copy_log):
        rng = np.random.default_rng(5)
        frames, all_rows = [], []
        for n in (10, 0, 25):
            rows, frame = _chunk_frame(rng, n, 52)
            frames.append(frame)
            all_rows.append(rows)
        blob = b"".join(frames)
        offset, seen = 0, []
        while offset < len(blob):
            chunk, offset = wire.decode_frame_at(blob, offset)
            seen.append(chunk.rows)
        assert offset == len(blob)
        assert copy_log == []
        for got, expected in zip(seen, all_rows):
            assert np.array_equal(got, expected)

    def test_truncated_tail_is_loud(self):
        rng = np.random.default_rng(6)
        _, frame = _chunk_frame(rng, 8, 32)
        with pytest.raises(WireFormatError, match="truncated frame"):
            wire.decode_frame_at(frame[:-3], 0)
        with pytest.raises(WireFormatError, match="truncated frame"):
            wire.decode_frame_at(frame, len(frame) - 10)

    def test_offset_bounds_validated(self):
        with pytest.raises(ValidationError, match="offset"):
            wire.decode_frame_at(b"", -1)
        with pytest.raises(ValidationError, match="offset"):
            wire.decode_frame_at(b"abc", 4)

    def test_corrupt_payload_crc_is_loud(self):
        rng = np.random.default_rng(7)
        _, frame = _chunk_frame(rng, 8, 32)
        corrupted = bytearray(frame)
        corrupted[wire.HEADER_SIZE] ^= 0xFF
        with pytest.raises(WireFormatError, match="payload checksum"):
            wire.decode_frame_at(bytes(corrupted), 0)


class TestStructuralCopiesAnnounceThemselves:
    def test_snapshot_decode_copies_exactly_once(self, copy_log):
        acc = CountAccumulator(64)
        acc.add_reports(np.eye(64, dtype=np.int8))
        decoded = wire.loads(wire.dumps(acc))
        assert copy_log == [("snapshot-counts", 64 * 8)]
        assert decoded.digest() == acc.digest()
        # The decoded accumulator owns writable state.
        assert decoded.counts().flags.writeable

    def test_session_decode_announces_its_bytes(self, copy_log):
        hello = wire.SessionHello(
            m=8, round_id=0, producer_id="edge-7", nonce=b"\x01" * 16
        )
        decoded = wire.loads(wire.dumps(hello))
        assert decoded == hello
        assert [site for site, _ in copy_log] == ["session-payload"]

    def test_hook_disabled_by_default(self):
        assert wire.payload_copy_hook is None


class TestMmapReplay:
    def _spill(self, tmp_path, *, frames=8, rows=256, m=400, shard_id=0):
        store = ShardStore(str(tmp_path))
        rng = np.random.default_rng(42)
        expected = CountAccumulator(m)
        with store.writer(shard_id, m) as writer:
            for _ in range(frames):
                chunk, _ = _chunk_frame(rng, rows, m)
                writer.write(chunk)
                expected.add_packed_reports(chunk)
        return store, expected

    def test_replay_matches_in_memory_digest(self, tmp_path):
        store, expected = self._spill(tmp_path)
        assert store.replay_shard(0).digest() == expected.digest()

    def test_replay_makes_no_payload_copies(self, tmp_path, copy_log):
        store, expected = self._spill(tmp_path)
        replayed = store.replay_shard(0)
        assert copy_log == []
        assert replayed.digest() == expected.digest()

    def test_replay_with_threaded_backend_is_bit_identical(self, tmp_path):
        store, expected = self._spill(tmp_path)
        assert (
            store.replay_shard(0, compute="threaded").digest()
            == expected.digest()
        )

    def test_replay_empty_spill_is_loud(self, tmp_path):
        store = ShardStore(str(tmp_path))
        with open(store.chunk_path(3), "wb"):
            pass
        with pytest.raises(WireFormatError, match="holds no frames"):
            store.replay_shard(3)

    def test_replay_truncated_spill_is_loud(self, tmp_path):
        store, _ = self._spill(tmp_path, shard_id=1)
        path = store.chunk_path(1)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 7)
        with pytest.raises(WireFormatError, match="truncated frame"):
            store.replay_shard(1)

    def test_replay_large_spill_bounded_rss(self, tmp_path):
        # ~32 MiB spill; the mmap walk releases consumed pages, so the
        # replay's RSS growth must stay well under the file size.
        # ru_maxrss is a process-lifetime high-water mark: if an earlier
        # test already peaked higher, the delta shrinks toward zero and
        # the assertion only gets easier — it can never false-fail.
        m = 10_000
        store, expected = self._spill(
            tmp_path, frames=50, rows=512, m=m, shard_id=2
        )
        spilled = os.path.getsize(store.chunk_path(2))
        assert spilled > 30 * 1024 * 1024
        before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        replayed = store.replay_shard(2)
        after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        assert replayed.digest() == expected.digest()
        grown = (after - before) * 1024  # ru_maxrss is KiB on Linux
        assert grown < spilled // 2, (grown, spilled)
