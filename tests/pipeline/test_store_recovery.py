"""Tests for crash-safe spill state: index sidecar, truncation recovery,
atomic snapshots, and audit on degenerate stores."""

from __future__ import annotations

import os
import struct

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.pipeline import CountAccumulator, ShardStore

M = 16


def _rows(k=4, seed=0):
    rng = np.random.default_rng(seed)
    return np.packbits((rng.random((k, M)) < 0.5).astype(np.uint8), axis=1)


def _spill(store, frames, *, durable=True, sync=True):
    """Write *frames* chunk payloads; returns each frame's end offset."""
    offsets = []
    with store.writer(0, M, durable=durable) as writer:
        for seed in range(frames):
            writer.write(_rows(seed=seed))
            if sync:
                writer.sync()
            offsets.append(writer.end_offset)
    return offsets


class TestIndexSidecar:
    def test_durable_writer_keeps_offsets(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        offsets = _spill(store, 3)
        with open(store.index_path(0), "rb") as handle:
            stored = [
                offset for (offset,) in struct.Struct("<Q").iter_unpack(handle.read())
            ]
        assert stored == offsets
        assert offsets[-1] == os.path.getsize(store.chunk_path(0))

    def test_non_durable_writer_has_no_index(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        _spill(store, 2, durable=False, sync=False)
        assert not os.path.exists(store.index_path(0))

    def test_sync_on_closed_writer_rejected(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        writer = store.writer(0, M, durable=True)
        writer.close()
        with pytest.raises(ValidationError, match="closed"):
            writer.sync()


class TestRecoverShard:
    def test_clean_shard_recovers_unchanged(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        offsets = _spill(store, 3)
        report = store.recover_shard(0)
        assert report == {
            "offset": offsets[-1],
            "frames": 3,
            "discarded_bytes": 0,
        }

    def test_torn_frame_is_truncated(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        offsets = _spill(store, 2)
        with open(store.chunk_path(0), "ab") as handle:
            handle.write(b"IDLP\x01\x00 partial frame junk")
        report = store.recover_shard(0)
        assert report["offset"] == offsets[-1] and report["frames"] == 2
        assert report["discarded_bytes"] > 0
        # The recovered spill replays cleanly.
        assert store.replay_shard(0).n == 8

    def test_recovery_without_index_scans_frames(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        _spill(store, 2, durable=False, sync=False)
        size = os.path.getsize(store.chunk_path(0))
        with open(store.chunk_path(0), "ab") as handle:
            handle.write(b"\xde\xad")
        report = store.recover_shard(0)
        assert report["offset"] == size and report["frames"] == 2
        assert report["discarded_bytes"] == 2

    def test_torn_index_entry_is_dropped(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        offsets = _spill(store, 2)
        with open(store.index_path(0), "ab") as handle:
            handle.write(b"\x01\x02\x03")  # crash mid index append
        report = store.recover_shard(0)
        assert report["offset"] == offsets[-1] and report["frames"] == 2
        assert os.path.getsize(store.index_path(0)) == 16

    def test_index_ahead_of_chunk_file_is_dropped(self, tmp_path):
        # Index flushed an entry whose chunk bytes never hit the disk.
        store = ShardStore(tmp_path / "round")
        offsets = _spill(store, 2)
        with open(store.index_path(0), "ab") as handle:
            handle.write(struct.pack("<Q", offsets[-1] + 999))
        report = store.recover_shard(0)
        assert report["offset"] == offsets[-1] and report["frames"] == 2

    def test_committed_offset_drops_unledgered_tail(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        offsets = _spill(store, 3)
        report = store.recover_shard(0, committed_offset=offsets[0])
        assert report["offset"] == offsets[0] and report["frames"] == 1
        assert store.replay_shard(0).n == 4
        # The index shrank with the file.
        assert os.path.getsize(store.index_path(0)) == 8

    def test_committed_offset_beyond_disk_rejected(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        offsets = _spill(store, 1)
        with pytest.raises(ValidationError, match="only .* complete frames"):
            store.recover_shard(0, committed_offset=offsets[0] + 100)

    def test_committed_offset_off_boundary_rejected(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        _spill(store, 2)
        with pytest.raises(ValidationError, match="frame boundary"):
            store.recover_shard(0, committed_offset=7)

    def test_missing_shard_recovers_empty(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        assert store.recover_shard(3) == {
            "offset": 0,
            "frames": 0,
            "discarded_bytes": 0,
        }

    def test_missing_shard_with_commitments_rejected(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        with pytest.raises(ValidationError, match="no chunk file"):
            store.recover_shard(3, committed_offset=64)

    def test_resume_after_recovery_appends(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        _spill(store, 2)
        with open(store.chunk_path(0), "ab") as handle:
            handle.write(b"torn")
        store.recover_shard(0)
        with store.writer(0, M, durable=True, resume=True) as writer:
            writer.write(_rows(seed=9))
            writer.sync()
        assert store.replay_shard(0).n == 12
        assert store.recover_shard(0)["frames"] == 3


class TestAtomicSnapshots:
    def test_snapshot_write_leaves_no_temp_litter(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        acc = CountAccumulator(M)
        acc.add_reports(np.ones((2, M), dtype=np.int8))
        store.write_snapshot(0, acc)
        assert store.load_snapshot(0).digest() == acc.digest()
        assert os.listdir(store.root) == ["shard_00000.snapshot"]

    def test_failed_replacement_keeps_previous_snapshot(self, tmp_path, monkeypatch):
        store = ShardStore(tmp_path / "round")
        first = CountAccumulator(M)
        first.add_reports(np.ones((3, M), dtype=np.int8))
        store.write_snapshot(0, first)

        import repro.pipeline.collect.store as store_module

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(store_module.os, "replace", exploding_replace)
        second = CountAccumulator(M)
        second.add_reports(np.zeros((1, M), dtype=np.int8))
        with pytest.raises(OSError, match="disk full"):
            store.write_snapshot(0, second)
        monkeypatch.undo()
        # The old snapshot is intact and no temp file remains.
        assert store.load_snapshot(0).digest() == first.digest()
        assert os.listdir(store.root) == ["shard_00000.snapshot"]


class TestAuditDegenerateStores:
    def test_audit_on_empty_store_rejected(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        with pytest.raises(ValidationError, match="no spilled shards"):
            store.audit()

    def test_audit_on_fresh_missing_directory_rejected(self, tmp_path):
        # The constructor creates the directory; auditing it is still an
        # explicit error, not an empty-dict success.
        missing = tmp_path / "never" / "written"
        store = ShardStore(missing)
        assert os.path.isdir(missing)
        with pytest.raises(ValidationError, match="no spilled shards"):
            store.audit()

    def test_foreign_files_do_not_become_shards(self, tmp_path):
        store = ShardStore(tmp_path / "round")
        (tmp_path / "round" / "notes.txt").write_text("operator litter")
        with pytest.raises(ValidationError, match="no spilled shards"):
            store.audit()
