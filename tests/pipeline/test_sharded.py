"""Tests for the multi-process sharded collection driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IDUEPS, OptimizedUnaryEncoding
from repro.datasets import ItemsetDataset
from repro.estimation import merge_round_estimates
from repro.exceptions import ValidationError
from repro.pipeline import ShardedRunner, shard_bounds


class TestShardBounds:
    def test_covers_every_user_once(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_caps_shards_at_population(self):
        assert shard_bounds(2, 8) == [(0, 1), (1, 2)]

    def test_single_shard(self):
        assert shard_bounds(5, 1) == [(0, 5)]


class TestShardedRuns:
    @pytest.fixture
    def workload(self, rng):
        m, n = 12, 3_000
        return OptimizedUnaryEncoding(2.0, m), rng.integers(m, size=n)

    def test_parallel_equals_serial(self, workload):
        """Pool execution and in-process execution give identical state."""
        mechanism, items = workload
        serial = ShardedRunner(
            mechanism, num_shards=3, chunk_size=256, processes=1
        ).run(items, seed=5)
        parallel = ShardedRunner(
            mechanism, num_shards=3, chunk_size=256, processes=3
        ).run(items, seed=5)
        assert np.array_equal(serial.counts(), parallel.counts())
        assert serial.n == parallel.n == items.size

    def test_reproducible_given_seed(self, workload):
        mechanism, items = workload
        runner = ShardedRunner(mechanism, num_shards=4, chunk_size=128, processes=1)
        one = runner.run(items, seed=9)
        two = runner.run(items, seed=9)
        assert np.array_equal(one.counts(), two.counts())

    def test_shard_split_is_exact(self, workload):
        """Sharded merge == manually streaming each shard and merging."""
        from repro.pipeline import CountAccumulator, stream_counts

        mechanism, items = workload
        runner = ShardedRunner(mechanism, num_shards=2, chunk_size=100, processes=1)
        merged = runner.run(items, seed=3)
        bounds = shard_bounds(items.size, 2)
        children = np.random.SeedSequence(3).spawn(2)
        manual = CountAccumulator.merge_all(
            stream_counts(
                mechanism,
                items[start:stop],
                chunk_size=100,
                rng=np.random.default_rng(child),
            )
            for (start, stop), child in zip(bounds, children)
        )
        assert np.array_equal(merged.counts(), manual.counts())

    def test_packed_transport(self, workload):
        mechanism, items = workload
        runner = ShardedRunner(
            mechanism, num_shards=2, chunk_size=200, packed=True, processes=1
        )
        accumulator = runner.run(items, seed=1)
        assert accumulator.n == items.size

    def test_itemset_dataset_shards(self, toy_spec, rng):
        mechanism = IDUEPS.optimized(toy_spec, ell=2, model="opt1")
        sets = [
            rng.choice(toy_spec.m, size=int(rng.integers(1, 4)), replace=False).tolist()
            for _ in range(500)
        ]
        dataset = ItemsetDataset.from_sets(sets, m=toy_spec.m)
        runner = ShardedRunner(mechanism, num_shards=3, chunk_size=64, processes=1)
        accumulator = runner.run(dataset, seed=0)
        assert accumulator.n == dataset.n
        assert accumulator.m == mechanism.extended_m

    def test_multi_round_collection(self, workload):
        mechanism, items = workload
        runner = ShardedRunner(mechanism, num_shards=2, chunk_size=500, processes=1)
        rounds = runner.run_rounds(items, seeds=[1, 2, 3])
        assert [r.round_id for r in rounds] == [0, 1, 2]
        merged, variance = merge_round_estimates(
            r.to_round_estimate(mechanism) for r in rounds
        )
        truth = np.bincount(items, minlength=mechanism.m)
        assert np.allclose(merged, truth, atol=6 * np.sqrt(items.size))
        assert np.all(variance > 0)

    def test_rejects_empty_population(self, workload):
        mechanism, _ = workload
        runner = ShardedRunner(mechanism, num_shards=2, processes=1)
        with pytest.raises(ValidationError, match="zero users"):
            runner.run(np.array([], dtype=np.int64), seed=0)


class TestWireFormatResults:
    """Shard results cross the process boundary as wire frames, not pickles."""

    @pytest.fixture
    def workload(self, rng):
        m, n = 12, 2_000
        return OptimizedUnaryEncoding(2.0, m), rng.integers(m, size=n)

    def test_worker_returns_wire_snapshot(self, workload):
        """_run_shard emits a decodable frame — what a remote worker ships."""
        from repro.pipeline.collect import wire
        from repro.pipeline.sharded import _run_shard

        mechanism, items = workload
        runner = ShardedRunner(mechanism, num_shards=1, chunk_size=256, processes=1)
        frame = _run_shard(
            (
                mechanism,
                items,
                256,
                False,
                0,
                np.random.SeedSequence(0),
                runner.sampler,
                0,
                None,
            )
        )
        assert isinstance(frame, bytes)
        assert frame[:4] == wire.WIRE_MAGIC
        accumulator = wire.loads(frame)
        assert accumulator.n == items.size and accumulator.m == mechanism.m

    def test_worker_process_snapshot_loads_in_parent(self, workload):
        """A snapshot produced inside a real worker process round-trips the
        wire format and merges correctly in the parent."""
        mechanism, items = workload
        parallel = ShardedRunner(
            mechanism, num_shards=2, chunk_size=256, processes=2
        ).run(items, seed=11)
        serial = ShardedRunner(
            mechanism, num_shards=2, chunk_size=256, processes=1
        ).run(items, seed=11)
        assert parallel.digest() == serial.digest()
        assert parallel.n == items.size

    def test_corrupted_worker_frame_fails_loudly(self, workload, monkeypatch):
        """A mangled result frame must raise WireFormatError in the parent,
        never merge garbage."""
        from repro.exceptions import WireFormatError
        from repro.pipeline import sharded as sharded_module

        mechanism, items = workload
        real_run_shard = sharded_module._run_shard

        def corrupt_run_shard(payload):
            frame = bytearray(real_run_shard(payload))
            frame[-1] ^= 0xFF
            return bytes(frame)

        monkeypatch.setattr(sharded_module, "_run_shard", corrupt_run_shard)
        runner = ShardedRunner(mechanism, num_shards=2, chunk_size=256, processes=1)
        with pytest.raises(WireFormatError, match="checksum"):
            runner.run(items, seed=0)


class TestRunnerSpill:
    @pytest.fixture
    def workload(self, rng):
        m, n = 12, 1_500
        return OptimizedUnaryEncoding(2.0, m), rng.integers(m, size=n)

    @pytest.mark.parametrize("packed", [False, True])
    def test_spill_dir_replays_to_identical_round(self, workload, tmp_path, packed):
        """spill_dir leaves a store whose replay matches the live result —
        for packed transport and for unpacked chunks packed at the sink."""
        from repro.pipeline import ShardStore

        mechanism, items = workload
        runner = ShardedRunner(
            mechanism, num_shards=3, chunk_size=128, packed=packed, processes=1
        )
        live = runner.run(items, seed=7, spill_dir=str(tmp_path / "round"))
        store = ShardStore(str(tmp_path / "round"))
        assert store.shard_ids() == [0, 1, 2]
        assert store.replay().digest() == live.digest()
        audit = store.audit()
        assert all(entry["match"] for entry in audit.values())

    def test_spill_matches_unspilled_run(self, workload, tmp_path):
        """Spilling is a pure tap: the returned accumulator is unchanged."""
        mechanism, items = workload
        runner = ShardedRunner(mechanism, num_shards=2, chunk_size=200, processes=1)
        plain = runner.run(items, seed=3)
        spilled = runner.run(items, seed=3, spill_dir=str(tmp_path / "round"))
        assert plain.digest() == spilled.digest()

    def test_spill_under_worker_processes(self, workload, tmp_path):
        """Workers in separate processes spill to disjoint shard files."""
        from repro.pipeline import ShardStore

        mechanism, items = workload
        runner = ShardedRunner(mechanism, num_shards=2, chunk_size=200, processes=2)
        live = runner.run(items, seed=5, spill_dir=str(tmp_path / "round"))
        store = ShardStore(str(tmp_path / "round"))
        assert store.replay().digest() == live.digest()

    def test_categorical_spill_rejected(self, rng):
        from repro.mechanisms import GeneralizedRandomizedResponse

        runner = ShardedRunner(
            GeneralizedRandomizedResponse(2.0, 6), num_shards=2, processes=1
        )
        with pytest.raises(ValidationError, match="bit-vector"):
            runner.run(rng.integers(6, size=100), seed=0, spill_dir="/tmp/never")


class TestSpillDirReuseRefused:
    def test_second_round_into_same_dir_rejected(self, rng, tmp_path):
        """Stale shards from a previous round must never survive into a
        new round's replay; the runner refuses the reused directory."""
        mechanism = OptimizedUnaryEncoding(2.0, 8)
        items = rng.integers(8, size=300)
        runner = ShardedRunner(mechanism, num_shards=3, chunk_size=64, processes=1)
        spill = str(tmp_path / "round")
        runner.run(items, seed=0, spill_dir=spill)
        with pytest.raises(ValidationError, match="fresh directory"):
            runner.run(items, seed=1, spill_dir=spill)
