"""Golden-fixture tests pinning session frames: v2 byte-identical, v3 new.

The multi-round service introduced wire-format version 3 — a
:class:`~repro.pipeline.collect.wire.SessionChallenge` carrying the
hosted round's 16-byte registration token after the server nonce.  The
contract these fixtures pin:

* every **version-2** session frame (hello, tokenless challenge, proof,
  record, ack) still encodes byte-for-byte as it did before the
  multi-round change — a single-round service and its producers are
  wire-compatible across the upgrade;
* the **version-3** challenge has exactly the documented layout
  (``nonce || round_token``, version field 3), and decoding is version
  gated both ways: a 32-byte challenge payload claiming version 2 is
  refused, as is a 16-byte payload claiming version 3.

Expectations are duplicated from ``tests/fixtures/make_wire_fixtures.py``
on purpose — the duplication is what pins producer and consumer
together.  If a deliberate format change breaks this file, bump the
version, regenerate, and keep the old decode paths working.
"""

from __future__ import annotations

import os
import struct
import zlib

import pytest

from repro.exceptions import WireFormatError
from repro.pipeline.collect import wire

FIXTURE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "fixtures",
    "wire",
)

CLIENT_NONCE = bytes(range(16))
SERVER_NONCE = bytes(range(16, 32))
ROUND_TOKEN = bytes(range(32, 48))
PROOF_MAC = bytes(range(64, 96))


def _read(name: str) -> bytes:
    with open(os.path.join(FIXTURE_DIR, name), "rb") as handle:
        return handle.read()


def _fix_header_crc(frame: bytearray) -> bytes:
    frame[36:40] = struct.pack("<I", zlib.crc32(bytes(frame[:36])))
    return bytes(frame)


GOLDEN = {
    "hello_v2_m16_round2.bin": wire.SessionHello(
        m=16, round_id=2, producer_id="tally-node-7", nonce=CLIENT_NONCE
    ),
    "challenge_v2_m16_round2.bin": wire.SessionChallenge(
        m=16, round_id=2, nonce=SERVER_NONCE
    ),
    "challenge_v3_m16_round2.bin": wire.SessionChallenge(
        m=16, round_id=2, nonce=SERVER_NONCE, round_token=ROUND_TOKEN
    ),
    "proof_v2_m16_round2.bin": wire.SessionProof(
        m=16, round_id=2, mac=PROOF_MAC
    ),
    "ack_v2_m16_seq9_round2.bin": wire.Ack(
        m=16,
        round_id=2,
        seq=9,
        status=wire.ACK_DUPLICATE,
        detail="already merged",
    ),
}


class TestGoldenSessionFrames:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_decodes_to_pinned_object(self, name):
        assert wire.loads(_read(name)) == GOLDEN[name]

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_fresh_encode_matches_committed_bytes(self, name):
        assert wire.dumps(GOLDEN[name]) == _read(name)

    def test_record_fixture_wraps_the_golden_chunk(self):
        record = wire.loads(_read("record_v2_m21_seq9_round7.bin"))
        assert isinstance(record, wire.Record)
        assert (record.m, record.round_id, record.seq) == (21, 7, 9)
        # The envelope's payload is the committed v1 chunk fixture,
        # verbatim — records ship core frames byte-for-byte.
        assert record.frame == _read("chunk_v1_m21_k4_round7.bin")
        assert wire.dumps(record) == _read("record_v2_m21_seq9_round7.bin")

    def test_v2_frames_do_not_depend_on_multiround_code(self):
        """A tokenless challenge still *encodes* as version 2: the
        version bytes in the committed v2 fixtures are all 2."""
        for name in GOLDEN:
            expected = 3 if "_v3_" in name else 2
            assert _read(name)[4:6] == struct.pack("<H", expected), name


class TestChallengeVersionGate:
    def test_v3_layout_is_nonce_then_token(self):
        blob = _read("challenge_v3_m16_round2.bin")
        payload = blob[wire.HEADER_SIZE : wire.HEADER_SIZE + 32]
        assert payload[:16] == SERVER_NONCE
        assert payload[16:] == ROUND_TOKEN

    def test_token_payload_claiming_v2_refused(self):
        bad = bytearray(_read("challenge_v3_m16_round2.bin"))
        bad[4:6] = struct.pack("<H", wire.WIRE_VERSION_SESSION)
        with pytest.raises(WireFormatError, match=r"must be 16 bytes.*got 32"):
            wire.loads(_fix_header_crc(bad))

    def test_tokenless_payload_claiming_v3_refused(self):
        bad = bytearray(_read("challenge_v2_m16_round2.bin"))
        bad[4:6] = struct.pack("<H", wire.WIRE_VERSION_MULTIROUND)
        with pytest.raises(WireFormatError, match=r"must be 32 bytes.*got 16"):
            wire.loads(_fix_header_crc(bad))

    def test_v3_on_a_non_challenge_kind_refused(self):
        """Version 3 is a challenge-only dialect: a hello claiming it
        must fail the kind/version gate, not decode."""
        bad = bytearray(_read("hello_v2_m16_round2.bin"))
        bad[4:6] = struct.pack("<H", wire.WIRE_VERSION_MULTIROUND)
        with pytest.raises(WireFormatError, match="require wire-format version"):
            wire.loads(_fix_header_crc(bad))

    def test_future_version_names_all_supported(self):
        bad = bytearray(_read("challenge_v2_m16_round2.bin"))
        bad[4:6] = struct.pack("<H", 99)
        with pytest.raises(
            WireFormatError, match=r"version 99.*supports version 1.*2.*3"
        ):
            wire.loads(_fix_header_crc(bad))
