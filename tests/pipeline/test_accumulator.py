"""Unit tests for the mergeable CountAccumulator."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import OptimizedUnaryEncoding
from repro.estimation import RoundEstimate, merge_round_estimates
from repro.exceptions import ValidationError
from repro.mechanisms import GeneralizedRandomizedResponse
from repro.pipeline import CountAccumulator


class TestIngestion:
    def test_add_reports_accumulates(self):
        acc = CountAccumulator(3)
        acc.add_reports([[1, 0, 1], [0, 0, 1]])
        assert acc.n == 2
        assert acc.counts().tolist() == [1, 0, 2]

    def test_add_reports_rejects_non_binary(self):
        acc = CountAccumulator(2)
        with pytest.raises(ValidationError, match="0/1"):
            acc.add_reports([[1, 2]])

    def test_add_reports_rejects_wrong_width(self):
        acc = CountAccumulator(2)
        with pytest.raises(ValidationError, match="shape"):
            acc.add_reports([[1, 0, 1]])

    def test_counts_returns_copy(self):
        acc = CountAccumulator(2)
        acc.add_reports([[1, 1]])
        acc.counts()[0] = 99
        assert acc.counts().tolist() == [1, 1]

    def test_packed_round_trip_matches_unpacked(self, rng):
        m = 21  # deliberately not a multiple of 8: trailing pad bits
        reports = (rng.random((40, m)) < 0.3).astype(np.int8)
        plain = CountAccumulator(m)
        plain.add_reports(reports)
        packed = CountAccumulator(m)
        packed.add_packed_reports(np.packbits(reports, axis=1))
        assert np.array_equal(plain.counts(), packed.counts())
        assert plain.n == packed.n == 40

    def test_packed_rejects_wrong_dtype(self):
        acc = CountAccumulator(8)
        with pytest.raises(ValidationError, match="uint8"):
            acc.add_packed_reports(np.zeros((2, 1), dtype=np.int64))

    def test_packed_rejects_wrong_width(self):
        acc = CountAccumulator(17)  # needs 3 packed bytes
        with pytest.raises(ValidationError, match="shape"):
            acc.add_packed_reports(np.zeros((2, 2), dtype=np.uint8))

    def test_add_categories_histograms(self):
        acc = CountAccumulator(4)
        acc.add_categories(np.array([0, 2, 2, 3]))
        assert acc.n == 4
        assert acc.counts().tolist() == [1, 0, 2, 1]

    def test_add_categories_rejects_out_of_domain(self):
        acc = CountAccumulator(4)
        with pytest.raises(ValidationError, match="domain"):
            acc.add_categories(np.array([0, 4]))


class TestMerge:
    def test_shard_split_equals_single_pass(self, rng):
        """Exact mergeability: any shard partition yields identical state."""
        m, n = 16, 200
        reports = (rng.random((n, m)) < 0.4).astype(np.int8)
        single = CountAccumulator(m)
        single.add_reports(reports)
        for split in (1, 57, 100, 199):
            left, right = CountAccumulator(m), CountAccumulator(m)
            left.add_reports(reports[:split])
            right.add_reports(reports[split:])
            merged = CountAccumulator.merge_all([left, right])
            assert np.array_equal(merged.counts(), single.counts())
            assert merged.n == single.n == n

    def test_merge_returns_self_for_chaining(self):
        a, b = CountAccumulator(2), CountAccumulator(2)
        assert a.merge(b) is a

    def test_merge_rejects_width_mismatch(self):
        with pytest.raises(ValidationError, match="width"):
            CountAccumulator(2).merge(CountAccumulator(3))

    def test_merge_rejects_round_mismatch(self):
        with pytest.raises(ValidationError, match="round"):
            CountAccumulator(2, round_id=0).merge(CountAccumulator(2, round_id=1))

    def test_merge_all_rejects_empty(self):
        with pytest.raises(ValidationError, match="no accumulators"):
            CountAccumulator.merge_all([])

    def test_pickle_round_trip(self):
        """Accumulators cross process boundaries intact (sharded driver)."""
        acc = CountAccumulator(3, round_id=7)
        acc.add_reports([[1, 0, 1]])
        clone = pickle.loads(pickle.dumps(acc))
        assert clone.round_id == 7 and clone.n == 1
        assert np.array_equal(clone.counts(), acc.counts())


class TestEstimation:
    def test_estimate_unary_is_calibrated(self, rng):
        m, n = 8, 30_000
        mech = OptimizedUnaryEncoding(3.0, m)
        items = rng.integers(m, size=n)
        acc = CountAccumulator(m)
        acc.add_reports(mech.perturb_many(items, rng))
        truth = np.bincount(items, minlength=m)
        assert np.allclose(acc.estimate(mech), truth, atol=6 * np.sqrt(n))

    def test_estimate_categorical_grr(self, rng):
        m, n = 6, 30_000
        mech = GeneralizedRandomizedResponse(3.0, m)
        items = rng.integers(m, size=n)
        acc = CountAccumulator(m)
        acc.add_categories(mech.perturb_many(items, rng))
        truth = np.bincount(items, minlength=m)
        assert np.allclose(acc.estimate(mech), truth, atol=6 * np.sqrt(n))

    def test_round_estimates_feed_cross_round_merge(self, rng):
        """Two rounds' accumulators combine via merge_round_estimates."""
        m, n = 5, 20_000
        mech = OptimizedUnaryEncoding(2.0, m)
        items = rng.integers(m, size=n)
        rounds = []
        for round_id in range(2):
            acc = CountAccumulator(m, round_id=round_id)
            acc.add_reports(mech.perturb_many(items, rng))
            rounds.append(acc.to_round_estimate(mech))
        assert all(isinstance(r, RoundEstimate) for r in rounds)
        merged, variance = merge_round_estimates(rounds)
        truth = np.bincount(items, minlength=m)
        assert np.allclose(merged, truth, atol=6 * np.sqrt(n))
        assert np.all(variance < rounds[0].noise_variance)

    def test_estimate_empty_accumulator_rejected(self):
        mech = OptimizedUnaryEncoding(2.0, 4)
        with pytest.raises(ValidationError, match="empty"):
            CountAccumulator(4).estimate(mech)

    def test_estimate_unsupported_mechanism_rejected(self):
        acc = CountAccumulator(2)
        acc.add_reports([[1, 0]])
        with pytest.raises(ValidationError, match="estimator"):
            acc.estimate(object())


class TestBinaryRRStreaming:
    def test_estimate_binary_rr(self, rng):
        """BRR has no q attribute; the symmetric q = 1 - p fallback applies."""
        from repro.mechanisms import BinaryRandomizedResponse
        from repro.pipeline import stream_counts

        mech = BinaryRandomizedResponse(3.0)
        bits = (rng.random(30_000) < 0.25).astype(np.int64)
        acc = stream_counts(mech, bits, chunk_size=4_000, rng=rng)
        truth = np.bincount(bits, minlength=2)
        assert np.allclose(acc.estimate(mech), truth, atol=6 * np.sqrt(bits.size))


class TestHashDomainMechanismRejected:
    def test_olh_estimate_raises_instead_of_miscalibrating(self):
        """OLH exposes p/q but needs hash-domain calibration; the
        accumulator must refuse rather than silently return biased numbers."""
        from repro.mechanisms.local_hashing import OptimizedLocalHashing

        olh = OptimizedLocalHashing(1.0, m=10)
        acc = CountAccumulator(10)
        acc.add_categories(np.arange(10))
        with pytest.raises(ValidationError, match="estimator"):
            acc.estimate(olh)


class TestMergeEdgeCases:
    def test_merge_empty_into_filled_is_identity(self):
        acc = CountAccumulator(3)
        acc.add_reports([[1, 0, 1], [1, 1, 0]])
        before = acc.digest()
        acc.merge(CountAccumulator(3))
        assert acc.digest() == before and acc.n == 2

    def test_merge_filled_into_empty_copies_state(self):
        filled = CountAccumulator(3)
        filled.add_reports([[1, 0, 1]])
        empty = CountAccumulator(3)
        empty.merge(filled)
        assert empty.n == 1
        assert np.array_equal(empty.counts(), filled.counts())

    def test_merge_two_empties_stays_empty(self):
        merged = CountAccumulator.merge_all(
            [CountAccumulator(4), CountAccumulator(4)]
        )
        assert merged.n == 0 and merged.counts().tolist() == [0, 0, 0, 0]

    def test_merge_rejects_non_accumulator(self):
        with pytest.raises(ValidationError, match="can only merge"):
            CountAccumulator(2).merge({"counts": [1, 2]})


class TestPackedEdgeCases:
    @pytest.mark.parametrize("m", [1, 7, 9, 21, 63])
    def test_non_multiple_of_8_widths_round_trip(self, m, rng):
        """Every pad-bit geometry counts identically packed or not."""
        reports = (rng.random((25, m)) < 0.5).astype(np.int8)
        plain = CountAccumulator(m)
        plain.add_reports(reports)
        packed = CountAccumulator(m)
        packed.add_packed_reports(np.packbits(reports, axis=1))
        assert np.array_equal(plain.counts(), packed.counts())

    def test_zero_row_packed_chunk_is_noop(self):
        acc = CountAccumulator(12)
        acc.add_packed_reports(np.empty((0, 2), dtype=np.uint8))
        assert acc.n == 0 and acc.counts().tolist() == [0] * 12


class TestFromState:
    def test_round_trips_state(self):
        acc = CountAccumulator.from_state(
            4, np.array([3, 0, 2, 1]), 3, round_id=5
        )
        assert acc.m == 4 and acc.n == 3 and acc.round_id == 5
        assert acc.counts().tolist() == [3, 0, 2, 1]

    def test_rebuilt_state_keeps_ingesting(self):
        acc = CountAccumulator.from_state(2, np.array([1, 0]), 1)
        acc.add_reports([[1, 1]])
        assert acc.n == 2 and acc.counts().tolist() == [2, 1]

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValidationError, match="shape"):
            CountAccumulator.from_state(3, np.array([1, 2]), 2)

    def test_rejects_float_counts(self):
        with pytest.raises(ValidationError, match="integers"):
            CountAccumulator.from_state(2, np.array([1.0, 0.5]), 2)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValidationError, match=r"\[0, n"):
            CountAccumulator.from_state(2, np.array([-1, 0]), 2)

    def test_rejects_counts_exceeding_n(self):
        """No ingestion path can produce a per-bit count above n."""
        with pytest.raises(ValidationError, match=r"\[0, n"):
            CountAccumulator.from_state(2, np.array([3, 0]), 2)

    def test_rejects_negative_n(self):
        with pytest.raises(ValidationError, match="non-negative"):
            CountAccumulator.from_state(2, np.array([0, 0]), -1)


class TestDigest:
    def test_equal_state_equal_digest(self):
        one = CountAccumulator(3, round_id=2)
        one.add_reports([[1, 0, 1]])
        two = CountAccumulator.from_state(3, np.array([1, 0, 1]), 1, round_id=2)
        assert one.digest() == two.digest()

    @pytest.mark.parametrize(
        "other",
        [
            CountAccumulator.from_state(3, np.array([1, 0, 1]), 1, round_id=0),
            CountAccumulator.from_state(3, np.array([1, 1, 1]), 1, round_id=2),
            CountAccumulator.from_state(3, np.array([1, 0, 1]), 2, round_id=2),
            CountAccumulator(4, round_id=2),
        ],
    )
    def test_any_field_change_changes_digest(self, other):
        base = CountAccumulator.from_state(3, np.array([1, 0, 1]), 1, round_id=2)
        assert base.digest() != other.digest()

    def test_digest_is_64_hex_chars(self):
        digest = CountAccumulator(2).digest()
        assert len(digest) == 64 and set(digest) <= set("0123456789abcdef")


class TestPackedWidthMismatch:
    def test_wider_producer_rejected(self, rng):
        """m=16 reports packed into 2 bytes must not feed an m=12 round."""
        reports = np.ones((4, 16), dtype=np.int8)  # bits 12-15 set
        acc = CountAccumulator(12)
        with pytest.raises(ValidationError, match="widths disagree"):
            acc.add_packed_reports(np.packbits(reports, axis=1))

    def test_same_width_pad_bits_accepted(self, rng):
        reports = (rng.random((4, 12)) < 0.5).astype(np.int8)
        acc = CountAccumulator(12)
        acc.add_packed_reports(np.packbits(reports, axis=1))
        assert acc.n == 4
