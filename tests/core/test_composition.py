"""Unit tests for the sequential-composition accountant (Theorems 1-2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec, CompositionAccountant
from repro.exceptions import BudgetError, ValidationError


class TestBasicAccounting:
    def test_initial_state(self, toy_spec):
        accountant = CompositionAccountant(toy_spec)
        assert accountant.n_releases == 0
        assert np.all(accountant.spent() == 0.0)
        assert np.allclose(accountant.remaining(), toy_spec.item_epsilons)

    def test_record_spec_release(self, toy_spec):
        accountant = CompositionAccountant(toy_spec)
        half = BudgetSpec(toy_spec.item_epsilons / 2.0)
        accountant.record(half)
        assert accountant.n_releases == 1
        assert np.allclose(accountant.spent(), toy_spec.item_epsilons / 2.0)
        assert np.allclose(accountant.remaining(), toy_spec.item_epsilons / 2.0)

    def test_record_scalar_release_is_uniform(self, toy_spec):
        accountant = CompositionAccountant(toy_spec)
        accountant.record(0.5)
        assert np.allclose(accountant.spent(), 0.5)

    def test_exhausting_budget_raises(self, toy_spec):
        accountant = CompositionAccountant(toy_spec)
        accountant.record(BudgetSpec(toy_spec.item_epsilons))  # spend it all
        with pytest.raises(BudgetError, match="exceeds remaining"):
            accountant.record(0.01)

    def test_can_afford_respects_per_item_budgets(self, toy_spec):
        accountant = CompositionAccountant(toy_spec)
        # Uniform release at min budget is affordable; above it is not
        # (the most sensitive item's budget would be exceeded).
        assert accountant.can_afford(toy_spec.min_epsilon)
        assert not accountant.can_afford(toy_spec.min_epsilon + 0.1)

    def test_sequence_sums_elementwise_theorem2(self, toy_spec):
        """Theorem 2: budgets of a sequence add element-wise."""
        accountant = CompositionAccountant(toy_spec.scaled(3.0))
        first = BudgetSpec(toy_spec.item_epsilons)
        second = BudgetSpec(toy_spec.item_epsilons * 1.5)
        accountant.record(first)
        accountant.record(second)
        composed = accountant.composed_spec()
        assert np.allclose(
            composed.item_epsilons, toy_spec.item_epsilons * 2.5
        )

    def test_composed_spec_requires_releases(self, toy_spec):
        with pytest.raises(BudgetError, match="no releases"):
            CompositionAccountant(toy_spec).composed_spec()


class TestValidation:
    def test_rejects_non_spec_total(self):
        with pytest.raises(ValidationError):
            CompositionAccountant([1.0, 2.0])

    def test_rejects_mismatched_release_domain(self, toy_spec):
        accountant = CompositionAccountant(toy_spec)
        with pytest.raises(ValidationError, match="covers"):
            accountant.record(BudgetSpec([1.0, 1.0]))

    def test_rejects_non_positive_scalar(self, toy_spec):
        accountant = CompositionAccountant(toy_spec)
        with pytest.raises(ValidationError):
            accountant.record(-0.5)

    def test_failed_record_does_not_mutate_state(self, toy_spec):
        accountant = CompositionAccountant(toy_spec)
        accountant.record(toy_spec.min_epsilon)
        spent_before = accountant.spent()
        with pytest.raises(BudgetError):
            accountant.record(toy_spec.max_epsilon)
        assert np.allclose(accountant.spent(), spent_before)
        assert accountant.n_releases == 1
