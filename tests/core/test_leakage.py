"""Unit tests for prior-posterior leakage bounds (Table I)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.leakage import (
    empirical_leakage_bounds,
    geo_indistinguishability_leakage_bounds,
    ldp_leakage_bounds,
    minid_leakage_bounds,
    pldp_leakage_bounds,
)
from repro.exceptions import ValidationError
from repro.mechanisms import GeneralizedRandomizedResponse


class TestClosedFormBounds:
    def test_ldp_row(self):
        low, high = ldp_leakage_bounds(1.0)
        assert low == pytest.approx(np.exp(-1.0))
        assert high == pytest.approx(np.exp(1.0))

    def test_pldp_row_uses_user_budget(self):
        assert pldp_leakage_bounds(2.0) == ldp_leakage_bounds(2.0)

    def test_minid_row_capped_by_two_min(self):
        budgets = [1.0, 5.0]
        # eps_x = 5 > 2*min = 2, so the effective exponent is 2.
        low, high = minid_leakage_bounds(5.0, budgets)
        assert high == pytest.approx(np.exp(2.0))
        assert low == pytest.approx(np.exp(-2.0))

    def test_minid_row_direct_budget(self):
        low, high = minid_leakage_bounds(1.0, [1.0, 5.0])
        assert high == pytest.approx(np.exp(1.0))

    def test_minid_rejects_budget_not_in_set(self):
        with pytest.raises(ValidationError):
            minid_leakage_bounds(3.0, [1.0, 5.0])

    def test_geo_ind_row(self):
        prior = [0.5, 0.5]
        distances = [0.0, 2.0]
        low, high = geo_indistinguishability_leakage_bounds(1.0, prior, distances)
        assert low == pytest.approx(0.5 + 0.5 * np.exp(-2.0))
        assert high == pytest.approx(0.5 + 0.5 * np.exp(2.0))

    def test_geo_ind_validates_prior_sum(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            geo_indistinguishability_leakage_bounds(1.0, [0.5, 0.4], [0.0, 1.0])

    def test_geo_ind_validates_shapes(self):
        with pytest.raises(ValidationError):
            geo_indistinguishability_leakage_bounds(1.0, [0.5, 0.5], [0.0])


class TestEmpiricalLeakage:
    def test_uniform_channel_leaks_nothing(self):
        channel = np.full((3, 3), 1.0 / 3.0)
        low, high = empirical_leakage_bounds(channel, [1 / 3] * 3, x=0)
        assert low == pytest.approx(1.0)
        assert high == pytest.approx(1.0)

    def test_grr_leakage_within_ldp_bounds(self):
        epsilon = 1.2
        mech = GeneralizedRandomizedResponse(epsilon, 4)
        channel = mech.channel_matrix()
        prior = np.array([0.4, 0.3, 0.2, 0.1])
        bound_low, bound_high = ldp_leakage_bounds(epsilon)
        for x in range(4):
            low, high = empirical_leakage_bounds(channel, prior, x)
            assert low >= bound_low - 1e-12
            assert high <= bound_high + 1e-12

    def test_identity_channel_maximal_leakage(self):
        channel = np.eye(2)
        prior = [0.3, 0.7]
        low, high = empirical_leakage_bounds(channel, prior, x=0)
        # Observing the output pins the input: Pr(x)/Pr(x|y) = Pr(y) = 0.3.
        assert low == pytest.approx(0.3)
        assert high == pytest.approx(0.3)

    def test_rejects_non_stochastic_channel(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            empirical_leakage_bounds(np.array([[0.5, 0.2], [0.5, 0.5]]), [0.5, 0.5], 0)

    def test_rejects_bad_x(self):
        with pytest.raises(ValidationError):
            empirical_leakage_bounds(np.eye(2), [0.5, 0.5], 5)
