"""Unit tests for PolicyGraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PolicyGraph
from repro.core.notions import MIN
from repro.exceptions import ValidationError


class TestConstruction:
    def test_complete_graph(self):
        graph = PolicyGraph.complete(4)
        assert graph.is_complete()
        assert len(graph.edges()) == 6

    def test_star_graph(self):
        graph = PolicyGraph.star(4, center=0)
        assert not graph.is_complete()
        assert sorted(graph.edges()) == [(0, 1), (0, 2), (0, 3)]
        assert graph.neighbors(0) == [1, 2, 3]
        assert graph.neighbors(1) == [0]

    def test_star_bad_center(self):
        with pytest.raises(ValidationError):
            PolicyGraph.star(3, center=5)

    def test_self_loops_implicit(self):
        graph = PolicyGraph(3, [])
        for i in range(3):
            assert graph.has_edge(i, i)

    def test_from_adjacency_symmetrizes(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = True  # only one direction given
        graph = PolicyGraph.from_adjacency(adj)
        assert graph.has_edge(1, 0)

    def test_from_adjacency_rejects_non_square(self):
        with pytest.raises(ValidationError):
            PolicyGraph.from_adjacency(np.zeros((2, 3), dtype=bool))

    def test_edge_out_of_range(self):
        with pytest.raises(ValidationError):
            PolicyGraph(2, [(0, 5)])


class TestQueries:
    def test_has_edge_bounds_check(self):
        graph = PolicyGraph.complete(2)
        with pytest.raises(ValidationError):
            graph.has_edge(0, 9)

    def test_adjacency_read_only(self):
        graph = PolicyGraph.complete(2)
        with pytest.raises(ValueError):
            graph.adjacency()[0, 1] = False

    def test_equality_and_hash(self):
        a = PolicyGraph.star(3)
        b = PolicyGraph.star(3)
        c = PolicyGraph.complete(3)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_to_networkx_roundtrip(self):
        graph = PolicyGraph.star(4)
        nx_graph = graph.to_networkx()
        assert set(nx_graph.edges()) == set(graph.edges())


class TestTransitiveBudget:
    def test_direct_edge_uses_r(self):
        graph = PolicyGraph.complete(3)
        eps = np.array([1.0, 2.0, 3.0])
        assert graph.transitive_pair_budget(1, 2, eps, MIN) == pytest.approx(2.0)

    def test_missing_edge_goes_through_path(self):
        # Star centered at 0: 1 and 2 only connect through 0.
        graph = PolicyGraph.star(3, center=0)
        eps = np.array([1.0, 2.0, 3.0])
        # Path 1-0-2: min(2,1) + min(1,3) = 1 + 1 = 2.
        assert graph.transitive_pair_budget(1, 2, eps, MIN) == pytest.approx(2.0)

    def test_same_node_is_zero(self):
        graph = PolicyGraph.complete(2)
        assert graph.transitive_pair_budget(0, 0, [1.0, 2.0], MIN) == 0.0

    def test_disconnected_is_inf(self):
        graph = PolicyGraph(3, [(0, 1)])
        assert graph.transitive_pair_budget(0, 2, [1.0, 1.0, 1.0], MIN) == float("inf")

    def test_incomplete_graph_can_beat_two_min(self):
        """Section IV-C: dropping pairs can allow budgets beyond 2 min{E}.

        With a path graph 0-1-2 and budgets [0.5, 5, 5], the (1, 2) pair
        is directly constrained at min(5,5) = 5 > 2 * 0.5 = 1, while a
        complete graph would cap it at 2 min{E} via transitivity only if
        the (1,2) edge were forced through 0 — here it is direct.
        """
        graph = PolicyGraph(3, [(0, 1), (1, 2)])
        eps = np.array([0.5, 5.0, 5.0])
        direct = graph.transitive_pair_budget(1, 2, eps, MIN)
        assert direct == pytest.approx(5.0)
        assert direct > 2 * eps.min()

    def test_shape_mismatch(self):
        graph = PolicyGraph.complete(2)
        with pytest.raises(ValidationError):
            graph.transitive_pair_budget(0, 1, [1.0, 2.0, 3.0], MIN)
