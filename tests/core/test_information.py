"""Unit tests for channel mutual information."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec, IDUE
from repro.audit import unary_channel
from repro.core import channel_mutual_information, per_input_kl_divergence
from repro.exceptions import ValidationError
from repro.mechanisms import GeneralizedRandomizedResponse


class TestMutualInformation:
    def test_useless_channel_has_zero_mi(self):
        channel = np.full((3, 3), 1.0 / 3.0)
        assert channel_mutual_information(channel, [1 / 3] * 3) == pytest.approx(0.0)

    def test_identity_channel_has_entropy_mi(self):
        prior = np.array([0.25, 0.75])
        expected = -np.sum(prior * np.log(prior))
        assert channel_mutual_information(np.eye(2), prior) == pytest.approx(expected)

    def test_mi_bounded_by_ldp_epsilon(self):
        """Under eps-LDP, I(X;Y) <= eps (every log-ratio within ±eps)."""
        for epsilon in (0.5, 1.0, 2.0):
            channel = GeneralizedRandomizedResponse(epsilon, m=4).channel_matrix()
            mi = channel_mutual_information(channel, [0.25] * 4)
            assert 0.0 <= mi <= epsilon

    def test_mi_bounded_by_minid_equivalent_on_idue(self):
        """MI of an IDUE channel is within the Lemma 1 LDP equivalent."""
        spec = BudgetSpec([0.8, 2.0, 2.0])
        mech = IDUE.optimized(spec, model="opt0")
        channel = unary_channel(mech)
        prior = np.array([0.2, 0.3, 0.5])
        mi = channel_mutual_information(channel, prior)
        from repro.core.notions import ldp_budget_implied_by_minid

        assert 0.0 <= mi <= ldp_budget_implied_by_minid(spec.level_epsilons)

    def test_per_input_divergences_average_to_mi(self):
        channel = GeneralizedRandomizedResponse(1.0, m=3).channel_matrix()
        prior = np.array([0.5, 0.3, 0.2])
        divergences = per_input_kl_divergence(channel, prior)
        assert channel_mutual_information(channel, prior) == pytest.approx(
            float(np.sum(prior * divergences))
        )

    def test_input_discrimination_shows_in_divergences(self):
        """The sensitive level leaks less: smaller KL for its inputs."""
        spec = BudgetSpec([0.5, 3.0, 3.0])
        mech = IDUE.optimized(spec, model="opt0")
        channel = unary_channel(mech)
        divergences = per_input_kl_divergence(channel, [1 / 3] * 3)
        assert divergences[0] < divergences[1]

    def test_validation(self):
        with pytest.raises(ValidationError):
            channel_mutual_information(np.array([[0.5, 0.4], [0.5, 0.5]]), [0.5, 0.5])
        with pytest.raises(ValidationError):
            channel_mutual_information(np.eye(2), [0.5, 0.6])
        with pytest.raises(ValidationError):
            channel_mutual_information(np.eye(2), [0.5, 0.25, 0.25])
