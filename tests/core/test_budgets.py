"""Unit tests for BudgetSpec and PrivacyLevel."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec
from repro.exceptions import BudgetError, ValidationError


class TestConstruction:
    def test_groups_equal_budgets_into_levels(self):
        spec = BudgetSpec([2.0, 1.0, 2.0, 1.0, 1.0])
        assert spec.m == 5
        assert spec.t == 2
        assert spec.level_epsilons.tolist() == [1.0, 2.0]
        assert spec.level_sizes.tolist() == [3, 2]

    def test_levels_sorted_ascending(self):
        spec = BudgetSpec([3.0, 1.0, 2.0])
        assert spec.level_epsilons.tolist() == [1.0, 2.0, 3.0]
        assert spec.min_epsilon == 1.0
        assert spec.max_epsilon == 3.0

    def test_item_level_mapping(self):
        spec = BudgetSpec([2.0, 1.0, 2.0])
        assert spec.item_level.tolist() == [1, 0, 1]
        assert spec.level_of(0) == 1
        assert spec.epsilon_of(1) == 1.0

    def test_rejects_non_positive_budgets(self):
        with pytest.raises(ValidationError):
            BudgetSpec([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            BudgetSpec([])

    def test_arrays_are_read_only(self):
        spec = BudgetSpec([1.0, 2.0])
        with pytest.raises(ValueError):
            spec.item_epsilons[0] = 5.0


class TestAlternativeConstructors:
    def test_uniform(self):
        spec = BudgetSpec.uniform(1.5, 10)
        assert spec.t == 1
        assert spec.m == 10
        assert np.all(spec.item_epsilons == 1.5)

    def test_from_levels(self):
        spec = BudgetSpec.from_levels({1.0: [0, 2], 2.0: [1]}, m=3)
        assert spec.item_epsilons.tolist() == [1.0, 2.0, 1.0]

    def test_from_levels_missing_item(self):
        with pytest.raises(BudgetError, match="not assigned"):
            BudgetSpec.from_levels({1.0: [0]}, m=2)

    def test_from_levels_duplicate_item(self):
        with pytest.raises(BudgetError, match="more than one level"):
            BudgetSpec.from_levels({1.0: [0], 2.0: [0, 1]}, m=2)

    def test_from_levels_out_of_range(self):
        with pytest.raises(BudgetError):
            BudgetSpec.from_levels({1.0: [0, 5]}, m=2)

    def test_from_level_sizes(self, toy_spec):
        assert toy_spec.m == 5
        assert toy_spec.t == 2
        assert toy_spec.level_sizes.tolist() == [1, 4]

    def test_from_level_sizes_length_mismatch(self):
        with pytest.raises(BudgetError):
            BudgetSpec.from_level_sizes([1.0, 2.0], [1])

    def test_from_level_sizes_zero_size(self):
        with pytest.raises(BudgetError):
            BudgetSpec.from_level_sizes([1.0], [0])


class TestLevels:
    def test_levels_materialization(self, toy_spec):
        levels = toy_spec.levels()
        assert len(levels) == 2
        assert levels[0].size == 1
        assert levels[0].items == (0,)
        assert levels[1].items == (1, 2, 3, 4)
        assert levels[0].epsilon == pytest.approx(np.log(4.0))

    def test_level_of_out_of_range(self, toy_spec):
        with pytest.raises(BudgetError):
            toy_spec.level_of(5)
        with pytest.raises(BudgetError):
            toy_spec.epsilon_of(-1)


class TestExpand:
    def test_expand_broadcasts_per_level_values(self, toy_spec):
        values = toy_spec.expand([0.5, 0.9])
        assert values.tolist() == [0.5, 0.9, 0.9, 0.9, 0.9]

    def test_expand_wrong_shape(self, toy_spec):
        with pytest.raises(BudgetError):
            toy_spec.expand([0.5])


class TestDerivedSpecs:
    def test_scaled(self, toy_spec):
        doubled = toy_spec.scaled(2.0)
        assert doubled.min_epsilon == pytest.approx(2 * np.log(4.0))
        assert doubled.t == toy_spec.t
        # Original unchanged.
        assert toy_spec.min_epsilon == pytest.approx(np.log(4.0))

    def test_scaled_rejects_non_positive(self, toy_spec):
        with pytest.raises(ValidationError):
            toy_spec.scaled(0.0)

    def test_restricted_to(self, toy_spec):
        sub = toy_spec.restricted_to([0, 1])
        assert sub.m == 2
        assert sub.t == 2

    def test_restricted_to_empty(self, toy_spec):
        with pytest.raises(BudgetError):
            toy_spec.restricted_to([])

    def test_with_dummies_default_uses_min(self, toy_spec):
        extended = toy_spec.with_dummies(3)
        assert extended.m == 8
        assert extended.item_epsilons[-1] == pytest.approx(toy_spec.min_epsilon)
        # The number of levels must not grow (Theorem 4 requires eps* in E).
        assert extended.t == toy_spec.t

    def test_with_dummies_custom_level(self, toy_spec):
        extended = toy_spec.with_dummies(2, dummy_epsilon=float(np.log(6.0)))
        assert extended.item_epsilons[-1] == pytest.approx(np.log(6.0))

    def test_with_dummies_rejects_new_budget(self, toy_spec):
        with pytest.raises(BudgetError, match="existing level budgets"):
            toy_spec.with_dummies(2, dummy_epsilon=0.123)


class TestDunder:
    def test_equality_and_hash(self):
        a = BudgetSpec([1.0, 2.0])
        b = BudgetSpec([1.0, 2.0])
        c = BudgetSpec([1.0, 3.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_shape(self, toy_spec):
        text = repr(toy_spec)
        assert "m=5" in text and "t=2" in text
