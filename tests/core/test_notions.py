"""Unit tests for LDP / ID-LDP notion objects and Lemma 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AVG, MAX, MIN, BudgetSpec, IDLDP, LDP, PolicyGraph, RFunction
from repro.core.notions import (
    ldp_budget_implied_by_minid,
    minid_budgets_implied_by_ldp,
    resolve_r_function,
)
from repro.exceptions import ValidationError


class TestRFunction:
    def test_min_is_elementwise_minimum(self):
        assert MIN(1.0, 2.0) == 1.0
        assert MIN(3.0, 0.5) == 0.5

    def test_avg_is_mean(self):
        assert AVG(1.0, 3.0) == 2.0

    def test_max_is_elementwise_maximum(self):
        assert MAX(1.0, 2.0) == 2.0

    def test_pairwise_matrix_min(self):
        matrix = MIN.pairwise_matrix([1.0, 2.0, 4.0])
        expected = np.minimum.outer([1.0, 2.0, 4.0], [1.0, 2.0, 4.0])
        assert np.allclose(matrix, expected)

    def test_pairwise_matrix_diagonal_is_own_budget(self):
        for r in (MIN, AVG, MAX):
            matrix = r.pairwise_matrix([1.0, 2.0])
            assert np.allclose(np.diag(matrix), [1.0, 2.0])

    def test_asymmetric_r_rejected(self):
        bad = RFunction("bad", lambda x, y: x + 0.0 * y)  # not symmetric
        with pytest.raises(ValidationError, match="not symmetric"):
            bad.pairwise_matrix([1.0, 2.0])

    def test_resolve_by_name(self):
        assert resolve_r_function("min") is MIN
        assert resolve_r_function("AVG") is AVG
        assert resolve_r_function(MAX) is MAX

    def test_resolve_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown r-function"):
            resolve_r_function("median")


class TestLDPNotion:
    def test_pair_budget_uniform(self):
        notion = LDP(1.5)
        assert notion.pair_budget(0, 7) == 1.5
        assert notion.pair_bound(0, 7) == pytest.approx(np.exp(1.5))

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValidationError):
            LDP(0.0)


class TestIDLDPNotion:
    def test_pair_budget_is_min_of_item_budgets(self, toy_spec):
        notion = IDLDP(toy_spec, MIN)
        ln4, ln6 = np.log(4.0), np.log(6.0)
        assert notion.pair_budget(0, 1) == pytest.approx(ln4)
        assert notion.pair_budget(1, 2) == pytest.approx(ln6)
        assert notion.pair_budget(2, 0) == pytest.approx(ln4)

    def test_avg_instantiation(self, toy_spec):
        notion = IDLDP(toy_spec, AVG)
        expected = (np.log(4.0) + np.log(6.0)) / 2.0
        assert notion.pair_budget(0, 1) == pytest.approx(expected)

    def test_level_budget_matrix_shape(self, three_level_spec):
        notion = IDLDP(three_level_spec)
        matrix = notion.level_budget_matrix()
        assert matrix.shape == (3, 3)
        assert matrix[0, 2] == pytest.approx(0.5)

    def test_policy_graph_excludes_pairs(self, three_level_spec):
        policy = PolicyGraph.star(3, center=0)  # only (0,1), (0,2) edges
        notion = IDLDP(three_level_spec, MIN, policy=policy)
        assert np.isfinite(notion.pair_budget(0, 3))  # levels 0 vs 1
        # Items of levels 1 and 2 carry no constraint.
        item_l1 = 2  # first item of level 1 (sizes 2, 3, 5)
        item_l2 = 5  # first item of level 2
        assert notion.pair_budget(item_l1, item_l2) == float("inf")

    def test_policy_matrix_marks_exclusions_inf(self, three_level_spec):
        policy = PolicyGraph.star(3, center=0)
        matrix = IDLDP(three_level_spec, MIN, policy=policy).level_budget_matrix()
        assert matrix[1, 2] == float("inf")
        assert np.isfinite(matrix[1, 1])  # within-level stays constrained

    def test_policy_size_mismatch(self, toy_spec):
        with pytest.raises(ValidationError):
            IDLDP(toy_spec, MIN, policy=PolicyGraph.complete(3))

    def test_is_min_id(self, toy_spec):
        assert IDLDP(toy_spec, MIN).is_min_id
        assert not IDLDP(toy_spec, AVG).is_min_id

    def test_uniform_budgets_reduce_to_ldp(self):
        spec = BudgetSpec.uniform(1.0, 4)
        notion = IDLDP(spec, MIN)
        ldp = LDP(1.0)
        for i in range(4):
            for j in range(4):
                assert notion.pair_budget(i, j) == ldp.pair_budget(i, j)


class TestLemma1:
    def test_forward_direction(self):
        # eps = min(max E, 2 min E)
        assert ldp_budget_implied_by_minid([1.0, 1.5]) == pytest.approx(1.5)
        assert ldp_budget_implied_by_minid([1.0, 4.0]) == pytest.approx(2.0)
        assert ldp_budget_implied_by_minid([2.0]) == pytest.approx(2.0)

    def test_forward_matches_notion_method(self, toy_spec):
        notion = IDLDP(toy_spec, MIN)
        expected = min(toy_spec.max_epsilon, 2 * toy_spec.min_epsilon)
        assert notion.ldp_equivalent() == pytest.approx(expected)

    def test_reverse_direction(self):
        assert minid_budgets_implied_by_ldp(1.0, [1.0, 2.0])
        assert minid_budgets_implied_by_ldp(0.5, [1.0, 2.0])
        assert not minid_budgets_implied_by_ldp(1.5, [1.0, 2.0])

    def test_relaxation_at_most_factor_two(self, rng):
        """The LDP budget implied by MinID-LDP never exceeds 2 min{E}."""
        for _ in range(50):
            budgets = rng.uniform(0.1, 5.0, size=rng.integers(1, 6))
            implied = ldp_budget_implied_by_minid(budgets)
            assert implied <= 2.0 * budgets.min() + 1e-12
            assert implied <= budgets.max() + 1e-12
