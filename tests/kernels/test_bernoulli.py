"""Statistical and structural tests for the packed Bernoulli kernels.

The fast kernel's contract is *distributional*: per-bit probabilities
must match the analytic parameters, but the bit stream for a fixed seed
may differ from the float64 path.  The tests therefore check:

* exact-binomial / chi-square agreement with the target probabilities
  for both the uniform and the per-column (IDUE-style) kernels;
* exact behaviour at the threshold edges (``p = 0``, ``p = 1``,
  sub-``2^-53`` probabilities, dyadic and near-dyadic thresholds);
* the packed wire format itself (``np.packbits`` convention, zero pad
  bits);
* a bit-exactness regression pinning the *bitexact* path's fixed-seed
  output, so the frozen-stream promise is enforced by CI.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from scipy import stats

from repro import OptimizedUnaryEncoding, SymmetricUnaryEncoding
from repro.exceptions import ValidationError
from repro.kernels import (
    FAST,
    SamplerConfig,
    fixed_point_decompose,
    packed_assign_bits,
    packed_bernoulli,
    packed_column_counts,
    packed_width,
)

# Two-sided binomial p-value floor for single assertions.  With a fixed
# seed the draw is deterministic, so this is a regression bound, not a
# flakiness budget.
ALPHA = 1e-6


def _binom_pvalue(successes: int, n: int, p: float) -> float:
    return stats.binomtest(successes, n, p).pvalue


def _kernel_ones(p, n, seed, precision=8):
    probabilities = np.atleast_1d(np.asarray(p, dtype=float))
    packed = packed_bernoulli(
        probabilities, n, FAST.make_generator(seed), precision=precision
    )
    return packed, packed_column_counts(packed, probabilities.size)


class TestUniformKernelStatistics:
    @pytest.mark.parametrize(
        "p",
        [0.5, 0.25, 1.0 / 3.0, 0.1824, 0.731, 0.0039, 0.9961, 1e-4],
    )
    def test_exact_binomial_rate(self, p):
        n, m = 3000, 64
        _, counts = _kernel_ones(np.full(m, p), n, seed=2024)
        assert _binom_pvalue(int(counts.sum()), n * m, p) > ALPHA

    @pytest.mark.parametrize("precision", [1, 4, 8, 16, 32])
    def test_rate_invariant_to_precision(self, precision):
        """precision is a performance knob, never a distribution knob."""
        p = 0.3711
        n, m = 2000, 64
        _, counts = _kernel_ones(np.full(m, p), n, seed=9, precision=precision)
        assert _binom_pvalue(int(counts.sum()), n * m, p) > ALPHA

    def test_chi_square_across_columns(self):
        """Per-column 1-counts are iid Binomial(n, p): chi-square flat."""
        p, n, m = 0.2718, 5000, 128
        _, counts = _kernel_ones(np.full(m, p), n, seed=77)
        expected = n * p
        statistic = float(((counts - expected) ** 2 / (expected * (1 - p))).sum())
        # Each standardized term is ~chi2(1); m of them sum to ~chi2(m).
        assert stats.chi2.sf(statistic, df=m) > ALPHA
        assert stats.chi2.cdf(statistic, df=m) > ALPHA  # not suspiciously flat

    def test_columns_are_independent_of_rows(self):
        """Row popcounts are Binomial(m, p): spot the variance too."""
        p, n, m = 0.4, 4000, 256
        packed, _ = _kernel_ones(np.full(m, p), n, seed=5)
        row_ones = np.unpackbits(packed, axis=1, count=m).sum(axis=1)
        assert abs(row_ones.mean() - m * p) < 5 * np.sqrt(m * p * (1 - p) / n)
        observed_var = row_ones.var()
        assert 0.8 * m * p * (1 - p) < observed_var < 1.2 * m * p * (1 - p)


class TestPerColumnKernelStatistics:
    def test_idue_style_levels(self):
        """Distinct per-column probabilities (a few levels, like IDUE)."""
        levels = np.array([0.05, 0.1824, 0.5, 0.66, 0.95])
        p = np.repeat(levels, 13)  # m = 65, crosses byte boundaries
        n = 20_000
        _, counts = _kernel_ones(p, n, seed=31)
        for level in levels:
            mask = p == level
            ones = int(counts[mask].sum())
            assert _binom_pvalue(ones, n * int(mask.sum()), level) > ALPHA

    def test_unary_mechanism_matches_a_and_b(self):
        """End to end through UnaryMechanism: a on the hot bit, b elsewhere."""
        mech = OptimizedUnaryEncoding(1.5, 50)
        n = 30_000
        inputs = np.zeros(n, dtype=np.int64)  # everyone holds item 0
        packed = mech.perturb_many_packed(inputs, FAST.make_generator(8), sampler=FAST)
        counts = packed_column_counts(packed, mech.m)
        assert _binom_pvalue(int(counts[0]), n, float(mech.a[0])) > ALPHA
        rest = int(counts[1:].sum())
        assert _binom_pvalue(rest, n * (mech.m - 1), float(mech.b[1])) > ALPHA

    def test_float32_path_matches_probabilities(self):
        mech = SymmetricUnaryEncoding(2.0, 40)
        n = 20_000
        sampler = SamplerConfig(backend="sfc64", dtype="float32", exactness="fast")
        reports = mech.perturb_many(
            np.zeros(n, dtype=np.int64), sampler.make_generator(3), sampler=sampler
        )
        assert reports.shape == (n, 40)
        counts = reports.sum(axis=0)
        assert _binom_pvalue(int(counts[0]), n, float(mech.a[0])) > ALPHA
        assert _binom_pvalue(int(counts[1:].sum()), n * 39, float(mech.b[1])) > ALPHA


class TestThresholdEdgeCases:
    def test_p_zero_is_exactly_all_zeros(self):
        packed, counts = _kernel_ones(np.zeros(37), 500, seed=1)
        assert not packed.any()
        assert not counts.any()

    def test_p_one_is_exactly_all_ones(self):
        _, counts = _kernel_ones(np.ones(37), 500, seed=1)
        assert np.array_equal(counts, np.full(37, 500))

    def test_mixed_exact_columns(self):
        p = np.array([0.0, 1.0, 0.5, 0.0, 1.0])
        _, counts = _kernel_ones(p, 2000, seed=4)
        assert counts[0] == 0 and counts[3] == 0
        assert counts[1] == 2000 and counts[4] == 2000

    @pytest.mark.parametrize("p", [2.0**-60, 2.0**-53, 2.0**-40])
    def test_sub_float_probabilities_do_not_round_up(self, p):
        """Probabilities below any plane resolution stay (almost surely) 0.

        Expected ones at n*m = 1.28e5 lanes is <= 1e-7 — a single set
        bit would be a > 5-sigma event, i.e. an off-by-one in the
        fixed-point rounding.
        """
        _, counts = _kernel_ones(np.full(64, p), 2000, seed=6)
        assert counts.sum() == 0

    @pytest.mark.parametrize("p", [1 - 2.0**-60, 1 - 2.0**-40])
    def test_near_one_probabilities_do_not_round_down(self, p):
        _, counts = _kernel_ones(np.full(64, p), 2000, seed=6)
        assert counts.sum() == 2000 * 64

    @pytest.mark.parametrize("offset", [-(2.0**-10), 0.0, 2.0**-10])
    def test_plane_boundary_neighbourhood(self, offset):
        """p straddling an exact 8-bit threshold keeps the exact rate."""
        p = 47.0 / 256.0 + offset
        n, m = 4000, 64
        _, counts = _kernel_ones(np.full(m, p), n, seed=11)
        assert _binom_pvalue(int(counts.sum()), n * m, p) > ALPHA

    def test_decompose_residuals_are_small_and_exact(self):
        p = np.array([0.0, 1.0, 0.5, 0.1824, 0.9999, 2.0**-60])
        thresholds, deltas, complement = fixed_point_decompose(p, precision=8)
        generated = np.where(complement, 1.0 - p, p)
        assert np.all(np.abs(deltas) <= 2.0**-9)
        # T/2^8 + delta reconstructs the generated probability exactly.
        assert np.array_equal(thresholds / 256.0 + deltas, generated)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValidationError):
            packed_bernoulli(np.array([0.2, 1.2]), 10, 0)
        with pytest.raises(ValidationError):
            packed_bernoulli(np.array([-0.1]), 10, 0)
        with pytest.raises(ValidationError):
            packed_bernoulli(np.array([np.nan]), 10, 0)


class TestPackedFormat:
    def test_pad_bits_are_zero(self):
        p = np.full(13, 0.9)  # 13 bits -> 2 bytes, 3 pad bits
        packed, _ = _kernel_ones(p, 1000, seed=3)
        assert packed.shape == (1000, 2)
        assert not np.any(packed[:, -1] & 0b111)

    def test_matches_packbits_convention(self):
        """Unpacking the kernel output must honour MSB-first rows."""
        p = np.concatenate([np.ones(3), np.zeros(10)])
        packed, _ = _kernel_ones(p, 4, seed=0)
        unpacked = np.unpackbits(packed, axis=1, count=13)
        assert np.array_equal(unpacked, np.tile(p.astype(np.uint8), (4, 1)))

    def test_packed_width(self):
        assert packed_width(1) == 1
        assert packed_width(8) == 1
        assert packed_width(9) == 2

    def test_column_counts_match_unpacked_sum(self):
        rng = np.random.default_rng(0)
        reports = (rng.random((257, 29)) < 0.37).astype(np.uint8)
        packed = np.packbits(reports, axis=1)
        assert np.array_equal(
            packed_column_counts(packed, 29), reports.sum(axis=0, dtype=np.int64)
        )

    def test_column_counts_validation(self):
        with pytest.raises(ValidationError):
            packed_column_counts(np.zeros((4, 2), dtype=np.int64), 16)
        with pytest.raises(ValidationError):
            packed_column_counts(np.zeros((4, 2), dtype=np.uint8), 40)

    def test_assign_bits(self):
        packed = np.zeros((4, 2), dtype=np.uint8)
        packed_assign_bits(packed, np.array([0, 7, 8, 15]), np.array([1, 1, 0, 1]))
        unpacked = np.unpackbits(packed, axis=1)
        assert unpacked[0, 0] == 1 and unpacked[1, 7] == 1
        assert unpacked[2, 8] == 0 and unpacked[3, 15] == 1
        # overwrite clears as well as sets
        packed_assign_bits(packed, np.array([0, 7, 8, 15]), np.zeros(4, dtype=bool))
        assert not packed.any()
        with pytest.raises(ValidationError):
            packed_assign_bits(packed, np.array([0]), np.array([1]))


class TestBitexactRegression:
    """The default sampler's fixed-seed streams are frozen.

    These digests pin the exact bytes produced at the time the sampler
    subsystem was introduced; if they ever change, the ``"bitexact"``
    promise is broken (bump them only with an explicit CHANGES.md note).
    """

    def test_oue_perturb_many_digest(self):
        mech = OptimizedUnaryEncoding(1.0, 16)
        out = mech.perturb_many(np.arange(8) % 16, np.random.default_rng(1234))
        digest = hashlib.sha256(out.tobytes()).hexdigest()
        assert digest == (
            "c847e0af578f2056a50bf27242c138682a3f71d81178561d6559d6e74e6636de"
        )

    def test_rappor_perturb_many_rows(self):
        mech = SymmetricUnaryEncoding(2.0, 10)
        out = mech.perturb_many(np.array([0, 3, 9, 9]), np.random.default_rng(7))
        assert out.tolist() == [
            [1, 0, 0, 1, 0, 0, 1, 0, 0, 0],
            [0, 0, 1, 0, 0, 0, 0, 0, 0, 0],
            [1, 1, 0, 1, 1, 0, 0, 0, 0, 1],
            [0, 1, 1, 1, 0, 1, 0, 1, 0, 0],
        ]

    def test_fast_float64_does_not_downgrade_to_float32(self):
        """A fast config that keeps dtype='float64' must consume the
        same full-resolution stream as bitexact, not float32 coins."""
        sampler = SamplerConfig(backend="sfc64", dtype="float64", exactness="fast")
        mech = OptimizedUnaryEncoding(1.0, 16)
        xs = np.arange(8) % 16
        fast64 = mech.perturb_many(xs, np.random.default_rng(3), sampler=sampler)
        exact = mech.perturb_many(xs, np.random.default_rng(3), sampler="bitexact")
        assert np.array_equal(fast64, exact)

    def test_explicit_bitexact_equals_default(self):
        mech = OptimizedUnaryEncoding(1.0, 16)
        xs = np.arange(8) % 16
        default = mech.perturb_many(xs, np.random.default_rng(99))
        explicit = mech.perturb_many(xs, np.random.default_rng(99), sampler="bitexact")
        assert np.array_equal(default, explicit)
        packed = mech.perturb_many_packed(
            xs, np.random.default_rng(99), sampler="bitexact"
        )
        assert np.array_equal(np.unpackbits(packed, axis=1, count=16), default)
