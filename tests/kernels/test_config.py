"""Unit tests for :class:`repro.kernels.SamplerConfig`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kernels import BITEXACT, FAST, SamplerConfig, resolve_sampler


class TestSamplerConfig:
    def test_defaults_are_bitexact(self):
        config = SamplerConfig()
        assert config.exactness == "bitexact"
        assert config.dtype == "float64"
        assert config.backend == "pcg64"
        assert not config.is_fast
        assert not config.is_packed

    def test_fast_preset(self):
        assert FAST.is_fast
        assert FAST.is_packed
        assert FAST.backend == "sfc64"
        assert FAST.dtype == "u64"

    def test_from_name(self):
        assert SamplerConfig.from_name("bitexact") is BITEXACT
        assert SamplerConfig.from_name("fast") is FAST
        assert SamplerConfig.from_name(FAST) is FAST
        with pytest.raises(ValidationError):
            SamplerConfig.from_name("warp-speed")

    def test_resolve_none_is_bitexact(self):
        assert resolve_sampler(None) is BITEXACT
        assert resolve_sampler("fast") is FAST

    def test_bitexact_locks_float64_pcg64(self):
        with pytest.raises(ValidationError):
            SamplerConfig(dtype="u64")  # bitexact + packed is contradictory
        with pytest.raises(ValidationError):
            SamplerConfig(backend="sfc64")

    def test_invalid_fields(self):
        with pytest.raises(ValidationError):
            SamplerConfig(backend="mt19937", exactness="fast")
        with pytest.raises(ValidationError):
            SamplerConfig(dtype="float16", exactness="fast")
        with pytest.raises(ValidationError):
            SamplerConfig(exactness="sloppy")
        with pytest.raises(ValidationError):
            FAST.with_precision(0)
        with pytest.raises(ValidationError):
            FAST.with_precision(33)

    def test_with_precision(self):
        config = FAST.with_precision(16)
        assert config.precision == 16
        assert config.backend == FAST.backend

    def test_uniform_dtype_resolution(self):
        """Explicit float64 keeps full-resolution coins even under fast."""
        assert BITEXACT.uniform_dtype is np.float64
        assert FAST.uniform_dtype is np.float32  # u64 -> float32 fallback
        assert (
            SamplerConfig(dtype="float32", exactness="fast").uniform_dtype
            is np.float32
        )
        assert (
            SamplerConfig(
                backend="sfc64", dtype="float64", exactness="fast"
            ).uniform_dtype
            is np.float64
        )

    @pytest.mark.parametrize(
        "name, cls",
        [("pcg64", np.random.PCG64), ("sfc64", np.random.SFC64), ("philox", np.random.Philox)],
    )
    def test_make_generator_backend(self, name, cls):
        config = SamplerConfig(backend=name, dtype="u64", exactness="fast")
        generator = config.make_generator(123)
        assert isinstance(generator.bit_generator, cls)
        # Same seed, same backend -> same stream.
        again = config.make_generator(123)
        assert generator.integers(1 << 30) == again.integers(1 << 30)

    def test_make_generator_passthrough_and_seedsequence(self):
        rng = np.random.default_rng(0)
        assert FAST.make_generator(rng) is rng
        seq = np.random.SeedSequence(5)
        a = FAST.make_generator(seq).integers(1 << 30)
        b = FAST.make_generator(np.random.SeedSequence(5)).integers(1 << 30)
        assert a == b
        with pytest.raises(ValidationError):
            FAST.make_generator("seed")

    def test_bitexact_make_generator_matches_default_rng(self):
        """BITEXACT seed expansion is exactly np.random.default_rng."""
        ours = BITEXACT.make_generator(42).random(4)
        theirs = np.random.default_rng(42).random(4)
        assert np.array_equal(ours, theirs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FAST.backend = "pcg64"
