"""Unit tests for the pluggable compute-backend registry."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kernels import (
    BITEXACT,
    FAST,
    ComputeBackend,
    NumbaBackend,
    NumpyBackend,
    SamplerConfig,
    ThreadedBackend,
    available_compute_backends,
    compute_backend_names,
    get_compute_backend,
    packed_bernoulli,
    packed_column_counts,
    register_compute_backend,
)
from repro.kernels import backends as backends_module


def _unregister(name: str) -> None:
    backends_module._REGISTRY.pop(name, None)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = compute_backend_names()
        assert "numpy" in names
        assert "numba" in names
        assert "threaded" in names

    def test_available_is_subset_of_registered(self):
        available = set(available_compute_backends())
        assert available <= set(compute_backend_names())
        # numpy and threaded have no optional dependency; they are
        # always available.
        assert "numpy" in available
        assert "threaded" in available

    def test_unknown_backend_names_the_registry(self):
        with pytest.raises(ValidationError, match="numpy"):
            get_compute_backend("warp-speed")

    def test_unavailable_backend_names_its_requirement(self):
        class Missing(ComputeBackend):
            name = "missing-dep"

            @property
            def available(self):
                return False

            @property
            def requires(self):
                return "the 'frobnicator' package"

            def packed_bernoulli(self, p, n, rng, *, precision=8):
                raise AssertionError("unreachable")

            def packed_column_counts(self, packed, m):
                raise AssertionError("unreachable")

        register_compute_backend(Missing())
        try:
            with pytest.raises(ValidationError, match="frobnicator"):
                get_compute_backend("missing-dep")
        finally:
            _unregister("missing-dep")

    def test_register_refuses_taken_name_without_replace(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_compute_backend(NumpyBackend())

    def test_register_replace(self):
        original = get_compute_backend("numpy")

        class Shadow(NumpyBackend):
            pass

        shadow = Shadow()
        shadow_name = "numpy"
        register_compute_backend(shadow, replace=True)
        try:
            assert get_compute_backend(shadow_name) is shadow
        finally:
            register_compute_backend(original, replace=True)
        assert get_compute_backend("numpy") is original

    def test_register_rejects_non_backend(self):
        with pytest.raises(ValidationError):
            register_compute_backend(object())


class TestSamplerConfigCompute:
    def test_default_compute_is_numpy(self):
        assert SamplerConfig().compute == "numpy"
        assert isinstance(BITEXACT.compute_backend(), NumpyBackend)

    def test_unknown_compute_fails_at_construction(self):
        with pytest.raises(ValidationError, match="registered backend"):
            SamplerConfig(compute="warp-speed")

    def test_with_compute(self):
        fast_threaded = FAST.with_compute("threaded")
        assert fast_threaded.compute == "threaded"
        assert fast_threaded.exactness == "fast"
        assert isinstance(fast_threaded.compute_backend(), ThreadedBackend)
        # The original preset is untouched (dataclass replace).
        assert FAST.compute == "numpy"

    def test_unavailable_compute_fails_at_resolution(self):
        config = SamplerConfig(compute="numba")
        if "numba" in available_compute_backends():
            assert config.compute_backend().name == "numba"
        else:
            with pytest.raises(ValidationError, match="unavailable"):
                config.compute_backend()

    def test_config_pickles_by_name(self):
        config = FAST.with_compute("threaded")
        clone = pickle.loads(pickle.dumps(config))
        assert clone.compute == "threaded"
        assert isinstance(clone.compute_backend(), ThreadedBackend)


class TestNumbaBackendGating:
    def test_registered_even_when_absent(self):
        assert "numba" in compute_backend_names()

    def test_unavailable_resolution_message(self):
        if "numba" in available_compute_backends():
            pytest.skip("numba is installed; gating not exercised")
        with pytest.raises(ValidationError, match="numba"):
            get_compute_backend("numba")

    def test_available_flag_matches_import(self):
        import importlib.util

        assert NumbaBackend().available == (
            importlib.util.find_spec("numba") is not None
        )


class TestThreadedBackend:
    def test_tile_rows_validated(self):
        with pytest.raises(ValidationError):
            ThreadedBackend(tile_rows=0)

    def test_popcount_matches_numpy(self):
        rng = np.random.default_rng(11)
        m = 203
        width = (m + 7) // 8
        mat = rng.integers(0, 256, size=(7000, width), dtype=np.uint8)
        mat[:, -1] &= 0xFF << (8 * width - m) & 0xFF
        backend = ThreadedBackend(tile_rows=512, inner=NumpyBackend())
        assert np.array_equal(
            backend.packed_column_counts(mat, m), packed_column_counts(mat, m)
        )

    def test_popcount_small_input_short_circuits(self):
        mat = np.zeros((3, 4), dtype=np.uint8)
        backend = ThreadedBackend(tile_rows=512, inner=NumpyBackend())
        assert np.array_equal(
            backend.packed_column_counts(mat, 32), np.zeros(32, dtype=np.int64)
        )

    def test_sampling_independent_of_worker_count(self):
        # The output is a pure function of (rng, tile_rows): child
        # streams are assigned by tile index before submission, so
        # scheduling and pool size cannot reorder randomness.
        kwargs = dict(tile_rows=256, inner=NumpyBackend())
        a = ThreadedBackend(max_workers=2, **kwargs).packed_bernoulli(
            0.37, 3000, np.random.default_rng(5)
        )
        b = ThreadedBackend(max_workers=7, **kwargs).packed_bernoulli(
            0.37, 3000, np.random.default_rng(5)
        )
        assert np.array_equal(a, b)

    def test_sampling_tile_boundaries(self):
        backend = ThreadedBackend(tile_rows=64, max_workers=2, inner=NumpyBackend())
        for n in (64, 65, 127, 128, 129):
            out = backend.packed_bernoulli(0.5, n, np.random.default_rng(n))
            assert out.shape == (n, 1)

    def test_sampling_rate_is_sane(self):
        backend = ThreadedBackend(tile_rows=1024, max_workers=2, inner=NumpyBackend())
        out = backend.packed_bernoulli(0.25, 20000, np.random.default_rng(0))
        rate = np.unpackbits(out, axis=1, count=1).mean()
        assert abs(rate - 0.25) < 0.02

    def test_non_uniform_p_delegates(self):
        p = np.linspace(0.1, 0.9, 16)
        backend = ThreadedBackend(tile_rows=128, max_workers=2, inner=NumpyBackend())
        ours = backend.packed_bernoulli(p, 1000, np.random.default_rng(3))
        theirs = packed_bernoulli(p, 1000, np.random.default_rng(3))
        assert ours.shape == theirs.shape


class TestBitexactContract:
    def test_bitexact_sampling_never_reaches_compute_backend(self):
        # Under exactness="bitexact" the float64 path runs; compute
        # backends only see popcounts, which are exact everywhere — so
        # any compute choice leaves fixed-seed streams byte-identical.
        from repro.mechanisms import OptimizedUnaryEncoding

        mechanism = OptimizedUnaryEncoding(2.0, 64)
        items = np.arange(64, dtype=np.int64) % 64
        base = mechanism.perturb_many_packed(
            items, np.random.default_rng(9), sampler=BITEXACT
        )
        for name in available_compute_backends():
            out = mechanism.perturb_many_packed(
                items,
                np.random.default_rng(9),
                sampler=BITEXACT.with_compute(name),
            )
            assert np.array_equal(out, base), name
