"""Integration tests pinning the paper's quantitative and structural claims.

Each test cites the paper section it verifies.  These are the regression
oracles for the reproduction: if any of them breaks, the repository no
longer reproduces the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BudgetSpec,
    IDLDP,
    IDUE,
    IDUEPS,
    MIN,
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    itemset_budget,
)
from repro.audit import (
    audit_unary_pairwise,
    unary_channel,
    verify_idue_ps_exhaustive,
)
from repro.core.leakage import empirical_leakage_bounds, minid_leakage_bounds
from repro.datasets import paper_default_spec
from repro.estimation import ue_total_mse
from repro.optim import solve


class TestSectionIV:
    """Privacy-notion claims."""

    def test_minid_generalizes_ldp(self):
        """Uniform budgets: MinID-LDP == LDP (Section IV-B)."""
        spec = BudgetSpec.uniform(1.0, 5)
        notion = IDLDP(spec, MIN)
        for i in range(5):
            for j in range(5):
                assert notion.pair_budget(i, j) == pytest.approx(1.0)

    def test_lemma1_tightness_via_channel(self):
        """A MinID-LDP mechanism's actual worst LDP ratio is within
        min(max E, 2 min E) — checked on the real channel."""
        spec = BudgetSpec([0.8, 2.5, 2.5])
        mech = IDUE.optimized(spec, model="opt0")
        channel = unary_channel(mech)
        worst = 0.0
        for i in range(3):
            for j in range(3):
                if i != j:
                    worst = max(worst, float(np.max(channel[i] / channel[j])))
        cap = np.exp(min(spec.max_epsilon, 2 * spec.min_epsilon))
        assert worst <= cap * (1 + 1e-9)

    def test_table1_bounds_hold_on_real_channel(self):
        """Table I MinID-LDP row verified against IDUE's exact channel."""
        spec = BudgetSpec([np.log(4.0), np.log(6.0), np.log(6.0)])
        mech = IDUE.optimized(spec, model="opt0")
        channel = unary_channel(mech)
        prior = np.array([0.2, 0.5, 0.3])
        for x in range(3):
            low, high = empirical_leakage_bounds(channel, prior, x)
            bound_low, bound_high = minid_leakage_bounds(
                spec.epsilon_of(x), spec.item_epsilons
            )
            assert low >= bound_low - 1e-9
            assert high <= bound_high + 1e-9


class TestSectionV:
    """IDUE and its optimization models."""

    def test_toy_example_ordering(self, toy_spec):
        """Table II: total worst-case variance IDUE < OUE < RAPPOR."""
        n = 1.0  # coefficients only

        def worst_total(mech):
            noise = mech.b * (1 - mech.b) / (mech.a - mech.b) ** 2
            data = (1 - mech.a - mech.b) / (mech.a - mech.b)
            return float(noise.sum() + data.max())

        rappor = SymmetricUnaryEncoding(toy_spec.min_epsilon, 5)
        oue = OptimizedUnaryEncoding(toy_spec.min_epsilon, 5)
        idue = IDUE.optimized(toy_spec, model="opt0")
        assert worst_total(idue) < worst_total(oue) < worst_total(rappor)

    def test_opt_model_hierarchy(self, toy_spec):
        """Section V-D/Fig 3: opt0 <= opt1, opt0 <= opt2 (worst case)."""
        opt0 = solve(toy_spec, model="opt0").objective
        opt1 = solve(toy_spec, model="opt1").objective
        opt2 = solve(toy_spec, model="opt2").objective
        assert opt0 <= opt1 + 1e-9
        assert opt0 <= opt2 + 1e-9

    def test_variance_range_depends_on_data(self, toy_spec):
        """Table II: IDUE's total variance is a range over data
        distributions, bracketed by the per-level data coefficients."""
        idue = IDUE.optimized(toy_spec, model="opt0")
        n = 10_000
        all_sensitive = np.zeros(5)
        all_sensitive[0] = n
        all_benign = np.zeros(5)
        all_benign[1] = n
        mse_sensitive = ue_total_mse(n, idue.a, idue.b, all_sensitive)
        mse_benign = ue_total_mse(n, idue.a, idue.b, all_benign)
        assert mse_sensitive != pytest.approx(mse_benign, rel=1e-3)

    def test_ldp_baselines_must_use_min_budget(self, toy_spec):
        """Section I: uniform-budget mechanisms above min{E} violate
        the most sensitive input's requirement."""
        above_min = OptimizedUnaryEncoding(toy_spec.min_epsilon * 1.3, 5)
        assert not audit_unary_pairwise(above_min, IDLDP(toy_spec, MIN)).passed


class TestSectionVI:
    """IDUE-PS claims."""

    def test_theorem4_full_power_set(self):
        """Theorem 4 verified exhaustively on a 4-item domain."""
        spec = BudgetSpec([0.7, 1.4, 1.4, 2.8])
        mech = IDUEPS.optimized(spec, ell=2, model="opt0")
        assert verify_idue_ps_exhaustive(mech, spec) >= -1e-9

    def test_same_optimization_cost_as_single_item(self, toy_spec):
        """Section VI headline: IDUE-PS reuses the single-item solution
        — its real-item parameters are exactly IDUE's."""
        single = IDUE.optimized(toy_spec, model="opt1")
        ps = IDUEPS.optimized(toy_spec, ell=4, model="opt1")
        assert np.allclose(ps.a[: toy_spec.m], single.a)
        assert np.allclose(ps.b[: toy_spec.m], single.b)

    def test_eq17_exceeds_min_budget(self, toy_spec):
        """Section VII: eps_x of Eq. 17 >= min budget of the members,
        which is why IDUE-PS is a relaxation w.r.t. LDP at min{E}."""
        for items in ([0], [1], [0, 1], [1, 2, 3]):
            assert itemset_budget(items, toy_spec, ell=3) >= toy_spec.min_epsilon


class TestSectionVII:
    """Evaluation-shape claims at reduced scale."""

    def test_fig3_empirical_matches_theory(self, rng):
        """Fig 3: empirical MSE tracks the closed-form theory."""
        from repro.experiments import (
            empirical_total_mse_single,
            theoretical_total_mse_single,
        )
        from repro.datasets import power_law_items, true_counts_from_items

        m, n = 50, 20_000
        items = power_law_items(n, m, rng=rng)
        truth = true_counts_from_items(items, m)
        spec = paper_default_spec(2.0, m, rng=rng)
        mech = IDUE.optimized(spec, model="opt0")
        empirical = empirical_total_mse_single(mech, truth, n, trials=40, rng=rng)
        theory = theoretical_total_mse_single(mech, truth, n)
        assert empirical == pytest.approx(theory, rel=0.3)

    def test_skewed_budgets_increase_idue_advantage(self, rng):
        """Fig 4a: IDUE's win over OUE grows with budget skew."""
        from repro.datasets import assign_budgets
        from repro.estimation import ue_total_mse

        m, n = 400, 50_000
        epsilon = 1.5
        truth = np.full(m, n // m)
        multipliers = np.array([1.0, 1.2, 2.0, 4.0])

        def idue_theory(proportions):
            spec = assign_budgets(m, epsilon * multipliers, proportions, rng=1)
            mech = IDUE.optimized(spec, model="opt0")
            return ue_total_mse(n, mech.a, mech.b, truth)

        oue = OptimizedUnaryEncoding(epsilon, m)
        oue_mse = ue_total_mse(n, oue.a, oue.b, truth)
        skewed = idue_theory((0.05, 0.05, 0.05, 0.85))
        uniform = idue_theory((0.25, 0.25, 0.25, 0.25))
        assert skewed < uniform <= oue_mse * 1.02
        assert (oue_mse - skewed) > (oue_mse - uniform)

    def test_fig5_truncation_bias_shape(self, rng):
        """Fig 5 discussion: too-small ell biases the estimator down."""
        from repro.datasets import ItemsetDataset
        from repro.estimation import ps_expected_counts

        sets = [list(range(6)) for _ in range(100)]  # |x| = 6 for everyone
        data = ItemsetDataset.from_sets(sets, m=8)
        truth = data.true_counts().astype(float)
        bias_small = np.abs(ps_expected_counts(data, 2) - truth).sum()
        bias_exact = np.abs(ps_expected_counts(data, 6) - truth).sum()
        assert bias_small > 0
        assert bias_exact == pytest.approx(0.0, abs=1e-9)
