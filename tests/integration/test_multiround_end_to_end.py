"""End-to-end acceptance for the multi-tenant service.

The bar (ISSUE 5): two concurrent rounds with per-producer keys ingest
simultaneously, survive a forced kill + resume — with a torn in-flight
frame on one round's spill — and, after every producer blindly resends
everything, reproduce both rounds' estimates **bit-identical** to the
single-pass in-memory ``stream_counts`` path.  Along the way: a
producer using another producer's key merges nothing, and sessions are
scoped so neither round contains a byte of the other's traffic.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.exceptions import AuthenticationError
from repro.kernels import resolve_sampler
from repro.mechanisms import OptimizedUnaryEncoding
from repro.pipeline import (
    CollectionService,
    KeyRegistry,
    iter_report_chunks,
    send_records,
    shard_bounds,
    stream_counts,
)
from repro.pipeline.collect import wire
from repro.pipeline.service import derive_producer_key
from repro.pipeline.service.server import SERVICE_SHARD_ID

N, CHUNK, PRODUCERS_PER_ROUND, SEED = 600, 96, 2, 77
ROUNDS = ({"m": 20, "round_id": 5}, {"m": 28, "round_id": 6})
MASTER = "multiround-master-secret"


def _producer_id(round_id: int, index: int) -> str:
    return f"r{round_id}-producer-{index}"


@pytest.fixture(scope="module", params=["bitexact", "fast"])
def workloads(request):
    """Per-round: mechanism, per-producer frames, single-pass reference."""
    config = resolve_sampler(request.param)
    out = {}
    for spec in ROUNDS:
        m, round_id = spec["m"], spec["round_id"]
        mechanism = OptimizedUnaryEncoding(2.0, m)
        items = np.random.default_rng(SEED + round_id).integers(m, size=N)
        children = np.random.SeedSequence(SEED + round_id).spawn(
            PRODUCERS_PER_ROUND
        )
        frames, reference = [], None
        for (start, stop), child in zip(
            shard_bounds(N, PRODUCERS_PER_ROUND), children
        ):
            frames.append(
                [
                    wire.dump_chunk(chunk, m, round_id=round_id)
                    for chunk in iter_report_chunks(
                        mechanism,
                        items[start:stop],
                        chunk_size=CHUNK,
                        rng=config.make_generator(child),
                        packed=True,
                        sampler=config,
                    )
                ]
            )
            shard = stream_counts(
                mechanism,
                items[start:stop],
                chunk_size=CHUNK,
                rng=config.make_generator(child),
                packed=True,
                round_id=round_id,
                sampler=config,
            )
            reference = shard if reference is None else reference.merge(shard)
        out[round_id] = (mechanism, frames, reference)
    return out


@pytest.fixture
def keys():
    producers = [
        _producer_id(spec["round_id"], index)
        for spec in ROUNDS
        for index in range(PRODUCERS_PER_ROUND)
    ]
    return KeyRegistry(
        {producer: derive_producer_key(MASTER, producer) for producer in producers}
    )


def test_two_rounds_kill_resume_bit_identical(workloads, keys, tmp_path):
    root = str(tmp_path / "rounds")

    async def first_run():
        """Both rounds ingest *simultaneously*; every producer lands only
        a prefix before the 'kill'."""
        service = CollectionService(rounds=list(ROUNDS), keys=keys, store_root=root)
        host, port = await service.serve()

        async def produce(round_id, index, frames):
            producer = _producer_id(round_id, index)
            prefix = frames[: max(1, len(frames) // 2)]
            acks = await send_records(
                host,
                port,
                prefix,
                key=derive_producer_key(MASTER, producer),
                producer_id=producer,
                m=workloads[round_id][2].m,
                round_id=round_id,
            )
            assert all(ack.status == wire.ACK_MERGED for ack in acks)

        try:
            await asyncio.gather(
                *(
                    produce(spec["round_id"], index, workloads[spec["round_id"]][1][index])
                    for spec in ROUNDS
                    for index in range(PRODUCERS_PER_ROUND)
                )
            )
        finally:
            await service.abort()  # forced kill: no final snapshots
        return service

    service = asyncio.run(first_run())
    acked = {
        spec["round_id"]: service.round(spec["round_id"]).records_merged
        for spec in ROUNDS
    }
    for spec in ROUNDS:
        round_id = spec["round_id"]
        total = sum(len(f) for f in workloads[round_id][1])
        assert 0 < acked[round_id] < total

    # The kill's signature: half an in-flight frame on round 5's spill.
    torn_round = ROUNDS[0]["round_id"]
    torn = workloads[torn_round][1][0][-1]
    spill = service.round(torn_round).store.chunk_path(SERVICE_SHARD_ID)
    with open(spill, "ab") as handle:
        handle.write(torn[: len(torn) // 2])

    async def resumed_run():
        service = CollectionService(
            rounds=list(ROUNDS), keys=keys, store_root=root, resume=True
        )
        for spec in ROUNDS:
            assert (
                service.round(spec["round_id"]).recovered_records
                == acked[spec["round_id"]]
            )
        assert (
            service.round(torn_round).recovered_spill_bytes_discarded
            == len(torn) // 2
        )
        host, port = await service.serve()
        statuses = {spec["round_id"]: [] for spec in ROUNDS}
        try:
            # A producer wielding a *colleague's* key merges nothing.
            victim = _producer_id(torn_round, 0)
            other = _producer_id(ROUNDS[1]["round_id"], 0)
            with pytest.raises(AuthenticationError):
                await send_records(
                    host,
                    port,
                    workloads[torn_round][1][0],
                    key=derive_producer_key(MASTER, other),
                    producer_id=victim,
                    m=workloads[torn_round][2].m,
                    round_id=torn_round,
                )

            async def resend(round_id, index, frames):
                producer = _producer_id(round_id, index)
                acks = await send_records(
                    host,
                    port,
                    frames,  # blind full resend, seq 0..len-1
                    key=derive_producer_key(MASTER, producer),
                    producer_id=producer,
                    m=workloads[round_id][2].m,
                    round_id=round_id,
                )
                statuses[round_id].extend(ack.status for ack in acks)

            await asyncio.gather(
                *(
                    resend(spec["round_id"], index, workloads[spec["round_id"]][1][index])
                    for spec in ROUNDS
                    for index in range(PRODUCERS_PER_ROUND)
                )
            )
        finally:
            await service.close()
        return service, statuses

    service, statuses = asyncio.run(resumed_run())
    for spec in ROUNDS:
        round_id = spec["round_id"]
        mechanism, producer_frames, reference = workloads[round_id]
        total = sum(len(f) for f in producer_frames)
        assert statuses[round_id].count(wire.ACK_DUPLICATE) == acked[round_id]
        assert statuses[round_id].count(wire.ACK_MERGED) == total - acked[round_id]

        state = service.round(round_id)
        # The acceptance bar: bit-identical to the single-pass path.
        assert state.accumulator.digest() == reference.digest()
        assert np.array_equal(
            state.accumulator.estimate(mechanism),
            reference.estimate(mechanism),
        )
        # Durable state agrees with itself: snapshot vs out-of-core replay.
        audit = state.store.audit()
        assert audit[SERVICE_SHARD_ID]["match"] is True

    # And a third, cold start reconstructs both rounds from disk alone.
    third = CollectionService(
        rounds=list(ROUNDS), keys=keys, store_root=root, resume=True
    )
    asyncio.run(third.abort())
    for spec in ROUNDS:
        round_id = spec["round_id"]
        assert (
            third.round(round_id).accumulator.digest()
            == workloads[round_id][2].digest()
        )
