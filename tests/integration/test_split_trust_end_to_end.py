"""Split-trust end to end: coordinated round, compromise, combine.

Two acceptance stories:

* **Exactness with nobody trusted**: a coordinator-owned blinded round
  over a collector shard and two share keepers — producers blind and
  ship, blind resends dedup on every party, drain/close run fleet-wide,
  and :func:`combine_round` decodes a tally **bit-identical** to a
  plain (unblinded) collection of the same report stream.

* **The adversarial test the tier exists for**: seize one party's
  complete durable state mid-round — spill file, idempotency ledger,
  live accumulator snapshot — and show it is (a) statistically
  indistinguishable from uniform 64-bit words, (b) free of any raw
  report bytes, and (c) undecodable alone: single-party reconstruction
  fails loudly.  The same holds for a lone keeper's state.
"""

from __future__ import annotations

import asyncio
import glob
import hashlib
import io

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.estimation.merge import combine_shares
from repro.pipeline import CollectionService, CountAccumulator
from repro.pipeline.collect import wire
from repro.pipeline.service import (
    RoundCoordinator,
    ShardInfo,
    combine_round,
    send_split_trust,
)

M = 32
ROUND = 4
PRODUCER_KEY = "split-trust-producer-secret"
CONTROL_KEY = "split-trust-control-secret"
KEEPER_KEYS = {
    "keeper-north": "keeper-north-producer-secret",
    "keeper-south": "keeper-south-producer-secret",
}
PRODUCERS = [f"edge-{i:02d}" for i in range(6)]
ROWS_PER_CHUNK = 20
CHUNKS = 2


def _chunks_for(producer_id: str) -> list[np.ndarray]:
    """Deterministic packed report chunks for one producer."""
    seed = int.from_bytes(
        hashlib.sha256(producer_id.encode()).digest()[:4], "little"
    )
    rng = np.random.default_rng(seed)
    chunks = []
    for _ in range(CHUNKS):
        bits = (rng.random((ROWS_PER_CHUNK, M)) < 0.5).astype(np.uint8)
        chunks.append(np.packbits(bits, axis=1))
    return chunks


def _direct_reference() -> CountAccumulator:
    """The unblinded tally every split-trust decode must reproduce."""
    reference = CountAccumulator(M, round_id=ROUND)
    for producer_id in PRODUCERS:
        for chunk in _chunks_for(producer_id):
            reference.add_packed_reports(chunk)
    return reference


async def _start_parties(tmp_path):
    """Collector shard + two keepers, all multi-round, control-keyed."""
    collector = CollectionService(
        rounds=[],
        key=PRODUCER_KEY,
        store_root=str(tmp_path / "collector"),
        control_key=CONTROL_KEY,
        mode="blinded",
    )
    collector_host, collector_port = await collector.serve()
    collector_info = ShardInfo("collector", collector_host, collector_port)
    keepers, keeper_infos, keeper_addresses = {}, [], {}
    for keeper_id, key in KEEPER_KEYS.items():
        keeper = CollectionService(
            rounds=[],
            key=key,
            store_root=str(tmp_path / keeper_id),
            control_key=CONTROL_KEY,
            mode="keeper",
            keeper_id=keeper_id,
        )
        host, port = await keeper.serve()
        keepers[keeper_id] = keeper
        keeper_infos.append(ShardInfo(keeper_id, host, port))
        keeper_addresses[keeper_id] = (host, port)
    return (
        collector,
        collector_info,
        keepers,
        keeper_infos,
        keeper_addresses,
    )


async def _ship_everyone(collector_info, keeper_addresses):
    results = []
    for producer_id in PRODUCERS:
        results.append(
            await send_split_trust(
                (collector_info.host, collector_info.port),
                keeper_addresses,
                _chunks_for(producer_id),
                collector_key=PRODUCER_KEY,
                keeper_keys=KEEPER_KEYS,
                producer_id=producer_id,
                m=M,
                round_id=ROUND,
            )
        )
    return results


def test_coordinated_split_trust_round_bit_identical(tmp_path):
    reference = _direct_reference()

    async def scenario():
        (
            collector,
            collector_info,
            keepers,
            keeper_infos,
            keeper_addresses,
        ) = await _start_parties(tmp_path)
        try:
            coordinator = RoundCoordinator(
                [collector_info],
                control_key=CONTROL_KEY,
                keepers=keeper_infos,
            )
            await coordinator.register_round(M, ROUND, mode="blinded")

            first = await _ship_everyone(collector_info, keeper_addresses)
            for result in first:
                assert all(
                    ack.status == wire.ACK_MERGED
                    for ack in result["collector"]
                )
                for acks in result["keepers"].values():
                    assert all(
                        ack.status == wire.ACK_MERGED for ack in acks
                    )

            # Blind resend from every producer: the per-party ledgers
            # line up (same seqs, byte-identical re-blinded frames), so
            # everything dedups everywhere.
            again = await _ship_everyone(collector_info, keeper_addresses)
            for result in again:
                assert all(
                    ack.status == wire.ACK_DUPLICATE
                    for ack in result["collector"]
                )
                for acks in result["keepers"].values():
                    assert all(
                        ack.status == wire.ACK_DUPLICATE for ack in acks
                    )

            status = await coordinator.status(ROUND)
            assert set(status["keepers"]) == set(KEEPER_KEYS)

            await coordinator.drain(ROUND)
            await coordinator.close_round(ROUND)

            result = await combine_round(
                [collector_info],
                keeper_infos,
                control_key=CONTROL_KEY,
                round_id=ROUND,
            )
            return result
        finally:
            await collector.close()
            for keeper in keepers.values():
                await keeper.close()

    result = asyncio.run(scenario())
    expected_n = len(PRODUCERS) * CHUNKS * ROWS_PER_CHUNK
    assert result.accumulator.n == expected_n
    assert result.records_merged == len(PRODUCERS) * CHUNKS
    # The headline criterion: blinding, sharding across parties,
    # resends, and the control-plane combine cost zero exactness.
    assert result.accumulator.digest() == reference.digest()
    assert np.array_equal(result.accumulator.counts(), reference.counts())


class TestAdversarialCollectorCompromise:
    """Seize the blinded collector's whole disk + memory mid-round."""

    def _compromise(self, tmp_path):
        """Run a round, 'image' the collector mid-round, return the loot."""

        async def scenario():
            (
                collector,
                collector_info,
                keepers,
                keeper_infos,
                keeper_addresses,
            ) = await _start_parties(tmp_path)
            try:
                coordinator = RoundCoordinator(
                    [collector_info],
                    control_key=CONTROL_KEY,
                    keepers=keeper_infos,
                )
                await coordinator.register_round(M, ROUND, mode="blinded")
                await _ship_everyone(collector_info, keeper_addresses)

                # Mid-round seizure: every durable artifact plus a
                # snapshot of the live accumulator, as an attacker with
                # the collector's disk and memory would hold.
                spill_paths = glob.glob(
                    str(tmp_path / "collector" / "**" / "*.chunks"),
                    recursive=True,
                )
                ledger_paths = glob.glob(
                    str(tmp_path / "collector" / "**" / "*.ledger"),
                    recursive=True,
                )
                assert spill_paths and ledger_paths
                spill = b"".join(
                    open(path, "rb").read() for path in spill_paths
                )
                ledger = b"".join(
                    open(path, "rb").read() for path in ledger_paths
                )
                state = collector.registry.get(ROUND)
                snapshot = wire.dumps(state.accumulator.state_frame())
                keeper_words = {
                    kid: keeper.registry.get(ROUND).accumulator.words()
                    for kid, keeper in keepers.items()
                }
                return spill, ledger, snapshot, keeper_words
            finally:
                await collector.close()
                for keeper in keepers.values():
                    await keeper.close()

        return asyncio.run(scenario())

    def test_collector_state_is_noise_and_alone_undecodable(self, tmp_path):
        spill, ledger, snapshot, keeper_words = self._compromise(tmp_path)
        reference = _direct_reference()
        n = reference.n

        # (a) No raw report bytes anywhere in the seized state: every
        # producer's packed chunk (80 bytes of real reports) must be
        # absent from spill, ledger, and snapshot alike.
        for producer_id in PRODUCERS:
            for chunk in _chunks_for(producer_id):
                raw = chunk.tobytes()
                assert raw not in spill
                assert raw not in ledger
                assert raw not in snapshot
        # ... and so must the plain tally itself.
        plain_counts = reference.counts().astype("<u8").tobytes()
        assert plain_counts not in spill
        assert plain_counts not in snapshot

        # (b) Statistical indistinguishability from uniform words: pool
        # every blinded word the attacker holds (per-chunk frames from
        # the spill plus the accumulated snapshot) and test bit balance
        # at 4.5 sigma — real counts (tiny integers, top bits all zero)
        # fail this by dozens of sigma.
        frames = list(wire.iter_frames(io.BytesIO(spill)))
        assert frames and all(
            isinstance(obj, wire.BlindedCounts) for obj in frames
        )
        words = np.concatenate(
            [obj.words for obj in frames]
            + [wire.loads(snapshot).words]
        )
        bits = np.unpackbits(words.view(np.uint8))
        sigma = 0.5 / np.sqrt(bits.size)
        assert bits.size >= 24_000
        assert abs(float(bits.mean()) - 0.5) < 4.5 * sigma
        # A direct giveaway check: the true counts fit in one byte; the
        # blinded words' high bytes must not be predominantly zero.
        high_bytes = words.view(np.uint8).reshape(-1, 8)[:, 7]
        assert np.count_nonzero(high_bytes) > 0.9 * high_bytes.size

        # (c) Single-party reconstruction fails loudly — the collector
        # alone cannot decode its own accumulated words...
        accumulated = wire.loads(snapshot).words
        with pytest.raises(EstimationError, match="refusing to decode"):
            combine_shares(accumulated, [], n=n)
        # ...no single keeper's words help (still one stream short)...
        keeper_list = list(keeper_words.values())
        with pytest.raises(EstimationError, match="refusing to decode"):
            combine_shares(accumulated, keeper_list[:1], n=n)
        # ...a lone keeper's state is equally mute...
        with pytest.raises(EstimationError, match="refusing to decode"):
            combine_shares(keeper_list[0], [], n=n)
        # ...and only the full party set decodes, exactly.
        decoded = combine_shares(accumulated, keeper_list, n=n)
        assert np.array_equal(decoded, reference.counts())
