"""End-to-end integration tests: full user-to-server pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Aggregator,
    BudgetSpec,
    FrequencyEstimator,
    IDUE,
    IDUEPS,
    MIN,
    IDLDP,
)
from repro.audit import audit_unary_pairwise
from repro.datasets import ItemsetDataset, paper_default_spec
from repro.estimation import norm_sub, top_k_metrics


class TestSingleItemPipeline:
    def test_device_to_server_roundtrip(self, rng):
        """Simulate the full protocol exactly as deployed: each device
        perturbs independently, the server aggregates and calibrates."""
        spec = paper_default_spec(2.0, m=8, rng=rng)
        mech = IDUE.optimized(spec, model="opt0")

        n = 6000
        items = rng.choice(8, size=n, p=np.linspace(8, 1, 8) / 36.0)
        truth = np.bincount(items, minlength=8)

        aggregator = Aggregator(8)
        for batch_start in range(0, n, 1000):  # devices report in batches
            batch = items[batch_start : batch_start + 1000]
            aggregator.add_many(mech.perturb_many(batch, rng))
        assert aggregator.n == n

        estimator = FrequencyEstimator.for_mechanism(mech, n)
        estimates = estimator.estimate(aggregator.counts())

        sd = np.sqrt(n * mech.b * (1 - mech.b) / (mech.a - mech.b) ** 2)
        assert np.all(np.abs(estimates - truth) < 5 * sd)

        # The released mechanism passes its privacy audit.
        assert audit_unary_pairwise(mech, IDLDP(spec, MIN)).passed

    def test_postprocessing_recovers_distribution(self, rng):
        spec = BudgetSpec.uniform(1.5, 6)
        mech = IDUE.optimized(spec, model="opt2")
        n = 8000
        items = rng.integers(6, size=n)
        truth = np.bincount(items, minlength=6)

        reports = mech.perturb_many(items, rng)
        estimates = FrequencyEstimator.for_mechanism(mech, n).estimate(
            reports.sum(axis=0)
        )
        repaired = norm_sub(estimates, total=n)
        assert repaired.sum() == pytest.approx(n)
        assert np.all(repaired >= 0)
        assert np.abs(repaired - truth).mean() < truth.mean()


class TestItemsetPipeline:
    def test_retail_style_roundtrip(self, rng):
        """Item-set collection with PS: exact per-user path end to end."""
        m, ell = 10, 3
        spec = paper_default_spec(2.5, m=m, rng=rng)
        mech = IDUEPS.optimized(spec, ell=ell, model="opt0")

        sets = [
            rng.choice(m, size=rng.integers(1, 4), replace=False).tolist()
            for _ in range(4000)
        ]
        data = ItemsetDataset.from_sets(sets, m=m)

        reports = mech.perturb_many(data.flat_items, data.offsets, rng)
        counts = reports.sum(axis=0)
        estimator = FrequencyEstimator.for_mechanism(mech, data.n)
        estimates = estimator.estimate(counts)

        truth = data.true_counts()
        # |x| <= 3 = ell, so the estimator is unbiased; loose 5-sigma band.
        a, b = mech.a[:m], mech.b[:m]
        sd = ell * np.sqrt(data.n * b * (1 - b) / (a - b) ** 2)
        assert np.all(np.abs(estimates - truth) < 5 * sd)

    def test_heavy_hitter_identification(self, rng):
        """Top-k on calibrated estimates finds the popular items."""
        m, ell, n = 20, 2, 20_000
        spec = BudgetSpec.uniform(3.0, m)
        mech = IDUEPS.optimized(spec, ell=ell, model="opt2")
        # Items 0-2 are in most sets; the rest are rare.
        sets = []
        for _ in range(n):
            base = [int(i) for i in np.flatnonzero(rng.random(3) < 0.8)]
            rare = rng.choice(np.arange(3, m), size=1).tolist()
            sets.append(base + rare if base else rare)
        data = ItemsetDataset.from_sets(sets, m=m)

        from repro.simulation import simulate_itemset_counts

        counts = simulate_itemset_counts(mech, data, rng)
        estimates = FrequencyEstimator.for_mechanism(mech, data.n).estimate(counts)
        metrics = top_k_metrics(estimates, data.true_counts(), k=3)
        assert metrics["precision"] == 1.0


class TestCompositionPipeline:
    def test_two_round_collection_under_total_budget(self, rng):
        """Split a MinID-LDP budget across two collection rounds
        (Theorem 2) and verify each round's mechanism is feasible."""
        from repro import CompositionAccountant

        total = paper_default_spec(2.0, m=6, rng=rng)
        accountant = CompositionAccountant(total)

        half = BudgetSpec(total.item_epsilons / 2.0)
        for round_id in range(2):
            mech = IDUE.optimized(half, model="opt1")
            assert audit_unary_pairwise(mech, IDLDP(half, MIN)).passed
            accountant.record(half)
        assert not accountant.can_afford(0.05)
        composed = accountant.composed_spec()
        assert np.allclose(composed.item_epsilons, total.item_epsilons)
