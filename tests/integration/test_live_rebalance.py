"""Live rebalancing under traffic: grow, shrink, lose nothing.

The acceptance test for the migration tentpole: producers stream
records *continuously* while the fleet grows from two shards to three
(auto-discovery — the new shard announces itself over ``join-fleet``
and the coordinator migrates records onto it) and then shrinks back to
two (an explicit removal migration that drains the leaving shard).
Every committed record must end the round on exactly one shard: the
aggregated digest is bit-identical to a single-process run over the
same report stream, which a single lost or double-counted record would
break.

Producers are deliberately naive: they hold whatever table they last
saw, retry on connection errors, and blind-resend whole batches on
MOVED — the exact client behavior the migration flow must absorb.
"""

from __future__ import annotations

import asyncio
import hashlib

import numpy as np

from repro.exceptions import MovedError, ServiceError
from repro.pipeline import CollectionService
from repro.pipeline.collect import wire
from repro.pipeline.service import (
    RoundCoordinator,
    ShardFleet,
    aggregate_round,
    send_records,
    send_records_routed,
)

M = 32
ROUND = 5
SECRET = "fleet-producer-secret"
CONTROL_KEY = "fleet-control-secret"
PRODUCERS = [f"edge-{i:03d}" for i in range(18)]
ROWS_PER_CHUNK = 2
CHUNKS = 4


def _frames_for(producer_id: str) -> list[bytes]:
    seed = int.from_bytes(
        hashlib.sha256(producer_id.encode()).digest()[:4], "little"
    )
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(CHUNKS):
        bits = (rng.random((ROWS_PER_CHUNK, M)) < 0.5).astype(np.uint8)
        frames.append(
            wire.dump_chunk(np.packbits(bits, axis=1), M, round_id=ROUND)
        )
    return frames


async def _single_process_digest(tmp_path) -> str:
    service = CollectionService(
        M, key=SECRET, store_root=str(tmp_path / "reference"), round_id=ROUND
    )
    host, port = await service.serve()
    try:
        for producer_id in PRODUCERS:
            await send_records(
                host,
                port,
                _frames_for(producer_id),
                key=SECRET,
                producer_id=producer_id,
                m=M,
                round_id=ROUND,
            )
        return service.accumulator.digest()
    finally:
        await service.close()


async def _stream(producer_id: str, shared: dict) -> None:
    """One producer: ship each chunk as its own batch, surviving every
    rebalance symptom (stale table, MOVED bounces, dead connections)
    with plain retries and blind resends."""
    for seq, frame in enumerate(_frames_for(producer_id)):
        for attempt in range(40):
            try:
                await send_records_routed(
                    shared["table"],
                    [frame],
                    key=SECRET,
                    producer_id=producer_id,
                    m=M,
                    round_id=ROUND,
                    start_seq=seq,
                    raise_on_refusal=False,
                    control_key=CONTROL_KEY,
                )
                break
            except (MovedError, ServiceError, ConnectionError, OSError):
                await asyncio.sleep(0.05)
        else:
            raise AssertionError(
                f"{producer_id} chunk {seq} never got through"
            )
        # Yield so the rebalance interleaves with live traffic.
        await asyncio.sleep(0)


def test_grow_and_shrink_under_live_traffic_bit_identical(tmp_path):
    async def scenario():
        reference_digest = await _single_process_digest(tmp_path)

        fleet = ShardFleet(
            ["alpha", "beta"],
            fleet_root=str(tmp_path / "fleet"),
            rounds=[],
            key=SECRET,
            control_key=CONTROL_KEY,
        )
        table = await fleet.start()
        try:
            coordinator = RoundCoordinator(
                fleet.infos(),
                control_key=CONTROL_KEY,
                epoch=table.epoch,
                journal=str(tmp_path / "coordinator.journal"),
            )
            await coordinator.serve()
            await coordinator.register_round(M, ROUND)

            shared = {"table": coordinator.table}
            producers = [
                asyncio.ensure_future(_stream(producer_id, shared))
                for producer_id in PRODUCERS
            ]
            # Let the first chunks land so the migrations move real
            # committed records, not empty ledgers.
            await asyncio.sleep(0.3)

            # GROW under traffic: the new shard announces itself; the
            # coordinator opens the round on it and migrates its slice.
            await fleet.add_shard("gamma", coordinator=coordinator.address)
            assert "gamma" in coordinator.table.names()
            grown = coordinator.table
            assert any(
                grown.owner(p).name == "gamma" for p in PRODUCERS
            )  # the ring actually handed gamma a slice
            shared["table"] = grown

            await asyncio.sleep(0.2)

            # SHRINK under traffic: beta leaves; its records must drain
            # onto the survivors before it stops answering for them.
            assert any(grown.owner(p).name == "beta" for p in PRODUCERS)
            stats = await coordinator.migrate(grown.without_shard("beta"))
            assert stats["epoch"] == coordinator.table.epoch
            shared["table"] = coordinator.table
            assert coordinator.table.names() == ["alpha", "gamma"]

            await asyncio.gather(*producers)

            await coordinator.drain(ROUND)
            await coordinator.close_round(ROUND)

            result = await aggregate_round(
                coordinator.table.shards(),
                control_key=CONTROL_KEY,
                round_id=ROUND,
                fan_in=2,
            )
            # Zero loss, zero double-count, across two live migrations:
            # exact record count and a bit-identical digest.
            assert result.accumulator.n == (
                len(PRODUCERS) * CHUNKS * ROWS_PER_CHUNK
            )
            assert result.records_merged == len(PRODUCERS) * CHUNKS
            assert result.accumulator.digest() == reference_digest
            await coordinator.close()
        finally:
            fleet.stop()

    asyncio.run(scenario())
