"""End-to-end acceptance: kill-and-resend is exactly-once, bit for bit.

The bar for the collection service: after a forced restart mid-round —
with a torn in-flight frame on disk and producers blindly resending
*everything* — the final estimate must be bit-identical to the
single-pass in-memory ``stream_counts`` path.  Not close: identical
float64 arrays, because exactly-once means the service aggregated the
very same integer counts, no loss and no double-count.  And producers
without the round key must merge nothing at all.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.exceptions import AuthenticationError
from repro.kernels import resolve_sampler
from repro.mechanisms import OptimizedUnaryEncoding
from repro.pipeline import (
    CollectionService,
    ServiceSession,
    iter_report_chunks,
    send_records,
    shard_bounds,
    stream_counts,
)
from repro.pipeline.collect import wire
from repro.pipeline.service.server import SERVICE_SHARD_ID

M, N, CHUNK, PRODUCERS, SEED = 24, 900, 128, 3, 42
KEY = "fedcba9876543210"


@pytest.fixture(params=["bitexact", "fast"])
def sampler(request) -> str:
    return request.param


@pytest.fixture
def workload(sampler):
    """Per-producer record frames plus the single-pass reference."""
    mechanism = OptimizedUnaryEncoding(2.0, M)
    items = np.random.default_rng(7).integers(M, size=N)
    config = resolve_sampler(sampler)
    children = np.random.SeedSequence(SEED).spawn(PRODUCERS)
    producer_frames = []
    for (start, stop), child in zip(shard_bounds(N, PRODUCERS), children):
        frames = [
            wire.dump_chunk(chunk, M)
            for chunk in iter_report_chunks(
                mechanism,
                items[start:stop],
                chunk_size=CHUNK,
                rng=config.make_generator(child),
                packed=True,
                sampler=config,
            )
        ]
        producer_frames.append(frames)
    # The single-pass in-memory reference over the same chunk streams.
    reference = stream_counts(
        mechanism,
        items[: shard_bounds(N, PRODUCERS)[0][1]],
        chunk_size=CHUNK,
        rng=resolve_sampler(sampler).make_generator(children[0]),
        packed=True,
        sampler=resolve_sampler(sampler),
    )
    for (start, stop), child in list(
        zip(shard_bounds(N, PRODUCERS), children)
    )[1:]:
        reference.merge(
            stream_counts(
                mechanism,
                items[start:stop],
                chunk_size=CHUNK,
                rng=resolve_sampler(sampler).make_generator(child),
                packed=True,
                sampler=resolve_sampler(sampler),
            )
        )
    return mechanism, producer_frames, reference


def test_kill_and_resend_is_bit_identical(workload, tmp_path):
    mechanism, producer_frames, reference = workload
    root = str(tmp_path / "round")

    async def first_run():
        """Partial round: every producer gets only some records acked."""
        service = CollectionService(M, key=KEY, store_root=root)
        host, port = await service.serve()
        try:
            for index, frames in enumerate(producer_frames):
                prefix = frames[: max(1, len(frames) // 2)]
                acks = await send_records(
                    host,
                    port,
                    prefix,
                    key=KEY,
                    producer_id=f"producer-{index}",
                    m=M,
                )
                assert all(a.status == wire.ACK_MERGED for a in acks)
        finally:
            await service.abort()  # crash-adjacent: no final snapshot
        return service

    service = asyncio.run(first_run())
    acked_before = service.records_merged
    assert 0 < acked_before < sum(len(f) for f in producer_frames)

    # Emulate the torn frame a kill leaves behind: half of an in-flight
    # record appended to the spill after the last fsync'd commit.
    torn = producer_frames[0][-1]
    with open(service.store.chunk_path(SERVICE_SHARD_ID), "ab") as handle:
        handle.write(torn[: len(torn) // 2])

    async def resumed_run():
        """Restart, then every producer blindly resends EVERYTHING."""
        service = CollectionService(M, key=KEY, store_root=root, resume=True)
        assert service.recovered_records == acked_before
        assert service.recovered_spill_bytes_discarded == len(torn) // 2
        host, port = await service.serve()
        try:
            # A keyless producer hammers the service mid-round: nothing.
            with pytest.raises(AuthenticationError):
                await send_records(
                    host,
                    port,
                    producer_frames[0],
                    key="not-the-round-key",
                    producer_id="intruder",
                    m=M,
                )
            statuses = []
            for index, frames in enumerate(producer_frames):
                acks = await send_records(
                    host,
                    port,
                    frames,  # blind full resend, seq 0..len-1
                    key=KEY,
                    producer_id=f"producer-{index}",
                    m=M,
                )
                statuses.extend(ack.status for ack in acks)
        finally:
            await service.close()
        return service, statuses

    service, statuses = asyncio.run(resumed_run())
    total = sum(len(frames) for frames in producer_frames)
    assert statuses.count(wire.ACK_DUPLICATE) == acked_before
    assert statuses.count(wire.ACK_MERGED) == total - acked_before
    assert "intruder" not in service.producers_seen

    # The acceptance bar: bit-identical to the in-memory single pass.
    assert service.accumulator.digest() == reference.digest()
    assert np.array_equal(
        service.accumulator.estimate(mechanism),
        reference.estimate(mechanism),
    )

    # The closed round is durable and self-consistent: snapshot matches
    # an out-of-core replay of the committed spill, and a third start
    # reconstructs the same state from disk alone.
    audit = service.store.audit()
    assert audit[SERVICE_SHARD_ID]["match"] is True
    third = CollectionService(M, key=KEY, store_root=root, resume=True)
    assert third.accumulator.digest() == reference.digest()
    assert third.recovered_records == total


def test_resume_with_concurrent_producers(workload, tmp_path):
    """Resends interleaved with fresh records across concurrent sessions
    still commit exactly once each."""
    mechanism, producer_frames, reference = workload
    root = str(tmp_path / "round")

    async def scenario():
        service = CollectionService(M, key=KEY, store_root=root)
        host, port = await service.serve()

        async def producer(index: int, frames):
            # Each producer sends its stream twice, concurrently with
            # everyone else doing the same.
            async with ServiceSession(
                host, port, key=KEY, producer_id=f"p{index}", m=M
            ) as session:
                for seq, frame in enumerate(frames):
                    await session.send(frame, seq)
            acks = await send_records(
                host, port, frames, key=KEY, producer_id=f"p{index}", m=M
            )
            return [ack.status for ack in acks]

        try:
            results = await asyncio.gather(
                *(
                    producer(index, frames)
                    for index, frames in enumerate(producer_frames)
                )
            )
        finally:
            await service.close()
        return service, results

    service, results = asyncio.run(scenario())
    for statuses in results:
        assert statuses == [wire.ACK_DUPLICATE] * len(statuses)
    assert service.accumulator.digest() == reference.digest()
    assert np.array_equal(
        service.accumulator.estimate(mechanism),
        reference.estimate(mechanism),
    )
