"""End-to-end: durable and networked collection match in-memory exactly.

The acceptance bar for the collection subsystem: on the same seed, the
spill→replay path and the socket-ingest path must produce *estimates
bit-identical* to the in-memory ``stream_counts`` path — not close, not
statistically indistinguishable: identical float64 arrays, because every
path aggregates the very same integer counts.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.mechanisms import OptimizedUnaryEncoding
from repro.pipeline import (
    Collector,
    ShardedRunner,
    ShardStore,
    send_frames,
    shard_bounds,
    stream_counts,
)
from repro.pipeline.collect import wire

M, N, CHUNK, SHARDS, SEED = 24, 900, 128, 3, 42


@pytest.fixture(params=["bitexact", "fast"])
def sampler(request) -> str:
    return request.param


@pytest.fixture
def workload():
    mechanism = OptimizedUnaryEncoding(2.0, M)
    items = np.random.default_rng(7).integers(M, size=N)
    return mechanism, items


def _in_memory_reference(mechanism, items, sampler):
    """The plain sharded in-memory run every other path must reproduce."""
    return ShardedRunner(
        mechanism,
        num_shards=SHARDS,
        chunk_size=CHUNK,
        packed=True,
        processes=1,
        sampler=sampler,
    ).run(items, seed=SEED)


class TestSpillReplayPath:
    def test_estimates_bit_identical(self, workload, sampler, tmp_path):
        mechanism, items = workload
        reference = _in_memory_reference(mechanism, items, sampler)
        runner = ShardedRunner(
            mechanism,
            num_shards=SHARDS,
            chunk_size=CHUNK,
            packed=True,
            processes=1,
            sampler=sampler,
        )
        live = runner.run(items, seed=SEED, spill_dir=str(tmp_path / "round"))
        store = ShardStore(str(tmp_path / "round"))
        replayed = store.replay()

        assert live.digest() == reference.digest()
        assert replayed.digest() == reference.digest()
        # Bit-identical estimates, not merely close:
        assert np.array_equal(
            replayed.estimate(mechanism), reference.estimate(mechanism)
        )
        audit = store.audit()
        assert len(audit) == SHARDS
        assert all(entry["match"] for entry in audit.values())


class TestSocketIngestPath:
    def test_estimates_bit_identical(self, workload, sampler):
        """Each shard streams per-chunk frames to a live collector over a
        localhost socket; the collector's round equals the in-memory one."""
        mechanism, items = workload
        reference = _in_memory_reference(mechanism, items, sampler)

        # Reproduce the reference's exact per-shard chunk streams: same
        # shard bounds, same spawned child seeds, same chunk size.
        children = np.random.SeedSequence(SEED).spawn(SHARDS)
        from repro.kernels import resolve_sampler
        from repro.pipeline import iter_report_chunks

        config = resolve_sampler(sampler)
        shard_frames = []
        for (start, stop), child in zip(shard_bounds(N, SHARDS), children):
            frames = [
                wire.dump_chunk(chunk, M)
                for chunk in iter_report_chunks(
                    mechanism,
                    items[start:stop],
                    chunk_size=CHUNK,
                    rng=config.make_generator(child),
                    packed=True,
                    sampler=config,
                )
            ]
            shard_frames.append(frames)

        async def scenario():
            collector = Collector(M)
            host, port = await collector.serve()
            try:
                acks = await asyncio.gather(
                    *(
                        send_frames(host, port, frames)
                        for frames in shard_frames
                    )
                )
            finally:
                await collector.close()
            return acks, collector

        acks, collector = asyncio.run(scenario())
        assert sum(acks) == sum(len(frames) for frames in shard_frames)
        assert collector.accumulator.digest() == reference.digest()
        assert np.array_equal(
            collector.accumulator.estimate(mechanism),
            reference.estimate(mechanism),
        )


class TestSnapshotRelayPath:
    def test_worker_snapshots_over_socket_match(self, workload, sampler, tmp_path):
        """PrivCount shape: shards spill locally, ship only snapshots; the
        collector's merge equals the reference bit for bit."""
        mechanism, items = workload
        reference = _in_memory_reference(mechanism, items, sampler)
        runner = ShardedRunner(
            mechanism,
            num_shards=SHARDS,
            chunk_size=CHUNK,
            packed=True,
            processes=1,
            sampler=sampler,
        )
        runner.run(items, seed=SEED, spill_dir=str(tmp_path / "round"))
        store = ShardStore(str(tmp_path / "round"))

        async def scenario():
            collector = Collector(M)
            host, port = await collector.serve()
            try:
                for shard_id in store.shard_ids():
                    await send_frames(
                        host, port, [store.load_snapshot(shard_id)]
                    )
            finally:
                await collector.close()
            return collector

        collector = asyncio.run(scenario())
        assert collector.accumulator.digest() == reference.digest()
        assert np.array_equal(
            collector.accumulator.estimate(mechanism),
            reference.estimate(mechanism),
        )
