"""Smoke tests: the fast example scripts must run end to end.

Only the quick examples are executed (the dataset-heavy ones are covered
by the benchmark suite); each runs in-process via ``runpy`` with its
output captured, and the test asserts the script's headline claim
appears in what it printed.
"""

from __future__ import annotations

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def _run_example(name: str, capsys) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    assert os.path.exists(path), f"example missing: {path}"
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_runs(capsys):
    out = _run_example("quickstart.py", capsys)
    assert "total squared error" in out
    assert "feasible=True" in out


def test_medical_survey_runs(capsys):
    out = _run_example("medical_survey.py", capsys)
    assert "Table II reproduction" in out
    assert "passed=True" in out
    # IDUE's theoretical MSE line must report the lowest value; parse the
    # three "theory MSE" numbers out of the table.
    lines = [l for l in out.splitlines() if l.startswith(("RAPPOR", "OUE", "IDUE"))]
    values = [float(line.split()[-1]) for line in lines[:3]]
    assert values[2] == min(values)  # IDUE row is printed last


def test_policy_graph_gain_runs(capsys):
    out = _run_example("policy_graph_gain.py", capsys)
    assert "complete graph" in out
    assert "star policy" in out


def test_split_trust_round_runs(capsys):
    out = _run_example("split_trust_round.py", capsys)
    assert "all ACK_DUPLICATE" in out
    assert "digest matches the direct unblinded tally: True" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "medical_survey.py",
        "retail_itemset.py",
        "clickstream_frequency.py",
        "policy_graph_gain.py",
        "heavy_hitters.py",
        "pldp_personalization.py",
        "padding_length_selection.py",
        "split_trust_round.py",
    ],
)
def test_every_example_exists_and_has_docstring(name):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    assert os.path.exists(path)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    assert source.lstrip().startswith('"""')
    assert "Run:" in source  # every example documents how to run it
