"""Scale-out collection across real OS processes, crash included.

The acceptance test for the sharded tier: a four-shard fleet, routed
producers, one shard SIGKILLed mid-round and brought back on its old
store root, blind resends from every producer — and the aggregated
round must be **bit-identical** (same digest) to a single-process run
over the same report stream.  Exactly-once is the whole product; this
test is where any crack in the ledger/spill/routing seams shows up as
a one-bit digest difference.

Forked children on a one-core box make this the slowest test in the
suite; it stays small (24 producers, 2 chunks each) but exercises
every seam: routing, crash, resume, recover, dedup, tree merge.
"""

from __future__ import annotations

import asyncio
import hashlib

import numpy as np
import pytest

from repro.pipeline import CollectionService
from repro.pipeline.collect import wire
from repro.pipeline.service import (
    RoundCoordinator,
    ShardFleet,
    aggregate_round,
    send_records,
    send_records_routed,
)

M = 32
ROUND = 3
SECRET = "fleet-producer-secret"
CONTROL_KEY = "fleet-control-secret"
SHARDS = ["alpha", "beta", "gamma", "delta"]
PRODUCERS = [f"edge-{i:03d}" for i in range(24)]
ROWS_PER_CHUNK = 2
CHUNKS = 2


def _frames_for(producer_id: str) -> list[bytes]:
    """This producer's report stream — deterministic, so the crashed
    run and the single-process reference ingest identical bits."""
    seed = int.from_bytes(
        hashlib.sha256(producer_id.encode()).digest()[:4], "little"
    )
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(CHUNKS):
        bits = (rng.random((ROWS_PER_CHUNK, M)) < 0.5).astype(np.uint8)
        frames.append(
            wire.dump_chunk(np.packbits(bits, axis=1), M, round_id=ROUND)
        )
    return frames


async def _single_process_digest(tmp_path) -> str:
    """The reference: every producer against ONE service, no fleet."""
    service = CollectionService(
        M, key=SECRET, store_root=str(tmp_path / "reference"), round_id=ROUND
    )
    host, port = await service.serve()
    try:
        for producer_id in PRODUCERS:
            await send_records(
                host,
                port,
                _frames_for(producer_id),
                key=SECRET,
                producer_id=producer_id,
                m=M,
                round_id=ROUND,
            )
        return service.accumulator.digest()
    finally:
        await service.close()


def test_kill_one_shard_resume_aggregate_bit_identical(tmp_path):
    async def scenario():
        reference_digest = await _single_process_digest(tmp_path)

        fleet = ShardFleet(
            SHARDS,
            fleet_root=str(tmp_path / "fleet"),
            rounds=[],
            key=SECRET,
            control_key=CONTROL_KEY,
        )
        table = await fleet.start()
        try:
            coordinator = RoundCoordinator(
                fleet.infos(), control_key=CONTROL_KEY, epoch=table.epoch
            )
            await coordinator.register_round(M, ROUND)

            by_owner: dict[str, list[str]] = {}
            for producer_id in PRODUCERS:
                owner = table.owner(producer_id).name
                by_owner.setdefault(owner, []).append(producer_id)
            # The ring must actually spread this population; otherwise
            # the crash would be a no-op and the test would prove nothing.
            assert len(by_owner) >= 3
            victim = max(by_owner, key=lambda name: len(by_owner[name]))

            # First wave: every producer ships both chunks and gets
            # per-record acks — acked means fsync'd, the crash contract.
            for producer_id in PRODUCERS:
                acks = await send_records_routed(
                    table,
                    _frames_for(producer_id),
                    key=SECRET,
                    producer_id=producer_id,
                    m=M,
                    round_id=ROUND,
                )
                assert [ack.status for ack in acks] == [wire.ACK_MERGED] * CHUNKS

            fleet.kill(victim)
            # The victim's producers cannot reach it; their blind
            # resends fail loudly instead of landing elsewhere.
            with pytest.raises((ConnectionError, OSError)):
                await send_records_routed(
                    table,
                    _frames_for(by_owner[victim][0]),
                    key=SECRET,
                    producer_id=by_owner[victim][0],
                    m=M,
                    round_id=ROUND,
                )

            info = await fleet.restart(victim, resume=True)
            recovered = await coordinator.recover_shard(info)
            assert recovered == [ROUND]
            table = fleet.table

            # Blind resend from EVERY producer — the idempotency ledger
            # must eat all of it as duplicates (the acked records
            # survived the SIGKILL on disk).
            for producer_id in PRODUCERS:
                acks = await send_records_routed(
                    table,
                    _frames_for(producer_id),
                    key=SECRET,
                    producer_id=producer_id,
                    m=M,
                    round_id=ROUND,
                    raise_on_refusal=False,
                )
                assert [ack.status for ack in acks] == [
                    wire.ACK_DUPLICATE
                ] * CHUNKS

            await coordinator.drain(ROUND)
            await coordinator.close_round(ROUND)

            result = await aggregate_round(
                fleet.infos(),
                control_key=CONTROL_KEY,
                round_id=ROUND,
                fan_in=2,
            )
            assert result.accumulator.n == (
                len(PRODUCERS) * CHUNKS * ROWS_PER_CHUNK
            )
            assert result.records_merged == len(PRODUCERS) * CHUNKS
            # The headline acceptance criterion: the crashed, resumed,
            # resent, sharded round is bit-identical to one process.
            assert result.accumulator.digest() == reference_digest

            # Fan-in shape must not change the answer (exact merges).
            wide = await aggregate_round(
                fleet.infos(),
                control_key=CONTROL_KEY,
                round_id=ROUND,
                fan_in=4,
            )
            assert wide.accumulator.digest() == reference_digest
        finally:
            fleet.stop()

    asyncio.run(scenario())
