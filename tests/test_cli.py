"""Unit tests for the CLI entry point."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.config import QUICK


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "MinID-LDP" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "IDUE" in out and "RAPPOR" in out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_quick_presets_are_smaller(self):
        assert QUICK.fig3.n < 100_000
        assert QUICK.fig4a.m < 41_270

    def test_csv_export(self, tmp_path, capsys, monkeypatch):
        """--csv writes the figure series next to printing it."""
        from dataclasses import replace

        import repro.cli as cli_module
        from repro.experiments.export import read_series_csv

        tiny = replace(
            QUICK,
            fig3=replace(
                QUICK.fig3, n=2000, m_power_law=20, epsilons=(1.0,), trials=1
            ),
        )
        monkeypatch.setattr(cli_module, "QUICK", tiny)
        path = str(tmp_path / "fig3.csv")
        assert main(["fig3", "--quick", "--csv", path]) == 0
        restored = read_series_csv(path)
        assert restored["x"] == [1.0]
        assert "IDUE-opt0 empirical" in restored["series"]

    def test_fig3_quick_smoke(self, capsys, monkeypatch):
        """End-to-end CLI run at a tiny scale (patch the quick preset)."""
        from dataclasses import replace

        import repro.cli as cli_module

        tiny = replace(
            QUICK, fig3=replace(QUICK.fig3, n=2000, m_power_law=20, epsilons=(1.0,), trials=1)
        )
        monkeypatch.setattr(cli_module, "QUICK", tiny)
        assert main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig3-power-law" in out
        assert "IDUE-opt0 empirical" in out


class TestPipelineCLI:
    def test_pipeline_smoke(self, capsys):
        """Streamed-exact collection end to end at a tiny scale."""
        assert (
            main(
                [
                    "pipeline",
                    "--n", "2000",
                    "--m", "40",
                    "--shards", "2",
                    "--chunk-size", "256",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "streamed-exact" in out and "reports/s" in out
        assert "fast baseline" in out

    def test_pipeline_idue_packed(self, capsys):
        assert (
            main(
                [
                    "pipeline",
                    "--n", "1000",
                    "--m", "30",
                    "--mechanism", "idue",
                    "--packed",
                    "--shards", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mechanism=idue" in out and "packed=True" in out

    def test_pipeline_fast_sampler(self, capsys):
        """--sampler fast streams through the packed bit-plane kernel."""
        assert (
            main(
                [
                    "pipeline",
                    "--n", "2000",
                    "--m", "40",
                    "--sampler", "fast",
                    "--packed",
                    "--shards", "2",
                    "--chunk-size", "256",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sampler=fast" in out
        assert "streamed-exact" in out and "MSE vs truth" in out

    def test_pipeline_topk(self, capsys):
        """--topk runs heavy-hitter identification on streamed estimates."""
        assert (
            main(
                [
                    "pipeline",
                    "--n", "3000",
                    "--m", "50",
                    "--sampler", "fast",
                    "--topk", "5",
                    "--shards", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "top-5 heavy hitters" in out
        assert "precision=" in out and "ncr=" in out
        assert "estimated:" in out and "true:" in out

    def test_pipeline_rejects_unknown_sampler(self):
        with pytest.raises(SystemExit):
            main(["pipeline", "--n", "100", "--m", "10", "--sampler", "sloppy"])


class TestServiceCLI:
    def test_collect_with_auth_key_uses_service(self, capsys, tmp_path):
        """--collect --auth-key routes through the exactly-once service,
        including the blind-resend duplicate verification."""
        assert (
            main(
                [
                    "pipeline",
                    "--n", "600",
                    "--m", "24",
                    "--shards", "2",
                    "--chunk-size", "128",
                    "--sampler", "fast",
                    "--packed",
                    "--collect",
                    "--spill-dir", str(tmp_path / "round"),
                    "--auth-key", "00112233445566778899aabbccddeeff",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "service collect:" in out
        assert "merged exactly once" in out
        assert "deduplicated" in out

    def test_serve_requires_auth_key(self, tmp_path):
        with pytest.raises(SystemExit, match="auth-key"):
            main(["serve", "--m", "8", "--spill-dir", str(tmp_path / "r")])

    def test_serve_requires_spill_dir(self):
        with pytest.raises(SystemExit, match="spill-dir"):
            main(["serve", "--m", "8", "--auth-key", "deadbeefcafebabe"])

    def test_serve_exit_after_round_trip(self, capsys, tmp_path):
        """Run the serve loop in a thread, feed it one record, and let
        --exit-after bring it down cleanly."""
        import asyncio
        import socket
        import threading
        import time

        import numpy as np

        from repro.pipeline import send_records
        from repro.pipeline.collect import wire

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        key = "deadbeefcafebabe"
        argv = [
            "serve",
            "--m", "8",
            "--auth-key", key,
            "--spill-dir", str(tmp_path / "round"),
            "--port", str(port),
            "--exit-after", "1",
        ]
        server = threading.Thread(target=main, args=(argv,))
        server.start()
        try:
            frame = wire.dump_chunk(
                np.packbits(np.ones((2, 8), dtype=np.uint8), axis=1), 8
            )
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    acks = asyncio.run(
                        send_records(
                            "127.0.0.1",
                            port,
                            [frame],
                            key=key,
                            producer_id="cli-test",
                            m=8,
                        )
                    )
                    break
                except (ConnectionError, OSError):
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            assert [a.status for a in acks] == [wire.ACK_MERGED]
        finally:
            server.join(timeout=10.0)
        assert not server.is_alive()
        out = capsys.readouterr().out
        assert "collection service listening" in out
        assert "1 merged" in out and "n=2" in out
