"""Public-API surface tests.

Every name a package advertises in ``__all__`` must resolve, and the
top-level package must re-export the documented core surface.  This
catches broken re-exports during refactors before any functional test
runs.
"""

from __future__ import annotations

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.mechanisms",
    "repro.optim",
    "repro.estimation",
    "repro.simulation",
    "repro.pipeline",
    "repro.datasets",
    "repro.audit",
    "repro.experiments",
    "repro.extensions",
    "repro.io",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_public_names_documented(package):
    """Every __all__ symbol carries a docstring (class/function/module)."""
    module = importlib.import_module(package)
    for name in module.__all__:
        obj = getattr(module, name)
        if isinstance(obj, (int, float, str, tuple, dict)):
            continue  # constants (MODELS, DEFAULT_*) documented at module level
        doc = getattr(obj, "__doc__", None)
        assert doc and doc.strip(), f"{package}.{name} lacks a docstring"


def test_top_level_exports_core_workflow():
    """The README's import lines must keep working."""
    for name in (
        "BudgetSpec",
        "IDUE",
        "IDUEPS",
        "FrequencyEstimator",
        "Aggregator",
        "PolicyGraph",
        "CompositionAccountant",
        "LDP",
        "IDLDP",
        "MIN",
        "AVG",
        "solve",
        "itemset_budget",
        "CountAccumulator",
        "ShardedRunner",
        "stream_counts",
    ):
        assert hasattr(repro, name), f"repro.{name} missing from top level"


def test_version_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_exception_hierarchy():
    """All library exceptions derive from ReproError (catchable at once)."""
    from repro import (
        BudgetError,
        DatasetError,
        EstimationError,
        InfeasibleError,
        PrivacyViolationError,
        ReproError,
        SolverError,
        ValidationError,
    )

    for exc in (
        ValidationError,
        BudgetError,
        InfeasibleError,
        SolverError,
        PrivacyViolationError,
        DatasetError,
        EstimationError,
    ):
        assert issubclass(exc, ReproError)
    assert issubclass(ValidationError, ValueError)  # plays well with stdlib
