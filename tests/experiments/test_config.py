"""Unit tests for the experiment-configuration presets."""

from __future__ import annotations

from dataclasses import FrozenInstanceError, replace

import pytest

from repro.experiments import PAPER, QUICK
from repro.experiments.config import (
    Figure3Config,
    Figure4aConfig,
    Figure4bConfig,
    Figure5Config,
)


class TestPaperPreset:
    def test_fig3_matches_paper_workload(self):
        assert PAPER.fig3.n == 100_000
        assert PAPER.fig3.m_power_law == 100
        assert PAPER.fig3.m_uniform == 1_000
        assert PAPER.fig3.power_law_alpha == 2.0

    def test_fig4a_matches_kosarak_domain(self):
        assert PAPER.fig4a.m == 41_270
        assert PAPER.fig4a.budget_distributions[0] == (0.05, 0.05, 0.05, 0.85)

    def test_fig4b_matches_retail(self):
        assert PAPER.fig4b.n == 88_162
        assert PAPER.fig4b.m == 16_470
        assert PAPER.fig4b.t_many == 20

    def test_fig5_datasets(self):
        assert PAPER.fig5_retail.dataset == "retail"
        assert PAPER.fig5_msnbc.dataset == "msnbc"
        assert PAPER.fig5_msnbc.m == 14
        assert PAPER.fig5_retail.ells == (1, 2, 3, 4, 5, 6)


class TestQuickPreset:
    def test_strictly_smaller_workloads(self):
        assert QUICK.fig3.n < PAPER.fig3.n
        assert QUICK.fig4a.m < PAPER.fig4a.m
        assert QUICK.fig4b.n < PAPER.fig4b.n
        assert QUICK.fig5_msnbc.n < PAPER.fig5_msnbc.n

    def test_same_shapes(self):
        """Quick presets change scale, never structure."""
        assert QUICK.fig5_msnbc.m == PAPER.fig5_msnbc.m  # 14 categories
        assert len(QUICK.fig4a.budget_distributions[0]) == 4


class TestConfigObjects:
    def test_frozen(self):
        config = Figure3Config()
        with pytest.raises(FrozenInstanceError):
            config.n = 5

    def test_replace_for_customization(self):
        config = replace(Figure4bConfig(), ell=7)
        assert config.ell == 7
        assert config.m == Figure4bConfig().m

    def test_defaults_sane(self):
        for config in (
            Figure3Config(),
            Figure4aConfig(),
            Figure4bConfig(),
            Figure5Config(),
        ):
            assert config.trials >= 1
            assert config.seed == 0
