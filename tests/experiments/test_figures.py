"""Shape tests for the figure-generation pipelines.

Each test runs a figure at a deliberately tiny scale and checks the
*qualitative* claims the paper draws from that figure — orderings,
trends, and empirical/theoretical agreement — rather than absolute
numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figure3, figure4a, figure4b, figure5
from repro.experiments.config import (
    Figure3Config,
    Figure4aConfig,
    Figure4bConfig,
    Figure5Config,
)
from repro.exceptions import ValidationError

# Tiny-but-meaningful workloads so the whole module runs in seconds.
FIG3 = Figure3Config(n=8000, m_power_law=40, m_uniform=80, epsilons=(1.0, 2.0), trials=3)
FIG4A = Figure4aConfig(
    n=6000, m=300, epsilons=(1.0, 2.0), trials=2,
    budget_distributions=((0.05, 0.05, 0.05, 0.85), (0.25, 0.25, 0.25, 0.25)),
)
FIG4B = Figure4bConfig(n=4000, m=300, ell=3, epsilons=(1.0, 3.0), trials=2, t_many=8)
FIG5 = Figure5Config(dataset="retail", n=4000, m=300, ells=(1, 3, 5), trials=2)


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3(FIG3, distribution="power-law")

    def test_structure(self, result):
        assert result["x"] == [1.0, 2.0]
        assert "RAPPOR empirical" in result["series"]
        assert len(result["series"]["OUE theoretical"]) == 2

    def test_empirical_close_to_theory(self, result):
        """Fig 3's headline: solid and dashed lines coincide."""
        for name in ("RAPPOR", "OUE", "IDUE-opt0"):
            empirical = np.array(result["series"][f"{name} empirical"])
            theoretical = np.array(result["series"][f"{name} theoretical"])
            assert np.allclose(empirical, theoretical, rtol=0.5)

    def test_idue_beats_baselines_theoretically(self, result):
        idue = np.array(result["series"]["IDUE-opt0 theoretical"])
        oue = np.array(result["series"]["OUE theoretical"])
        rappor = np.array(result["series"]["RAPPOR theoretical"])
        assert np.all(idue <= oue + 1e-9)
        assert np.all(oue <= rappor + 1e-9)

    def test_opt0_no_worse_than_reduced_models(self, result):
        opt0 = np.array(result["series"]["IDUE-opt0 theoretical"])
        # opt1/opt2 theory uses *actual* data, opt0 optimizes the worst
        # case, so allow small data-dependent crossover slack.
        for other in ("IDUE-opt1", "IDUE-opt2"):
            values = np.array(result["series"][f"{other} theoretical"])
            assert np.all(opt0 <= values * 1.30)

    def test_mse_decreases_with_epsilon(self, result):
        for name, values in result["series"].items():
            assert values[0] > values[-1], name

    def test_uniform_distribution_variant(self):
        result = figure3(FIG3, distribution="uniform")
        assert result["m"] == FIG3.m_uniform

    def test_unknown_distribution(self):
        with pytest.raises(ValidationError):
            figure3(FIG3, distribution="gaussian")


class TestFigure4a:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4a(FIG4A)

    def test_series_present(self, result):
        names = list(result["series"])
        assert "RAPPOR" in names and "OUE" in names
        assert sum(1 for n in names if n.startswith("IDUE")) == 2

    def test_skewed_distribution_beats_uniform_distribution(self, result):
        """The paper: IDUE's advantage grows with budget skew."""
        skewed = np.array(result["series"]["IDUE [5%, 5%, 5%, 85%]"])
        uniform = np.array(result["series"]["IDUE [25%, 25%, 25%, 25%]"])
        assert np.all(skewed <= uniform * 1.05)

    def test_idue_beats_oue(self, result):
        skewed = np.array(result["series"]["IDUE [5%, 5%, 5%, 85%]"])
        oue = np.array(result["series"]["OUE"])
        assert np.all(skewed <= oue * 1.05)


class TestFigure4b:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4b(FIG4B)

    def test_series_present(self, result):
        assert "RAPPOR-PS" in result["series"]
        assert "IDUE-PS (t=4)" in result["series"]
        assert "IDUE-PS (t=8)" in result["series"]

    def test_idue_ps_beats_baselines(self, result):
        idue = np.array(result["series"]["IDUE-PS (t=4)"])
        oue = np.array(result["series"]["OUE-PS"])
        rappor = np.array(result["series"]["RAPPOR-PS"])
        assert np.all(idue <= oue * 1.05)
        assert np.all(idue <= rappor * 1.05)

    def test_mse_decreases_with_epsilon(self, result):
        for values in result["series"].values():
            assert values[0] > values[-1]


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5(FIG5)

    def test_both_panels_present(self, result):
        assert set(result["series"]) == {"RAPPOR-PS", "OUE-PS", "IDUE-PS"}
        assert set(result["series_topk"]) == set(result["series"])
        assert len(result["top_items"]) == FIG5.top_k

    def test_idue_ps_no_worse_on_totals(self, result):
        idue = np.array(result["series"]["IDUE-PS"])
        oue = np.array(result["series"]["OUE-PS"])
        assert np.all(idue <= oue * 1.10)

    def test_msnbc_variant(self):
        config = Figure5Config(dataset="msnbc", n=4000, m=14, ells=(1, 3), trials=2)
        result = figure5(config)
        assert result["m"] == 14

    def test_unknown_dataset(self):
        with pytest.raises(ValidationError):
            figure5(Figure5Config(dataset="imdb"))
