"""Unit tests for the one-call mechanism comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import ItemsetDataset, paper_default_spec
from repro.exceptions import ValidationError
from repro.experiments import compare_itemset, compare_single_item


@pytest.fixture
def spec(rng):
    return paper_default_spec(2.0, m=30, rng=rng)


class TestCompareSingleItem:
    def test_rows_sorted_by_theory(self, spec, rng):
        truth = np.full(30, 100.0)
        result = compare_single_item(spec, truth, n=3000, trials=2, rng=rng)
        theories = [row[1] for row in result["rows"]]
        assert theories == sorted(theories)

    def test_idue_opt0_wins(self, spec, rng):
        truth = np.full(30, 100.0)
        result = compare_single_item(spec, truth, n=3000, trials=2, rng=rng)
        assert result["best"] == "idue-opt0"

    def test_mechanism_subset(self, spec, rng):
        truth = np.full(30, 100.0)
        result = compare_single_item(
            spec, truth, n=3000, mechanisms=("oue", "rappor"), trials=1, rng=rng
        )
        assert {row[0] for row in result["rows"]} == {"oue", "rappor"}

    def test_shape_validation(self, spec, rng):
        with pytest.raises(ValidationError):
            compare_single_item(spec, np.zeros(5), n=100, rng=rng)

    def test_text_rendering(self, spec, rng):
        truth = np.full(30, 100.0)
        result = compare_single_item(
            spec, truth, n=3000, mechanisms=("oue",), trials=1, rng=rng
        )
        assert "theoretical MSE" in result["text"]


class TestCompareItemset:
    @pytest.fixture
    def dataset(self, rng):
        sets = [
            rng.choice(30, size=int(rng.integers(1, 4)), replace=False).tolist()
            for _ in range(2000)
        ]
        return ItemsetDataset.from_sets(sets, m=30)

    def test_idue_ps_wins(self, spec, dataset, rng):
        result = compare_itemset(spec, dataset, ell=3, trials=2, rng=rng)
        assert result["best"].startswith("idue-ps")

    def test_domain_mismatch(self, spec, rng):
        other = ItemsetDataset.from_sets([[0]], m=7)
        with pytest.raises(ValidationError):
            compare_itemset(spec, other, ell=2, rng=rng)

    def test_all_registered_mechanisms_present(self, spec, dataset, rng):
        from repro.mechanisms.factory import ITEMSET_MECHANISMS

        result = compare_itemset(spec, dataset, ell=2, trials=1, rng=rng)
        assert {row[0] for row in result["rows"]} == set(ITEMSET_MECHANISMS)


class TestCLICompare:
    def test_cli_compare_single(self, capsys):
        from repro.cli import main

        assert main(["compare", "--n", "1500", "--m", "25"]) == 0
        out = capsys.readouterr().out
        assert "single-item comparison" in out
        assert "idue-opt0" in out

    def test_cli_compare_itemset(self, capsys):
        from repro.cli import main

        assert main(["compare", "--itemset", "--n", "800", "--m", "20", "--ell", "2"]) == 0
        out = capsys.readouterr().out
        assert "item-set comparison" in out
        assert "idue-ps-opt0" in out
