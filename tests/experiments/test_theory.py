"""Unit tests for the theory wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IDUEPS, OptimizedUnaryEncoding
from repro.datasets import ItemsetDataset
from repro.estimation import ue_total_mse
from repro.exceptions import ValidationError
from repro.experiments import (
    theoretical_total_mse_itemset,
    theoretical_total_mse_single,
)


class TestSingleItemTheory:
    def test_wraps_variance_module(self):
        mech = OptimizedUnaryEncoding(1.0, m=4)
        truth = np.array([10.0, 20.0, 30.0, 40.0])
        assert theoretical_total_mse_single(mech, truth, 100) == pytest.approx(
            ue_total_mse(100, mech.a, mech.b, truth)
        )

    def test_rejects_non_unary(self):
        with pytest.raises(ValidationError):
            theoretical_total_mse_single("mech", [1.0], 10)


class TestItemsetTheory:
    @pytest.fixture
    def setup(self, toy_spec, small_itemset_dataset):
        mech = IDUEPS.optimized(toy_spec, ell=3, model="opt1")
        return mech, small_itemset_dataset

    def test_total_is_sum_of_per_item(self, setup):
        mech, data = setup
        total = theoretical_total_mse_itemset(mech, data)
        parts = sum(
            theoretical_total_mse_itemset(mech, data, items=[i])
            for i in range(data.m)
        )
        assert total == pytest.approx(parts)

    def test_items_subset(self, setup):
        mech, data = setup
        partial = theoretical_total_mse_itemset(mech, data, items=[1, 2])
        assert 0 < partial < theoretical_total_mse_itemset(mech, data)

    def test_rejects_non_ps(self, small_itemset_dataset):
        mech = OptimizedUnaryEncoding(1.0, m=5)
        with pytest.raises(ValidationError):
            theoretical_total_mse_itemset(mech, small_itemset_dataset)

    def test_larger_ell_larger_variance_when_unbiased(self, toy_spec):
        """For sets with |x| <= 2, both ell=2 and ell=4 are unbiased but
        ell=4 inflates variance (the Fig 5 right-branch effect)."""
        sets = [[0], [1, 2], [3], [2, 4]] * 30
        data = ItemsetDataset.from_sets(sets, m=5)
        small = IDUEPS.optimized(toy_spec, 2, model="opt1")
        large = IDUEPS.optimized(toy_spec, 4, model="opt1")
        assert theoretical_total_mse_itemset(
            small, data
        ) < theoretical_total_mse_itemset(large, data)
