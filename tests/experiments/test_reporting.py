"""Unit tests for text reporting."""

from __future__ import annotations

from repro.experiments import format_series, format_table
from repro.experiments.reporting import format_float


class TestFormatFloat:
    def test_general_format(self):
        assert format_float(3.14159, precision=3) == "3.14"

    def test_none_is_dash(self):
        assert format_float(None) == "-"

    def test_string_passthrough(self):
        assert format_float("8.1 .. 8.4") == "8.1 .. 8.4"

    def test_large_numbers_compact(self):
        assert format_float(1.23e10) == "1.23e+10"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bbbb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("name")
        # All lines equal width or shorter (ljust padding).
        assert lines[1].startswith("----")

    def test_column_width_grows_with_content(self):
        text = format_table(["x"], [["longvalue"]])
        header = text.splitlines()[0]
        assert len(header) >= len("longvalue")


class TestFormatSeries:
    def test_series_as_columns(self):
        text = format_series(
            "eps", [1.0, 2.0], {"A": [10.0, 5.0], "B": [20.0, 8.0]}
        )
        lines = text.splitlines()
        assert "eps" in lines[0] and "A" in lines[0] and "B" in lines[0]
        assert "10" in lines[2]

    def test_title_prefixed(self):
        text = format_series("x", [1], {"s": [2]}, title="My Figure")
        assert text.startswith("My Figure\n")
