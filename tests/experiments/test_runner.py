"""Unit tests for the trial runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IDUEPS, OptimizedUnaryEncoding
from repro.datasets import ItemsetDataset
from repro.exceptions import ValidationError
from repro.experiments import (
    empirical_total_mse_itemset,
    empirical_total_mse_single,
    run_itemset_trial,
    run_single_item_trial,
    theoretical_total_mse_itemset,
    theoretical_total_mse_single,
)


class TestSingleItemRunner:
    def test_trial_returns_estimates(self, rng):
        mech = OptimizedUnaryEncoding(1.0, m=4)
        truth = np.array([100, 200, 300, 400])
        estimates = run_single_item_trial(mech, truth, n=1000, rng=rng)
        assert estimates.shape == (4,)

    def test_empirical_mse_close_to_theory(self, rng):
        mech = OptimizedUnaryEncoding(1.5, m=5)
        truth = np.array([500, 400, 300, 200, 100])
        n = 1500
        empirical = empirical_total_mse_single(
            mech, truth, n, trials=150, rng=rng
        )
        theory = theoretical_total_mse_single(mech, truth, n)
        assert empirical == pytest.approx(theory, rel=0.25)

    def test_items_subset(self, rng):
        mech = OptimizedUnaryEncoding(1.0, m=4)
        truth = np.array([10, 20, 30, 40])
        value = empirical_total_mse_single(
            mech, truth, n=100, trials=3, rng=rng, items=[0, 1]
        )
        assert value >= 0.0

    def test_trials_validated(self, rng):
        mech = OptimizedUnaryEncoding(1.0, m=2)
        with pytest.raises(ValidationError):
            empirical_total_mse_single(mech, [50, 50], 100, trials=0, rng=rng)


class TestItemsetRunner:
    @pytest.fixture
    def mechanism(self, toy_spec):
        return IDUEPS.optimized(toy_spec, ell=3, model="opt1")

    def test_trial_returns_real_domain_estimates(
        self, mechanism, small_itemset_dataset, rng
    ):
        estimates = run_itemset_trial(mechanism, small_itemset_dataset, rng)
        assert estimates.shape == (small_itemset_dataset.m,)

    def test_empirical_mse_close_to_theory(self, toy_spec, rng):
        sets = [[0, 1], [2], [1, 3], [0, 4], [3, 4]] * 80
        data = ItemsetDataset.from_sets(sets, m=5)
        mech = IDUEPS.optimized(toy_spec, ell=2, model="opt2")
        empirical = empirical_total_mse_itemset(mech, data, trials=200, rng=rng)
        theory = theoretical_total_mse_itemset(mech, data)
        assert empirical == pytest.approx(theory, rel=0.25)

    def test_theory_items_subset(self, toy_spec, small_itemset_dataset):
        mech = IDUEPS.optimized(toy_spec, ell=3, model="opt1")
        total = theoretical_total_mse_itemset(mech, small_itemset_dataset)
        partial = theoretical_total_mse_itemset(
            mech, small_itemset_dataset, items=[0, 1]
        )
        assert 0 < partial < total

    def test_dataset_type_check(self, mechanism, rng):
        with pytest.raises(ValidationError):
            empirical_total_mse_itemset(mechanism, [[0, 1]], trials=1, rng=rng)
