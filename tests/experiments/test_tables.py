"""Tests reproducing Tables I and II against the paper's printed numbers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import table1_leakage_bounds, table2_toy_example


class TestTable1:
    def test_rows_present(self):
        result = table1_leakage_bounds()
        notions = [row[0] for row in result["rows"]]
        assert notions[:3] == ["LDP", "PLDP", "Geo-Ind"]
        assert notions.count("MinID-LDP") == 2  # one row per distinct budget

    def test_ldp_bounds_at_min_budget(self):
        result = table1_leakage_bounds()
        ldp_row = result["rows"][0]
        assert ldp_row[2] == pytest.approx(0.25)  # e^{-ln 4}
        assert ldp_row[3] == pytest.approx(4.0)

    def test_minid_bound_is_input_discriminative(self):
        result = table1_leakage_bounds()
        minid_rows = [row for row in result["rows"] if row[0] == "MinID-LDP"]
        uppers = sorted(row[3] for row in minid_rows)
        assert uppers[0] == pytest.approx(4.0)  # sensitive input
        assert uppers[1] == pytest.approx(6.0)  # e^{ln 6} < 2 min{E} cap

    def test_text_rendering(self):
        result = table1_leakage_bounds()
        assert "MinID-LDP" in result["text"]


class TestTable2:
    def test_rappor_row_matches_paper(self):
        """Paper: flip prob 0.33 everywhere, Var = 2n, total 10n."""
        result = table2_toy_example()
        rappor = result["results"]["RAPPOR"]
        assert rappor["a"][0] == pytest.approx(2 / 3, abs=1e-9)
        assert rappor["noise_coefficients"][0] == pytest.approx(2.0)
        assert rappor["total_range"][1] == pytest.approx(10.0)

    def test_oue_row_matches_paper(self):
        """Paper: p=0.5, q=0.2, Var = 1.78n + c_i, total 9.9n."""
        result = table2_toy_example()
        oue = result["results"]["OUE"]
        assert oue["a"][0] == pytest.approx(0.5)
        assert oue["b"][0] == pytest.approx(0.2)
        assert oue["noise_coefficients"][0] == pytest.approx(16 / 9)
        assert oue["total_range"][1] == pytest.approx(9.889, abs=1e-3)

    def test_idue_beats_both_baselines(self):
        """The paper's headline: IDUE's worst case < OUE < RAPPOR."""
        result = table2_toy_example()
        idue_high = result["results"]["IDUE"]["total_range"][1]
        oue_high = result["results"]["OUE"]["total_range"][1]
        rappor_high = result["results"]["RAPPOR"]["total_range"][1]
        assert idue_high < oue_high < rappor_high

    def test_idue_range_close_to_paper(self):
        """Paper reports 8.68n-8.86n; our optimizer must land at or below
        that range (it finds a slightly better feasible point)."""
        result = table2_toy_example()
        low, high = result["results"]["IDUE"]["total_range"]
        assert high <= 8.87
        assert low >= 7.5  # sanity floor: can't beat the bound by miles

    def test_idue_flips_differ_by_level(self):
        """Input-discrimination: the sensitive bit flips more."""
        result = table2_toy_example()
        idue = result["results"]["IDUE"]
        flip1_sensitive = 1.0 - idue["a"][0]
        flip1_benign = 1.0 - idue["a"][1]
        assert flip1_sensitive > flip1_benign

    def test_table_text_has_all_mechanisms(self):
        text = table2_toy_example()["text"]
        for name in ("RAPPOR", "OUE", "IDUE"):
            assert name in text

    @pytest.mark.parametrize("model", ["opt1", "opt2"])
    def test_other_models_also_beat_oue_or_match(self, model):
        result = table2_toy_example(model=model)
        idue_high = result["results"]["IDUE"]["total_range"][1]
        assert idue_high <= 9.889 + 1e-6
