"""Unit tests for CSV export of experiment results."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.experiments.export import read_series_csv, write_series_csv


@pytest.fixture
def figure_result():
    return {
        "x_label": "epsilon",
        "x": [1.0, 2.0, 3.0],
        "series": {"RAPPOR": [10.0, 5.0, 2.0], "IDUE": [6.0, 3.0, 1.0]},
    }


class TestWriteRead:
    def test_roundtrip(self, figure_result, tmp_path):
        path = str(tmp_path / "fig.csv")
        write_series_csv(figure_result, path)
        restored = read_series_csv(path)
        assert restored["x_label"] == "epsilon"
        assert restored["x"] == figure_result["x"]
        assert restored["series"] == figure_result["series"]

    def test_topk_panel_roundtrip(self, figure_result, tmp_path):
        figure_result["series_topk"] = {"IDUE": [1.0, 0.5, 0.2]}
        path = str(tmp_path / "fig5.csv")
        write_series_csv(figure_result, path)
        restored = read_series_csv(path)
        assert restored["series_topk"] == {"IDUE": [1.0, 0.5, 0.2]}
        assert "topk:IDUE" not in restored["series"]

    def test_creates_parent_directories(self, figure_result, tmp_path):
        path = str(tmp_path / "a" / "b" / "fig.csv")
        write_series_csv(figure_result, path)
        assert read_series_csv(path)["x"] == figure_result["x"]

    def test_header_content(self, figure_result, tmp_path):
        path = str(tmp_path / "fig.csv")
        write_series_csv(figure_result, path)
        header = open(path).readline().strip().split(",")
        assert header[0] == "epsilon"
        assert set(header[1:]) == {"RAPPOR", "IDUE"}


class TestValidation:
    def test_ragged_series_rejected(self, figure_result, tmp_path):
        figure_result["series"]["BAD"] = [1.0]
        with pytest.raises(ValidationError, match="values for"):
            write_series_csv(figure_result, str(tmp_path / "x.csv"))

    def test_non_result_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            write_series_csv({"nope": 1}, str(tmp_path / "x.csv"))

    def test_read_missing_file(self):
        with pytest.raises(ValidationError, match="not found"):
            read_series_csv("/nonexistent.csv")

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValidationError, match="empty"):
            read_series_csv(str(path))

    def test_read_no_series_columns(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("x\n1\n")
        with pytest.raises(ValidationError, match="no series"):
            read_series_csv(str(path))

    def test_read_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("x,a\n1,2\n3\n")
        with pytest.raises(ValidationError, match="ragged"):
            read_series_csv(str(path))

    def test_real_figure_roundtrips(self, tmp_path):
        """End-to-end: an actual figure3 result exports and re-imports."""
        from repro.experiments import figure3
        from repro.experiments.config import Figure3Config

        result = figure3(
            Figure3Config(n=2000, m_power_law=20, epsilons=(1.0,), trials=1)
        )
        path = str(tmp_path / "fig3.csv")
        write_series_csv(result, path)
        restored = read_series_csv(path)
        for name, values in result["series"].items():
            assert restored["series"][name] == pytest.approx(values)
