"""The paper's Table II scenario: a 5-category medical survey.

A health organization surveys n users about {HIV, flu, headache,
stomach-ache, toothache}.  HIV is far more sensitive, so it gets budget
ln 4 while the others get ln 6.  The example reproduces Table II's
comparison — RAPPOR and OUE must run at the minimum budget ln 4 for
*every* category, while IDUE discriminates — and then runs an actual
survey simulation to show the utility gap is real, not just worst-case
algebra.

Run:  python examples/medical_survey.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BudgetSpec,
    FrequencyEstimator,
    IDLDP,
    IDUE,
    MIN,
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
)
from repro.audit import audit_unary_pairwise
from repro.estimation import ue_total_mse

CATEGORIES = ["HIV", "flu", "headache", "stomach-ache", "toothache"]

spec = BudgetSpec([np.log(4.0)] + [np.log(6.0)] * 4)
n = 100_000
rng = np.random.default_rng(7)

# Ground truth: HIV is rare, flu and headache dominate.
probabilities = np.array([0.01, 0.40, 0.35, 0.14, 0.10])
true_items = rng.choice(5, size=n, p=probabilities)
truth = np.bincount(true_items, minlength=5)

mechanisms = {
    "RAPPOR (LDP @ ln4)": SymmetricUnaryEncoding(spec.min_epsilon, 5),
    "OUE (LDP @ ln4)": OptimizedUnaryEncoding(spec.min_epsilon, 5),
    "IDUE (MinID-LDP)": IDUE.optimized(spec, model="opt0"),
}

print("Table II reproduction — flip probabilities and theoretical MSE\n")
header = f"{'mechanism':<20} {'flip1 HIV':>10} {'flip1 flu':>10} {'flip0 HIV':>10} {'flip0 flu':>10} {'theory MSE':>12}"
print(header)
print("-" * len(header))
for name, mech in mechanisms.items():
    theory = ue_total_mse(n, mech.a, mech.b, truth)
    print(
        f"{name:<20} {1 - mech.a[0]:>10.3f} {1 - mech.a[1]:>10.3f} "
        f"{mech.b[0]:>10.3f} {mech.b[1]:>10.3f} {theory:>12.3g}"
    )

print("\nPrivacy audit (every pair of diseases, worst-case output ratio):")
notion = IDLDP(spec, MIN)
for name, mech in mechanisms.items():
    report = audit_unary_pairwise(mech, notion)
    print(
        f"  {name:<20} passed={report.passed}  worst ratio "
        f"{report.worst_ratio:.3f} vs bound {report.worst_bound:.3f}"
    )

print("\nSimulated survey (single collection round):")
for name, mech in mechanisms.items():
    reports = mech.perturb_many(true_items, rng)
    estimates = FrequencyEstimator.for_mechanism(mech, n).estimate(
        reports.sum(axis=0)
    )
    mse = float(np.sum((estimates - truth) ** 2))
    hiv_err = estimates[0] - truth[0]
    print(f"  {name:<20} total SE {mse:>12.3g}   HIV error {hiv_err:>+8.1f}")

print(
    "\nNote how IDUE spends *more* noise on the HIV bit (it flips more)"
    "\nyet achieves lower total error, because the four benign categories"
    "\nare released at their own, weaker privacy requirement."
)
