"""Heavy-hitter identification with the two-phase protocol.

The paper's future-work task (Section VIII): find the k most frequent
items under MinID-LDP.  This example plants 4 heavy hitters in a
click-stream-like workload, runs the identify-then-refine protocol
(users split across phases, so nobody's budget is divided), and compares
against the ground truth.

Run:  python examples/heavy_hitters.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import ItemsetDataset, paper_default_spec
from repro.extensions import TwoPhaseHeavyHitter

rng = np.random.default_rng(42)

M, N, K = 200, 40_000, 4
HITTERS = [3, 17, 42, 99]

# Build a workload where the planted items appear in most sets.
sets = []
for _ in range(N):
    popular = [h for h in HITTERS if rng.random() < 0.7]
    tail = rng.choice(np.arange(M), size=2, replace=False).tolist()
    sets.append(list(dict.fromkeys(popular + tail)))
data = ItemsetDataset.from_sets(sets, m=M)
truth = data.true_counts()

spec = paper_default_spec(2.0, M, rng=rng)
protocol = TwoPhaseHeavyHitter(spec, ell=3, k=K, candidate_factor=3)
print(f"protocol: {protocol}")

result = protocol.run(data, rng)

print(f"\nplanted hitters:    {sorted(HITTERS)}")
print(f"identified top-{K}:   {sorted(result.top_items.tolist())}")
print(f"phase-1 candidates: {sorted(result.candidates.tolist())}")

print(f"\n{'item':>5} {'true count':>11} {'phase-2 estimate':>17}")
for item in result.top_items:
    print(f"{item:>5} {truth[item]:>11} {result.estimates[int(item)]:>17.0f}")

hit_rate = len(set(result.top_items.tolist()) & set(HITTERS)) / K
print(f"\nprecision@{K}: {hit_rate:.0%}")
print(
    "\nUsers are split across phases instead of splitting each user's"
    "\nbudget, so every report carries the full E-MinID-LDP guarantee."
)
