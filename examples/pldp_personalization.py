"""Combining ID-LDP with personalized privacy preferences (PLDP).

Section IV-A notes that ID-LDP composes naturally with PLDP: the service
provider fixes *which inputs* are sensitive (the level structure), and
each user additionally picks *how much* privacy she wants overall (a
personal scale factor).  Here three user cohorts — cautious (0.5x),
default (1x) and relaxed (2x) — share one survey, each cohort running
the IDUE mechanism optimized for its scaled budgets, and the server
combines the cohort estimates.

Run:  python examples/pldp_personalization.py
"""

from __future__ import annotations

import numpy as np

from repro import BudgetSpec, IDLDP, MIN
from repro.audit import audit_unary_pairwise
from repro.extensions import PLDPCollector

rng = np.random.default_rng(21)

# Shared level structure: item 0 sensitive, the rest mild.
base_spec = BudgetSpec([0.8, 2.5, 2.5, 2.5, 2.5, 2.5])
collector = PLDPCollector(base_spec, thetas=[0.5, 1.0, 2.0], model="opt0")

print("per-cohort mechanisms (same level structure, personal strength):")
for theta in collector.thetas:
    group = collector.groups[theta]
    audit = audit_unary_pairwise(group.mechanism, IDLDP(group.spec, MIN))
    print(
        f"  theta={theta:<4}  a={np.round(group.mechanism.level_a, 3).tolist()}"
        f"  b={np.round(group.mechanism.level_b, 3).tolist()}"
        f"  audit passed={audit.passed}"
    )

# One shared population distribution; cohort membership is independent.
n = 60_000
probabilities = np.array([0.05, 0.30, 0.25, 0.20, 0.12, 0.08])
items = rng.choice(6, size=n, p=probabilities)
thetas = rng.choice([0.5, 1.0, 2.0], size=n, p=[0.25, 0.5, 0.25])
sizes = {t: int(np.sum(thetas == t)) for t in collector.thetas}
truth = np.bincount(items, minlength=6)

counts = collector.simulate_collection(items, thetas, rng)

population = collector.estimate(counts, sizes)
distribution = collector.estimate_distribution(counts, sizes)

print(f"\n{'item':>4} {'true':>8} {'pop. estimate':>14} {'dist. estimate':>15} {'true freq':>10}")
for item in range(6):
    print(
        f"{item:>4} {truth[item]:>8} {population[item]:>14.0f} "
        f"{distribution[item]:>15.4f} {probabilities[item]:>10.4f}"
    )

print(
    "\nThe cautious cohort contributes with lower weight in the shared-"
    "\ndistribution estimate (its reports are noisier), yet every cohort"
    "\nreceives exactly the protection it asked for: theta_u * E."
)
