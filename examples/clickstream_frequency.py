"""Kosarak-style click-stream frequency estimation (Fig 4a scenario).

A news portal wants page-visit frequencies.  A few pages are sensitive
(health, finance), most are not, and the portal expresses this as a
4-level budget assignment.  The example sweeps the budget *distribution*
to show the paper's Fig 4(a) effect: the more items sit at relaxed
levels, the bigger IDUE's advantage over the uniform-budget baselines.

Run:  python examples/clickstream_frequency.py
"""

from __future__ import annotations

import numpy as np

from repro import IDUE, OptimizedUnaryEncoding, SymmetricUnaryEncoding
from repro.datasets import assign_budgets, kosarak_like, true_counts_from_items
from repro.estimation import ue_total_mse

rng = np.random.default_rng(3)

# Click-stream surrogate; single-item view = first page per user.
data = kosarak_like(n=50_000, m=3_000, rng=rng)
items = data.first_items()
truth = true_counts_from_items(items, data.m)
n = items.size
print(f"users: {n}, pages: {data.m}")

epsilon = 1.5
multipliers = np.array([1.0, 1.2, 2.0, 4.0])
distributions = {
    "{5%, 5%, 5%, 85%}": (0.05, 0.05, 0.05, 0.85),
    "{10%, 10%, 10%, 70%}": (0.10, 0.10, 0.10, 0.70),
    "{25%, 25%, 25%, 25%}": (0.25, 0.25, 0.25, 0.25),
}

rappor = SymmetricUnaryEncoding(epsilon, data.m)
oue = OptimizedUnaryEncoding(epsilon, data.m)
rappor_mse = ue_total_mse(n, rappor.a, rappor.b, truth) / n
oue_mse = ue_total_mse(n, oue.a, oue.b, truth) / n
print(f"\nbaselines at eps = min{{E}} = {epsilon}:")
print(f"  RAPPOR  MSE/n = {rappor_mse:.1f}")
print(f"  OUE     MSE/n = {oue_mse:.1f}")

print("\nIDUE under different budget distributions (theory, MSE/n):")
for label, proportions in distributions.items():
    spec = assign_budgets(data.m, epsilon * multipliers, proportions, rng=1)
    mech = IDUE.optimized(spec, model="opt0")
    mse = ue_total_mse(n, mech.a, mech.b, truth) / n
    gain = oue_mse / mse
    print(f"  {label:<22} MSE/n = {mse:>8.1f}   ({gain:.2f}x better than OUE)")

print(
    "\nThe skew is the story: when 85% of pages only need eps' = 4 eps,"
    "\ndiscriminating inputs nearly halves the error; with a uniform"
    "\nbudget mix the advantage shrinks toward the OUE baseline."
)
