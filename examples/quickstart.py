"""Quickstart: input-discriminative frequency estimation in ~40 lines.

Scenario: collect which of 6 categories each user belongs to, where
category 0 is highly sensitive (budget 0.8) and the rest are mild
(budget 3.0).  Compare the calibrated estimates against the truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BudgetSpec, FrequencyEstimator, IDUE

rng = np.random.default_rng(0)

# 1. Declare the per-item privacy budgets (item 0 is the sensitive one).
spec = BudgetSpec([0.8, 3.0, 3.0, 3.0, 3.0, 3.0])
print(f"budget spec: {spec}")

# 2. Solve for the optimal IDUE perturbation probabilities (opt0 model).
mechanism = IDUE.optimized(spec, model="opt0")
print(f"mechanism:   {mechanism}")
print(f"optimizer:   {mechanism.optimization.summary()}")

# 3. Each user perturbs locally; the server only ever sees the reports.
n = 50_000
true_items = rng.choice(6, size=n, p=[0.05, 0.30, 0.25, 0.20, 0.15, 0.05])
reports = mechanism.perturb_many(true_items, rng)  # n x m bit matrix

# 4. Server side: aggregate bit counts and calibrate (Theorem 3).
counts = reports.sum(axis=0)
estimator = FrequencyEstimator.for_mechanism(mechanism, n)
estimates = estimator.estimate(counts)

truth = np.bincount(true_items, minlength=6)
print(f"\n{'item':>4} {'epsilon':>8} {'true':>8} {'estimate':>10} {'error':>8}")
for item in range(6):
    print(
        f"{item:>4} {spec.epsilon_of(item):>8.2f} {truth[item]:>8d} "
        f"{estimates[item]:>10.1f} {estimates[item] - truth[item]:>+8.1f}"
    )

total_mse = float(np.sum((estimates - truth) ** 2))
print(f"\ntotal squared error: {total_mse:.0f}  (n = {n})")
