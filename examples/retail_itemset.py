"""Item-set collection with IDUE-PS on a Retail-style market-basket load.

Each user holds a *basket* of items (any subset of the catalogue).  The
Padding-and-Sampling protocol fixes the basket length at ell, samples
one element, and the IDUE perturbation releases an (m + ell)-bit report.
The example shows:

* building an IDUE-PS mechanism from a 4-level budget assignment,
* the Eq. (17) combined budget of a few example baskets,
* frequency estimation and top-5 heavy hitters versus the truth,
* the comparison against the OUE-PS baseline at min{E}.

Run:  python examples/retail_itemset.py
"""

from __future__ import annotations

import numpy as np

from repro import FrequencyEstimator, IDUEPS
from repro.datasets import paper_default_spec, retail_like
from repro.estimation import top_k_metrics
from repro.simulation import simulate_itemset_counts

rng = np.random.default_rng(11)

# A scaled-down Retail surrogate: 20k baskets over 1500 items.
data = retail_like(n=20_000, m=1_500, rng=rng)
print(f"dataset: {data}")

epsilon, ell = 2.0, 4
spec = paper_default_spec(epsilon, data.m, rng=rng)
print(f"budgets: {spec}")

idue_ps = IDUEPS.optimized(spec, ell=ell, model="opt0")
oue_ps = IDUEPS.oue_ps(spec.min_epsilon, data.m, ell)

# Eq. (17): combined privacy budget of concrete baskets.
print("\nEq. 17 combined budgets of example baskets:")
for basket in (data.user_items(0), data.user_items(1), data.user_items(2)):
    budget = idue_ps.itemset_budget(basket)
    members = ", ".join(f"{spec.epsilon_of(int(i)):.2f}" for i in basket[:5])
    print(
        f"  |x|={basket.size:>2}  member budgets [{members}"
        + ("..." if basket.size > 5 else "")
        + f"]  ->  eps_x = {budget:.3f}"
    )

truth = data.true_counts()
print(f"\n{'mechanism':<10} {'total SE':>14} {'top-5 precision':>16} {'top-5 NCR':>10}")
for name, mech in (("IDUE-PS", idue_ps), ("OUE-PS", oue_ps)):
    counts = simulate_itemset_counts(mech, data, rng)
    estimates = FrequencyEstimator.for_mechanism(mech, data.n).estimate(counts)
    se = float(np.sum((estimates - truth) ** 2))
    metrics = top_k_metrics(estimates, truth, k=5)
    print(
        f"{name:<10} {se:>14.4g} {metrics['precision']:>16.2f} "
        f"{metrics['ncr']:>10.2f}"
    )

print(
    "\nIDUE-PS reuses the *single-item* optimization (2t variables), so the"
    "\nexponential item-set domain costs nothing extra at setup time."
)
