"""Choosing the Padding-and-Sampling length ell from data.

Fig 5 shows the padding length driving a bias/variance trade-off and the
paper leaves "how to determine a good ell" open.  Because this library
has the *exact* PS error decomposition (variance + truncation bias^2),
the choice is a 1-D search over candidates — done here on a public
calibration sample, then validated on a fresh private population.

Run:  python examples/padding_length_selection.py
"""

from __future__ import annotations

import numpy as np

from repro import IDUEPS
from repro.datasets import paper_default_spec, retail_like
from repro.estimation import select_padding_length
from repro.experiments import empirical_total_mse_itemset

rng = np.random.default_rng(8)

M, EPSILON = 800, 2.0
spec = paper_default_spec(EPSILON, M, rng=rng)

# A *public* calibration sample (different seed = different users), and
# the private population we will actually collect from.
public = retail_like(n=5_000, m=M, rng=1)
private = retail_like(n=20_000, m=M, rng=2)

choice = select_padding_length(
    public, spec, candidates=range(1, 9), model="opt0", target_n=private.n
)
print("predicted total MSE by padding length (public sample, rescaled to n=20k):")
for ell, predicted in sorted(choice.curve.items()):
    marker = "  <-- selected" if ell == choice.ell else ""
    print(f"  ell={ell}:  {predicted:.4g}{marker}")

print("\nmeasured total MSE on the private population:")
for ell in sorted(choice.curve):
    mech = IDUEPS.optimized(spec, ell, model="opt0")
    measured = empirical_total_mse_itemset(mech, private, trials=3, rng=rng)
    marker = "  <-- selected" if ell == choice.ell else ""
    print(f"  ell={ell}:  {measured:.4g}{marker}")

print(
    "\nThe ranking predicted from the public sample carries over to the"
    "\nprivate population because only the set-size profile and the item"
    "\npopularity shape enter the error decomposition.  Note target_n:"
    "\nvariance grows like n but squared truncation bias grows like n^2,"
    "\nso the optimum shifts upward for larger populations."
)
