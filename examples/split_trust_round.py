"""Split-trust collection: no single party ever sees a raw report.

One blinded collector plus two share keepers, all in-process.  Each
producer popcounts its packed report chunks, blinds the counts mod
2^64 against per-keeper secrets, and ships each party only its own
stream.  The collector's disk holds uniform noise; each keeper holds
pseudorandom words; the plain tally exists only after the final
combine — and is bit-identical to an unblinded run over the same
reports.

Run:  python examples/split_trust_round.py
"""

from __future__ import annotations

import asyncio
import tempfile

import numpy as np

from repro.pipeline import CollectionService, CountAccumulator
from repro.pipeline.collect import wire
from repro.pipeline.service import combine_accumulators, send_split_trust

M = 64  # report width in bits
COLLECTOR_KEY = "collector-registry-secret"
KEEPER_KEYS = {  # each keeper has its OWN producer-key registry
    "keeper-north": "north-registry-secret",
    "keeper-south": "south-registry-secret",
}
PRODUCERS = 5
CHUNKS, ROWS = 3, 40


def producer_chunks(index: int) -> list[np.ndarray]:
    rng = np.random.default_rng(1000 + index)
    return [
        np.packbits((rng.random((ROWS, M)) < 0.5).astype(np.uint8), axis=1)
        for _ in range(CHUNKS)
    ]


async def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        # 1. Three parties: a blinded collector and two share keepers.
        collector = CollectionService(
            M, key=COLLECTOR_KEY, store_root=f"{root}/collector", mode="blinded"
        )
        collector_address = await collector.serve()
        keepers, addresses = {}, {}
        for keeper_id, key in KEEPER_KEYS.items():
            keeper = CollectionService(
                M,
                key=key,
                store_root=f"{root}/{keeper_id}",
                mode="keeper",
                keeper_id=keeper_id,
            )
            keepers[keeper_id] = keeper
            addresses[keeper_id] = await keeper.serve()
        print(f"parties:   1 blinded collector + {len(keepers)} share keepers")

        # 2. Every producer blinds and ships; the direct tally is our
        #    reference for the exactness claim.
        reference = CountAccumulator(M)
        for index in range(PRODUCERS):
            chunks = producer_chunks(index)
            for chunk in chunks:
                reference.add_packed_reports(chunk)
            await send_split_trust(
                collector_address,
                addresses,
                chunks,
                collector_key=COLLECTOR_KEY,
                keeper_keys=KEEPER_KEYS,
                producer_id=f"edge-{index}",
                m=M,
            )
        print(f"shipped:   {PRODUCERS} producers x {CHUNKS} chunks x {ROWS} rows")

        # 3. Blind resend from one producer: every party's idempotency
        #    ledger eats it as duplicates (blinding is transcript-stable).
        resend = await send_split_trust(
            collector_address,
            addresses,
            producer_chunks(0),
            collector_key=COLLECTOR_KEY,
            keeper_keys=KEEPER_KEYS,
            producer_id="edge-0",
            m=M,
        )
        statuses = [ack.status for ack in resend["collector"]] + [
            ack.status
            for acks in resend["keepers"].values()
            for ack in acks
        ]
        assert set(statuses) == {wire.ACK_DUPLICATE}
        print(f"resend:    {len(statuses)} records, all ACK_DUPLICATE")

        # 4. What would a compromised collector see?  Uniform words.
        words = collector.accumulator.words()
        top_bytes = words.view(np.uint8).reshape(-1, 8)[:, 7]
        print(
            f"collector: {words.size} blinded words, "
            f"{np.count_nonzero(top_bytes)}/{top_bytes.size} with a "
            "nonzero top byte (true counts would have none)"
        )
        assert not np.array_equal(
            words.astype(np.int64), reference.counts()
        )

        # 5. The only place the plain tally ever exists: the combine.
        combined = combine_accumulators(
            collector.accumulator,
            [keeper.accumulator for keeper in keepers.values()],
        )
        assert combined.digest() == reference.digest()
        print(
            f"combined:  n={combined.n}, digest matches the direct "
            f"unblinded tally: {combined.digest() == reference.digest()}"
        )

        await collector.close()
        for keeper in keepers.values():
            await keeper.close()


if __name__ == "__main__":
    asyncio.run(main())
