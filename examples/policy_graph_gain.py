"""Incomplete policy graphs: the Section IV-C "additional gain".

MinID-LDP on a complete graph can relax LDP by at most a factor 2 in
budget (Lemma 1) because every input must stay indistinguishable from
the most sensitive one, and indistinguishability is transitive.  If the
application only needs *some* pairs protected — here, "nothing may be
confused with the sensitive level, but benign levels need not hide from
each other" (a star policy) — the optimizer can push benign parameters
much further.

The example quantifies that gain and uses the transitive-budget tool to
show what protection the dropped pairs still inherit through the graph.

Run:  python examples/policy_graph_gain.py
"""

from __future__ import annotations

import numpy as np

from repro import BudgetSpec, IDUE, MIN, PolicyGraph
from repro.estimation import ue_total_mse
from repro.optim import solve

# Three levels with *close* budgets: one sensitive, two mildly relaxed
# ones of 30 items each.  Close budgets matter — that is when the
# benign-vs-benign constraint min(eps_1, eps_2) actually binds; with a
# much smaller eps_0 the sensitive-level constraints dominate everything
# and dropping the benign pair changes nothing.
spec = BudgetSpec.from_level_sizes([1.0, 1.2, 1.4], [3, 30, 30])
print(f"spec: {spec}\n")

complete = PolicyGraph.complete(spec.t)
star = PolicyGraph.star(spec.t, center=0)

for label, policy in (("complete graph", complete), ("star policy", star)):
    result = solve(spec, model="opt0", policy=policy)
    print(f"{label:<16} worst-case objective = {result.objective:.2f}")
    print(f"{'':<16} a = {np.round(result.a, 4).tolist()}")
    print(f"{'':<16} b = {np.round(result.b, 4).tolist()}\n")

# What do the dropped pairs still get, transitively?
eps = spec.level_epsilons
implied = star.transitive_pair_budget(1, 2, eps, MIN)
print(
    f"levels 1 and 2 carry no direct constraint under the star policy,\n"
    f"but the path 1 - 0 - 2 still bounds their distinguishability at\n"
    f"min({eps[1]}, {eps[0]}) + min({eps[0]}, {eps[2]}) = {implied} — the Lemma 1\n"
    f"transitive cap 2 min{{E}} = {2 * eps[0]} — while the *direct* bound\n"
    f"min({eps[1]}, {eps[2]}) = {min(eps[1], eps[2])} no longer has to hold."
)

# Utility comparison on a concrete workload.
rng = np.random.default_rng(5)
n = 40_000
truth = rng.multinomial(n, np.full(spec.m, 1 / spec.m))
for label, policy in (("complete graph", complete), ("star policy", star)):
    mech = IDUE.optimized(spec, model="opt0", policy=policy)
    mse = ue_total_mse(n, mech.a, mech.b, truth)
    print(f"\n{label:<16} theoretical total MSE = {mse:.3g}")
