"""Benchmark / regeneration of Figure 3 (synthetic single-item data).

Paper reference: Fig 3, Section VII-A.  Two panels — Power-law
(n = 100k, m = 100) and Uniform (n = 100k, m = 1000) — comparing
empirical (solid) and theoretical (dashed) MSE/n for RAPPOR, OUE and the
three IDUE optimization models, eps in [1, 3], default 4-level budgets
{eps, 1.2eps, 2eps, 4eps} at {5, 5, 5, 85}%.

Scale note: the benchmark uses a reduced n (20k) for wall-clock sanity;
MSE/n is scale-free in n for fixed frequencies, so the curves match the
paper's shape (range ~25-400 for power-law at n = 100k).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure3, format_series
from repro.experiments.config import Figure3Config

CONFIG = Figure3Config(n=20_000, m_power_law=100, m_uniform=500, trials=3, seed=0)


def _check_shapes(result):
    series = result["series"]
    for name in ("RAPPOR", "OUE", "IDUE-opt0", "IDUE-opt1", "IDUE-opt2"):
        empirical = np.array(series[f"{name} empirical"])
        theoretical = np.array(series[f"{name} theoretical"])
        # Fig 3's headline: empirical tracks theory.
        assert np.allclose(empirical, theoretical, rtol=0.6), name
        # MSE decreases with budget.
        assert theoretical[0] > theoretical[-1], name
    # Ordering: IDUE-opt0 <= OUE <= RAPPOR at every eps (theory).
    idue = np.array(series["IDUE-opt0 theoretical"])
    oue = np.array(series["OUE theoretical"])
    rappor = np.array(series["RAPPOR theoretical"])
    assert np.all(idue <= oue * 1.01)
    assert np.all(oue <= rappor * 1.01)


def bench_fig3_power_law(benchmark, record_result):
    result = benchmark.pedantic(
        figure3, args=(CONFIG,), kwargs={"distribution": "power-law"}, rounds=1
    )
    record_result(
        "fig3_power_law",
        format_series(
            result["x_label"], result["x"], result["series"],
            title=f"Fig 3 (power-law): {result['metric']}, n={result['n']}, m={result['m']}",
        ),
    )
    _check_shapes(result)


def bench_fig3_uniform(benchmark, record_result):
    result = benchmark.pedantic(
        figure3, args=(CONFIG,), kwargs={"distribution": "uniform"}, rounds=1
    )
    record_result(
        "fig3_uniform",
        format_series(
            result["x_label"], result["x"], result["series"],
            title=f"Fig 3 (uniform): {result['metric']}, n={result['n']}, m={result['m']}",
        ),
    )
    _check_shapes(result)
