"""Benchmark / regeneration of Figure 4(b) (t = 4 vs t = 20 levels).

Paper reference: Fig 4(b), Section VII-B.  Retail item-set data with
Padding-and-Sampling (ell = 5), comparing RAPPOR-PS, OUE-PS and IDUE-PS
under the default 4-level budgets and a 20-level exponential budget
distribution over [eps, 4 eps].  Claim: IDUE-PS outperforms both PS
baselines for item-set data under either level structure.

Scale note: surrogate Retail at n = 20k, m = 2000 (original 88k x 16.5k).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure4b, format_series
from repro.experiments.config import Figure4bConfig

CONFIG = Figure4bConfig(
    n=20_000, m=2_000, ell=5, epsilons=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
    trials=2, t_many=20, seed=0,
)


def bench_fig4b(benchmark, record_result):
    result = benchmark.pedantic(figure4b, args=(CONFIG,), rounds=1)
    record_result(
        "fig4b_levels",
        format_series(
            result["x_label"], result["x"], result["series"],
            title=(
                f"Fig 4(b): {result['metric']}, n={result['n']}, "
                f"m={result['m']}, ell={result['ell']}"
            ),
        ),
    )

    series = result["series"]
    idue4 = np.array(series["IDUE-PS (t=4)"])
    idue20 = np.array(series["IDUE-PS (t=20)"])
    oue = np.array(series["OUE-PS"])
    rappor = np.array(series["RAPPOR-PS"])

    # IDUE-PS beats both PS baselines under either level structure.
    assert np.all(idue4 <= oue * 1.05)
    assert np.all(idue4 <= rappor * 1.05)
    assert np.all(idue20 <= oue * 1.05)
    # MSE decreases with budget for every mechanism.
    for values in series.values():
        assert values[0] > values[-1]
