"""Durable-collection throughput: spill, replay, and socket ingest.

The collection subsystem's costs on top of the streaming pipeline:

* **spill** — streaming a round while writing every packed chunk to a
  :class:`~repro.pipeline.ShardStore` as wire frames (the durable path);
* **replay** — re-aggregating the round out of core from the spilled
  frames (the audit path);
* **socket ingest** — pushing the spilled chunk frames through an
  asyncio :class:`~repro.pipeline.Collector` over a localhost socket
  (the cross-machine path).

Rates are reported in Mbit/s of *wire payload* (spilled frame bytes), so
the numbers compare directly against the sampler throughput benchmarks:
the wire format is 8x denser than one byte per report bit.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile

import pytest

from repro import OptimizedUnaryEncoding
from repro.datasets import zipf_items
from repro.kernels import FAST
from repro.pipeline import Collector, ShardStore, send_frames, stream_counts
from repro.pipeline.collect import wire

N_USERS = 40_000
DOMAIN = 2_000
CHUNK = 2_048


@pytest.fixture(scope="module")
def workload():
    return OptimizedUnaryEncoding(1.5, DOMAIN), zipf_items(N_USERS, DOMAIN, rng=0)


@pytest.fixture()
def spill_root():
    root = tempfile.mkdtemp(prefix="bench_collect_")
    yield root
    shutil.rmtree(root, ignore_errors=True)


def _spill_round(mechanism, items, root) -> ShardStore:
    store = ShardStore(root)
    with store.writer(0, DOMAIN) as writer:
        accumulator = stream_counts(
            mechanism,
            items,
            chunk_size=CHUNK,
            rng=FAST.make_generator(1),
            packed=True,
            sampler=FAST,
            chunk_sink=writer.write,
        )
    store.write_snapshot(0, accumulator)
    return store


def bench_collect_spill(
    benchmark, workload, spill_root, record_result, record_json, repeat
):
    """Fast-sampler streaming with every chunk spilled as wire frames."""
    mechanism, items = workload
    store = benchmark.pedantic(
        _spill_round,
        args=(mechanism, items, spill_root),
        rounds=repeat(3),
        warmup_rounds=1,
    )
    secs = benchmark.stats["mean"]
    wire_bits = 8 * store.spilled_bytes()
    record_json(
        "collect_spill",
        n=N_USERS,
        m=DOMAIN,
        secs=secs,
        bits_per_sec=wire_bits / secs,
        spilled_bytes=store.spilled_bytes(),
    )
    record_result(
        "collect_spill",
        f"spill (stream + wire frames to disk): n={N_USERS}, m={DOMAIN}\n"
        f"mean {secs * 1e3:.1f}ms -> {wire_bits / secs / 1e6:,.0f} Mbit/s wire "
        f"({store.spilled_bytes() / 2**20:.1f} MiB spilled)",
    )


def bench_collect_replay(
    benchmark, workload, spill_root, record_result, record_json, repeat
):
    """Out-of-core re-aggregation of a spilled round (the audit path).

    Replay is the zero-copy showcase: the spill is mmap'd and every
    chunk's rows are numpy views over the mapped pages.  The benchmark
    counts payload copies through ``wire.payload_copy_hook`` and records
    them (the whole replay must make zero) next to the throughput.
    """
    mechanism, items = workload
    store = _spill_round(mechanism, items, spill_root)
    copies = {"events": 0, "bytes": 0}

    def note_copy(site, nbytes):
        copies["events"] += 1
        copies["bytes"] += nbytes

    previous = wire.payload_copy_hook
    wire.payload_copy_hook = note_copy
    try:
        replayed = benchmark.pedantic(
            store.replay, rounds=repeat(3), warmup_rounds=1
        )
    finally:
        wire.payload_copy_hook = previous
    secs = benchmark.stats["mean"]
    wire_bits = 8 * store.spilled_bytes()
    record_json(
        "collect_replay",
        n=N_USERS,
        m=DOMAIN,
        secs=secs,
        bits_per_sec=wire_bits / secs,
        payload_copy_events=copies["events"],
        payload_copy_bytes=copies["bytes"],
    )
    record_result(
        "collect_replay",
        f"replay (mmap decode + popcount): n={N_USERS}, m={DOMAIN}\n"
        f"mean {secs * 1e3:.1f}ms -> {wire_bits / secs / 1e6:,.0f} Mbit/s wire, "
        f"{copies['events']} payload copies ({copies['bytes']} bytes)",
    )
    assert replayed.digest() == store.load_snapshot(0).digest()
    # The chunk replay path is copy-free end to end; a regression that
    # reintroduces a per-frame bytes copy fails here, not in review.
    assert copies["events"] == 0, copies


def bench_collect_socket_ingest(
    benchmark, workload, spill_root, record_result, record_json, repeat
):
    """Localhost socket feed: spilled chunk frames through a Collector."""
    mechanism, items = workload
    store = _spill_round(mechanism, items, spill_root)
    with open(store.chunk_path(0), "rb") as handle:
        frames = [wire.dumps(chunk) for chunk in wire.iter_frames(handle)]

    async def ingest_once() -> Collector:
        collector = Collector(DOMAIN)
        host, port = await collector.serve()
        try:
            await send_frames(host, port, frames)
        finally:
            await collector.close()
        return collector

    def run() -> Collector:
        return asyncio.run(ingest_once())

    collector = benchmark.pedantic(run, rounds=repeat(3), warmup_rounds=1)
    secs = benchmark.stats["mean"]
    wire_bits = 8 * sum(len(frame) for frame in frames)
    record_json(
        "collect_socket_ingest",
        n=N_USERS,
        m=DOMAIN,
        secs=secs,
        bits_per_sec=wire_bits / secs,
        frames=len(frames),
    )
    record_result(
        "collect_socket_ingest",
        f"socket ingest (localhost, {len(frames)} chunk frames): "
        f"n={N_USERS}, m={DOMAIN}\n"
        f"mean {secs * 1e3:.1f}ms -> {wire_bits / secs / 1e6:,.0f} Mbit/s wire",
    )
    assert collector.accumulator.digest() == store.load_snapshot(0).digest()
