"""Validate a BENCH_throughput.json produced by the smoke bench run.

``make bench-smoke`` runs the throughput benchmarks at tiny scale
(``BENCH_SMOKE=1``) and then asks this script one question: did every
compute backend available on this machine execute and emit a
well-formed record?  CI runs it twice — once without the numba extra
(numpy + threaded) and once with it (all three) — so a backend that
silently stops being exercised fails the job instead of rotting.

Usage::

    python benchmarks/check_results.py PATH_TO_BENCH_THROUGHPUT_JSON
"""

from __future__ import annotations

import json
import sys

REQUIRED_FIELDS = ("name", "n", "m", "secs", "bits_per_sec", "peak_rss", "cpu_count")


def check(path: str) -> list[str]:
    from repro.kernels import available_compute_backends

    with open(path, "r", encoding="utf-8") as handle:
        records = json.load(handle)
    errors: list[str] = []
    if not isinstance(records, list) or not records:
        return [f"{path}: expected a non-empty JSON list of records"]
    by_backend: dict[str, dict] = {}
    for record in records:
        missing = [key for key in REQUIRED_FIELDS if key not in record]
        if missing:
            errors.append(
                f"record {record.get('name', '<unnamed>')!r} lacks {missing}"
            )
            continue
        if record["secs"] <= 0 or (record["bits_per_sec"] or 0) < 0:
            errors.append(f"record {record['name']!r} has nonsense timings")
        if "backend" in record and record["name"].startswith(
            "throughput_sampler_fast_"
        ):
            by_backend[record["backend"]] = record
    for name in available_compute_backends():
        record = by_backend.get(name)
        if record is None:
            errors.append(
                f"backend {name!r} is available here but emitted no "
                "throughput record"
            )
        elif record["bits_per_sec"] is None or record["bits_per_sec"] <= 0:
            errors.append(f"backend {name!r} record has no positive throughput")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = check(argv[1])
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    from repro.kernels import available_compute_backends

    print(
        f"OK: {argv[1]} carries a valid throughput record for every "
        f"available backend ({', '.join(available_compute_backends())})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
