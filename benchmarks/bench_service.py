"""Exactly-once service costs: authenticated ingest and crash recovery.

Two numbers gate the service design:

* **authenticated ingest** — the full exactly-once path (HMAC
  handshake, per-record spill fsync + ledger fsync, per-record acks)
  must stay within 2x of the PR 3 raw socket path on the *same* frames;
  both are measured here back to back and the ratio is recorded.
* **recovery latency** — how long a restart takes to load the ledger,
  truncate the spill to the committed offset, and replay the round.

Rates are Mbit/s of wire payload, comparable to ``bench_collect``.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import time

import pytest

from repro import OptimizedUnaryEncoding
from repro.datasets import zipf_items
from repro.kernels import FAST
from repro.pipeline import (
    Collector,
    CollectionService,
    send_frames,
    send_records,
    stream_counts,
)
from repro.pipeline.collect import wire

N_USERS = 40_000
DOMAIN = 2_000
CHUNK = 2_048
KEY = "benchmark-round-key-0123"


@pytest.fixture(scope="module")
def frames():
    """The round's packed chunk frames, identical for every path."""
    mechanism = OptimizedUnaryEncoding(1.5, DOMAIN)
    items = zipf_items(N_USERS, DOMAIN, rng=0)
    collected: list[bytes] = []
    stream_counts(
        mechanism,
        items,
        chunk_size=CHUNK,
        rng=FAST.make_generator(1),
        packed=True,
        sampler=FAST,
        chunk_sink=lambda rows: collected.append(wire.dump_chunk(rows, DOMAIN)),
    )
    return collected


@pytest.fixture()
def scratch_roots():
    roots: list[str] = []

    def make() -> str:
        root = tempfile.mkdtemp(prefix="bench_service_")
        roots.append(root)
        return root

    yield make
    for root in roots:
        shutil.rmtree(root, ignore_errors=True)


def _service_ingest(frames, root) -> CollectionService:
    async def run() -> CollectionService:
        service = CollectionService(DOMAIN, key=KEY, store_root=root + "/r")
        host, port = await service.serve()
        try:
            await send_records(
                host, port, frames, key=KEY, producer_id="bench", m=DOMAIN
            )
        finally:
            await service.close()
        return service

    return asyncio.run(run())


def _raw_socket_ingest(frames) -> Collector:
    async def run() -> Collector:
        collector = Collector(DOMAIN)
        host, port = await collector.serve()
        try:
            await send_frames(host, port, frames)
        finally:
            await collector.close()
        return collector

    return asyncio.run(run())


def bench_service_ingest(
    benchmark, frames, scratch_roots, record_result, record_json
):
    """Authenticated exactly-once ingest vs the raw at-least-once socket."""

    def ingest_into_fresh_round() -> CollectionService:
        # The service refuses to overwrite existing round state, so each
        # benchmark iteration gets its own scratch root.
        return _service_ingest(frames, scratch_roots())

    service = benchmark(ingest_into_fresh_round)
    secs = benchmark.stats["mean"]
    assert service.records_merged == len(frames)

    # The raw PR 3 path on the very same frames, for the ratio.  Both
    # sides of the ratio use their best observation: fsync and
    # scheduling noise dominate the tails on shared machines, and the
    # bar is about the protocol's cost, not the disk's worst mood.
    raw_times = []
    for _ in range(5):
        start = time.perf_counter()
        collector = _raw_socket_ingest(frames)
        raw_times.append(time.perf_counter() - start)
    assert collector.frames_ingested == len(frames)
    raw_secs = min(raw_times)

    wire_bits = 8 * sum(len(frame) for frame in frames)
    ratio = benchmark.stats["min"] / raw_secs
    record_json(
        "service_ingest",
        n=N_USERS,
        m=DOMAIN,
        secs=secs,
        bits_per_sec=wire_bits / secs,
        frames=len(frames),
        raw_socket_secs=raw_secs,
        raw_socket_bits_per_sec=wire_bits / raw_secs,
        slowdown_vs_raw_socket=ratio,
    )
    record_result(
        "service_ingest",
        "authenticated exactly-once ingest (handshake + fsync'd ledger): "
        f"n={N_USERS}, m={DOMAIN}, {len(frames)} records\n"
        f"mean {secs * 1e3:.1f}ms -> {wire_bits / secs / 1e6:,.0f} Mbit/s wire\n"
        f"raw socket (PR 3, no auth/durability): {raw_secs * 1e3:.1f}ms "
        f"-> {wire_bits / raw_secs / 1e6:,.0f} Mbit/s wire\n"
        f"exactly-once overhead: {ratio:.2f}x (acceptance bar: <= 2x)",
    )
    assert ratio <= 2.0, (
        f"authenticated ingest is {ratio:.2f}x the raw socket path; "
        "the acceptance bar is 2x"
    )


def bench_service_recovery(
    benchmark, frames, scratch_roots, record_result, record_json
):
    """Restart latency: ledger load + spill truncation + full replay."""
    scratch = scratch_roots()
    reference = _service_ingest(frames, scratch).accumulator.digest()
    root = scratch + "/r"

    def recover() -> CollectionService:
        service = CollectionService(
            DOMAIN, key=KEY, store_root=root, resume=True
        )
        asyncio.run(service.abort())
        return service

    service = benchmark(recover)
    assert service.recovered_records == len(frames)
    assert service.accumulator.digest() == reference
    secs = benchmark.stats["mean"]
    wire_bits = 8 * service.bytes_ingested
    record_json(
        "service_recovery",
        n=N_USERS,
        m=DOMAIN,
        secs=secs,
        bits_per_sec=wire_bits / secs,
        records=service.recovered_records,
    )
    record_result(
        "service_recovery",
        "restart recovery (ledger load + truncate + replay): "
        f"n={N_USERS}, m={DOMAIN}, {service.recovered_records} records\n"
        f"mean {secs * 1e3:.1f}ms -> {wire_bits / secs / 1e6:,.0f} Mbit/s wire",
    )
