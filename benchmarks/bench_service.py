"""Exactly-once service costs: ingest, recovery, and group-commit scope.

Three numbers gate the service design:

* **authenticated ingest** — the full exactly-once path (HMAC
  handshake, per-record spill fsync + ledger fsync, per-record acks)
  must stay within 2.2x of the PR 3 raw socket path on the *same*
  frames; both are measured here back to back and the ratio is
  recorded.  (Typical measurement is ~1.8-1.9x; the bar carries ~15%
  headroom because both sides of the ratio are fsync-noise-dominated
  minima, and the multi-round commit scheduler trades a scheduling hop
  per batch on this single-connection path for its cross-connection
  coalescing.)
* **recovery latency** — how long a restart takes to load the ledger,
  truncate the spill to the committed offset, and replay the round.
* **cross-connection group commit** — the multi-round scenario: 8
  producers pipelining into a hosted round must ingest at least 1.3x
  faster with round-scoped commit coalescing (one fsync pair covering
  every session's staged batches) than with the per-connection
  baseline (``commit_scope="connection"``) on the same frames.

Rates are Mbit/s of wire payload, comparable to ``bench_collect``.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import tempfile
import time

import pytest

from repro import OptimizedUnaryEncoding
from repro.datasets import zipf_items
from repro.kernels import FAST
from repro.pipeline import (
    Collector,
    CollectionService,
    KeyRegistry,
    ServiceLimits,
    send_frames,
    send_records,
    stream_counts,
)
from repro.pipeline.collect import wire
from repro.pipeline.service import ShardFleet, aggregate_round, send_records_routed

N_USERS = 40_000
DOMAIN = 2_000
CHUNK = 2_048
KEY = "benchmark-round-key-0123"

# Scale-out scenario shape.  The smoke profile (BENCH_SCALEOUT_SMOKE=1,
# `make bench-scaleout-smoke`) shrinks the fleet and the population so
# `make check` can afford the run; the full profile is the recorded
# benchmark: >= 4 shard processes, >= 200 routed producers.
SO_SMOKE = os.environ.get("BENCH_SCALEOUT_SMOKE") == "1"
SO_SHARDS = 2 if SO_SMOKE else 4
SO_PRODUCERS = 16 if SO_SMOKE else 200
SO_FRAMES_PER_PRODUCER = 2 if SO_SMOKE else 4
SO_DOMAIN = 64 if SO_SMOKE else 256
SO_CHUNK = 16 if SO_SMOKE else 32
SO_ROUND = 1
SO_KEY = "bench-scaleout-key-0456"
SO_CONTROL_KEY = "bench-scaleout-control"

# Live-rebalance scenario shape: 2 shards grow to 3 under streaming
# producers; the smoke profile (BENCH_REBALANCE_SMOKE=1, `make
# bench-rebalance-smoke`) shrinks the population for `make check`.
REB_SMOKE = os.environ.get("BENCH_REBALANCE_SMOKE") == "1"
REB_PRODUCERS = 12 if REB_SMOKE else 48
REB_FRAMES_PER_PRODUCER = 6 if REB_SMOKE else 16
REB_DOMAIN = 64
REB_CHUNK = 8
REB_ROUND = 2
REB_KEY = "bench-rebalance-key-0789"
REB_CONTROL_KEY = "bench-rebalance-control"

# Multi-round / group-commit scenario shape: many producers, many small
# records, so the commit pipeline (not the payload bytes) is the cost.
MR_PRODUCERS = 8
MR_DOMAIN = 256
MR_CHUNK = 64
MR_FRAMES_PER_PRODUCER = 96
MR_ROUNDS = ({"m": MR_DOMAIN, "round_id": 1}, {"m": MR_DOMAIN, "round_id": 2})


@pytest.fixture(scope="module")
def frames():
    """The round's packed chunk frames, identical for every path."""
    mechanism = OptimizedUnaryEncoding(1.5, DOMAIN)
    items = zipf_items(N_USERS, DOMAIN, rng=0)
    collected: list[bytes] = []
    stream_counts(
        mechanism,
        items,
        chunk_size=CHUNK,
        rng=FAST.make_generator(1),
        packed=True,
        sampler=FAST,
        chunk_sink=lambda rows: collected.append(wire.dump_chunk(rows, DOMAIN)),
    )
    return collected


@pytest.fixture()
def scratch_roots():
    roots: list[str] = []

    def make() -> str:
        root = tempfile.mkdtemp(prefix="bench_service_")
        roots.append(root)
        return root

    yield make
    for root in roots:
        shutil.rmtree(root, ignore_errors=True)


def _service_ingest(frames, root) -> CollectionService:
    async def run() -> CollectionService:
        service = CollectionService(DOMAIN, key=KEY, store_root=root + "/r")
        host, port = await service.serve()
        try:
            await send_records(
                host, port, frames, key=KEY, producer_id="bench", m=DOMAIN
            )
        finally:
            await service.close()
        return service

    return asyncio.run(run())


def _raw_socket_ingest(frames) -> Collector:
    async def run() -> Collector:
        collector = Collector(DOMAIN)
        host, port = await collector.serve()
        try:
            await send_frames(host, port, frames)
        finally:
            await collector.close()
        return collector

    return asyncio.run(run())


def bench_service_ingest(
    benchmark, frames, scratch_roots, record_result, record_json, repeat
):
    """Authenticated exactly-once ingest vs the raw at-least-once socket."""

    def ingest_into_fresh_round() -> CollectionService:
        # The service refuses to overwrite existing round state, so each
        # benchmark iteration gets its own scratch root.
        return _service_ingest(frames, scratch_roots())

    service = benchmark(ingest_into_fresh_round)
    secs = benchmark.stats["mean"]
    assert service.records_merged == len(frames)

    # The raw PR 3 path on the very same frames, for the ratio.  Both
    # sides of the ratio use their best observation: fsync and
    # scheduling noise dominate the tails on shared machines, and the
    # bar is about the protocol's cost, not the disk's worst mood.
    raw_times = []
    for _ in range(repeat(5)):
        start = time.perf_counter()
        collector = _raw_socket_ingest(frames)
        raw_times.append(time.perf_counter() - start)
    assert collector.frames_ingested == len(frames)
    raw_secs = min(raw_times)

    wire_bits = 8 * sum(len(frame) for frame in frames)
    ratio = benchmark.stats["min"] / raw_secs
    record_json(
        "service_ingest",
        n=N_USERS,
        m=DOMAIN,
        secs=secs,
        bits_per_sec=wire_bits / secs,
        frames=len(frames),
        raw_socket_secs=raw_secs,
        raw_socket_bits_per_sec=wire_bits / raw_secs,
        slowdown_vs_raw_socket=ratio,
    )
    record_result(
        "service_ingest",
        "authenticated exactly-once ingest (handshake + fsync'd ledger): "
        f"n={N_USERS}, m={DOMAIN}, {len(frames)} records\n"
        f"mean {secs * 1e3:.1f}ms -> {wire_bits / secs / 1e6:,.0f} Mbit/s wire\n"
        f"raw socket (PR 3, no auth/durability): {raw_secs * 1e3:.1f}ms "
        f"-> {wire_bits / raw_secs / 1e6:,.0f} Mbit/s wire\n"
        f"exactly-once overhead: {ratio:.2f}x (acceptance bar: <= 2.2x)",
    )
    assert ratio <= 2.2, (
        f"authenticated ingest is {ratio:.2f}x the raw socket path; "
        "the acceptance bar is 2.2x"
    )


@pytest.fixture(scope="module")
def multiround_workload():
    """Per-producer frame streams for two concurrent hosted rounds."""
    mechanism = OptimizedUnaryEncoding(1.5, MR_DOMAIN)
    per_producer = []
    for index in range(MR_PRODUCERS):
        round_id = 1 + index % 2
        items = zipf_items(
            MR_CHUNK * MR_FRAMES_PER_PRODUCER, MR_DOMAIN, rng=index
        )
        collected: list[bytes] = []
        stream_counts(
            mechanism,
            items,
            chunk_size=MR_CHUNK,
            rng=FAST.make_generator(100 + index),
            packed=True,
            round_id=round_id,
            sampler=FAST,
            chunk_sink=lambda rows, rid=round_id: collected.append(
                wire.dump_chunk(rows, MR_DOMAIN, round_id=rid)
            ),
        )
        per_producer.append((f"node-{index}", round_id, collected))
    keys = KeyRegistry(
        {
            producer: f"bench-producer-key-{producer}"
            for producer, _rid, _frames in per_producer
        }
    )
    return per_producer, keys


def _multiround_ingest(per_producer, keys, root, scope) -> CollectionService:
    limits = ServiceLimits(commit_scope=scope, max_commit_batch=8)

    async def run() -> CollectionService:
        service = CollectionService(
            rounds=list(MR_ROUNDS),
            keys=keys,
            store_root=root,
            limits=limits,
        )
        host, port = await service.serve()
        try:
            await asyncio.gather(
                *(
                    send_records(
                        host,
                        port,
                        frames,
                        key=f"bench-producer-key-{producer}",
                        producer_id=producer,
                        m=MR_DOMAIN,
                        round_id=round_id,
                    )
                    for producer, round_id, frames in per_producer
                )
            )
        finally:
            await service.close()
        return service

    return asyncio.run(run())


def bench_service_multiround_group_commit(
    benchmark, multiround_workload, scratch_roots, record_result, record_json, repeat
):
    """Cross-connection group commit vs the per-connection baseline.

    Two hosted rounds, 8 producers with per-producer keys pipelining
    concurrently.  ``commit_scope="round"`` coalesces every session's
    staged batches under one spill-fsync + ledger-fsync pair; the
    baseline pays one pair per connection batch.  The acceptance bar is
    >= 1.3x ingest throughput for the coalesced path.
    """
    per_producer, keys = multiround_workload
    total_frames = sum(len(frames) for _p, _r, frames in per_producer)

    service = benchmark(
        lambda: _multiround_ingest(
            per_producer, keys, scratch_roots() + "/rounds", "round"
        )
    )
    assert service.records_merged == total_frames
    coalesced = sum(
        state.scheduler.cross_connection_batches
        for state in service.registry.rounds()
    )
    commits_round = sum(
        state.scheduler.commits for state in service.registry.rounds()
    )
    assert coalesced > 0, "no cross-connection coalescing happened at all"
    round_secs = benchmark.stats["min"]

    # The per-connection baseline on the very same frames; best-of like
    # the raw-socket comparison above (fsync noise dominates tails).
    baseline_times = []
    for _ in range(repeat(3)):
        start = time.perf_counter()
        baseline = _multiround_ingest(
            per_producer, keys, scratch_roots() + "/rounds", "connection"
        )
        baseline_times.append(time.perf_counter() - start)
    assert baseline.records_merged == total_frames
    commits_conn = sum(
        state.scheduler.commits for state in baseline.registry.rounds()
    )
    baseline_secs = min(baseline_times)

    wire_bits = 8 * sum(
        len(frame) for _p, _r, frames in per_producer for frame in frames
    )
    speedup = baseline_secs / round_secs
    record_json(
        "service_multiround_group_commit",
        n=total_frames * MR_CHUNK,
        m=MR_DOMAIN,
        secs=round_secs,
        bits_per_sec=wire_bits / round_secs,
        producers=MR_PRODUCERS,
        rounds=len(MR_ROUNDS),
        frames=total_frames,
        per_connection_secs=baseline_secs,
        speedup=speedup,
        commits_cross_connection=commits_round,
        commits_per_connection=commits_conn,
    )
    record_result(
        "service_multiround_group_commit",
        f"multi-round ingest, {MR_PRODUCERS} producers x "
        f"{MR_FRAMES_PER_PRODUCER} records over {len(MR_ROUNDS)} rounds\n"
        f"cross-connection commit: {round_secs * 1e3:.1f}ms "
        f"({commits_round} fsync pairs) -> "
        f"{wire_bits / round_secs / 1e6:,.0f} Mbit/s wire\n"
        f"per-connection commit:   {baseline_secs * 1e3:.1f}ms "
        f"({commits_conn} fsync pairs)\n"
        f"group-commit speedup: {speedup:.2f}x (acceptance bar: >= 1.3x)",
    )
    assert speedup >= 1.3, (
        f"cross-connection group commit is only {speedup:.2f}x the "
        "per-connection baseline; the acceptance bar is 1.3x"
    )


def bench_service_recovery(
    benchmark, frames, scratch_roots, record_result, record_json
):
    """Restart latency: ledger load + spill truncation + full replay."""
    scratch = scratch_roots()
    reference = _service_ingest(frames, scratch).accumulator.digest()
    root = scratch + "/r"

    def recover() -> CollectionService:
        service = CollectionService(
            DOMAIN, key=KEY, store_root=root, resume=True
        )
        asyncio.run(service.abort())
        return service

    service = benchmark(recover)
    assert service.recovered_records == len(frames)
    assert service.accumulator.digest() == reference
    secs = benchmark.stats["mean"]
    wire_bits = 8 * service.bytes_ingested
    record_json(
        "service_recovery",
        n=N_USERS,
        m=DOMAIN,
        secs=secs,
        bits_per_sec=wire_bits / secs,
        records=service.recovered_records,
    )
    record_result(
        "service_recovery",
        "restart recovery (ledger load + truncate + replay): "
        f"n={N_USERS}, m={DOMAIN}, {service.recovered_records} records\n"
        f"mean {secs * 1e3:.1f}ms -> {wire_bits / secs / 1e6:,.0f} Mbit/s wire",
    )


@pytest.fixture(scope="module")
def scaleout_workload():
    """Per-producer frame streams for the sharded round."""
    mechanism = OptimizedUnaryEncoding(1.5, SO_DOMAIN)
    per_producer = []
    for index in range(SO_PRODUCERS):
        items = zipf_items(
            SO_CHUNK * SO_FRAMES_PER_PRODUCER, SO_DOMAIN, rng=1000 + index
        )
        collected: list[bytes] = []
        stream_counts(
            mechanism,
            items,
            chunk_size=SO_CHUNK,
            rng=FAST.make_generator(2000 + index),
            packed=True,
            round_id=SO_ROUND,
            sampler=FAST,
            chunk_sink=lambda rows: collected.append(
                wire.dump_chunk(rows, SO_DOMAIN, round_id=SO_ROUND)
            ),
        )
        per_producer.append((f"edge-{index:04d}", collected))
    return per_producer


def _fleet_ingest(per_producer, shard_names, root) -> float:
    """Wall-clock seconds to route every producer into a shard fleet,
    then drain + aggregate (the full round cost, not just the sends)."""

    async def run() -> float:
        fleet = ShardFleet(
            shard_names,
            fleet_root=root,
            rounds=[{"m": SO_DOMAIN, "round_id": SO_ROUND}],
            key=SO_KEY,
            control_key=SO_CONTROL_KEY,
        )
        table = await fleet.start()
        try:
            start = time.perf_counter()
            await asyncio.gather(
                *(
                    send_records_routed(
                        table,
                        frames,
                        key=SO_KEY,
                        producer_id=producer,
                        m=SO_DOMAIN,
                        round_id=SO_ROUND,
                    )
                    for producer, frames in per_producer
                )
            )
            result = await aggregate_round(
                fleet.infos(),
                control_key=SO_CONTROL_KEY,
                round_id=SO_ROUND,
            )
            secs = time.perf_counter() - start
            expected = sum(len(frames) for _p, frames in per_producer)
            assert result.records_merged == expected
            assert result.accumulator.n == expected * SO_CHUNK
            return secs
        finally:
            fleet.stop()

    return asyncio.run(run())


def bench_service_scaleout(
    scaleout_workload, scratch_roots, record_result, record_json, repeat
):
    """Routed ingest across K shard processes vs one shard process.

    >= 4 shards, >= 200 producers (2 shards, 16 producers under the
    smoke profile), every producer's stream routed by consistent hash,
    the round aggregated at the end — against the identical workload
    through a single shard process.  The >= 3x throughput bar needs
    cores for the shards to land on, so it is asserted only where the
    hardware can express the parallelism (and never in smoke mode);
    the measured speedup and the core count are recorded regardless.
    """
    per_producer = scaleout_workload
    shard_names = [f"shard-{chr(ord('a') + i)}" for i in range(SO_SHARDS)]
    attempts = 1 if SO_SMOKE else repeat(2)
    fleet_secs = min(
        _fleet_ingest(per_producer, shard_names, scratch_roots() + "/fleet")
        for _ in range(attempts)
    )
    solo_secs = min(
        _fleet_ingest(per_producer, ["solo"], scratch_roots() + "/solo")
        for _ in range(attempts)
    )

    wire_bits = 8 * sum(
        len(frame) for _p, frames in per_producer for frame in frames
    )
    speedup = solo_secs / fleet_secs
    cores = os.cpu_count() or 1
    record_json(
        "service_scaleout",
        n=SO_PRODUCERS * SO_FRAMES_PER_PRODUCER * SO_CHUNK,
        m=SO_DOMAIN,
        secs=fleet_secs,
        bits_per_sec=wire_bits / fleet_secs,
        shards=SO_SHARDS,
        producers=SO_PRODUCERS,
        frames=SO_PRODUCERS * SO_FRAMES_PER_PRODUCER,
        single_shard_secs=solo_secs,
        speedup_vs_single_shard=speedup,
        cpu_count=cores,
        smoke=SO_SMOKE,
    )
    record_result(
        "service_scaleout",
        f"scale-out ingest, {SO_PRODUCERS} routed producers x "
        f"{SO_FRAMES_PER_PRODUCER} records over {SO_SHARDS} shard "
        f"processes (m={SO_DOMAIN}, {cores} cores)\n"
        f"fleet:        {fleet_secs * 1e3:.1f}ms -> "
        f"{wire_bits / fleet_secs / 1e6:,.0f} Mbit/s wire\n"
        f"single shard: {solo_secs * 1e3:.1f}ms -> "
        f"{wire_bits / solo_secs / 1e6:,.0f} Mbit/s wire\n"
        f"scale-out speedup: {speedup:.2f}x "
        f"(acceptance bar: >= 3x, asserted only with >= {SO_SHARDS + 1} "
        "cores)",
    )
    if not SO_SMOKE and cores >= SO_SHARDS + 1:
        assert speedup >= 3.0, (
            f"{SO_SHARDS} shard processes deliver only {speedup:.2f}x the "
            "single-shard throughput on hardware with enough cores; the "
            "acceptance bar is 3x"
        )


def _rebalance_frames(producer_id: str) -> list[bytes]:
    """Deterministic per-producer chunk frames for the rebalance run."""
    import hashlib

    import numpy as np

    seed = int.from_bytes(
        hashlib.sha256(producer_id.encode()).digest()[:4], "little"
    )
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(REB_FRAMES_PER_PRODUCER):
        bits = (rng.random((REB_CHUNK, REB_DOMAIN)) < 0.5).astype(np.uint8)
        frames.append(
            wire.dump_chunk(
                np.packbits(bits, axis=1), REB_DOMAIN, round_id=REB_ROUND
            )
        )
    return frames


def bench_service_rebalance(scratch_roots, record_result, record_json):
    """Live rebalance cost: grow 2 shards to 3 under producer traffic.

    Producers stream records continuously while the coordinator admits
    a third shard (``join_shard``: open the round on it, push the
    epoch-bumped table, migrate every moved producer's committed
    records).  Two costs are recorded: the migration's total wall time,
    and the longest gap between any two consecutive record acks across
    all producers during the run — the observed stop-the-world pause
    (each source shard's commit pipeline pauses while its records are
    copied out).  Correctness is asserted, not timed: every record ends
    the round counted exactly once.
    """
    from repro.exceptions import MovedError, ServiceError
    from repro.pipeline.service import RoundCoordinator

    async def run():
        fleet = ShardFleet(
            ["alpha", "beta"],
            fleet_root=scratch_roots() + "/rebalance",
            rounds=[],
            key=REB_KEY,
            control_key=REB_CONTROL_KEY,
        )
        table = await fleet.start()
        try:
            coordinator = RoundCoordinator(
                fleet.infos(), control_key=REB_CONTROL_KEY, epoch=table.epoch
            )
            await coordinator.register_round(REB_DOMAIN, REB_ROUND)
            shared = {"table": coordinator.table}
            ack_times: list[float] = []

            async def stream(producer_id: str) -> None:
                for seq, frame in enumerate(_rebalance_frames(producer_id)):
                    for _attempt in range(40):
                        try:
                            await send_records_routed(
                                shared["table"],
                                [frame],
                                key=REB_KEY,
                                producer_id=producer_id,
                                m=REB_DOMAIN,
                                round_id=REB_ROUND,
                                start_seq=seq,
                                raise_on_refusal=False,
                                control_key=REB_CONTROL_KEY,
                            )
                            break
                        except (
                            MovedError,
                            ServiceError,
                            ConnectionError,
                            OSError,
                        ):
                            await asyncio.sleep(0.02)
                    ack_times.append(time.perf_counter())
                    await asyncio.sleep(0.01)

            producers = [f"edge-{i:03d}" for i in range(REB_PRODUCERS)]
            tasks = [
                asyncio.ensure_future(stream(producer))
                for producer in producers
            ]
            await asyncio.sleep(0.1)  # let traffic establish first

            info = await fleet.add_shard("gamma")
            migrate_start = time.perf_counter()
            stats = await coordinator.join_shard(info)
            migrate_secs = time.perf_counter() - migrate_start
            shared["table"] = coordinator.table
            await asyncio.gather(*tasks)

            await coordinator.drain(REB_ROUND)
            await coordinator.close_round(REB_ROUND)
            result = await aggregate_round(
                coordinator.table.shards(),
                control_key=REB_CONTROL_KEY,
                round_id=REB_ROUND,
                fan_in=2,
            )
            expected = REB_PRODUCERS * REB_FRAMES_PER_PRODUCER
            assert result.records_merged == expected
            assert result.accumulator.n == expected * REB_CHUNK

            # The observed pause: the longest ack silence that overlaps
            # the migration window (gaps wholly outside it are just the
            # producers' own pacing).
            times = sorted(ack_times)
            migrate_end = migrate_start + migrate_secs
            pause = 0.0
            for before, after in zip(times, times[1:]):
                if after >= migrate_start and before <= migrate_end:
                    pause = max(pause, after - before)
            return migrate_secs, pause, stats
        finally:
            fleet.stop()

    migrate_secs, pause_secs, stats = asyncio.run(run())
    record_json(
        "service_rebalance",
        n=REB_PRODUCERS * REB_FRAMES_PER_PRODUCER * REB_CHUNK,
        m=REB_DOMAIN,
        secs=migrate_secs,
        producers=REB_PRODUCERS,
        shards_before=2,
        shards_after=3,
        records_moved=stats["installed"],
        resend_duplicates=stats["duplicates"],
        migration_pause_secs=pause_secs,
        smoke=REB_SMOKE,
    )
    record_result(
        "service_rebalance",
        f"live rebalance, 2 -> 3 shards under {REB_PRODUCERS} streaming "
        f"producers (m={REB_DOMAIN})\n"
        f"migration wall time: {migrate_secs * 1e3:.1f}ms "
        f"({stats['installed']} records moved, "
        f"{stats['duplicates']} resend duplicates)\n"
        f"observed ack pause during migration: {pause_secs * 1e3:.1f}ms",
    )
