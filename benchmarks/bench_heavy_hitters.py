"""Extension benchmark: two-phase heavy hitters (paper future work).

Compares the two-phase identify-then-refine protocol against the naive
single-phase approach (estimate everything with all users, take top-k)
on a planted-heavy-hitter workload.  The two-phase design wins on
ranking quality at equal total privacy cost because phase 2 concentrates
the refinement on a small candidate set.
"""

from __future__ import annotations

import numpy as np

from repro import BudgetSpec, FrequencyEstimator
from repro.datasets import ItemsetDataset
from repro.estimation import top_k_metrics
from repro.experiments.reporting import format_table
from repro.extensions import TwoPhaseHeavyHitter
from repro.mechanisms import IDUEPS
from repro.simulation import simulate_itemset_counts

M, N, K, ELL, EPSILON = 100, 30_000, 5, 3, 2.0


def _planted_dataset(rng) -> ItemsetDataset:
    hitters = list(range(K))
    sets = []
    for _ in range(N):
        base = [h for h in hitters if rng.random() < 0.6]
        noise = rng.choice(np.arange(K, M), size=2, replace=False).tolist()
        sets.append(list(dict.fromkeys(base + noise)))
    return ItemsetDataset.from_sets(sets, m=M)


def _run_comparison():
    rng = np.random.default_rng(0)
    data = _planted_dataset(rng)
    truth = data.true_counts()
    spec = BudgetSpec.uniform(EPSILON, M)

    # Single-phase: all users, whole-domain estimation, top-k directly.
    mech = IDUEPS.optimized(spec, ELL, model="opt0")
    counts = simulate_itemset_counts(mech, data, rng)
    estimates = FrequencyEstimator.for_mechanism(mech, data.n).estimate(counts)
    single = top_k_metrics(estimates, truth, K)

    # Two-phase protocol.
    protocol = TwoPhaseHeavyHitter(spec, ELL, K, candidate_factor=3)
    result = protocol.run(data, rng)
    two_estimates = np.full(M, -np.inf)
    for item, value in result.estimates.items():
        two_estimates[item] = value
    two = top_k_metrics(two_estimates, truth, K)

    rows = [
        ["single-phase", single["precision"], single["ncr"]],
        ["two-phase", two["precision"], two["ncr"]],
    ]
    return rows


def bench_heavy_hitters(benchmark, record_result):
    rows = benchmark.pedantic(_run_comparison, rounds=1)
    record_result(
        "heavy_hitters",
        format_table(
            ["protocol", f"top-{K} precision", f"top-{K} NCR"], rows
        ),
    )
    two_phase_precision = rows[1][1]
    assert two_phase_precision >= 0.8  # finds (nearly) all planted hitters
