"""Streamed-exact pipeline vs. binomial-shortcut simulation throughput.

The question a deployment asks: what does running the *real* per-user
protocol (``repro.pipeline``) cost relative to the counts-only binomial
shortcut (``repro.simulation.fast``), and does the streamed path hold
its memory bound?  The shortcut draws each aggregate count directly, so
it is expected to win by orders of magnitude — the pipeline's value is
that it produces actual reports (wire format included) in
``O(chunk_size * m)`` memory instead of ``O(n * m)``.

Scale is deliberately below the paper's Kosarak width so the suite stays
interactive; `python -m repro.cli pipeline --n 1000000 --m 41270`
reproduces the full-scale run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import OptimizedUnaryEncoding
from repro.datasets import true_counts_from_items, zipf_items
from repro.pipeline import ShardedRunner, stream_counts
from repro.simulation import simulate_counts_from_true

N_USERS = 40_000
DOMAIN = 2_000
CHUNK = 2_048


@pytest.fixture(scope="module")
def workload():
    items = zipf_items(N_USERS, DOMAIN, rng=0)
    truth = true_counts_from_items(items, DOMAIN)
    return OptimizedUnaryEncoding(1.5, DOMAIN), items, truth


def bench_streamed_exact_counts(benchmark, workload, record_result, record_json):
    """Chunked per-user path: encode + perturb + aggregate every report."""
    mechanism, items, _ = workload
    result = benchmark(
        stream_counts,
        mechanism,
        items,
        chunk_size=CHUNK,
        rng=np.random.default_rng(1),
    )
    secs = benchmark.stats["mean"]
    rate = N_USERS / secs
    record_json(
        "pipeline_streamed_exact",
        n=N_USERS,
        m=DOMAIN,
        secs=secs,
        bits_per_sec=N_USERS * DOMAIN / secs,
    )
    record_result(
        "pipeline_streamed_exact",
        f"streamed-exact: n={N_USERS}, m={DOMAIN}, chunk={CHUNK}\n"
        f"mean {secs:.3f}s -> {rate:,.0f} reports/s\n"
        f"peak chunk memory ~{CHUNK * DOMAIN * 9 / 2**20:.0f} MiB "
        f"(vs {N_USERS * DOMAIN / 2**30:.1f} GiB for the full matrix)",
    )
    assert result.n == N_USERS


def bench_streamed_fast_sampler_counts(benchmark, workload, record_result, record_json):
    """Same protocol on the packed bit-plane kernel (sampler='fast')."""
    from repro.kernels import FAST

    mechanism, items, _ = workload
    result = benchmark(
        stream_counts,
        mechanism,
        items,
        chunk_size=CHUNK,
        rng=FAST.make_generator(1),
        packed=True,
        sampler=FAST,
    )
    secs = benchmark.stats["mean"]
    record_json(
        "pipeline_streamed_fast",
        n=N_USERS,
        m=DOMAIN,
        secs=secs,
        bits_per_sec=N_USERS * DOMAIN / secs,
    )
    record_result(
        "pipeline_streamed_fast",
        f"streamed fast-sampler: n={N_USERS}, m={DOMAIN}, chunk={CHUNK}, packed\n"
        f"mean {secs * 1e3:.1f}ms -> {N_USERS / secs:,.0f} reports/s "
        f"({N_USERS * DOMAIN / secs / 1e6:,.0f} Mbit/s)",
    )
    assert result.n == N_USERS


def bench_streamed_packed_counts(benchmark, workload):
    """Same path with the np.packbits wire format on every chunk."""
    mechanism, items, _ = workload
    result = benchmark(
        stream_counts,
        mechanism,
        items,
        chunk_size=CHUNK,
        rng=np.random.default_rng(1),
        packed=True,
    )
    assert result.n == N_USERS


def bench_sharded_runner_counts(benchmark, workload):
    """Shard fan-out + exact merge (pool falls back to serial on 1 CPU)."""
    mechanism, items, _ = workload
    runner = ShardedRunner(mechanism, num_shards=4, chunk_size=CHUNK)
    result = benchmark(runner.run, items, seed=1)
    assert result.n == N_USERS


def bench_fast_binomial_baseline(benchmark, workload, record_result, record_json):
    """Counts-only binomial shortcut over the identical workload."""
    mechanism, _, truth = workload
    benchmark(
        simulate_counts_from_true,
        truth,
        N_USERS,
        mechanism.a,
        mechanism.b,
        np.random.default_rng(1),
    )
    secs = benchmark.stats["mean"]
    record_json("pipeline_fast_baseline", n=N_USERS, m=DOMAIN, secs=secs)
    record_result(
        "pipeline_fast_baseline",
        f"fast binomial baseline: n={N_USERS}, m={DOMAIN}\n"
        f"mean {secs * 1e3:.2f}ms (counts only, no reports)",
    )
