"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
numeric series are printed to stdout *and* persisted under
``benchmarks/results/`` so the regenerated artifacts survive pytest's
output capture; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory where regenerated tables/figures are written."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a rendered table/series to ``benchmarks/results/<name>.txt``."""

    def _record(name: str, text: str) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n=== {name} ===\n{text}")
        return path

    return _record
