"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
numeric series are printed to stdout *and* persisted under
``benchmarks/results/`` so the regenerated artifacts survive pytest's
output capture; EXPERIMENTS.md records the paper-vs-measured comparison.

Performance benchmarks additionally emit machine-readable records: run
with ``--json PATH`` (see ``make bench-json``) and every
``record_json(...)`` call appends a ``{name, n, m, secs, bits_per_sec,
peak_rss}`` entry, written as a JSON list at session end.  Committing
those files under ``benchmarks/results/BENCH_*.json`` tracks the perf
trajectory PR over PR.
"""

from __future__ import annotations

import json
import os
import resource
import sys

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write machine-readable benchmark records to PATH as a JSON list",
    )
    parser.addoption(
        "--repeat",
        action="store",
        type=int,
        default=None,
        metavar="N",
        help="run each timed benchmark N times and keep the best attempt "
        "(reduces scheduler noise; recorded numbers note the repeat count)",
    )


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process (ru_maxrss is KiB on Linux).

    ru_maxrss is a process-lifetime high-water mark, so the value stamped
    on a record reflects the largest footprint of the session *so far*,
    not the benchmark in isolation — attribute it to an individual
    benchmark only when that benchmark is run in its own pytest process.
    """
    scale = 1 if sys.platform == "darwin" else 1024  # macOS reports bytes
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale


@pytest.fixture(scope="session")
def json_records(request):
    """Session-wide record list, flushed to ``--json PATH`` at exit."""
    records: list[dict] = []
    yield records
    path = request.config.getoption("--json")
    if path and records:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(records, handle, indent=2)
            handle.write("\n")


@pytest.fixture
def record_json(json_records):
    """Append one perf record; a no-op sink unless ``--json`` was given.

    Usage: ``record_json("stream_fast", n=..., m=..., secs=...,
    bits_per_sec=...)``.  ``peak_rss`` (bytes, the process high-water
    mark at record time — see :func:`_peak_rss_bytes`) is stamped
    automatically; extra keyword fields pass through verbatim.
    """

    def _record(name: str, *, n: int, m: int, secs: float, bits_per_sec=None, **extra):
        entry = {
            "name": name,
            "n": int(n),
            "m": int(m),
            "secs": float(secs),
            "bits_per_sec": None if bits_per_sec is None else float(bits_per_sec),
            "peak_rss": _peak_rss_bytes(),
            "cpu_count": os.cpu_count(),
        }
        entry.update(extra)
        json_records.append(entry)
        return entry

    return _record


@pytest.fixture
def repeat(request):
    """Best-of-N attempt count from ``--repeat N``.

    Benchmarks use this to size their retry loops: ``best = min(run()
    for _ in range(repeat(default)))``.  Without the flag each
    benchmark's own default applies, so existing invocations keep their
    historical behavior.
    """
    value = request.config.getoption("--repeat")
    if value is not None and value < 1:
        raise pytest.UsageError("--repeat must be a positive integer")

    def _repeat(default: int = 1) -> int:
        return default if value is None else value

    return _repeat


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory where regenerated tables/figures are written."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a rendered table/series to ``benchmarks/results/<name>.txt``."""

    def _record(name: str, text: str) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n=== {name} ===\n{text}")
        return path

    return _record
