"""Benchmark / regeneration of Figure 5 (padding-length sweep).

Paper reference: Fig 5, Section VII-B.  Retail and MSNBC item-set data,
padding length ell in 1..6, reporting (left) total MSE over all items
and (right) MSE over the top-5 frequent items.  Claims:

* IDUE-PS outperforms RAPPOR-PS and OUE-PS across ell on both metrics;
* ell drives a bias/variance trade-off — too small underestimates
  (truncation bias), too large inflates variance by ell^2.

Scale note: surrogate Retail at n = 20k, m = 2000; surrogate MSNBC at
n = 50k (original ~1M), m = 14 as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure5, format_series
from repro.experiments.config import Figure5Config

RETAIL = Figure5Config(dataset="retail", n=20_000, m=2_000, ells=(1, 2, 3, 4, 5, 6), trials=2)
MSNBC = Figure5Config(dataset="msnbc", n=50_000, m=14, ells=(1, 2, 3, 4, 5, 6), trials=2)


def _record_panels(result, name, record_result):
    left = format_series(
        result["x_label"], result["x"], result["series"],
        title=f"{name} — total MSE (all items), n={result['n']}, m={result['m']}",
    )
    right = format_series(
        result["x_label"], result["x"], result["series_topk"],
        title=f"{name} — MSE (top-5 frequent items)",
    )
    record_result(name, left + "\n\n" + right)


def _check_claims(result):
    idue = np.array(result["series"]["IDUE-PS"])
    oue = np.array(result["series"]["OUE-PS"])
    rappor = np.array(result["series"]["RAPPOR-PS"])
    # IDUE-PS never loses on total MSE.
    assert np.all(idue <= oue * 1.10)
    assert np.all(idue <= rappor * 1.10)
    # ell matters: the best and worst ell differ substantially.
    assert idue.max() > idue.min() * 1.2


def bench_fig5_retail(benchmark, record_result):
    result = benchmark.pedantic(figure5, args=(RETAIL,), rounds=1)
    _record_panels(result, "fig5_retail", record_result)
    _check_claims(result)


def bench_fig5_msnbc(benchmark, record_result):
    result = benchmark.pedantic(figure5, args=(MSNBC,), rounds=1)
    _record_panels(result, "fig5_msnbc", record_result)
    _check_claims(result)
