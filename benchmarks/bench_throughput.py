"""Throughput / latency micro-benchmarks for the core operations.

These time the operational costs a deployment cares about:

* device-side perturbation rate (reports / second);
* the sampler kernels: streamed-exact bits/s with the frozen
  ``bitexact`` float64 path versus the packed ``fast`` kernel — the
  headline of the ``repro.kernels`` subsystem (target: fast >= 4x the
  PR 1 streamed-exact baseline on the same machine);
* PS sampling rate over ragged item-set batches;
* server-side calibration latency at Kosarak-scale domains;
* optimization latency versus the number of privacy levels t (the
  paper's scalability claim: cost depends on t, not on m or 2^m).

Run with ``--json PATH`` (``make bench-json``) to persist machine-
readable ``{name, n, m, secs, bits_per_sec, peak_rss}`` records.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import BudgetSpec, FrequencyEstimator, IDUE, IDUEPS, OptimizedUnaryEncoding
from repro.datasets import kosarak_like, paper_default_spec, zipf_items
from repro.kernels import (
    BITEXACT,
    FAST,
    available_compute_backends,
    compute_backend_names,
)
from repro.optim import solve
from repro.pipeline import stream_counts
from repro.simulation import simulate_counts_from_true

# BENCH_SMOKE=1 shrinks the sampler workload to CI-smoke size: the run
# validates that every backend executes and emits a well-formed record,
# not that the numbers mean anything (see `make bench-smoke`).
BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

# Same workload as bench_pipeline's PR 1 streamed-exact baseline, so the
# bitexact/fast ratio reads directly as the kernel speedup.
SAMPLER_N = 2_000 if BENCH_SMOKE else 40_000
SAMPLER_M = 256 if BENCH_SMOKE else 2_000
SAMPLER_CHUNK = 512 if BENCH_SMOKE else 2_048

# PR 6's committed fast-path number on the reference box
# (benchmarks/results/BENCH_throughput.json) — the bar the fastest
# available backend must clear where the hardware can express it.
PR6_FAST_BITS_PER_SEC = 1_651_707_916.0
BACKEND_SPEEDUP_BAR = 1.5

# bits/s per backend, filled by bench_sampler_fast_backend and read by
# the bar assertion below (file-order execution).
_BACKEND_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def sampler_workload():
    items = zipf_items(SAMPLER_N, SAMPLER_M, rng=0)
    return OptimizedUnaryEncoding(1.5, SAMPLER_M), items


def _bench_stream(
    benchmark, workload, sampler, packed, name, record_result, record_json, rounds=3
):
    mechanism, items = workload
    result = benchmark.pedantic(
        stream_counts,
        args=(mechanism, items),
        kwargs=dict(
            chunk_size=SAMPLER_CHUNK,
            rng=sampler.make_generator(1),
            packed=packed,
            sampler=sampler,
        ),
        rounds=rounds,
        warmup_rounds=1,
    )
    secs = benchmark.stats["mean"]
    bits = SAMPLER_N * SAMPLER_M
    record_json(
        name,
        n=SAMPLER_N,
        m=SAMPLER_M,
        secs=secs,
        bits_per_sec=bits / secs,
        sampler=sampler.exactness,
        packed=packed,
    )
    record_result(
        name,
        f"{name}: n={SAMPLER_N}, m={SAMPLER_M}, chunk={SAMPLER_CHUNK}, "
        f"sampler={sampler.exactness}, packed={packed}\n"
        f"mean {secs:.3f}s -> {bits / secs / 1e6:,.0f} Mbit/s "
        f"({SAMPLER_N / secs:,.0f} reports/s)",
    )
    assert result.n == SAMPLER_N


def bench_sampler_bitexact_stream(
    benchmark, sampler_workload, record_result, record_json, repeat
):
    """Before: the PR 1 streamed-exact path (float64 PCG64 per coin)."""
    _bench_stream(
        benchmark,
        sampler_workload,
        BITEXACT,
        False,
        "throughput_sampler_bitexact",
        record_result,
        record_json,
        rounds=repeat(3),
    )


def bench_sampler_fast_packed_stream(
    benchmark, sampler_workload, record_result, record_json, repeat
):
    """After: the packed bit-plane kernel, wire format end to end."""
    _bench_stream(
        benchmark,
        sampler_workload,
        FAST,
        True,
        "throughput_sampler_fast",
        record_result,
        record_json,
        rounds=repeat(3),
    )


@pytest.mark.parametrize("backend_name", sorted(compute_backend_names()))
def bench_sampler_fast_backend(
    benchmark, sampler_workload, record_result, record_json, repeat, backend_name
):
    """The fast packed path on each registered compute backend.

    Backends whose optional dependency is absent skip cleanly; each run
    records ``backend``, ``dtype`` and ``cpu_count`` alongside the
    throughput so committed numbers are attributable to a machine shape.
    Best-of-N: ``--repeat N`` widens the round count and the recorded
    seconds are the minimum.
    """
    if backend_name not in available_compute_backends():
        pytest.skip(f"compute backend {backend_name!r} is not available here")
    mechanism, items = sampler_workload
    sampler = FAST.with_compute(backend_name)
    rounds = repeat(3)
    result = benchmark.pedantic(
        stream_counts,
        args=(mechanism, items),
        kwargs=dict(
            chunk_size=SAMPLER_CHUNK,
            rng=sampler.make_generator(1),
            packed=True,
            sampler=sampler,
        ),
        rounds=rounds,
        warmup_rounds=1,
    )
    secs = benchmark.stats["min"]
    bits = SAMPLER_N * SAMPLER_M
    name = f"throughput_sampler_fast_{backend_name}"
    _BACKEND_RESULTS[backend_name] = {"secs": secs, "bits_per_sec": bits / secs}
    record_json(
        name,
        n=SAMPLER_N,
        m=SAMPLER_M,
        secs=secs,
        bits_per_sec=bits / secs,
        sampler=sampler.exactness,
        packed=True,
        backend=backend_name,
        dtype=sampler.dtype,
        repeat=rounds,
        smoke=BENCH_SMOKE,
    )
    record_result(
        name,
        f"{name}: n={SAMPLER_N}, m={SAMPLER_M}, chunk={SAMPLER_CHUNK}, "
        f"backend={backend_name}, repeat={rounds}\n"
        f"best {secs:.3f}s -> {bits / secs / 1e6:,.0f} Mbit/s "
        f"({SAMPLER_N / secs:,.0f} reports/s)",
    )
    assert result.n == SAMPLER_N


def bench_sampler_fast_backend_bar(record_result, record_json):
    """Hardware-gated speedup bar: fastest backend vs the PR 6 fast path.

    The parallel backends need either >= 2 cores (threaded) or the numba
    extra (JIT) to beat the single-core numpy kernel; on a box with
    neither, the bar cannot physically be met and the assertion is
    skipped — the honest per-backend numbers above are still recorded.
    """
    if not _BACKEND_RESULTS:
        pytest.skip("no backend results collected in this session")
    best_name = max(
        _BACKEND_RESULTS, key=lambda name: _BACKEND_RESULTS[name]["bits_per_sec"]
    )
    best = _BACKEND_RESULTS[best_name]
    speedup = best["bits_per_sec"] / PR6_FAST_BITS_PER_SEC
    cores = os.cpu_count() or 1
    parallel_capable = cores >= 2 or "numba" in available_compute_backends()
    record_json(
        "throughput_sampler_fast_best_backend",
        n=SAMPLER_N,
        m=SAMPLER_M,
        secs=best["secs"],
        bits_per_sec=best["bits_per_sec"],
        backend=best_name,
        speedup_vs_pr6=speedup,
        parallel_capable=parallel_capable,
        smoke=BENCH_SMOKE,
    )
    record_result(
        "throughput_sampler_fast_best_backend",
        f"best backend {best_name}: "
        f"{best['bits_per_sec'] / 1e6:,.0f} Mbit/s = {speedup:.2f}x PR 6 "
        f"fast path (cores={cores}, parallel_capable={parallel_capable})",
    )
    if BENCH_SMOKE or not parallel_capable:
        return  # recorded honestly; the bar needs parallel hardware
    assert speedup >= BACKEND_SPEEDUP_BAR, (
        f"fastest backend {best_name} reached only {speedup:.2f}x the PR 6 "
        f"fast path; the backend registry must buy >= "
        f"{BACKEND_SPEEDUP_BAR}x on parallel-capable hardware"
    )


@pytest.fixture(scope="module")
def idue_mechanism():
    spec = paper_default_spec(2.0, m=1000, rng=0)
    return IDUE.optimized(spec, model="opt0")


def bench_perturb_many_1k_users(benchmark, idue_mechanism):
    rng = np.random.default_rng(0)
    items = rng.integers(idue_mechanism.m, size=1000)
    benchmark(idue_mechanism.perturb_many, items, np.random.default_rng(1))


def bench_ps_sampling_100k_users(benchmark):
    data = kosarak_like(n=100_000, m=5000, rng=0)
    mech = IDUEPS.oue_ps(1.0, m=5000, ell=5)
    benchmark(
        mech.sampler.sample_many,
        data.flat_items,
        data.offsets,
        np.random.default_rng(2),
    )


def bench_fast_simulation_kosarak_domain(benchmark):
    """Aggregate-count simulation at the paper's full Kosarak width."""
    m, n = 41_270, 990_000
    rng = np.random.default_rng(0)
    truth = rng.multinomial(n, np.full(m, 1.0 / m))
    a = np.full(m, 0.5)
    b = np.full(m, 0.2)
    benchmark(simulate_counts_from_true, truth, n, a, b, np.random.default_rng(3))


def bench_estimator_calibration_kosarak_domain(benchmark):
    m, n = 41_270, 990_000
    est = FrequencyEstimator(np.full(m, 0.5), np.full(m, 0.2), n)
    counts = np.full(m, n // 5, dtype=float)
    benchmark(est.estimate, counts)


@pytest.mark.parametrize("t", [2, 4, 10, 20])
def bench_opt0_latency_by_levels(benchmark, t):
    """Optimization cost grows with t only (2t variables, t^2 constraints)."""
    epsilons = np.linspace(1.0, 4.0, t)
    sizes = np.full(t, 50)
    spec = BudgetSpec.from_level_sizes(epsilons, sizes)
    benchmark.pedantic(solve, args=(spec,), kwargs={"model": "opt0"}, rounds=1)
