"""Throughput / latency micro-benchmarks for the core operations.

These time the operational costs a deployment cares about:

* device-side perturbation rate (reports / second);
* the sampler kernels: streamed-exact bits/s with the frozen
  ``bitexact`` float64 path versus the packed ``fast`` kernel — the
  headline of the ``repro.kernels`` subsystem (target: fast >= 4x the
  PR 1 streamed-exact baseline on the same machine);
* PS sampling rate over ragged item-set batches;
* server-side calibration latency at Kosarak-scale domains;
* optimization latency versus the number of privacy levels t (the
  paper's scalability claim: cost depends on t, not on m or 2^m).

Run with ``--json PATH`` (``make bench-json``) to persist machine-
readable ``{name, n, m, secs, bits_per_sec, peak_rss}`` records.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec, FrequencyEstimator, IDUE, IDUEPS, OptimizedUnaryEncoding
from repro.datasets import kosarak_like, paper_default_spec, zipf_items
from repro.kernels import BITEXACT, FAST
from repro.optim import solve
from repro.pipeline import stream_counts
from repro.simulation import simulate_counts_from_true

# Same workload as bench_pipeline's PR 1 streamed-exact baseline, so the
# bitexact/fast ratio reads directly as the kernel speedup.
SAMPLER_N = 40_000
SAMPLER_M = 2_000
SAMPLER_CHUNK = 2_048


@pytest.fixture(scope="module")
def sampler_workload():
    items = zipf_items(SAMPLER_N, SAMPLER_M, rng=0)
    return OptimizedUnaryEncoding(1.5, SAMPLER_M), items


def _bench_stream(benchmark, workload, sampler, packed, name, record_result, record_json):
    mechanism, items = workload
    result = benchmark.pedantic(
        stream_counts,
        args=(mechanism, items),
        kwargs=dict(
            chunk_size=SAMPLER_CHUNK,
            rng=sampler.make_generator(1),
            packed=packed,
            sampler=sampler,
        ),
        rounds=3,
        warmup_rounds=1,
    )
    secs = benchmark.stats["mean"]
    bits = SAMPLER_N * SAMPLER_M
    record_json(
        name,
        n=SAMPLER_N,
        m=SAMPLER_M,
        secs=secs,
        bits_per_sec=bits / secs,
        sampler=sampler.exactness,
        packed=packed,
    )
    record_result(
        name,
        f"{name}: n={SAMPLER_N}, m={SAMPLER_M}, chunk={SAMPLER_CHUNK}, "
        f"sampler={sampler.exactness}, packed={packed}\n"
        f"mean {secs:.3f}s -> {bits / secs / 1e6:,.0f} Mbit/s "
        f"({SAMPLER_N / secs:,.0f} reports/s)",
    )
    assert result.n == SAMPLER_N


def bench_sampler_bitexact_stream(benchmark, sampler_workload, record_result, record_json):
    """Before: the PR 1 streamed-exact path (float64 PCG64 per coin)."""
    _bench_stream(
        benchmark,
        sampler_workload,
        BITEXACT,
        False,
        "throughput_sampler_bitexact",
        record_result,
        record_json,
    )


def bench_sampler_fast_packed_stream(benchmark, sampler_workload, record_result, record_json):
    """After: the packed bit-plane kernel, wire format end to end."""
    _bench_stream(
        benchmark,
        sampler_workload,
        FAST,
        True,
        "throughput_sampler_fast",
        record_result,
        record_json,
    )


@pytest.fixture(scope="module")
def idue_mechanism():
    spec = paper_default_spec(2.0, m=1000, rng=0)
    return IDUE.optimized(spec, model="opt0")


def bench_perturb_many_1k_users(benchmark, idue_mechanism):
    rng = np.random.default_rng(0)
    items = rng.integers(idue_mechanism.m, size=1000)
    benchmark(idue_mechanism.perturb_many, items, np.random.default_rng(1))


def bench_ps_sampling_100k_users(benchmark):
    data = kosarak_like(n=100_000, m=5000, rng=0)
    mech = IDUEPS.oue_ps(1.0, m=5000, ell=5)
    benchmark(
        mech.sampler.sample_many,
        data.flat_items,
        data.offsets,
        np.random.default_rng(2),
    )


def bench_fast_simulation_kosarak_domain(benchmark):
    """Aggregate-count simulation at the paper's full Kosarak width."""
    m, n = 41_270, 990_000
    rng = np.random.default_rng(0)
    truth = rng.multinomial(n, np.full(m, 1.0 / m))
    a = np.full(m, 0.5)
    b = np.full(m, 0.2)
    benchmark(simulate_counts_from_true, truth, n, a, b, np.random.default_rng(3))


def bench_estimator_calibration_kosarak_domain(benchmark):
    m, n = 41_270, 990_000
    est = FrequencyEstimator(np.full(m, 0.5), np.full(m, 0.2), n)
    counts = np.full(m, n // 5, dtype=float)
    benchmark(est.estimate, counts)


@pytest.mark.parametrize("t", [2, 4, 10, 20])
def bench_opt0_latency_by_levels(benchmark, t):
    """Optimization cost grows with t only (2t variables, t^2 constraints)."""
    epsilons = np.linspace(1.0, 4.0, t)
    sizes = np.full(t, 50)
    spec = BudgetSpec.from_level_sizes(epsilons, sizes)
    benchmark.pedantic(solve, args=(spec,), kwargs={"model": "opt0"}, rounds=1)
