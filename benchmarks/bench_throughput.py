"""Throughput / latency micro-benchmarks for the core operations.

These time the operational costs a deployment cares about:

* device-side perturbation rate (reports / second);
* PS sampling rate over ragged item-set batches;
* server-side calibration latency at Kosarak-scale domains;
* optimization latency versus the number of privacy levels t (the
  paper's scalability claim: cost depends on t, not on m or 2^m).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetSpec, FrequencyEstimator, IDUE, IDUEPS
from repro.datasets import kosarak_like, paper_default_spec
from repro.optim import solve
from repro.simulation import simulate_counts_from_true


@pytest.fixture(scope="module")
def idue_mechanism():
    spec = paper_default_spec(2.0, m=1000, rng=0)
    return IDUE.optimized(spec, model="opt0")


def bench_perturb_many_1k_users(benchmark, idue_mechanism):
    rng = np.random.default_rng(0)
    items = rng.integers(idue_mechanism.m, size=1000)
    benchmark(idue_mechanism.perturb_many, items, np.random.default_rng(1))


def bench_ps_sampling_100k_users(benchmark):
    data = kosarak_like(n=100_000, m=5000, rng=0)
    mech = IDUEPS.oue_ps(1.0, m=5000, ell=5)
    benchmark(
        mech.sampler.sample_many,
        data.flat_items,
        data.offsets,
        np.random.default_rng(2),
    )


def bench_fast_simulation_kosarak_domain(benchmark):
    """Aggregate-count simulation at the paper's full Kosarak width."""
    m, n = 41_270, 990_000
    rng = np.random.default_rng(0)
    truth = rng.multinomial(n, np.full(m, 1.0 / m))
    a = np.full(m, 0.5)
    b = np.full(m, 0.2)
    benchmark(simulate_counts_from_true, truth, n, a, b, np.random.default_rng(3))


def bench_estimator_calibration_kosarak_domain(benchmark):
    m, n = 41_270, 990_000
    est = FrequencyEstimator(np.full(m, 0.5), np.full(m, 0.2), n)
    counts = np.full(m, n // 5, dtype=float)
    benchmark(est.estimate, counts)


@pytest.mark.parametrize("t", [2, 4, 10, 20])
def bench_opt0_latency_by_levels(benchmark, t):
    """Optimization cost grows with t only (2t variables, t^2 constraints)."""
    epsilons = np.linspace(1.0, 4.0, t)
    sizes = np.full(t, 50)
    spec = BudgetSpec.from_level_sizes(epsilons, sizes)
    benchmark.pedantic(solve, args=(spec,), kwargs={"model": "opt0"}, rounds=1)
