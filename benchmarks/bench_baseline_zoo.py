"""Context benchmark: the full LDP frequency-oracle zoo vs IDUE.

Beyond the paper's figures, this bench places IDUE among *all* the
classical frequency oracles of Wang et al. [6] — GRR, SUE (basic
RAPPOR), OUE, OLH, SHE, THE — on one workload, at the two budget regimes
that matter:

* **uniform budgets** (t = 1): IDUE must collapse into the best UE
  baseline (no discrimination possible, nothing to exploit);
* **the paper's skewed 4-level budgets**: IDUE pulls ahead of every
  uniform-budget oracle because only it may spend the relaxed budgets.

Theoretical per-item variance is used for the closed-form oracles and
the exact Eq. 9 total for the UE family, so the table is deterministic.
"""

from __future__ import annotations


from repro import BudgetSpec, IDUE
from repro.datasets import paper_default_spec, zipf_items, true_counts_from_items
from repro.estimation import ue_total_mse
from repro.experiments.reporting import format_table
from repro.mechanisms import (
    GeneralizedRandomizedResponse,
    OptimizedLocalHashing,
    OptimizedUnaryEncoding,
    SummationHistogramEncoding,
    SymmetricUnaryEncoding,
    ThresholdingHistogramEncoding,
)

N, M, EPSILON = 50_000, 200, 2.0


def _total_mse_table():
    items = zipf_items(N, M, s=1.2, rng=0)
    truth = true_counts_from_items(items, M)
    skewed_spec = paper_default_spec(EPSILON, M, rng=1)
    uniform_spec = BudgetSpec.uniform(EPSILON, M)

    def ue_total(mech):
        return ue_total_mse(N, mech.a, mech.b, truth)

    grr = GeneralizedRandomizedResponse(EPSILON, M)
    olh = OptimizedLocalHashing(EPSILON, M)
    she = SummationHistogramEncoding(EPSILON, M)
    rows = [
        ["GRR", float(sum(grr.variance_per_item(N, c) for c in truth))],
        ["SUE/RAPPOR", ue_total(SymmetricUnaryEncoding(EPSILON, M))],
        ["OUE", ue_total(OptimizedUnaryEncoding(EPSILON, M))],
        ["OLH", olh.variance_per_item(N) * M],
        ["SHE", she.variance_per_item(N) * M],
        ["THE", ue_total(ThresholdingHistogramEncoding(EPSILON, M))],
        ["IDUE (uniform budgets)", ue_total(IDUE.optimized(uniform_spec, model="opt0"))],
        ["IDUE (skewed budgets)", ue_total(IDUE.optimized(skewed_spec, model="opt0"))],
    ]
    return rows


def bench_baseline_zoo(benchmark, record_result):
    rows = benchmark.pedantic(_total_mse_table, rounds=1)
    record_result(
        "baseline_zoo",
        format_table(["mechanism", f"total MSE (n={N}, m={M}, eps={EPSILON})"], rows),
    )
    values = {name: value for name, value in rows}

    # GRR degrades with domain size; every vector oracle beats it at m=200.
    assert values["OUE"] < values["GRR"]
    # OUE is the best uniform-budget UE variant; OLH matches it closely.
    assert values["OUE"] <= values["SUE/RAPPOR"]
    assert abs(values["OLH"] - values["OUE"]) / values["OUE"] < 0.3
    # Uniform-budget IDUE cannot beat the best uniform baseline by much
    # (it *is* one), but with skewed budgets it beats them all.
    assert values["IDUE (uniform budgets)"] <= values["OUE"] * 1.02
    for name in ("GRR", "SUE/RAPPOR", "OUE", "OLH", "SHE", "THE"):
        assert values["IDUE (skewed budgets)"] < values[name]
