"""Extension benchmark: data-driven padding-length selection.

Quantifies the Fig 5 future-work answer: the exact PS error
decomposition predicts the total-MSE-vs-ell curve well enough that the
selected ell is (near-)optimal when measured empirically.  Prints the
predicted and measured curves side by side.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import paper_default_spec, retail_like
from repro.estimation import select_padding_length
from repro.experiments import empirical_total_mse_itemset
from repro.experiments.reporting import format_table
from repro.mechanisms import IDUEPS

M, N, EPSILON = 500, 10_000, 2.0
CANDIDATES = (1, 2, 3, 4, 5, 6)


def _run():
    rng = np.random.default_rng(0)
    spec = paper_default_spec(EPSILON, M, rng=rng)
    data = retail_like(n=N, m=M, rng=1)
    choice = select_padding_length(data, spec, candidates=CANDIDATES, model="opt0")
    rows = []
    measured = {}
    for ell in CANDIDATES:
        mech = IDUEPS.optimized(spec, ell, model="opt0")
        measured[ell] = empirical_total_mse_itemset(mech, data, trials=3, rng=rng)
        rows.append([ell, choice.curve[ell], measured[ell]])
    return choice, measured, rows


def bench_padding_selection(benchmark, record_result):
    choice, measured, rows = benchmark.pedantic(_run, rounds=1)
    record_result(
        "padding_selection",
        format_table(["ell", "predicted total MSE", "measured total MSE"], rows)
        + f"\nselected ell = {choice.ell}",
    )
    # The selected ell's measured MSE is within 15% of the measured best.
    best_measured = min(measured.values())
    assert measured[choice.ell] <= best_measured * 1.15
    # Prediction tracks measurement within a factor ~1.5 everywhere
    # (both use the same decomposition; randomness drives the residual).
    for ell in CANDIDATES:
        ratio = choice.curve[ell] / measured[ell]
        assert 0.5 < ratio < 1.6
