"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of its discussion
sections:

* **opt model hierarchy** (Section V-D): worst-case objective of opt0 vs
  opt1 vs opt2 across budget scales;
* **AvgID vs MinID** (Section IV-C "Other Instantiations"): the average
  pair-budget function buys utility by weakening cross-level bounds;
* **Incomplete policy graphs** (Section IV-C "Additional Gain"): a star
  policy centered on the sensitive level beats the complete graph;
* **dummy budget choice** (Section VI-B): eps* only affects dummy bits,
  so the estimator's real-item MSE is invariant to it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AVG, MIN, BudgetSpec, IDUEPS, PolicyGraph
from repro.experiments.reporting import format_table
from repro.optim import solve


@pytest.fixture(scope="module")
def spec():
    return BudgetSpec.from_level_sizes([1.0, 1.2, 2.0, 4.0], [5, 5, 5, 85])


def bench_ablation_opt_models(benchmark, record_result, spec):
    def run():
        rows = []
        for scale in (0.5, 1.0, 2.0):
            scaled = spec.scaled(scale)
            values = {
                model: solve(scaled, model=model).objective
                for model in ("opt0", "opt1", "opt2")
            }
            rows.append([scale, values["opt0"], values["opt1"], values["opt2"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    record_result(
        "ablation_opt_models",
        format_table(["eps scale", "opt0", "opt1", "opt2"], rows),
    )
    for _, opt0, opt1, opt2 in rows:
        assert opt0 <= opt1 * (1 + 1e-9)
        assert opt0 <= opt2 * (1 + 1e-9)


def bench_ablation_avg_vs_min(benchmark, record_result, spec):
    def run():
        rows = []
        for model in ("opt0", "opt1", "opt2"):
            min_obj = solve(spec, r=MIN, model=model).objective
            avg_obj = solve(spec, r=AVG, model=model).objective
            rows.append([model, min_obj, avg_obj, min_obj / avg_obj])
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    record_result(
        "ablation_avg_vs_min",
        format_table(["model", "MinID obj", "AvgID obj", "Min/Avg ratio"], rows),
    )
    for _, min_obj, avg_obj, _ in rows:
        # Avg budgets are >= min budgets pairwise => no worse utility.
        assert avg_obj <= min_obj * (1 + 1e-9)


def bench_ablation_policy_graph(benchmark, record_result, spec):
    def run():
        complete = solve(spec, model="opt0").objective
        star = solve(
            spec, model="opt0", policy=PolicyGraph.star(spec.t, center=0)
        ).objective
        return complete, star

    complete, star = benchmark.pedantic(run, rounds=1)
    record_result(
        "ablation_policy_graph",
        format_table(
            ["policy", "opt0 objective"],
            [["complete graph", complete], ["star (sensitive center)", star]],
        ),
    )
    # Dropping benign-vs-benign constraints can only help — and with the
    # paper's skewed levels it helps measurably.
    assert star <= complete * (1 + 1e-9)
    assert star < complete * 0.999


def bench_ablation_dummy_budget(benchmark, record_result, spec):
    def run():
        results = {}
        for dummy_eps in (spec.min_epsilon, float(spec.level_epsilons[-1])):
            mech = IDUEPS.optimized(spec, ell=4, model="opt1", dummy_epsilon=dummy_eps)
            results[dummy_eps] = (
                mech.a[: spec.m].copy(),
                mech.b[: spec.m].copy(),
            )
        return results

    results = benchmark.pedantic(run, rounds=1)
    keys = sorted(results)
    record_result(
        "ablation_dummy_budget",
        format_table(
            ["dummy eps", "real-bit a (level 0)", "real-bit b (level 0)"],
            [[k, results[k][0][0], results[k][1][0]] for k in keys],
        ),
    )
    # Section VI-B: the dummy budget choice does not change the real-item
    # parameters (objective and constraints only involve original items).
    assert np.allclose(results[keys[0]][0], results[keys[1]][0])
    assert np.allclose(results[keys[0]][1], results[keys[1]][1])
