"""Benchmark / regeneration of Table II (the 5-category toy example).

Paper reference: Table II, Section V-E.  Budgets eps_1 = ln 4 (HIV),
eps_2..5 = ln 6.  The paper reports:

    RAPPOR: flip 0.33 everywhere, Var 2n/item, total 10n
    OUE:    flip1 0.5 / flip0 0.2, Var 1.78n + c_i, total 9.9n
    IDUE:   flip1 0.41/0.33, flip0 0.33/0.28, total 8.68n .. 8.86n

We assert the exact baseline numbers and the ordering; our opt0 finds a
slightly *better* feasible IDUE point than the paper's (total <= 8.87n),
which the EXPERIMENTS.md entry documents.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import table2_toy_example


def bench_table2(benchmark, record_result):
    result = benchmark.pedantic(table2_toy_example, rounds=3, iterations=1)
    record_result("table2_toy", result["text"])

    rappor = result["results"]["RAPPOR"]
    oue = result["results"]["OUE"]
    idue = result["results"]["IDUE"]

    # Exact baseline numbers from the paper.
    assert 1.0 - rappor["a"][0] == pytest.approx(1 / 3, abs=1e-9)
    assert rappor["noise_coefficients"][0] == pytest.approx(2.0)
    assert rappor["total_range"][1] == pytest.approx(10.0)
    assert oue["a"][0] == pytest.approx(0.5)
    assert oue["b"][0] == pytest.approx(0.2)
    assert oue["total_range"][1] == pytest.approx(9.889, abs=2e-3)

    # IDUE: input-discriminative flips, total below the paper's 8.86n top.
    assert (1 - idue["a"][0]) > (1 - idue["a"][1])  # sensitive bit flips more
    assert idue["b"][0] > idue["b"][1]
    assert idue["total_range"][1] <= 8.87
    assert idue["total_range"][1] < oue["total_range"][1] < rappor["total_range"][1]
