"""Benchmark / regeneration of Figure 4(a) (budget-distribution sweep).

Paper reference: Fig 4(a), Section VII-B.  Kosarak single-item view
(first item per user), budget distributions {5,5,5,85}%, {10,10,10,70}%
and {25,25,25,25}% over levels {eps, 1.2eps, 2eps, 4eps}.  Claims:

* IDUE beats RAPPOR and OUE at every eps;
* IDUE's advantage grows as the distribution skews toward insensitive
  items, and its curve approaches OUE's as it becomes uniform.

Scale note: surrogate Kosarak at n = 20k, m = 2000 (the original is
990k x 41270); all mechanisms see the same dataset so orderings carry.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure4a, format_series
from repro.experiments.config import Figure4aConfig

CONFIG = Figure4aConfig(
    n=20_000, m=2_000, epsilons=(1.0, 1.5, 2.0, 2.5, 3.0), trials=3, seed=0
)


def bench_fig4a(benchmark, record_result):
    result = benchmark.pedantic(figure4a, args=(CONFIG,), rounds=1)
    record_result(
        "fig4a_budget_distributions",
        format_series(
            result["x_label"], result["x"], result["series"],
            title=f"Fig 4(a): {result['metric']}, n={result['n']}, m={result['m']}",
        ),
    )

    series = result["series"]
    skewed = np.array(series["IDUE [5%, 5%, 5%, 85%]"])
    middle = np.array(series["IDUE [10%, 10%, 10%, 70%]"])
    uniform = np.array(series["IDUE [25%, 25%, 25%, 25%]"])
    oue = np.array(series["OUE"])
    rappor = np.array(series["RAPPOR"])

    # IDUE (most-skewed) beats both baselines everywhere.
    assert np.all(skewed <= oue * 1.05)
    assert np.all(skewed <= rappor * 1.05)
    # Advantage ordering: more skew toward insensitive items, more gain.
    assert skewed.mean() <= middle.mean() * 1.05
    assert middle.mean() <= uniform.mean() * 1.05
    # The uniform-distribution IDUE stays close to OUE (paper's remark).
    assert np.all(uniform <= oue * 1.10)
