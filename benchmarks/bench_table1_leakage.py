"""Benchmark / regeneration of Table I (prior-posterior leakage bounds).

Paper reference: Table I, Section IV-B.  The table is analytic, so the
benchmark times the bound computation and asserts the structural claims:
LDP and PLDP share the symmetric ``e^{±eps}`` form, Geo-Ind depends on a
prior and metric, and MinID-LDP's bound is input-discriminative.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import table1_leakage_bounds


def bench_table1(benchmark, record_result):
    result = benchmark.pedantic(table1_leakage_bounds, rounds=3, iterations=1)
    record_result("table1_leakage", result["text"])

    rows = {(" ".join(map(str, row[:2]))): row for row in result["rows"]}
    ldp_row = result["rows"][0]
    pldp_row = result["rows"][1]
    minid_rows = [row for row in result["rows"] if row[0] == "MinID-LDP"]

    # LDP and PLDP at the same budget coincide.
    assert ldp_row[2:] == pldp_row[2:]
    # Upper/lower bounds are reciprocal for the exponential-form rows.
    assert ldp_row[2] * ldp_row[3] == 1.0 or abs(ldp_row[2] * ldp_row[3] - 1) < 1e-9
    # MinID-LDP is input-discriminative: distinct budgets, distinct bounds.
    uppers = {round(row[3], 6) for row in minid_rows}
    assert len(uppers) == len(minid_rows)
    # And every MinID bound respects the 2*min{E} transitive cap.
    eps_min = np.log(4.0)
    assert all(row[3] <= np.exp(2 * eps_min) + 1e-9 for row in minid_rows)
