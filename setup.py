"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package
(``python setup.py develop``), e.g. fully offline machines where pip's
PEP 517 editable path cannot build a wheel.
"""

from setuptools import setup

setup()
