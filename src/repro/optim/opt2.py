"""opt2 — optimization constrained to the OUE structure (Eq. 13).

Fixing ``a_i = 1/2`` turns the privacy constraints (7) into the linear
form ``e^{R[i, j]} b_i + b_j >= 1`` and the objective into

    f(b) = sum_i m_i b_i (1 - b_i) / (0.5 - b_i)^2         (+ constant 1)

which is convex and *increasing* in each ``b_i``
(``d g / d b = 0.5 / (0.5 - b)^3 > 0``), so the solution sits on the
lower boundary of the feasible polytope.
"""

from __future__ import annotations

import numpy as np

from .constraints import ConstraintSet, worst_case_objective
from .result import OptimizationResult
from .solvers import MARGIN, run_slsqp

__all__ = ["solve_opt2"]

_B_FLOOR = 1e-9
_B_CEILING_GAP = 1e-6  # keep b strictly below 1/2


def _objective(b: np.ndarray, sizes: np.ndarray) -> float:
    return float(np.sum(sizes * b * (1.0 - b) / (0.5 - b) ** 2))


def _gradient(b: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    # d/db [ b(1-b) / (0.5-b)^2 ] = 0.5 / (0.5 - b)^3
    return sizes * 0.5 / (0.5 - b) ** 3


def solve_opt2(constraints: ConstraintSet) -> OptimizationResult:
    """Solve Eq. (13) for the given constraint set.

    The start ``b_i = 1 / (e^{R_min} + 1)`` (with ``R_min`` the smallest
    active bound) is always feasible:
    ``e^{R_ij} b + b >= (e^{R_min} + 1) b = 1``.  The single-level case
    short-circuits to the OUE closed form ``b = 1 / (e^eps + 1)``.
    """
    t = constraints.t
    sizes = constraints.sizes

    finite_bounds = [
        constraints.bounds[i, j]
        for i, j in constraints.pairs
        if np.isfinite(constraints.bounds[i, j])
    ]
    if not finite_bounds:
        # No active constraint at all: push b to (numerically) zero noise.
        b = np.full(t, 1e-6)
        a = np.full(t, 0.5)
        return _package(a, b, constraints, {"label": "opt2-unconstrained"})
    r_min = float(min(finite_bounds))

    if t == 1:
        b = np.array([1.0 / (np.exp(constraints.bounds[0, 0]) + 1.0) + MARGIN])
        a = np.full(1, 0.5)
        return _package(a, b, constraints, {"label": "opt2-closed-form"})

    x0 = np.full(t, 1.0 / (np.exp(r_min) + 1.0) + 1e-9)

    cons = []
    for i, j in constraints.pairs:
        bound = constraints.bounds[i, j]
        if not np.isfinite(bound):
            continue
        coefficient = float(np.exp(bound))
        # e^R * b_i + b_j - 1 >= margin
        cons.append(
            {
                "type": "ineq",
                "fun": (
                    lambda b, i=i, j=j, c=coefficient: c * b[i] + b[j] - 1.0 - MARGIN
                ),
                "jac": (lambda b, i=i, j=j, c=coefficient: _pair_jac(t, i, j, c)),
            }
        )

    bounds = [(float(_B_FLOOR), 0.5 - _B_CEILING_GAP)] * t
    b, diagnostics = run_slsqp(
        lambda b: _objective(b, sizes),
        x0,
        jac=lambda b: _gradient(b, sizes),
        bounds=bounds,
        constraints=cons,
        label="opt2",
    )
    b = _repair(np.clip(b, _B_FLOOR, 0.5 - _B_CEILING_GAP), constraints)
    # Keep the better of {solved point, feasible uniform start}: the
    # start is exactly OUE at the tightest bound, so opt2 never returns
    # anything worse than the OUE baseline even if SLSQP stalls.
    if _objective(x0, sizes) < _objective(b, sizes):
        b = x0
    a = np.full(t, 0.5)
    return _package(a, b, constraints, diagnostics)


def _pair_jac(t: int, i: int, j: int, coefficient: float) -> np.ndarray:
    grad = np.zeros(t)
    grad[i] += coefficient
    grad[j] += 1.0
    return grad


def _repair(b: np.ndarray, constraints: ConstraintSet) -> np.ndarray:
    """Scale b up uniformly until every linear constraint holds.

    The constraints are ``e^R b_i + b_j >= 1``; multiplying b by a factor
    >= 1 (capped below 1/2) restores any marginal infeasibility left by
    solver tolerance.
    """
    worst = 1.0
    for i, j in constraints.pairs:
        bound = constraints.bounds[i, j]
        if not np.isfinite(bound):
            continue
        total = np.exp(bound) * b[i] + b[j]
        if total < 1.0:
            worst = max(worst, 1.0 / total)
    return np.minimum(b * worst, 0.5 - _B_CEILING_GAP)


def _package(a, b, constraints, diagnostics) -> OptimizationResult:
    return OptimizationResult(
        model="opt2",
        a=a,
        b=b,
        constraints=constraints,
        objective=worst_case_objective(a, b, constraints.sizes),
        max_violation=constraints.max_ratio_violation(a, b),
        diagnostics=dict(diagnostics),
    )
