"""opt0 — the worst-case MSE model of Eq. (10), solved directly.

Variables are the per-level pairs ``(a_i, b_i)`` plus one epigraph
variable ``s`` standing for ``max_i (1 - a_i - b_i) / (a_i - b_i)``:

    minimize   sum_i m_i b_i (1-b_i) / (a_i - b_i)^2  +  s
    subject to s >= (1 - a_i - b_i) / (a_i - b_i)              for all i
               ln a_i + ln(1-b_j) - ln b_i - ln(1-a_j) <= R[i,j]
               0 < b_i < a_i < 1

The problem is non-convex, so we run SLSQP from several seeds — the
(always feasible) opt1 and opt2 solutions plus jittered variants — and
keep the best feasible point.  Because the feasible region contains both
RAPPOR's and OUE's parameters, the returned objective is never worse
than either seed (Section V-D).
"""

from __future__ import annotations

import numpy as np

from .constraints import ConstraintSet, worst_case_objective
from .opt1 import solve_opt1
from .opt2 import solve_opt2
from .result import OptimizationResult
from .solvers import MARGIN, run_slsqp
from ..exceptions import SolverError

__all__ = ["solve_opt0"]

_GAP = 1e-6  # minimum a_i - b_i
_EDGE = 1e-7  # keep probabilities away from {0, 1}
_N_JITTER = 4


def _unpack(z: np.ndarray, t: int) -> tuple[np.ndarray, np.ndarray, float]:
    return z[:t], z[t : 2 * t], float(z[2 * t])


def _objective(z: np.ndarray, t: int, sizes: np.ndarray) -> float:
    a, b, s = _unpack(z, t)
    diff = a - b
    if np.any(diff <= 0.0):
        return float("inf")
    return float(np.sum(sizes * b * (1.0 - b) / diff**2) + s)


def _objective_grad(z: np.ndarray, t: int, sizes: np.ndarray) -> np.ndarray:
    a, b, s = _unpack(z, t)
    del s
    diff = a - b
    grad = np.zeros(2 * t + 1)
    grad[:t] = sizes * b * (1.0 - b) * (-2.0) / diff**3
    grad[t : 2 * t] = sizes * ((1.0 - 2.0 * b) * diff + 2.0 * b * (1.0 - b)) / diff**3
    grad[2 * t] = 1.0
    return grad


def _epigraph_constraints(t: int) -> list[dict]:
    cons = []
    for i in range(t):
        def fun(z, i=i, t=t):
            a, b, s = _unpack(z, t)
            return s * (a[i] - b[i]) - (1.0 - a[i] - b[i])

        def jac(z, i=i, t=t):
            a, b, s = _unpack(z, t)
            grad = np.zeros(2 * t + 1)
            grad[i] = s + 1.0
            grad[t + i] = -s + 1.0
            grad[2 * t] = a[i] - b[i]
            return grad

        # s (a_i - b_i) >= 1 - a_i - b_i, multiplied through by the
        # positive (a_i - b_i) to avoid a division in the constraint.
        cons.append({"type": "ineq", "fun": fun, "jac": jac})
    return cons


def _privacy_constraints(constraints: ConstraintSet) -> list[dict]:
    t = constraints.t
    cons = []
    for i, j in constraints.pairs:
        bound = float(constraints.bounds[i, j]) - MARGIN
        if not np.isfinite(bound):
            continue

        def fun(z, i=i, j=j, bnd=bound, t=t):
            a, b, _ = _unpack(z, t)
            value = (
                np.log(a[i]) + np.log(1.0 - b[j]) - np.log(b[i]) - np.log(1.0 - a[j])
            )
            return bnd - value

        def jac(z, i=i, j=j, t=t):
            # g = bnd - (ln a_i + ln(1-b_j) - ln b_i - ln(1-a_j)); the +=
            # accumulation handles the within-level case i == j correctly.
            a, b, _ = _unpack(z, t)
            grad = np.zeros(2 * t + 1)
            grad[i] += -1.0 / a[i]
            grad[t + j] += 1.0 / (1.0 - b[j])
            grad[t + i] += 1.0 / b[i]
            grad[j] += -1.0 / (1.0 - a[j])
            return grad

        cons.append({"type": "ineq", "fun": fun, "jac": jac})
    return cons


def _gap_constraints(t: int) -> list[dict]:
    cons = []
    for i in range(t):
        def fun(z, i=i, t=t):
            return z[i] - z[t + i] - _GAP

        def jac(z, i=i, t=t):
            grad = np.zeros(2 * t + 1)
            grad[i] = 1.0
            grad[t + i] = -1.0
            return grad

        cons.append({"type": "ineq", "fun": fun, "jac": jac})
    return cons


def _seed_points(constraints: ConstraintSet, rng: np.random.Generator) -> list[np.ndarray]:
    """Feasible / near-feasible starting points for multistart SLSQP."""
    t = constraints.t
    seeds: list[tuple[np.ndarray, np.ndarray]] = []
    for solver in (solve_opt1, solve_opt2):
        try:
            result = solver(constraints)
        except SolverError:
            continue
        seeds.append((result.a.copy(), result.b.copy()))
    if seeds:
        # A blend of the two structured solutions explores the interior.
        mean_a = np.mean([s[0] for s in seeds], axis=0)
        mean_b = np.mean([s[1] for s in seeds], axis=0)
        seeds.append((mean_a, mean_b))
    for _ in range(_N_JITTER):
        base_a, base_b = seeds[rng.integers(len(seeds))] if seeds else (
            np.full(t, 0.6),
            np.full(t, 0.2),
        )
        jitter_a = np.clip(base_a * (1.0 + 0.05 * rng.standard_normal(t)), 0.05, 0.95)
        jitter_b = np.clip(base_b * (1.0 + 0.05 * rng.standard_normal(t)), 1e-4, None)
        jitter_b = np.minimum(jitter_b, jitter_a - 10 * _GAP)
        jitter_b = np.clip(jitter_b, 1e-4, 0.95)
        if np.all(jitter_a > jitter_b):
            seeds.append((jitter_a, jitter_b))
    points = []
    for a, b in seeds:
        s = float(np.max((1.0 - a - b) / (a - b)))
        points.append(np.concatenate([a, b, [s]]))
    return points


def _strict_repair(
    a: np.ndarray, b: np.ndarray, constraints: ConstraintSet
) -> tuple[np.ndarray, np.ndarray] | None:
    """Make a near-feasible point *strictly* feasible, or return None.

    Inflating every ``b_i`` by a common factor strictly decreases each
    constraint ratio ``a_i (1-b_j) / (b_i (1-a_j))`` (the numerator's
    ``1-b_j`` shrinks while the denominator's ``b_i`` grows), so a tiny
    multiplicative nudge absorbs solver tolerance without changing the
    solution structure.  Points violating constraints by more than 1e-5
    (a genuinely infeasible solve, not round-off) are rejected.
    """
    if np.any(a <= b) or np.any(b <= 0.0) or np.any(a >= 1.0):
        return None
    a = a.copy()
    b = b.copy()
    for _ in range(50):
        violation = constraints.max_ratio_violation(a, b)
        if violation <= 0.0:
            return a, b
        if violation > 1e-5:
            return None
        b = np.minimum(b * (1.0 + violation + 1e-12), a - _GAP / 2.0)
    return None


def solve_opt0(constraints: ConstraintSet, *, seed: int = 0) -> OptimizationResult:
    """Solve Eq. (10) by multistart SLSQP; never worse than opt1/opt2.

    The opt1 and opt2 solutions are always included as candidate outputs,
    so even if every SLSQP run stalls the returned point is feasible and
    at least as good as the better structured model.
    """
    t = constraints.t
    sizes = constraints.sizes
    rng = np.random.default_rng(seed)

    cons = (
        _privacy_constraints(constraints)
        + _epigraph_constraints(t)
        + _gap_constraints(t)
    )
    bounds = [(float(_EDGE), 1.0 - _EDGE)] * (2 * t) + [(-1e3, 1e3)]

    candidates: list[tuple[float, np.ndarray, np.ndarray, dict]] = []

    def consider(a: np.ndarray, b: np.ndarray, info: dict) -> None:
        repaired = _strict_repair(a, b, constraints)
        if repaired is None:
            return
        a, b = repaired
        candidates.append(
            (worst_case_objective(a, b, sizes), a.copy(), b.copy(), info)
        )

    starts = _seed_points(constraints, rng)
    for z0 in starts:
        a0, b0, _ = _unpack(z0, t)
        consider(a0, b0, {"label": "seed"})
        try:
            z, diagnostics = run_slsqp(
                lambda z: _objective(z, t, sizes),
                z0,
                jac=lambda z: _objective_grad(z, t, sizes),
                bounds=bounds,
                constraints=cons,
                label="opt0",
            )
        except SolverError:
            continue
        a, b, _ = _unpack(z, t)
        consider(a, b, diagnostics)

    if not candidates:
        raise SolverError(
            "opt0: no feasible candidate found (all seeds and solves failed)"
        )
    candidates.sort(key=lambda item: item[0])
    objective, a, b, info = candidates[0]
    return OptimizationResult(
        model="opt0",
        a=a,
        b=b,
        constraints=constraints,
        objective=objective,
        max_violation=constraints.max_ratio_violation(a, b),
        diagnostics={**info, "n_candidates": len(candidates), "n_starts": len(starts)},
    )
