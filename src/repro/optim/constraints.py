"""Privacy-constraint assembly shared by the three optimization models.

Constraint (7) of the paper, at level granularity: for every ordered pair
of levels ``(i, j)``

    a_i (1 - b_j) / (b_i (1 - a_j))  <=  e^{R[i, j]}

with ``R[i, j] = r(eps_i, eps_j)``.  :class:`ConstraintSet` captures the
active pairs (accounting for singleton levels and incomplete policy
graphs) plus the level sizes that weight the objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.budgets import BudgetSpec
from ..core.notions import MIN, RFunction, resolve_r_function
from ..core.policy import PolicyGraph
from ..exceptions import ValidationError

__all__ = ["ConstraintSet", "build_constraints", "worst_case_objective"]


@dataclass(frozen=True)
class ConstraintSet:
    """Active privacy constraints for one optimization instance.

    Attributes
    ----------
    spec:
        The originating budget specification.
    r_name:
        Name of the pair-budget function (for reporting).
    bounds:
        ``t x t`` matrix of log-bounds ``R[i, j]``; ``+inf`` marks pairs
        with no constraint (policy-graph exclusions).
    pairs:
        Ordered list of active ``(i, j)`` ordered pairs.  The diagonal
        pair ``(i, i)`` is active only when level ``i`` has >= 2 items,
        since a singleton level has no within-level input pair.
    sizes:
        Level sizes ``m_i`` (objective weights).
    """

    spec: BudgetSpec
    r_name: str
    bounds: np.ndarray
    pairs: tuple[tuple[int, int], ...]
    sizes: np.ndarray = field(repr=False)

    @property
    def t(self) -> int:
        """Number of privacy levels."""
        return int(self.sizes.size)

    def log_bound(self, i: int, j: int) -> float:
        """``R[i, j]`` — the log-space right-hand side of constraint (7)."""
        return float(self.bounds[i, j])

    def max_ratio_violation(self, a: np.ndarray, b: np.ndarray) -> float:
        """Largest relative violation of (7) over all active pairs.

        Returns ``max over pairs of ratio / e^R - 1`` (<= 0 when feasible),
        used by the solvers' feasibility reports and the audits.
        """
        worst = -np.inf
        for i, j in self.pairs:
            ratio = a[i] * (1.0 - b[j]) / (b[i] * (1.0 - a[j]))
            worst = max(worst, ratio / np.exp(self.bounds[i, j]) - 1.0)
        return float(worst)

    def is_feasible(self, a: np.ndarray, b: np.ndarray, rtol: float = 1e-7) -> bool:
        """Whether ``(a, b)`` satisfies every active constraint up to *rtol*."""
        ordering = np.all(a > b) and np.all(b > 0.0) and np.all(a < 1.0)
        return bool(ordering and self.max_ratio_violation(a, b) <= rtol)


def build_constraints(
    spec: BudgetSpec,
    *,
    r: RFunction | str = MIN,
    policy: PolicyGraph | None = None,
    include_singleton_within: bool = False,
) -> ConstraintSet:
    """Assemble the :class:`ConstraintSet` for one optimization instance.

    Parameters
    ----------
    spec:
        Budget specification.
    r:
        Pair-budget function.
    policy:
        Optional incomplete policy graph over levels; a missing edge
        removes both ordered constraints for that level pair.
    include_singleton_within:
        When True, keep the ``(i, i)`` constraint even for levels with a
        single item (matching the paper's nominal ``t^2`` constraint
        count).  The default drops them, which can only improve utility
        and never weakens the guarantee — a singleton level has no
        within-level pair of distinct inputs to protect.
    """
    r_fn = resolve_r_function(r)
    if policy is not None and policy.n_nodes != spec.t:
        raise ValidationError(
            f"policy graph has {policy.n_nodes} nodes but spec has {spec.t} levels"
        )
    bounds = r_fn.pairwise_matrix(spec.level_epsilons)
    # The diagonal must carry the level's own budget regardless of r:
    # two distinct items of level i are a pair with budget r(eps_i, eps_i),
    # which equals eps_i for min/avg/max alike.
    pairs: list[tuple[int, int]] = []
    sizes = spec.level_sizes
    for i in range(spec.t):
        for j in range(spec.t):
            if i == j:
                if sizes[i] >= 2 or include_singleton_within:
                    pairs.append((i, j))
                continue
            if policy is not None and not policy.has_edge(i, j):
                continue
            pairs.append((i, j))
    if not pairs:
        # Degenerate domain (all-singleton levels with every cross pair
        # excluded, e.g. m = 1): fall back to the paper's nominal
        # within-level constraints so the mechanism still gets sane,
        # budget-respecting parameters.
        pairs = [(i, i) for i in range(spec.t)]
    bounds = bounds.copy()
    if policy is not None:
        mask = ~policy.adjacency()
        np.fill_diagonal(mask, False)
        bounds[mask] = np.inf
    bounds.flags.writeable = False
    sizes_arr = sizes.astype(float)
    sizes_arr.flags.writeable = False
    return ConstraintSet(
        spec=spec,
        r_name=r_fn.name,
        bounds=bounds,
        pairs=tuple(pairs),
        sizes=sizes_arr,
    )


def worst_case_objective(a: np.ndarray, b: np.ndarray, sizes: np.ndarray) -> float:
    """The worst-case total-MSE objective of Eq. (10), scaled by ``1/n``.

    ``f = sum_i m_i b_i (1 - b_i) / (a_i - b_i)^2
        + max_i (1 - a_i - b_i) / (a_i - b_i)``

    The second term upper-bounds the data-dependent part using
    ``sum_k c*_k <= n``; when ``max_i (1 - a_i - b_i)`` is negative the
    true worst case over non-negative counts is 0 contribution from an
    all-zero data vector, but the paper's objective keeps the signed max,
    and we follow the paper (the difference only shifts all mechanisms by
    the same data-independent amount in comparisons).
    """
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    size_arr = np.asarray(sizes, dtype=float)
    diff = a_arr - b_arr
    if np.any(diff <= 0.0):
        return float("inf")
    noise = float(np.sum(size_arr * b_arr * (1.0 - b_arr) / diff**2))
    data_term = float(np.max((1.0 - a_arr - b_arr) / diff))
    return noise + data_term
