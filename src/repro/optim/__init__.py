"""Optimization models for IDUE perturbation probabilities (Section V-D).

Three models from the paper, all operating at privacy-*level* granularity
(``t`` levels, so 2t variables and t^2 constraints regardless of the
domain size ``m``):

* :func:`solve_opt0` — Eq. (10): minimize the worst-case total MSE over
  ``(a_i, b_i)`` directly.  Non-convex; solved by multistart SLSQP seeded
  from the opt1/opt2 solutions.
* :func:`solve_opt1` — Eq. (12): RAPPOR structure ``a_i + b_i = 1``
  parameterized by ``tau_i``; convex with linear constraints.
* :func:`solve_opt2` — Eq. (13): OUE structure ``a_i = 1/2``; convex with
  linear constraints.

:func:`solve` dispatches by model name and returns an
:class:`OptimizationResult` carrying the level parameters, the achieved
worst-case objective, and a feasibility report.
"""

from .constraints import ConstraintSet, build_constraints, worst_case_objective
from .opt0 import solve_opt0
from .opt1 import solve_opt1
from .opt2 import solve_opt2
from .result import OptimizationResult

from ..core.budgets import BudgetSpec
from ..core.notions import MIN, RFunction
from ..core.policy import PolicyGraph
from ..exceptions import ValidationError

__all__ = [
    "ConstraintSet",
    "build_constraints",
    "worst_case_objective",
    "OptimizationResult",
    "solve",
    "solve_opt0",
    "solve_opt1",
    "solve_opt2",
    "MODELS",
]

#: Names accepted by :func:`solve`.
MODELS = ("opt0", "opt1", "opt2")

_SOLVERS = {"opt0": solve_opt0, "opt1": solve_opt1, "opt2": solve_opt2}


def solve(
    spec: BudgetSpec,
    *,
    r: RFunction | str = MIN,
    model: str = "opt0",
    policy: PolicyGraph | None = None,
) -> OptimizationResult:
    """Solve the named optimization model for a budget specification.

    Parameters
    ----------
    spec:
        Budget specification (levels + sizes) of the item domain.
    r:
        Pair-budget function (``"min"`` for MinID-LDP, ``"avg"``, ...).
    model:
        One of ``"opt0"``, ``"opt1"``, ``"opt2"``.
    policy:
        Optional incomplete policy graph over levels; missing edges drop
        the corresponding cross-level constraints.
    """
    key = model.lower()
    if key not in _SOLVERS:
        raise ValidationError(f"unknown model {model!r}; expected one of {MODELS}")
    constraints = build_constraints(spec, r=r, policy=policy)
    return _SOLVERS[key](constraints)
