"""opt1 — optimization constrained to the RAPPOR structure (Eq. 12).

Adding ``a_i + b_i = 1`` lets the parameters be written as

    a_i = e^{tau_i} / (e^{tau_i} + 1),    b_i = 1 / (e^{tau_i} + 1)

with ``tau_i > 0``.  The privacy constraints (7) become *linear*:
``tau_i + tau_j <= R[i, j]``, and the objective

    f(tau) = sum_i m_i e^{tau_i} / (e^{tau_i} - 1)^2

is convex on the feasible region, so SLSQP from any feasible start finds
the global optimum.
"""

from __future__ import annotations

import numpy as np

from .constraints import ConstraintSet, worst_case_objective
from .result import OptimizationResult
from .solvers import MARGIN, run_slsqp

__all__ = ["solve_opt1"]

_TAU_FLOOR = 1e-6


def _objective(tau: np.ndarray, sizes: np.ndarray) -> float:
    e = np.exp(tau)
    return float(np.sum(sizes * e / (e - 1.0) ** 2))


def _gradient(tau: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    # d/dtau [ e^t / (e^t - 1)^2 ] = -e^t (e^t + 1) / (e^t - 1)^3
    e = np.exp(tau)
    return sizes * (-e * (e + 1.0) / (e - 1.0) ** 3)


def _tau_to_ab(tau: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    e = np.exp(tau)
    a = e / (e + 1.0)
    return a, 1.0 - a


def solve_opt1(constraints: ConstraintSet) -> OptimizationResult:
    """Solve Eq. (12) for the given constraint set.

    The feasible start ``tau_i = (1/2) min_j R[i, j]`` (pairs restricted
    to the active set) always satisfies ``tau_i + tau_j <= R[i, j]``; the
    single-level case short-circuits to the RAPPOR closed form.
    """
    t = constraints.t
    sizes = constraints.sizes

    # Per-level tightest bound over active pairs involving that level.
    tight = np.full(t, np.inf)
    for i, j in constraints.pairs:
        bound = constraints.bounds[i, j]
        cap = bound / 2.0 if i == j else bound
        tight[i] = min(tight[i], cap)
        tight[j] = min(tight[j], cap)
    # Levels untouched by any constraint (possible under sparse policy
    # graphs) get a generous but finite budget so the solver stays sane.
    tight[~np.isfinite(tight)] = max(constraints.spec.max_epsilon, 1.0) * 10.0

    if t == 1:
        tau = np.array([max(tight[0] - MARGIN, _TAU_FLOOR)])
        a, b = _tau_to_ab(tau)
        return _package(tau, a, b, constraints, {"label": "opt1-closed-form"})

    # Feasible interior start: half of each level's tightest bound.
    x0 = np.maximum(tight / 2.0, _TAU_FLOOR)

    cons = []
    for i, j in constraints.pairs:
        bound = float(constraints.bounds[i, j]) - MARGIN
        if not np.isfinite(bound):
            continue
        if i == j:
            cons.append(
                {
                    "type": "ineq",
                    "fun": (lambda tau, i=i, bnd=bound: bnd - 2.0 * tau[i]),
                    "jac": (lambda tau, i=i: _pair_jac(t, i, i)),
                }
            )
        else:
            cons.append(
                {
                    "type": "ineq",
                    "fun": (lambda tau, i=i, j=j, bnd=bound: bnd - tau[i] - tau[j]),
                    "jac": (lambda tau, i=i, j=j: _pair_jac(t, i, j)),
                }
            )

    bounds = [(float(_TAU_FLOOR), float(tight[i])) for i in range(t)]
    tau, diagnostics = run_slsqp(
        lambda tau: _objective(tau, sizes),
        x0,
        jac=lambda tau: _gradient(tau, sizes),
        bounds=bounds,
        constraints=cons,
        label="opt1",
    )
    tau = _repair(np.clip(tau, _TAU_FLOOR, tight), constraints)

    # SLSQP can stall with slack on very steep objectives (tiny budgets).
    # The objective is separable and decreasing in every tau_i, so pushing
    # each coordinate up to its cap (coordinate ascent over the linear
    # polytope) never hurts; keep the best of all candidates.
    candidates = [x0, tau, _coordinate_ascent(tau, constraints), _coordinate_ascent(x0, constraints)]
    best = min(candidates, key=lambda point: _objective(point, sizes))
    a, b = _tau_to_ab(best)
    return _package(best, a, b, constraints, diagnostics)


def _coordinate_ascent(tau: np.ndarray, constraints: ConstraintSet, sweeps: int = 30) -> np.ndarray:
    """Raise each tau_i to its cap given the others, repeatedly.

    Starting from a feasible point, each update keeps feasibility (the
    cap is exactly the largest feasible value given current neighbours)
    and can only decrease the objective.  Converges to a Pareto-maximal
    point of the polytope in a handful of sweeps.
    """
    t = tau.size
    tau = tau.copy()
    for _ in range(sweeps):
        moved = False
        for i in range(t):
            cap = np.inf
            for p, q in constraints.pairs:
                bound = constraints.bounds[p, q] - MARGIN
                if not np.isfinite(bound):
                    continue
                if p == i and q == i:
                    cap = min(cap, bound / 2.0)
                elif p == i:
                    cap = min(cap, bound - tau[q])
                elif q == i:
                    cap = min(cap, bound - tau[p])
            if np.isfinite(cap) and cap > tau[i] + 1e-12:
                tau[i] = cap
                moved = True
        if not moved:
            break
    return np.maximum(tau, _TAU_FLOOR)


def _pair_jac(t: int, i: int, j: int) -> np.ndarray:
    grad = np.zeros(t)
    grad[i] -= 1.0
    grad[j] -= 1.0
    return grad


def _repair(tau: np.ndarray, constraints: ConstraintSet) -> np.ndarray:
    """Scale tau down uniformly until every linear constraint holds.

    SLSQP can terminate a hair outside the feasible region; because the
    constraints are ``tau_i + tau_j <= R``, multiplying tau by a factor
    <= 1 restores feasibility without changing the solution structure.
    """
    worst = 1.0
    for i, j in constraints.pairs:
        bound = constraints.bounds[i, j] - MARGIN / 2.0
        if not np.isfinite(bound):
            continue
        total = tau[i] + tau[j]
        if total > bound:
            worst = min(worst, bound / total)
    return tau * worst


def _package(tau, a, b, constraints, diagnostics) -> OptimizationResult:
    return OptimizationResult(
        model="opt1",
        a=a,
        b=b,
        constraints=constraints,
        objective=worst_case_objective(a, b, constraints.sizes),
        max_violation=constraints.max_ratio_violation(a, b),
        diagnostics={**diagnostics, "tau": np.asarray(tau).tolist()},
    )
