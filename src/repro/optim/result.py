"""Optimization result container with feasibility reporting."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .constraints import ConstraintSet, worst_case_objective

__all__ = ["OptimizationResult"]


@dataclass
class OptimizationResult:
    """Solved per-level perturbation parameters plus diagnostics.

    Attributes
    ----------
    model:
        Which model produced it (``"opt0"``, ``"opt1"``, ``"opt2"``).
    a, b:
        Length-``t`` per-level Bernoulli parameters, ``a_i > b_i``.
    constraints:
        The :class:`ConstraintSet` the solution was solved against.
    objective:
        Achieved worst-case objective (Eq. 10 value, ``n`` omitted) —
        comparable across models for the same spec.
    max_violation:
        Largest relative constraint violation; <= 0 means strictly
        feasible, tiny positive values indicate numerical slack.
    diagnostics:
        Raw solver information (iterations, status message, restarts).
    """

    model: str
    a: np.ndarray
    b: np.ndarray
    constraints: ConstraintSet
    objective: float
    max_violation: float
    diagnostics: dict = field(default_factory=dict)

    @property
    def t(self) -> int:
        """Number of privacy levels."""
        return int(self.a.size)

    @property
    def feasible(self) -> bool:
        """Feasible up to a 1e-7 relative tolerance."""
        return self.max_violation <= 1e-7

    def recompute_objective(self) -> float:
        """Re-evaluate Eq. (10) from the stored parameters (sanity hook)."""
        return worst_case_objective(self.a, self.b, self.constraints.sizes)

    def summary(self) -> str:
        """One-line human-readable summary for logs and benches."""
        a_str = ", ".join(f"{v:.4f}" for v in self.a)
        b_str = ", ".join(f"{v:.4f}" for v in self.b)
        return (
            f"{self.model} [{self.constraints.r_name}] objective={self.objective:.6g} "
            f"feasible={self.feasible} a=[{a_str}] b=[{b_str}]"
        )

    def __repr__(self) -> str:
        return f"OptimizationResult({self.summary()})"
