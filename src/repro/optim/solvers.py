"""Shared numerical-solver utilities for the optimization models.

All three models are solved with SciPy's SLSQP.  The helpers here wrap
the call with consistent diagnostics, apply a tiny feasibility margin so
the returned point satisfies the *exact* constraints (not just up to
solver tolerance), and provide the closed-form single-level solutions
used both as fast paths and as solver seeds.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..exceptions import SolverError

__all__ = [
    "MARGIN",
    "run_slsqp",
    "rappor_tau",
    "oue_b",
]

#: Log-space feasibility margin subtracted from every constraint bound so
#: solver tolerance cannot push the returned point infeasible.
MARGIN = 1e-9


def run_slsqp(
    objective,
    x0: np.ndarray,
    *,
    jac=None,
    bounds=None,
    constraints=(),
    maxiter: int = 500,
    label: str = "slsqp",
) -> tuple[np.ndarray, dict]:
    """Run SLSQP and return ``(x, diagnostics)``.

    Raises :class:`SolverError` only when the solver fails *and* the
    returned point is unusable (non-finite); "max iterations reached" with
    a finite point is tolerated because the caller re-verifies
    feasibility explicitly.
    """
    result = optimize.minimize(
        objective,
        np.asarray(x0, dtype=float),
        jac=jac,
        bounds=bounds,
        constraints=list(constraints),
        method="SLSQP",
        options={"maxiter": maxiter, "ftol": 1e-12},
    )
    diagnostics = {
        "label": label,
        "success": bool(result.success),
        "status": int(result.status),
        "message": str(result.message),
        "iterations": int(result.get("nit", -1)),
        "objective": float(result.fun) if np.isfinite(result.fun) else None,
    }
    if not np.all(np.isfinite(result.x)):
        raise SolverError(
            f"{label}: solver returned non-finite parameters", diagnostics=diagnostics
        )
    return np.asarray(result.x, dtype=float), diagnostics


def rappor_tau(epsilon: float) -> float:
    """Single-level opt1 closed form: ``tau = eps / 2``.

    With one level the only constraint is ``2 tau <= eps`` and the
    objective decreases in ``tau``, so the bound is tight — recovering
    basic RAPPOR's ``p = e^{eps/2} / (e^{eps/2} + 1)``.
    """
    return float(epsilon) / 2.0


def oue_b(epsilon: float) -> float:
    """Single-level opt2 closed form: ``b = 1 / (e^eps + 1)``.

    With one level the constraint is ``(e^eps + 1) b >= 1`` and the
    objective increases in ``b``, so the bound is tight — recovering OUE.
    """
    return float(1.0 / (np.exp(epsilon) + 1.0))
