"""repro — Input-Discriminative Local Differential Privacy (ID-LDP).

A complete reimplementation of

    Gu, Li, Xiong, Cao. "Providing Input-Discriminative Protection for
    Local Differential Privacy." IEEE ICDE 2020.

The package provides:

* the ID-LDP / MinID-LDP privacy notions (:mod:`repro.core`);
* the IDUE and IDUE-PS mechanisms plus the RAPPOR / OUE / GRR baselines
  (:mod:`repro.mechanisms`);
* the opt0 / opt1 / opt2 parameter-optimization models
  (:mod:`repro.optim`);
* unbiased frequency estimation with exact variance theory
  (:mod:`repro.estimation`);
* dataset generators / loaders, simulation engines, privacy audits, and
  an experiment harness regenerating every table and figure of the paper
  (:mod:`repro.datasets`, :mod:`repro.simulation`, :mod:`repro.audit`,
  :mod:`repro.experiments`);
* a streaming, sharded report-aggregation pipeline that runs the exact
  per-user protocol at paper scale in bounded memory
  (:mod:`repro.pipeline`);
* bit-sliced sampling kernels feeding the mechanisms' randomness from
  packed ``uint64`` words instead of one float64 per coin
  (:mod:`repro.kernels`).

Sampling kernels: bitexact vs fast
----------------------------------
Every batch perturbation (``perturb_many`` / ``perturb_many_packed``,
the streaming engine, :class:`ShardedRunner`, and the ``pipeline`` CLI
via ``--sampler``) accepts a :class:`SamplerConfig` or the shorthand
names ``"bitexact"`` / ``"fast"``:

* ``"bitexact"`` (default) — the historical float64/PCG64 path.  Output
  streams for a fixed seed are *frozen*: anything pinned to a seed
  (regression tests, recorded experiments) keeps producing byte-identical
  reports, release after release.
* ``"fast"`` — the packed bit-plane kernel: raw ``uint64`` words,
  fixed-point threshold planes, exact sparse residual correction, and
  reports emitted directly in the ``np.packbits`` wire format.  The
  contract is *distributional equivalence*: per-bit probabilities match
  the bitexact path to ~2^-60 (statistically indistinguishable at any
  feasible sample size), but the fixed-seed bit stream differs.  It is
  4-10x faster end to end and never materializes a float64 or unpacked
  report array.

Quickstart
----------
>>> import numpy as np
>>> from repro import BudgetSpec, IDUE, FrequencyEstimator
>>> spec = BudgetSpec.from_level_sizes([np.log(4), np.log(6)], [1, 4])
>>> mech = IDUE.optimized(spec, model="opt0")
>>> report = mech.perturb(2, rng=0)   # one user's randomized report
"""

from .core import (
    AVG,
    MAX,
    MIN,
    BudgetSpec,
    CompositionAccountant,
    IDLDP,
    LDP,
    PolicyGraph,
    PrivacyLevel,
    RFunction,
)
from .estimation import Aggregator, FrequencyEstimator
from .kernels import SamplerConfig
from .exceptions import (
    BudgetError,
    DatasetError,
    EstimationError,
    InfeasibleError,
    PrivacyViolationError,
    ReproError,
    SolverError,
    ValidationError,
)
from .mechanisms import (
    IDUE,
    IDUEPS,
    BinaryRandomizedResponse,
    GeneralizedRandomizedResponse,
    OptimizedUnaryEncoding,
    PaddingSampler,
    SymmetricUnaryEncoding,
    UnaryEncoding,
    itemset_budget,
)
from .optim import OptimizationResult, solve
from .pipeline import CountAccumulator, ShardedRunner, stream_counts

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BudgetSpec",
    "PrivacyLevel",
    "CompositionAccountant",
    "LDP",
    "IDLDP",
    "RFunction",
    "MIN",
    "AVG",
    "MAX",
    "PolicyGraph",
    # mechanisms
    "BinaryRandomizedResponse",
    "GeneralizedRandomizedResponse",
    "UnaryEncoding",
    "SymmetricUnaryEncoding",
    "OptimizedUnaryEncoding",
    "IDUE",
    "IDUEPS",
    "PaddingSampler",
    "itemset_budget",
    # optimization
    "solve",
    "OptimizationResult",
    # estimation
    "FrequencyEstimator",
    "Aggregator",
    # pipeline
    "CountAccumulator",
    "ShardedRunner",
    "stream_counts",
    # kernels
    "SamplerConfig",
    # exceptions
    "ReproError",
    "ValidationError",
    "BudgetError",
    "InfeasibleError",
    "SolverError",
    "PrivacyViolationError",
    "DatasetError",
    "EstimationError",
]
