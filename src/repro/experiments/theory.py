"""Theoretical MSE predictions for the evaluation's dashed lines.

Thin, mechanism-aware wrappers over :mod:`repro.estimation.variance`:
they extract the right parameter slices from mechanism objects so the
figure code can treat theory and simulation symmetrically.
"""

from __future__ import annotations

import numpy as np

from ..datasets.base import ItemsetDataset
from ..estimation.variance import ps_estimator_mse, ue_total_mse
from ..exceptions import ValidationError
from ..mechanisms.base import UnaryMechanism
from ..mechanisms.idue_ps import IDUEPS

__all__ = ["theoretical_total_mse_single", "theoretical_total_mse_itemset"]


def theoretical_total_mse_single(
    mechanism: UnaryMechanism, true_counts, n: int
) -> float:
    """Exact total MSE (Eq. 9 summed) for single-item input."""
    if not isinstance(mechanism, UnaryMechanism):
        raise ValidationError(
            f"mechanism must be a UnaryMechanism, got {type(mechanism).__name__}"
        )
    return ue_total_mse(n, mechanism.a, mechanism.b, true_counts)


def theoretical_total_mse_itemset(
    mechanism: IDUEPS, dataset: ItemsetDataset, *, items=None
) -> float:
    """Exact total MSE of the PS estimator (variance + truncation bias).

    Parameters
    ----------
    items:
        Optional subset of item ids to total over (e.g. the true top-5
        for Fig 5's right panels); all items by default.
    """
    if not isinstance(mechanism, IDUEPS):
        raise ValidationError(
            f"mechanism must be an IDUEPS, got {type(mechanism).__name__}"
        )
    mse, _, _ = ps_estimator_mse(
        dataset,
        mechanism.ell,
        mechanism.a[: mechanism.m],
        mechanism.b[: mechanism.m],
    )
    if items is None:
        return float(np.sum(mse))
    return float(np.sum(mse[np.asarray(items, dtype=np.int64)]))
