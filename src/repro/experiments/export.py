"""CSV export / import of experiment results.

The figure functions return ``{"x_label", "x", "series": {...}}`` dicts;
these helpers persist them as plain CSV so downstream analysis (plots,
notebooks, spreadsheets) can consume the regenerated figures without
importing the library.
"""

from __future__ import annotations

import csv
import os

from ..exceptions import ValidationError

__all__ = ["write_series_csv", "read_series_csv"]


def write_series_csv(result: dict, path: str) -> None:
    """Write a figure-result dict to CSV (x column + one per series).

    The optional ``series_topk`` panel (Fig 5) is appended with a
    ``topk:`` prefix on its column names so one file carries the whole
    figure.
    """
    if not isinstance(result, dict) or "x" not in result or "series" not in result:
        raise ValidationError("result must be a figure dict with 'x' and 'series'")
    x_label = str(result.get("x_label", "x"))
    x_values = list(result["x"])
    columns: dict[str, list] = dict(result["series"])
    for name, values in result.get("series_topk", {}).items():
        columns[f"topk:{name}"] = values
    for name, values in columns.items():
        if len(values) != len(x_values):
            raise ValidationError(
                f"series {name!r} has {len(values)} values for {len(x_values)} x points"
            )

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + list(columns))
        for idx, x in enumerate(x_values):
            writer.writerow([x] + [columns[name][idx] for name in columns])


def read_series_csv(path: str) -> dict:
    """Read a CSV written by :func:`write_series_csv` back into a dict."""
    if not os.path.exists(path):
        raise ValidationError(f"CSV file not found: {path}")
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValidationError(f"{path} is empty") from None
        rows = [row for row in reader if row]
    if len(header) < 2:
        raise ValidationError(f"{path} has no series columns")

    x_label, names = header[0], header[1:]
    x_values: list[float] = []
    series: dict[str, list] = {name: [] for name in names}
    for row in rows:
        if len(row) != len(header):
            raise ValidationError(f"{path}: ragged row {row!r}")
        x_values.append(float(row[0]))
        for name, cell in zip(names, row[1:]):
            series[name].append(float(cell))

    result = {"x_label": x_label, "x": x_values, "series": {}, "series_topk": {}}
    for name, values in series.items():
        if name.startswith("topk:"):
            result["series_topk"][name[len("topk:"):]] = values
        else:
            result["series"][name] = values
    if not result["series_topk"]:
        del result["series_topk"]
    return result
