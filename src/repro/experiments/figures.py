"""Reproductions of the paper's Figures 3, 4 and 5.

Each function runs the full pipeline (dataset -> budget assignment ->
mechanism construction -> simulated collection -> calibration -> MSE)
and returns the numeric series behind the figure:

``{"x_label", "x", "series": {name: [values]}, "metric", ...}``

ready for :func:`repro.experiments.reporting.format_series`.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_rng
from ..datasets.budgets import (
    DEFAULT_LEVEL_MULTIPLIERS,
    DEFAULT_LEVEL_PROPORTIONS,
    assign_budgets,
    exponential_level_distribution,
)
from ..datasets.surrogates import kosarak_like, msnbc_like, retail_like
from ..datasets.synthetic import power_law_items, true_counts_from_items, uniform_items
from ..estimation.topk import top_k_items
from ..exceptions import ValidationError
from ..mechanisms.idue import IDUE
from ..mechanisms.idue_ps import IDUEPS
from ..mechanisms.unary import OptimizedUnaryEncoding, SymmetricUnaryEncoding
from .config import Figure3Config, Figure4aConfig, Figure4bConfig, Figure5Config
from .runner import empirical_total_mse_itemset, empirical_total_mse_single
from .theory import theoretical_total_mse_single

__all__ = ["figure3", "figure4a", "figure4b", "figure5"]


def _default_spec(epsilon: float, m: int, rng):
    """The paper's default 4-level budget specification at system budget eps."""
    epsilons = epsilon * np.asarray(DEFAULT_LEVEL_MULTIPLIERS)
    return assign_budgets(m, epsilons, DEFAULT_LEVEL_PROPORTIONS, rng)


def figure3(
    config: Figure3Config = Figure3Config(), *, distribution: str = "power-law"
) -> dict:
    """Fig 3: empirical vs theoretical MSE/n on synthetic single-item data.

    Series: RAPPOR, OUE, and IDUE under opt0/opt1/opt2 (the paper's
    MinLDP-opt* lines), each with an empirical and a theoretical value
    per ``eps``.
    """
    if distribution == "power-law":
        m = config.m_power_law
        items = power_law_items(config.n, m, config.power_law_alpha, config.seed)
    elif distribution == "uniform":
        m = config.m_uniform
        items = uniform_items(config.n, m, config.seed)
    else:
        raise ValidationError(
            f"distribution must be 'power-law' or 'uniform', got {distribution!r}"
        )
    truth = true_counts_from_items(items, m)
    n = items.size

    series: dict[str, list] = {}
    for epsilon in config.epsilons:
        spec_rng = check_rng(config.seed + 1)  # same assignment across eps sweeps
        spec = _default_spec(epsilon, m, spec_rng)
        mechanisms = {
            "RAPPOR": SymmetricUnaryEncoding(spec.min_epsilon, m),
            "OUE": OptimizedUnaryEncoding(spec.min_epsilon, m),
            "IDUE-opt0": IDUE.optimized(spec, model="opt0"),
            "IDUE-opt1": IDUE.optimized(spec, model="opt1"),
            "IDUE-opt2": IDUE.optimized(spec, model="opt2"),
        }
        trial_rng = check_rng(config.seed + 2)
        for name, mech in mechanisms.items():
            empirical = (
                empirical_total_mse_single(
                    mech, truth, n, trials=config.trials, rng=trial_rng
                )
                / n
            )
            theoretical = theoretical_total_mse_single(mech, truth, n) / n
            series.setdefault(f"{name} empirical", []).append(empirical)
            series.setdefault(f"{name} theoretical", []).append(theoretical)

    return {
        "figure": f"fig3-{distribution}",
        "x_label": "epsilon",
        "x": list(config.epsilons),
        "series": series,
        "metric": "total MSE / n",
        "n": n,
        "m": m,
    }


def figure4a(config: Figure4aConfig = Figure4aConfig()) -> dict:
    """Fig 4(a): budget-distribution sweep on Kosarak-like single items.

    RAPPOR and OUE are independent of the distribution (they always use
    ``min{E} = eps``); IDUE gets one line per budget distribution.
    """
    dataset = kosarak_like(config.n, config.m, rng=config.seed)
    items = dataset.first_items()
    truth = true_counts_from_items(items, config.m)
    n = items.size

    series: dict[str, list] = {}
    multipliers = np.asarray(DEFAULT_LEVEL_MULTIPLIERS)
    for epsilon in config.epsilons:
        trial_rng = check_rng(config.seed + 2)
        baselines = {
            "RAPPOR": SymmetricUnaryEncoding(epsilon, config.m),
            "OUE": OptimizedUnaryEncoding(epsilon, config.m),
        }
        for name, mech in baselines.items():
            value = (
                empirical_total_mse_single(
                    mech, truth, n, trials=config.trials, rng=trial_rng
                )
                / n
            )
            series.setdefault(name, []).append(value)
        for proportions in config.budget_distributions:
            spec_rng = check_rng(config.seed + 1)
            spec = assign_budgets(
                config.m, epsilon * multipliers, proportions, spec_rng
            )
            mech = IDUE.optimized(spec, model="opt0")
            value = (
                empirical_total_mse_single(
                    mech, truth, n, trials=config.trials, rng=trial_rng
                )
                / n
            )
            label = "IDUE [" + ", ".join(f"{p:.0%}" for p in proportions) + "]"
            series.setdefault(label, []).append(value)

    return {
        "figure": "fig4a",
        "x_label": "epsilon",
        "x": list(config.epsilons),
        "series": series,
        "metric": "total MSE / n",
        "n": n,
        "m": config.m,
    }


def figure4b(config: Figure4bConfig = Figure4bConfig()) -> dict:
    """Fig 4(b): t = 4 vs t = 20 privacy levels on Retail-like item sets."""
    dataset = retail_like(config.n, config.m, rng=config.seed)

    series: dict[str, list] = {}
    multipliers = np.asarray(DEFAULT_LEVEL_MULTIPLIERS)
    for epsilon in config.epsilons:
        trial_rng = check_rng(config.seed + 2)
        mechanisms: dict[str, IDUEPS] = {
            "RAPPOR-PS": IDUEPS.rappor_ps(epsilon, config.m, config.ell),
            "OUE-PS": IDUEPS.oue_ps(epsilon, config.m, config.ell),
        }
        spec_rng = check_rng(config.seed + 1)
        spec4 = assign_budgets(
            config.m, epsilon * multipliers, DEFAULT_LEVEL_PROPORTIONS, spec_rng
        )
        mechanisms["IDUE-PS (t=4)"] = IDUEPS.optimized(spec4, config.ell, model="opt0")
        eps20, props20 = exponential_level_distribution(epsilon, config.t_many)
        spec20_rng = check_rng(config.seed + 1)
        spec20 = assign_budgets(config.m, eps20, props20, spec20_rng)
        mechanisms[f"IDUE-PS (t={config.t_many})"] = IDUEPS.optimized(
            spec20, config.ell, model="opt0"
        )
        for name, mech in mechanisms.items():
            value = empirical_total_mse_itemset(
                mech, dataset, trials=config.trials, rng=trial_rng
            )
            series.setdefault(name, []).append(value)

    return {
        "figure": "fig4b",
        "x_label": "epsilon",
        "x": list(config.epsilons),
        "series": series,
        "metric": "total MSE",
        "n": dataset.n,
        "m": config.m,
        "ell": config.ell,
    }


def figure5(config: Figure5Config = Figure5Config()) -> dict:
    """Fig 5: padding-length sweep — total MSE and top-k MSE per dataset.

    Returns both panels: ``series`` totals over all items and
    ``series_topk`` totals over the true top-``k`` frequent items.
    """
    if config.dataset == "retail":
        dataset = retail_like(config.n, config.m, rng=config.seed)
    elif config.dataset == "msnbc":
        dataset = msnbc_like(config.n, config.m, rng=config.seed)
    else:
        raise ValidationError(
            f"dataset must be 'retail' or 'msnbc', got {config.dataset!r}"
        )
    truth = dataset.true_counts()
    top_items = top_k_items(truth.astype(float), config.top_k)
    multipliers = np.asarray(DEFAULT_LEVEL_MULTIPLIERS)

    series: dict[str, list] = {}
    series_topk: dict[str, list] = {}
    for ell in config.ells:
        trial_rng = check_rng(config.seed + 2)
        spec_rng = check_rng(config.seed + 1)
        spec = assign_budgets(
            dataset.m,
            config.epsilon * multipliers,
            DEFAULT_LEVEL_PROPORTIONS,
            spec_rng,
        )
        mechanisms = {
            "RAPPOR-PS": IDUEPS.rappor_ps(config.epsilon, dataset.m, ell),
            "OUE-PS": IDUEPS.oue_ps(config.epsilon, dataset.m, ell),
            "IDUE-PS": IDUEPS.optimized(spec, ell, model="opt0"),
        }
        for name, mech in mechanisms.items():
            total = empirical_total_mse_itemset(
                mech, dataset, trials=config.trials, rng=trial_rng
            )
            topk = empirical_total_mse_itemset(
                mech, dataset, trials=config.trials, rng=trial_rng, items=top_items
            )
            series.setdefault(name, []).append(total)
            series_topk.setdefault(name, []).append(topk)

    return {
        "figure": f"fig5-{config.dataset}",
        "x_label": "ell",
        "x": list(config.ells),
        "series": series,
        "series_topk": series_topk,
        "metric": "total MSE (left: all items, right: top-k)",
        "top_items": top_items,
        "n": dataset.n,
        "m": dataset.m,
    }
