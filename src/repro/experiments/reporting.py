"""Plain-text rendering of experiment results.

No plotting dependency: every figure is reported as the numeric series
behind it (x values by mechanism), which is what EXPERIMENTS.md records
and what the benchmark harness prints.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_float", "format_table", "format_series"]


def format_float(value, precision: int = 4) -> str:
    """Compact numeric formatting: general format, fixed significant digits."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    return f"{value:.{precision}g}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as an aligned text table with a header rule."""
    rendered = [[format_float(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [
        "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)),
        "  ".join("-" * widths[k] for k in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render one figure: x values in the first column, one series per column."""
    headers = [x_label] + list(series)
    rows = []
    for idx, x in enumerate(x_values):
        rows.append([x] + [series[name][idx] for name in series])
    table = format_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table
