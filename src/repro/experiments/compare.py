"""One-call mechanism comparison on a workload.

``compare_single_item`` / ``compare_itemset`` run every requested
mechanism on one dataset and return a ranked table of theoretical and
empirical MSE — the quickest way to answer "which mechanism should I
deploy for *this* spec and *this* data" without assembling the pieces
by hand.  The CLI's ``compare`` subcommand wraps it.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_rng
from ..core.budgets import BudgetSpec
from ..core.notions import MIN, RFunction
from ..datasets.base import ItemsetDataset
from ..exceptions import ValidationError
from ..mechanisms.factory import (
    ITEMSET_MECHANISMS,
    SINGLE_ITEM_MECHANISMS,
    make_itemset_mechanism,
    make_single_item_mechanism,
)
from .reporting import format_table
from .runner import empirical_total_mse_itemset, empirical_total_mse_single
from .theory import theoretical_total_mse_itemset, theoretical_total_mse_single

__all__ = ["compare_single_item", "compare_itemset"]


def compare_single_item(
    spec: BudgetSpec,
    true_counts,
    n: int,
    *,
    mechanisms=SINGLE_ITEM_MECHANISMS,
    trials: int = 3,
    r: RFunction | str = MIN,
    rng=None,
) -> dict:
    """Rank single-item mechanisms by total MSE on one workload.

    Returns ``{"rows", "text", "best"}`` with rows sorted by
    theoretical MSE ascending.
    """
    if not isinstance(spec, BudgetSpec):
        raise ValidationError(f"spec must be a BudgetSpec, got {spec!r}")
    truth = np.asarray(true_counts, dtype=float)
    if truth.shape != (spec.m,):
        raise ValidationError(
            f"true_counts must have shape ({spec.m},), got {truth.shape}"
        )
    n = check_positive_int(n, "n")
    trials = check_positive_int(trials, "trials")
    rng = check_rng(rng)

    rows = []
    for name in mechanisms:
        mech = make_single_item_mechanism(name, spec, r=r)
        theory = theoretical_total_mse_single(mech, truth, n)
        empirical = empirical_total_mse_single(
            mech, truth, n, trials=trials, rng=rng
        )
        rows.append([name, theory, empirical])
    rows.sort(key=lambda row: row[1])
    headers = ["mechanism", "theoretical MSE", f"empirical MSE ({trials} trials)"]
    return {
        "rows": rows,
        "text": format_table(headers, rows),
        "best": rows[0][0],
    }


def compare_itemset(
    spec: BudgetSpec,
    dataset: ItemsetDataset,
    ell: int,
    *,
    mechanisms=ITEMSET_MECHANISMS,
    trials: int = 3,
    r: RFunction | str = MIN,
    rng=None,
) -> dict:
    """Rank item-set (PS) mechanisms by total MSE on one dataset."""
    if not isinstance(spec, BudgetSpec):
        raise ValidationError(f"spec must be a BudgetSpec, got {spec!r}")
    if not isinstance(dataset, ItemsetDataset):
        raise ValidationError(f"dataset must be an ItemsetDataset, got {dataset!r}")
    if dataset.m != spec.m:
        raise ValidationError(
            f"dataset domain {dataset.m} does not match spec domain {spec.m}"
        )
    ell = check_positive_int(ell, "ell")
    trials = check_positive_int(trials, "trials")
    rng = check_rng(rng)

    rows = []
    for name in mechanisms:
        mech = make_itemset_mechanism(name, spec, ell, r=r)
        theory = theoretical_total_mse_itemset(mech, dataset)
        empirical = empirical_total_mse_itemset(
            mech, dataset, trials=trials, rng=rng
        )
        rows.append([name, theory, empirical])
    rows.sort(key=lambda row: row[1])
    headers = ["mechanism", "theoretical MSE", f"empirical MSE ({trials} trials)"]
    return {
        "rows": rows,
        "text": format_table(headers, rows),
        "best": rows[0][0],
    }
