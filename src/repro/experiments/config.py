"""Experiment configurations: paper-scale and quick presets.

Every figure function takes one of these dataclasses; ``PAPER`` mirrors
the paper's workload sizes while ``QUICK`` scales user counts and domain
sizes down so the whole suite regenerates in minutes on a laptop.  All
comparisons are within one dataset instance, so scaling preserves every
qualitative conclusion (who wins, by what factor, where crossovers sit).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "Figure3Config",
    "Figure4aConfig",
    "Figure4bConfig",
    "Figure5Config",
    "PAPER",
    "QUICK",
]

_DEFAULT_EPSILONS = (1.0, 1.5, 2.0, 2.5, 3.0)


@dataclass(frozen=True)
class Figure3Config:
    """Fig 3: empirical vs theoretical MSE on synthetic single-item data."""

    n: int = 100_000
    m_power_law: int = 100
    m_uniform: int = 1_000
    power_law_alpha: float = 2.0
    epsilons: tuple = _DEFAULT_EPSILONS
    trials: int = 5
    seed: int = 0


@dataclass(frozen=True)
class Figure4aConfig:
    """Fig 4(a): budget-distribution sweep on Kosarak-like single items."""

    n: int = 100_000
    m: int = 41_270
    epsilons: tuple = _DEFAULT_EPSILONS
    budget_distributions: tuple = (
        (0.05, 0.05, 0.05, 0.85),
        (0.10, 0.10, 0.10, 0.70),
        (0.25, 0.25, 0.25, 0.25),
    )
    trials: int = 3
    seed: int = 0


@dataclass(frozen=True)
class Figure4bConfig:
    """Fig 4(b): t = 4 vs t = 20 levels on Retail-like item sets."""

    n: int = 88_162
    m: int = 16_470
    ell: int = 5
    epsilons: tuple = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
    trials: int = 3
    t_many: int = 20
    seed: int = 0


@dataclass(frozen=True)
class Figure5Config:
    """Fig 5: padding-length sweep on Retail-like / MSNBC-like item sets."""

    dataset: str = "retail"  # "retail" or "msnbc"
    n: int = 88_162
    m: int = 16_470
    ells: tuple = (1, 2, 3, 4, 5, 6)
    epsilon: float = 2.0
    top_k: int = 5
    trials: int = 3
    seed: int = 0


@dataclass(frozen=True)
class _Presets:
    """Bundle of per-figure configurations."""

    fig3: Figure3Config = field(default_factory=Figure3Config)
    fig4a: Figure4aConfig = field(default_factory=Figure4aConfig)
    fig4b: Figure4bConfig = field(default_factory=Figure4bConfig)
    fig5_retail: Figure5Config = field(default_factory=Figure5Config)
    fig5_msnbc: Figure5Config = field(
        default_factory=lambda: Figure5Config(dataset="msnbc", n=200_000, m=14)
    )


#: Paper-scale presets (minutes to hours for the full sweep).
PAPER = _Presets()

#: Quick presets: same shapes, scaled-down workloads (seconds each).
QUICK = _Presets(
    fig3=replace(PAPER.fig3, n=20_000, m_uniform=200, trials=3),
    fig4a=replace(PAPER.fig4a, n=20_000, m=2_000, trials=2, epsilons=(1.0, 2.0, 3.0)),
    fig4b=replace(
        PAPER.fig4b, n=20_000, m=2_000, trials=2, epsilons=(1.0, 2.0, 4.0, 6.0)
    ),
    fig5_retail=replace(
        PAPER.fig5_retail, n=20_000, m=2_000, trials=2, ells=(1, 2, 3, 4, 5, 6)
    ),
    fig5_msnbc=replace(PAPER.fig5_msnbc, n=50_000, trials=2),
)
