"""Experiment harness reproducing every table and figure of the paper.

Each public function returns plain dict/arrays (no plotting dependency);
:mod:`.reporting` renders them as aligned text tables matching the rows
and series the paper reports.  The CLI (:mod:`repro.cli`) and the
benchmark suite are thin wrappers over this package.
"""

from .compare import compare_itemset, compare_single_item
from .config import (
    Figure3Config,
    Figure4aConfig,
    Figure4bConfig,
    Figure5Config,
    QUICK,
    PAPER,
)
from .export import read_series_csv, write_series_csv
from .figures import figure3, figure4a, figure4b, figure5
from .reporting import format_series, format_table
from .runner import (
    empirical_total_mse_itemset,
    empirical_total_mse_single,
    run_itemset_trial,
    run_single_item_trial,
)
from .tables import table1_leakage_bounds, table2_toy_example
from .theory import theoretical_total_mse_itemset, theoretical_total_mse_single

__all__ = [
    "Figure3Config",
    "Figure4aConfig",
    "Figure4bConfig",
    "Figure5Config",
    "QUICK",
    "PAPER",
    "figure3",
    "figure4a",
    "figure4b",
    "figure5",
    "table1_leakage_bounds",
    "table2_toy_example",
    "run_single_item_trial",
    "run_itemset_trial",
    "empirical_total_mse_single",
    "empirical_total_mse_itemset",
    "theoretical_total_mse_single",
    "theoretical_total_mse_itemset",
    "format_table",
    "format_series",
    "compare_single_item",
    "compare_itemset",
    "write_series_csv",
    "read_series_csv",
]
