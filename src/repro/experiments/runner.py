"""Trial execution: run a mechanism over a dataset and measure MSE.

One *trial* = perturb every user once (through the fast exact-distribution
simulator), aggregate, calibrate, and compare against the ground truth.
Empirical MSE is averaged over independent trials with a caller-supplied
generator so whole experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_int_array, check_positive_int, check_rng
from ..datasets.base import ItemsetDataset
from ..estimation.frequency import FrequencyEstimator
from ..exceptions import ValidationError
from ..mechanisms.base import UnaryMechanism
from ..mechanisms.idue_ps import IDUEPS
from ..simulation.fast import simulate_itemset_counts, simulate_single_item_counts

__all__ = [
    "run_single_item_trial",
    "run_itemset_trial",
    "empirical_total_mse_single",
    "empirical_total_mse_itemset",
]


def run_single_item_trial(
    mechanism: UnaryMechanism, true_counts, n: int, rng=None
) -> np.ndarray:
    """One collection round on single-item data; returns count estimates."""
    rng = check_rng(rng)
    counts = simulate_single_item_counts(mechanism, true_counts, n, rng)
    estimator = FrequencyEstimator.for_mechanism(mechanism, n)
    return estimator.estimate(counts)


def run_itemset_trial(mechanism: IDUEPS, dataset: ItemsetDataset, rng=None) -> np.ndarray:
    """One collection round on item-set data; returns count estimates."""
    rng = check_rng(rng)
    counts = simulate_itemset_counts(mechanism, dataset, rng)
    estimator = FrequencyEstimator.for_mechanism(mechanism, dataset.n)
    return estimator.estimate(counts)


def _mse_over_items(estimates: np.ndarray, truth: np.ndarray, items) -> float:
    if items is None:
        return float(np.sum((estimates - truth) ** 2))
    ids = as_int_array(items, "items")
    return float(np.sum((estimates[ids] - truth[ids]) ** 2))


def empirical_total_mse_single(
    mechanism: UnaryMechanism,
    true_counts,
    n: int,
    *,
    trials: int = 5,
    rng=None,
    items=None,
) -> float:
    """Mean (over trials) total squared error for single-item input.

    Parameters
    ----------
    items:
        Optional item-id subset to total over; all items by default.
    """
    trials = check_positive_int(trials, "trials")
    rng = check_rng(rng)
    truth = np.asarray(true_counts, dtype=float)
    total = 0.0
    for _ in range(trials):
        estimates = run_single_item_trial(mechanism, true_counts, n, rng)
        total += _mse_over_items(estimates, truth, items)
    return total / trials


def empirical_total_mse_itemset(
    mechanism: IDUEPS,
    dataset: ItemsetDataset,
    *,
    trials: int = 5,
    rng=None,
    items=None,
) -> float:
    """Mean (over trials) total squared error for item-set input."""
    if not isinstance(dataset, ItemsetDataset):
        raise ValidationError(f"dataset must be an ItemsetDataset, got {dataset!r}")
    trials = check_positive_int(trials, "trials")
    rng = check_rng(rng)
    truth = dataset.true_counts().astype(float)
    total = 0.0
    for _ in range(trials):
        estimates = run_itemset_trial(mechanism, dataset, rng)
        total += _mse_over_items(estimates, truth, items)
    return total / trials
