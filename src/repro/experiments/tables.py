"""Reproductions of the paper's Tables I and II.

* Table I — closed-form prior-posterior leakage bounds per notion.
* Table II — the 5-category medical-survey toy example comparing RAPPOR,
  OUE and IDUE under budgets ``eps_1 = ln 4``, ``eps_{2..5} = ln 6``.
"""

from __future__ import annotations

import numpy as np

from ..core.budgets import BudgetSpec
from ..core.leakage import (
    geo_indistinguishability_leakage_bounds,
    ldp_leakage_bounds,
    minid_leakage_bounds,
    pldp_leakage_bounds,
)
from ..mechanisms.idue import IDUE
from ..mechanisms.unary import OptimizedUnaryEncoding, SymmetricUnaryEncoding
from .reporting import format_table

__all__ = ["table1_leakage_bounds", "table2_toy_example", "TOY_EPSILONS"]

#: Table II's budgets: HIV gets ln 4, the four benign categories ln 6.
TOY_EPSILONS = (float(np.log(4.0)),) + (float(np.log(6.0)),) * 4


def table1_leakage_bounds(
    epsilons=TOY_EPSILONS,
    *,
    epsilon_user: float | None = None,
    geo_distance_scale: float = 1.0,
) -> dict:
    """Evaluate every Table I row on a concrete budget set.

    Parameters
    ----------
    epsilons:
        The budget set ``E``; LDP uses ``min{E}``, MinID-LDP is
        evaluated at each distinct budget.
    epsilon_user:
        PLDP's per-user budget (defaults to ``min{E}``).
    geo_distance_scale:
        Geo-indistinguishability example: inputs on a line at unit
        spacing scaled by this factor, uniform prior.

    Returns
    -------
    Dict with ``headers``, ``rows``, and ``text`` (rendered table).
    """
    eps = np.asarray(epsilons, dtype=float)
    eps_min = float(eps.min())
    if epsilon_user is None:
        epsilon_user = eps_min

    m = eps.size
    prior = np.full(m, 1.0 / m)
    distances = np.abs(np.arange(m, dtype=float) - 0.0) * geo_distance_scale

    rows = []
    low, high = ldp_leakage_bounds(eps_min)
    rows.append(["LDP", f"eps={eps_min:.4g}", low, high])
    low, high = pldp_leakage_bounds(epsilon_user)
    rows.append(["PLDP", f"eps_u={epsilon_user:.4g}", low, high])
    low, high = geo_indistinguishability_leakage_bounds(eps_min, prior, distances)
    rows.append(["Geo-Ind", f"x=0, eps={eps_min:.4g}", low, high])
    for eps_x in sorted(set(eps.tolist())):
        low, high = minid_leakage_bounds(eps_x, eps)
        rows.append(["MinID-LDP", f"eps_x={eps_x:.4g}", low, high])

    headers = ["notion", "parameters", "lower bound", "upper bound"]
    return {"headers": headers, "rows": rows, "text": format_table(headers, rows)}


def table2_toy_example(*, model: str = "opt0") -> dict:
    """Reproduce Table II: flip probabilities and variances, 5 categories.

    The variance of item ``i`` is ``noise_i * n + data_i * c_i`` with
    ``noise_i = b(1-b)/(a-b)^2`` and ``data_i = (1-a-b)/(a-b)``; since
    ``sum_i c_i = n`` the total variance lies in
    ``[sum noise + min data, sum noise + max data] * n``, which is the
    range the paper reports for IDUE (and a single number for RAPPOR /
    OUE whose coefficients are uniform).
    """
    spec = BudgetSpec(np.asarray(TOY_EPSILONS))
    eps_min = spec.min_epsilon
    m = spec.m

    mechanisms = {
        "RAPPOR": SymmetricUnaryEncoding(eps_min, m),
        "OUE": OptimizedUnaryEncoding(eps_min, m),
        "IDUE": IDUE.optimized(spec, model=model),
    }

    headers = [
        "mechanism",
        "notion",
        "flip1 (i=1)",
        "flip1 (i=2..5)",
        "flip0 (i=1)",
        "flip0 (i=2..5)",
        "var/n (i=1)",
        "var/n (i=2..5)",
        "total var/n (range)",
    ]
    rows = []
    results = {}
    for name, mech in mechanisms.items():
        a, b = np.asarray(mech.a), np.asarray(mech.b)
        noise = b * (1.0 - b) / (a - b) ** 2
        data = (1.0 - a - b) / (a - b)
        total_noise = float(np.sum(noise))
        low = total_noise + float(np.min(data))
        high = total_noise + float(np.max(data))
        notion = "MinID-LDP" if name == "IDUE" else "LDP"
        rows.append(
            [
                name,
                notion,
                1.0 - a[0],
                1.0 - a[1],
                b[0],
                b[1],
                noise[0],
                noise[1],
                f"{low:.4g} .. {high:.4g}" if name == "IDUE" else f"{high:.4g}",
            ]
        )
        results[name] = {
            "a": a,
            "b": b,
            "noise_coefficients": noise,
            "data_coefficients": data,
            "total_range": (low, high),
        }

    return {
        "headers": headers,
        "rows": rows,
        "results": results,
        "spec": spec,
        "text": format_table(headers, rows),
    }
