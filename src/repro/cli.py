"""Command-line entry point regenerating the paper's tables and figures.

Usage::

    python -m repro.cli table1
    python -m repro.cli table2
    python -m repro.cli fig3 [--distribution power-law|uniform] [--quick]
    python -m repro.cli fig4a [--quick]
    python -m repro.cli fig4b [--quick]
    python -m repro.cli fig5a [--quick]      # Retail
    python -m repro.cli fig5b [--quick]      # MSNBC
    python -m repro.cli pipeline [--n N] [--m M] [--shards K] [--chunk-size C]
                                 [--sampler fast|bitexact] [--topk K]
                                 [--compute numpy|numba|threaded]
                                 [--spill-dir DIR] [--collect] [--auth-key KEY]
                                 [--producer-key KEY]
    python -m repro.cli serve --m M --auth-key KEY --spill-dir DIR
                              [--round-id R] [--host H] [--port P]
                              [--resume] [--exit-after N]
    python -m repro.cli serve --rounds-config ROUNDS.json --spill-dir DIR
                              [--keys-file KEYS.txt] [--auth-key KEY]
                              [--resume] [--exit-after N]
    python -m repro.cli serve --shard NAME --control-key KEY --auth-key KEY
                              --spill-dir DIR [--resume]
    python -m repro.cli serve --share-keeper NAME --m M --auth-key KEY
                              --spill-dir DIR [--resume]
    python -m repro.cli serve --blinded --m M --auth-key KEY --spill-dir DIR
    python -m repro.cli coordinator --fleet a=H:P,b=H:P --control-key KEY
                                    (--rounds-config F | --m M [--round-id R])
                                    [--keepers k1=H:P,...]
                                    [--exit-after N] [--resume]
    python -m repro.cli aggregate --fleet a=H:P,b=H:P --control-key KEY
                                  --round-id R [--fan-in F] [--estimate]
                                  [--keepers k1=H:P,k2=H:P]

``--quick`` runs scaled-down workloads (seconds instead of minutes); the
default uses the paper-scale presets.  ``pipeline`` streams the exact
per-user protocol through :mod:`repro.pipeline` and reports throughput
against the binomial-shortcut baseline; ``--sampler fast`` switches the
perturbation onto the packed bit-plane kernel of :mod:`repro.kernels`
(distributional contract, 4-10x faster), and ``--topk K`` runs
heavy-hitter identification on the streamed estimates.  ``--spill-dir``
makes every shard spill its packed report chunks to a durable
:class:`~repro.pipeline.ShardStore` and audits the round (out-of-core
replay vs. snapshot digests); ``--collect`` round-trips the shard
snapshots through an asyncio :class:`~repro.pipeline.Collector` over a
localhost socket and verifies the merged state digest-for-digest (add
``--auth-key`` to route the round-trip through the authenticated
exactly-once :class:`~repro.pipeline.CollectionService` instead,
including a blind-resend duplicate check; add ``--producer-key`` to
give every synthetic producer its own derived key through a
:class:`~repro.pipeline.KeyRegistry`).  ``serve`` runs the exactly-once
collection service standalone: HMAC-authenticated producer sessions,
fsync'd idempotency ledger, durable spill, and ``--resume`` crash
recovery; ``--rounds-config`` hosts many concurrent rounds from a JSON
spec (each round may carry a ``"limits"`` override object) and
``--keys-file`` loads per-producer keys from a hot-reloadable keyfile
(rotation without restart; a ``[revoked]`` section reaps producers
mid-session).  The scale-out tier splits the deployment into three
roles: ``serve --shard`` runs one named shard of a fleet (bare when no
rounds are given — rounds arrive over the authenticated control
plane), ``coordinator`` owns round lifecycle across the fleet
(registers rounds with minted tokens, pushes the consistent-hash
routing table, drains and closes), and ``aggregate`` pulls every
shard's digest-verified accumulator state and tree-merges it into the
round total — see ``docs/service.md``.  The split-trust tier removes
the collector's view of raw reports: ``serve --blinded`` hosts rounds
as a blinded collector, ``serve --share-keeper NAME`` runs one share
keeper, ``coordinator --keepers`` registers rounds as split-trust
across both fleets, and ``aggregate --keepers`` decodes the tally via
``combine_round`` — bit-identical to the unblinded aggregate, and
impossible for any single party to produce alone.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    PAPER,
    QUICK,
    figure3,
    figure4a,
    figure4b,
    figure5,
    format_series,
    table1_leakage_bounds,
    table2_toy_example,
)
from .kernels import compute_backend_names

__all__ = ["main"]


def _print_figure(result: dict) -> None:
    title = (
        f"{result['figure']}  (metric: {result['metric']}, "
        f"n={result['n']}, m={result['m']})"
    )
    print(format_series(result["x_label"], result["x"], result["series"], title=title))
    if "series_topk" in result:
        print()
        print(
            format_series(
                result["x_label"],
                result["x"],
                result["series_topk"],
                title=f"{result['figure']} — top-k items only",
            )
        )


def _run_compare(args) -> None:
    """Rank every registered mechanism on a synthetic Zipf workload."""
    from .datasets import paper_default_spec, zipf_items, true_counts_from_items
    from .datasets.base import ItemsetDataset
    from .experiments.compare import compare_itemset, compare_single_item

    spec = paper_default_spec(args.epsilon, args.m, rng=0)
    if args.itemset:
        import numpy as np

        rng = np.random.default_rng(0)
        sets = [
            rng.choice(args.m, size=int(rng.integers(1, 6)), replace=False).tolist()
            for _ in range(args.n)
        ]
        dataset = ItemsetDataset.from_sets(sets, m=args.m)
        result = compare_itemset(spec, dataset, args.ell, rng=1)
        print(
            f"item-set comparison (n={args.n}, m={args.m}, eps={args.epsilon}, "
            f"ell={args.ell}):"
        )
    else:
        items = zipf_items(args.n, args.m, rng=0)
        truth = true_counts_from_items(items, args.m)
        result = compare_single_item(spec, truth, args.n, rng=1)
        print(f"single-item comparison (n={args.n}, m={args.m}, eps={args.epsilon}):")
    print(result["text"])
    print(f"\nbest by theory: {result['best']}")


def _audit_spill(spill_dir: str, accumulator) -> None:
    """Replay the spilled round out of core and verify digests."""
    import time

    from .pipeline import ShardStore

    store = ShardStore(spill_dir)
    start = time.perf_counter()
    replayed, audit = store.replay_and_audit()  # one decode pass for both
    replay_elapsed = time.perf_counter() - start
    matched = sum(1 for entry in audit.values() if entry["match"])
    spilled = store.spilled_bytes()
    rate = 8 * spilled / replay_elapsed / 1e6 if replay_elapsed else float("inf")
    print(
        f"spill audit: {matched}/{len(audit)} shard digests match "
        f"({spilled / 2**20:,.1f} MiB spilled, replay {replay_elapsed:.2f}s, "
        f"{rate:,.0f} Mbit/s)"
    )
    if replayed.digest() != accumulator.digest():
        raise SystemExit(
            "spill audit FAILED: replayed round digest does not match the "
            "live accumulator"
        )
    if matched != len(audit):
        bad = [shard for shard, entry in audit.items() if not entry["match"]]
        raise SystemExit(f"spill audit FAILED for shards {bad}")


def _collect_over_service(args, accumulator, frames) -> None:
    """Round-trip frames through the authenticated exactly-once service.

    Each frame plays one producer: an HMAC session, one record, one
    durable ack.  Then every producer *blindly resends* — the
    exactly-once check: all resends come back ``ACK_DUPLICATE`` and the
    merged state stays digest-identical to the in-memory round.

    With ``--producer-key`` each synthetic producer authenticates with
    its *own* key (derived from the master via
    :func:`~repro.pipeline.service.derive_producer_key` and registered
    in a :class:`~repro.pipeline.KeyRegistry`) instead of the shared
    ``--auth-key`` — exercising the per-producer key path end to end.
    """
    import asyncio
    import shutil
    import tempfile

    from .pipeline import CollectionService, KeyRegistry, send_records
    from .pipeline.collect import wire
    from .pipeline.service import derive_producer_key

    store_root = tempfile.mkdtemp(prefix="repro_service_")
    producer_ids = [f"shard-{index}" for index in range(len(frames))]
    if args.producer_key is not None:
        producer_keys = {
            producer: derive_producer_key(args.producer_key, producer)
            for producer in producer_ids
        }
        registry = KeyRegistry(producer_keys)
        service_auth = {"keys": registry}
    else:
        producer_keys = {producer: args.auth_key for producer in producer_ids}
        service_auth = {"key": args.auth_key}

    async def _round_trip() -> tuple[int, int]:
        service = CollectionService(
            accumulator.m,
            round_id=accumulator.round_id,
            store_root=store_root,
            **service_auth,
        )
        host, port = await service.serve()
        try:
            merged = duplicate = 0
            for index, frame in enumerate(frames):
                producer = producer_ids[index]
                for _attempt in range(2):  # second pass = blind resend
                    acks = await send_records(
                        host,
                        port,
                        [frame],
                        key=producer_keys[producer],
                        producer_id=producer,
                        m=accumulator.m,
                        round_id=accumulator.round_id,
                    )
                    merged += sum(
                        ack.status == wire.ACK_MERGED for ack in acks
                    )
                    duplicate += sum(
                        ack.status == wire.ACK_DUPLICATE for ack in acks
                    )
        finally:
            await service.close()
        if service.accumulator.digest() != accumulator.digest():
            raise SystemExit(
                "service collection FAILED: merged state does not match "
                "the in-memory accumulator"
            )
        return merged, duplicate

    try:
        merged, duplicate = asyncio.run(_round_trip())
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
    if merged != len(frames) or duplicate != len(frames):
        raise SystemExit(
            f"service collection FAILED: expected {len(frames)} merged + "
            f"{len(frames)} duplicate acks, got {merged} + {duplicate}"
        )
    key_mode = (
        "per-producer keys" if args.producer_key is not None else "a shared key"
    )
    print(
        f"service collect: {merged} record(s) merged exactly once over "
        f"authenticated sessions ({key_mode}), {duplicate} blind resend(s) "
        "deduplicated, merged state digest-identical to the in-memory round"
    )


def _collect_over_socket(args, accumulator) -> None:
    """Round-trip shard snapshots through a localhost asyncio Collector.

    With a spill dir the per-shard snapshot frames feed the collector
    (the real multi-producer shape); otherwise the merged snapshot
    itself makes the trip.  Either way the collector's state must come
    back digest-identical to the in-memory accumulator.  With
    ``--auth-key`` the trip instead goes through the exactly-once
    :class:`~repro.pipeline.CollectionService`.
    """
    import asyncio

    from .pipeline import Collector, ShardStore, send_frames
    from .pipeline.collect import wire

    if args.spill_dir is not None:
        store = ShardStore(args.spill_dir)
        frames = [
            wire.dumps(store.load_snapshot(shard_id))
            for shard_id in store.shard_ids()
        ]
    else:
        frames = [wire.dumps(accumulator)]

    if args.auth_key is not None or args.producer_key is not None:
        _collect_over_service(args, accumulator, frames)
        return

    async def _round_trip() -> int:
        collector = Collector(accumulator.m, round_id=accumulator.round_id)
        host, port = await collector.serve()
        try:
            acked = 0
            for frame in frames:  # one connection per producer
                acked += await send_frames(host, port, [frame])
        finally:
            await collector.close()
        if collector.accumulator.digest() != accumulator.digest():
            raise SystemExit(
                "socket collection FAILED: collector state does not match "
                "the in-memory accumulator"
            )
        return acked

    acked = asyncio.run(_round_trip())
    print(
        f"socket collect: {acked} snapshot frame(s) ingested over localhost, "
        "merged state digest-identical to the in-memory round"
    )


def _run_pipeline(args) -> None:
    """Stream the exact per-user path over a synthetic Zipf workload."""
    import time

    import numpy as np

    from .datasets import paper_default_spec, true_counts_from_items, zipf_items
    from .kernels import resolve_sampler
    from .mechanisms import IDUE, OptimizedUnaryEncoding, SymmetricUnaryEncoding
    from .pipeline import ShardedRunner
    from .simulation import simulate_counts_from_true

    items = zipf_items(args.n, args.m, rng=0)
    truth = true_counts_from_items(items, args.m)
    if args.mechanism == "idue":
        spec = paper_default_spec(args.epsilon, args.m, rng=0)
        mechanism = IDUE.optimized(spec, model="opt1")
    elif args.mechanism == "rappor":
        mechanism = SymmetricUnaryEncoding(args.epsilon, args.m)
    else:
        mechanism = OptimizedUnaryEncoding(args.epsilon, args.m)
    # The compute backend rides inside the sampler config, so every
    # worker (and its accumulator) picks it up by name after unpickling.
    sampler = resolve_sampler(args.sampler).with_compute(args.compute)
    runner = ShardedRunner(
        mechanism,
        num_shards=args.shards,
        chunk_size=args.chunk_size,
        packed=args.packed,
        sampler=sampler,
    )
    print(
        f"pipeline: mechanism={mechanism.name}, n={args.n}, m={args.m}, "
        f"eps={args.epsilon}, shards={runner.num_shards}, "
        f"chunk_size={args.chunk_size}, packed={args.packed}, "
        f"sampler={args.sampler}, compute={args.compute}"
    )
    start = time.perf_counter()
    accumulator = runner.run(items, seed=args.seed, spill_dir=args.spill_dir)
    streamed_elapsed = time.perf_counter() - start
    estimates = accumulator.estimate(mechanism)

    if args.spill_dir is not None:
        _audit_spill(args.spill_dir, accumulator)
    if args.collect:
        _collect_over_socket(args, accumulator)

    start = time.perf_counter()
    fast_counts = simulate_counts_from_true(
        truth, args.n, mechanism.a, mechanism.b, np.random.default_rng(args.seed)
    )
    fast_elapsed = time.perf_counter() - start

    mse = float(np.mean((estimates - truth) ** 2))
    if args.sampler == "fast" and args.packed:
        # ~3 packed buffers of chunk x m/8 bytes live at once.
        peak = args.chunk_size * accumulator.m * 3 // 8
    elif args.sampler == "fast":
        # packed kernel buffers plus the unpacked int8 chunk it returns.
        peak = args.chunk_size * accumulator.m * 2
    else:
        peak = args.chunk_size * accumulator.m * 9  # int8 chunk + float64 draw
    print(
        f"streamed-exact: {streamed_elapsed:.2f}s "
        f"({args.n / streamed_elapsed:,.0f} reports/s), "
        f"~{peak / 2**20:,.0f} MiB peak per worker"
    )
    print(
        f"fast baseline:  {fast_elapsed:.2f}s "
        f"(binomial shortcut, counts only)"
    )
    print(f"streamed-exact MSE vs truth: {mse:,.1f}")
    from .estimation import FrequencyEstimator

    fast_estimates = FrequencyEstimator.for_mechanism(mechanism, args.n).estimate(
        fast_counts
    )
    fast_mse = float(np.mean((fast_estimates - truth) ** 2))
    print(f"fast-path      MSE vs truth: {fast_mse:,.1f} (same law, same scale)")

    if args.topk is not None:
        from .estimation.topk import top_k_metrics

        metrics = top_k_metrics(estimates, truth, args.topk)
        ranked = ", ".join(
            f"{item}({estimates[item]:,.0f})" for item in metrics["estimated_top"]
        )
        print(
            f"top-{args.topk} heavy hitters: precision={metrics['precision']:.2f}, "
            f"ncr={metrics['ncr']:.2f}"
        )
        print(f"  estimated: {ranked}")
        print(f"  true:      {', '.join(str(i) for i in metrics['true_top'])}")


def _load_rounds_config(path: str) -> list[dict]:
    """Parse a ``--rounds-config`` JSON file into round specs.

    Accepts either a bare list of ``{"m": ..., "round_id": ...}``
    objects or ``{"rounds": [...]}`` wrapping one.  A round object may
    carry a ``"limits"`` object of per-round
    :class:`~repro.pipeline.ServiceLimits` field overrides; overrides
    are validated here, eagerly, so a typo'd field or out-of-range
    value fails at startup with the offending round named — not
    mid-round when the first session hits the quota path.
    """
    import json

    from .exceptions import ValidationError
    from .pipeline.service.quotas import ServiceLimits

    with open(path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    if isinstance(spec, dict):
        spec = spec.get("rounds")
    if not isinstance(spec, list) or not spec:
        raise SystemExit(
            f"{path}: rounds config must be a non-empty JSON list of "
            '{"m": ..., "round_id": ...} objects (optionally under a '
            '"rounds" key)'
        )
    for entry in spec:
        if not isinstance(entry, dict) or "limits" not in entry:
            continue
        round_id = entry.get("round_id", "?")
        overrides = entry["limits"]
        if not isinstance(overrides, dict):
            raise SystemExit(
                f"{path}: round {round_id}: \"limits\" must be a JSON "
                f"object of ServiceLimits overrides, got "
                f"{type(overrides).__name__}"
            )
        try:
            ServiceLimits().with_overrides(overrides)
        except (ValidationError, ValueError) as exc:
            raise SystemExit(
                f"{path}: round {round_id}: invalid limits override: {exc}"
            ) from exc
    return spec


def _run_serve(args) -> None:
    """Run the exactly-once collection service until stopped.

    ``--exit-after N`` stops once N records have merged (smoke tests,
    bounded rounds); otherwise the service runs until interrupted.
    Either way shutdown is graceful: handlers cancelled, spill + ledger
    synced, final snapshots written atomically.  ``--rounds-config``
    hosts many concurrent rounds; ``--keys-file`` authenticates each
    producer with its own key (the file hot-reloads on change, so keys
    rotate without a restart).  ``--shard NAME --control-key KEY`` runs
    the service as one named shard of a scale-out fleet: the control
    plane comes up, and with no rounds given the shard starts *bare* —
    a coordinator registers rounds (and pushes the routing table) over
    authenticated ``open-round`` / ``route-update`` calls.
    """
    import asyncio

    from .pipeline import CollectionService

    if args.auth_key is None and args.keys_file is None:
        raise SystemExit(
            "serve requires --auth-key (shared key) and/or --keys-file "
            "(per-producer keys)"
        )
    if args.spill_dir is None:
        raise SystemExit(
            "serve requires --spill-dir (the round's durable state directory)"
        )
    if args.shard is not None and args.control_key is None:
        raise SystemExit(
            "serve --shard requires --control-key (the fleet's control-plane "
            "secret); a shard without one can never receive rounds or "
            "routing tables"
        )
    if args.coordinator is not None and (
        args.shard is None or args.control_key is None
    ):
        raise SystemExit(
            "serve --coordinator requires --shard and --control-key "
            "(the announcement is a MAC'd join-fleet control call)"
        )
    if args.share_keeper is not None and args.blinded:
        raise SystemExit(
            "--share-keeper and --blinded are different split-trust roles; "
            "pick one per process"
        )
    if args.share_keeper is not None:
        mode = "keeper"
    elif args.blinded:
        mode = "blinded"
    else:
        mode = "collect"

    async def _serve() -> dict:
        kwargs = {
            "key": args.auth_key,
            "keys": args.keys_file,
            "store_root": args.spill_dir,
            "resume": args.resume,
            "control_key": args.control_key,
            "shard_name": args.shard,
            "mode": mode,
            "keeper_id": args.share_keeper,
        }
        if args.rounds_config is not None:
            rounds = _load_rounds_config(args.rounds_config)
            service = CollectionService(rounds=rounds, **kwargs)
            geometry = ", ".join(
                f"round {state.round_id} (m={state.m})"
                for state in service.registry.rounds()
            )
        elif args.control_key is not None:
            service = CollectionService(rounds=[], **kwargs)
            geometry = "bare shard; rounds arrive over the control plane"
        else:
            service = CollectionService(
                args.m, round_id=args.round_id, **kwargs
            )
            geometry = f"m={args.m}, round={args.round_id}"
        host, port = await service.serve(args.host, args.port)
        resumed = (
            f", resumed {service.recovered_records} ledgered record(s)"
            if args.resume
            else ""
        )
        if args.share_keeper is not None:
            role = f"share keeper {args.share_keeper!r} listening"
        elif args.shard is not None:
            role = f"shard {args.shard!r} listening"
        elif args.blinded:
            role = "blinded collector listening"
        else:
            role = "collection service listening"
        print(
            f"{role} on {host}:{port} ({geometry}){resumed}",
            flush=True,
        )
        if args.coordinator is not None:
            from .pipeline.service import control_call

            chost, colon, cport = args.coordinator.rpartition(":")
            if not colon:
                raise SystemExit(
                    f"--coordinator {args.coordinator!r} is not host:port"
                )
            reply, _ = await control_call(
                chost,
                int(cport),
                key=args.control_key,
                op="join-fleet",
                body={"name": args.shard, "host": host, "port": port},
            )
            what = (
                "joined the ring (live rebalance ran)"
                if reply.get("joined")
                else "re-announced (rounds resumed)"
            )
            print(
                f"shard {args.shard!r} {what} via coordinator at "
                f"{args.coordinator}",
                flush=True,
            )
        try:
            while (
                args.exit_after is None
                or service.records_merged
                < service.recovered_records + args.exit_after
            ):
                await asyncio.sleep(0.05)
        finally:
            await service.close()
        return service.stats()

    try:
        stats = asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\ncollection service interrupted; round state is durable")
        return
    print(
        f"collection service closed: {stats['records_merged']} merged, "
        f"{stats['records_duplicate']} duplicate, "
        f"{stats['records_refused']} refused, "
        f"{stats['sessions_opened']} session(s) from "
        f"{len(stats['producers'])} producer(s), n={stats['n']}"
    )
    if len(stats["rounds"]) > 1:
        for round_id, round_stats in sorted(stats["rounds"].items()):
            print(
                f"  round {round_id} (m={round_stats['m']}): "
                f"{round_stats['records_merged']} merged, "
                f"n={round_stats['n']}, "
                f"{round_stats['commits']} group commit(s) "
                f"({round_stats['cross_connection_batches']} cross-connection)"
            )


def _parse_shard_addresses(spec: str):
    """Parse ``--fleet a=host:port,b=host:port`` into ShardInfo entries."""
    from .exceptions import ValidationError
    from .pipeline.service import ShardInfo

    shards = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, sep, address = entry.partition("=")
        host, colon, port = address.rpartition(":")
        if not sep or not colon or not name:
            raise SystemExit(
                f"--fleet entry {entry!r} is not name=host:port"
            )
        try:
            shards.append(ShardInfo(name=name, host=host, port=int(port)))
        except (ValueError, ValidationError) as exc:  # bad port / bad name
            raise SystemExit(f"--fleet entry {entry!r}: {exc}") from exc
    if not shards:
        raise SystemExit("--fleet must name at least one shard")
    return shards


def _run_coordinator(args) -> None:
    """Own round lifecycle across a shard fleet until the round is done.

    Pushes the consistent-hash routing table to every shard, registers
    each round (minting its registration token) fleet-wide, then waits:
    with ``--exit-after N`` until N records have merged across the
    fleet, otherwise until interrupted.  Either way the exit path runs
    the full lifecycle — ``drain`` (no new sessions anywhere, in-flight
    batches commit) then ``close-round`` (snapshots, durable) — and
    prints per-shard totals.  Rounds are left closed, not retired, so
    ``aggregate`` can still pull their state.
    """
    import asyncio
    import os

    from .pipeline.service import RoundCoordinator

    resuming = (
        args.journal is not None
        and args.resume
        and os.path.exists(args.journal)
        and os.path.getsize(args.journal) > 0
    )
    if args.control_key is None or (args.fleet is None and not resuming):
        raise SystemExit(
            "coordinator requires --fleet (name=host:port,...) and "
            "--control-key (the fleet's control-plane secret); with "
            "--journal FILE --resume the fleet is replayed from the "
            "journal instead"
        )
    shards = (
        _parse_shard_addresses(args.fleet) if args.fleet is not None else []
    )
    keepers = (
        _parse_shard_addresses(args.keepers)
        if args.keepers is not None
        else []
    )
    if args.rounds_config is not None:
        rounds = _load_rounds_config(args.rounds_config)
    else:
        rounds = [{"m": args.m, "round_id": args.round_id}]

    async def _coordinate() -> None:
        if resuming:
            coordinator = RoundCoordinator.resume(
                args.journal, control_key=args.control_key
            )
            summary = await coordinator.reconcile()
            fleet = coordinator.table.shards()
            print(
                f"coordinator resumed from {args.journal}: epoch "
                f"{coordinator.table.epoch}, {len(fleet)} shard(s), "
                f"re-asserted round(s) {summary['rounds']}"
                + (
                    " and re-ran an interrupted migration"
                    if summary["migration_rerun"]
                    else ""
                ),
                flush=True,
            )
        else:
            coordinator = RoundCoordinator(
                shards,
                control_key=args.control_key,
                keepers=keepers,
                journal=args.journal,
            )
            epoch = await coordinator.push_routing()
            print(
                f"routing table epoch {epoch} pushed to {len(shards)} "
                "shard(s): "
                + ", ".join(f"{s.name}={s.host}:{s.port}" for s in shards),
                flush=True,
            )
            for spec in rounds:
                record = await coordinator.register_round(
                    spec["m"],
                    spec.get("round_id", 0),
                    limits=spec.get("limits"),
                    resume=args.resume,
                    mode="blinded" if keepers else "collect",
                )
                where = f"on {len(shards)} shard(s)"
                if keepers:
                    where += (
                        f" (split-trust, {len(keepers)} share keeper(s): "
                        + ", ".join(k.name for k in keepers)
                        + ")"
                    )
                print(
                    f"round {record.round_id} (m={record.m}) {record.phase} "
                    f"{where}",
                    flush=True,
                )
        if args.listen is not None:
            lhost, colon, lport = args.listen.rpartition(":")
            if not colon:
                raise SystemExit(
                    f"--listen {args.listen!r} is not host:port"
                )
            host, port = await coordinator.serve(lhost, int(lport))
            print(
                f"coordinator endpoint listening on {host}:{port} "
                "(hello-coordinator / join-fleet)",
                flush=True,
            )
        try:
            while True:
                status = await coordinator.status()
                merged = sum(
                    reply.get("records_merged", 0)
                    for reply in status["shards"].values()
                )
                if args.exit_after is not None and merged >= args.exit_after:
                    break
                await asyncio.sleep(0.2)
        finally:
            status = await coordinator.status()
            for record in list(coordinator.rounds.values()):
                await coordinator.drain(record.round_id)
                await coordinator.close_round(record.round_id)
                print(
                    f"round {record.round_id} drained and closed "
                    f"({record.phase})",
                    flush=True,
                )
            for shard in coordinator.table.shards():
                reply = status["shards"][shard.name]
                print(
                    f"  shard {shard.name}: "
                    f"{reply.get('records_merged', 0)} merged, "
                    f"{reply.get('sessions_opened', 0)} session(s), "
                    f"n={reply.get('n', 0)}"
                )
            await coordinator.close()

    try:
        asyncio.run(_coordinate())
    except KeyboardInterrupt:
        print(
            "\ncoordinator interrupted; shards keep serving "
            "(round state is durable)"
        )


def _run_aggregate(args) -> None:
    """Pull every shard's state for one round and tree-merge it.

    Each shard's accumulator arrives as a wire snapshot frame over the
    authenticated control plane and is verified against the digest the
    shard claimed in its MAC'd reply before merging.  ``--estimate``
    additionally calibrates the merged counts through the chosen
    ``--mechanism`` into the round's frequency estimates.  With
    ``--keepers`` the round is split-trust: every share keeper's state
    is pulled alongside the blinded collector shards, membership
    digests are reconciled, and the tally decodes via
    :func:`~repro.pipeline.service.combine_round` — the only point in
    the deployment where plain counts ever exist.
    """
    import asyncio

    from .pipeline.service import aggregate_round, combine_round

    if args.fleet is None or args.control_key is None:
        raise SystemExit(
            "aggregate requires --fleet (name=host:port,...) and "
            "--control-key (the fleet's control-plane secret)"
        )
    shards = _parse_shard_addresses(args.fleet)

    if args.keepers is not None:
        keepers = _parse_shard_addresses(args.keepers)
        result = asyncio.run(
            combine_round(
                shards,
                keepers,
                control_key=args.control_key,
                round_id=args.round_id,
            )
        )
        for pull in result.collector_pulls:
            print(
                f"blinded shard {pull.shard.name}: n={pull.accumulator.n}, "
                f"{pull.records_merged} record(s) merged, phase={pull.phase}"
            )
        for pull in result.keeper_pulls:
            print(
                f"share keeper {pull.shard.name}: n={pull.accumulator.n}, "
                f"{pull.records_merged} record(s) merged, phase={pull.phase}"
            )
        merged = result.accumulator
        print(
            f"combined round {args.round_id}: n={merged.n} decoded from "
            f"{len(result.collector_pulls)} blinded shard(s) + "
            f"{len(result.keeper_pulls)} share keeper(s), "
            f"m={merged.m}, digest {merged.digest()[:16]}…"
        )
    else:
        result = asyncio.run(
            aggregate_round(
                shards,
                control_key=args.control_key,
                round_id=args.round_id,
                fan_in=args.fan_in,
            )
        )
        for pull in result.pulls:
            print(
                f"shard {pull.shard.name}: n={pull.accumulator.n}, "
                f"{pull.records_merged} record(s) merged, phase={pull.phase}"
            )
        merged = result.accumulator
        print(
            f"aggregate round {args.round_id}: n={merged.n} over "
            f"{len(result.pulls)} shard(s) (fan-in {args.fan_in}), "
            f"m={merged.m}, digest {merged.digest()[:16]}…"
        )
    if args.estimate:
        from .mechanisms import OptimizedUnaryEncoding, SymmetricUnaryEncoding

        if args.mechanism == "idue":
            from .datasets import paper_default_spec
            from .mechanisms import IDUE

            mechanism = IDUE.optimized(
                paper_default_spec(args.epsilon, merged.m, rng=0), model="opt1"
            )
        elif args.mechanism == "rappor":
            mechanism = SymmetricUnaryEncoding(args.epsilon, merged.m)
        else:
            mechanism = OptimizedUnaryEncoding(args.epsilon, merged.m)
        estimate = merged.to_round_estimate(mechanism)
        top = sorted(
            range(merged.m),
            key=lambda item: estimate.estimates[item],
            reverse=True,
        )[: min(10, merged.m)]
        ranked = ", ".join(
            f"{item}({estimate.estimates[item]:,.0f})" for item in top
        )
        print(
            f"estimate ({mechanism.name}, eps={args.epsilon}): top items "
            f"{ranked}"
        )


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-idldp",
        description="Regenerate tables/figures of Gu et al., ICDE 2020 (ID-LDP).",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "table2",
            "fig3",
            "fig4a",
            "fig4b",
            "fig5a",
            "fig5b",
            "compare",
            "pipeline",
            "serve",
            "coordinator",
            "aggregate",
        ],
        help="which table/figure to regenerate, 'compare' to rank all "
        "mechanisms on a synthetic workload, 'pipeline' to stream the "
        "exact per-user path through the sharded aggregation pipeline, "
        "'serve' to run the authenticated exactly-once collection service "
        "(one shard of a fleet with --shard), 'coordinator' to own round "
        "lifecycle across a shard fleet, or 'aggregate' to pull and "
        "tree-merge every shard's state for a round",
    )
    parser.add_argument(
        "--n", type=int, default=20_000, help="compare/pipeline: user count"
    )
    parser.add_argument(
        "--m", type=int, default=200, help="compare/pipeline: domain size"
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=2.0,
        help="compare/pipeline: system budget eps",
    )
    parser.add_argument(
        "--mechanism",
        choices=["oue", "rappor", "idue"],
        default="oue",
        help="pipeline: which unary mechanism to stream",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=4096,
        help="pipeline: users per streamed chunk (bounds peak memory)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="pipeline: worker shards (default: CPU count)",
    )
    parser.add_argument(
        "--packed",
        action="store_true",
        help="pipeline: ship chunks in the np.packbits wire format",
    )
    parser.add_argument(
        "--sampler",
        choices=["bitexact", "fast"],
        default="bitexact",
        help="pipeline: perturbation kernel — 'bitexact' keeps the frozen "
        "fixed-seed float64 streams, 'fast' uses the packed bit-plane "
        "kernel (same distribution, 4-10x faster)",
    )
    parser.add_argument(
        "--compute",
        choices=list(compute_backend_names()),
        default="numpy",
        help="pipeline: compute backend for the packed kernels — 'numpy' "
        "(portable baseline), 'numba' (JIT, needs the numba extra), or "
        "'threaded' (tiled multi-core; pairs with --sampler fast). "
        "Popcounts are bit-identical on every backend; see docs/kernels.md",
    )
    parser.add_argument(
        "--topk",
        type=int,
        default=None,
        metavar="K",
        help="pipeline: also identify the top-K heavy hitters from the "
        "streamed estimates and score them against the true counts",
    )
    parser.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help="pipeline: spill packed report chunks + shard snapshots to DIR "
        "(wire-format ShardStore), then audit the round by out-of-core "
        "replay against the snapshot digests",
    )
    parser.add_argument(
        "--collect",
        action="store_true",
        help="pipeline: round-trip shard snapshots through an asyncio "
        "Collector on a localhost socket and verify the merged state is "
        "digest-identical to the in-memory round",
    )
    parser.add_argument(
        "--auth-key",
        metavar="KEY",
        default=None,
        help="shared round key (hex or passphrase, >= 8 bytes). serve: "
        "required. pipeline --collect: route the round-trip through the "
        "authenticated exactly-once CollectionService, including a "
        "blind-resend duplicate check",
    )
    parser.add_argument(
        "--producer-key",
        metavar="KEY",
        default=None,
        help="pipeline --collect: master secret for per-producer keys — "
        "every synthetic producer authenticates with its own key derived "
        "via derive_producer_key(master, producer_id) through a "
        "KeyRegistry, instead of one shared --auth-key",
    )
    parser.add_argument(
        "--rounds-config",
        metavar="FILE",
        default=None,
        help="serve: host many concurrent rounds from a JSON spec — a "
        'list of {"m": ..., "round_id": ...} objects (optionally under a '
        '"rounds" key); each round gets its own namespace under '
        "--spill-dir and its sessions are bound to the round's "
        "registration token",
    )
    parser.add_argument(
        "--keys-file",
        metavar="FILE",
        default=None,
        help="serve: per-producer keyfile ('producer = secret' lines, "
        "'*' for the default); the file is re-read whenever it changes "
        "on disk, so keys rotate without restarting the service",
    )
    parser.add_argument(
        "--shard",
        metavar="NAME",
        default=None,
        help="serve: run as the named shard of a scale-out fleet "
        "(requires --control-key; with no --rounds-config the shard "
        "starts bare and a coordinator registers rounds over the "
        "control plane)",
    )
    parser.add_argument(
        "--control-key",
        metavar="KEY",
        default=None,
        help="serve/coordinator/aggregate: the fleet's control-plane "
        "secret — authenticates drain / close / open-round / pull-state / "
        "route-update calls between coordinator, shards, and aggregator",
    )
    parser.add_argument(
        "--share-keeper",
        metavar="NAME",
        default=None,
        help="serve: run as the named share keeper of a split-trust "
        "deployment — this service accumulates one blinding stream "
        "(mod-2^64 word sums that decode nothing alone); producers bind "
        "their share sessions to NAME, so keep it stable across restarts",
    )
    parser.add_argument(
        "--blinded",
        action="store_true",
        help="serve: host rounds in blinded-collector mode — the service "
        "accumulates producers' blinded counts and never sees a raw "
        "report; the tally decodes only via 'aggregate --keepers'",
    )
    parser.add_argument(
        "--keepers",
        metavar="LIST",
        default=None,
        help="coordinator/aggregate: the share-keeper fleet as "
        "'name=host:port,...'. coordinator: registers every round as "
        "split-trust across shards and keepers; aggregate: decodes the "
        "round by combining all keeper states with the blinded "
        "collector state (combine_round)",
    )
    parser.add_argument(
        "--fleet",
        metavar="LIST",
        default=None,
        help="coordinator/aggregate: the shard fleet as "
        "'name=host:port,name=host:port,...' (stable names; the "
        "consistent-hash ring keys on names, never addresses)",
    )
    parser.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="coordinator: append-only durability journal (CRC-framed, "
        "fsync'd before every fleet action) — registrations, tokens, "
        "lifecycle transitions, fleet snapshots, migration markers; "
        "with --resume a non-empty journal is replayed instead of "
        "registering fresh rounds (kill -9 recovery)",
    )
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="coordinator: additionally serve a control endpoint where "
        "shards announce themselves (hello-coordinator after a restart, "
        "join-fleet to enter the ring and trigger a live rebalance)",
    )
    parser.add_argument(
        "--coordinator",
        metavar="HOST:PORT",
        default=None,
        help="serve --shard: announce this shard to a coordinator "
        "endpoint via a MAC'd join-fleet call once the socket is bound "
        "(auto-discovery; a new name triggers a live rebalance onto "
        "this shard)",
    )
    parser.add_argument(
        "--fan-in",
        type=int,
        default=2,
        metavar="F",
        help="aggregate: aggregation-tree fan-in (>= 2; every fan-in "
        "produces bit-identical counts — merge is exact)",
    )
    parser.add_argument(
        "--estimate",
        action="store_true",
        help="aggregate: also calibrate the merged counts through "
        "--mechanism/--epsilon into the round's frequency estimates",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="serve: recover an interrupted round (every hosted round, "
        "with --rounds-config) from the ledger + spill under --spill-dir "
        "instead of starting fresh; coordinator: register rounds with "
        "resume=True so shards replay their ledgers",
    )
    parser.add_argument(
        "--round-id",
        type=int,
        default=0,
        help="serve/coordinator/aggregate: collection-round tag sessions "
        "and records must match",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve: bind address",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="serve: bind port (0 = ephemeral, printed at startup)",
    )
    parser.add_argument(
        "--exit-after",
        type=int,
        default=None,
        metavar="N",
        help="serve: exit cleanly after N newly merged records; "
        "coordinator: drain + close once N records merged fleet-wide "
        "(smoke tests / bounded rounds); default runs until interrupted",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="pipeline: root seed for shard RNGs"
    )
    parser.add_argument(
        "--itemset",
        action="store_true",
        help="compare: use item-set input (PS mechanisms) instead of single-item",
    )
    parser.add_argument(
        "--ell", type=int, default=3, help="compare: padding length for --itemset"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use scaled-down workloads (same shapes, much faster)",
    )
    parser.add_argument(
        "--distribution",
        choices=["power-law", "uniform"],
        default="power-law",
        help="fig3 only: which synthetic dataset",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="additionally write the figure series to a CSV file "
        "(ignored for tables)",
    )
    args = parser.parse_args(argv)
    if args.topk is not None and not 1 <= args.topk <= args.m:
        parser.error(f"--topk must lie in [1, m={args.m}], got {args.topk}")
    presets = QUICK if args.quick else PAPER

    if args.experiment == "table1":
        print(table1_leakage_bounds()["text"])
        return 0
    if args.experiment == "table2":
        print(table2_toy_example()["text"])
        return 0
    if args.experiment == "compare":
        _run_compare(args)
        return 0
    if args.experiment == "pipeline":
        _run_pipeline(args)
        return 0
    if args.experiment == "serve":
        _run_serve(args)
        return 0
    if args.experiment == "coordinator":
        _run_coordinator(args)
        return 0
    if args.experiment == "aggregate":
        _run_aggregate(args)
        return 0

    if args.experiment == "fig3":
        result = figure3(presets.fig3, distribution=args.distribution)
    elif args.experiment == "fig4a":
        result = figure4a(presets.fig4a)
    elif args.experiment == "fig4b":
        result = figure4b(presets.fig4b)
    elif args.experiment == "fig5a":
        result = figure5(presets.fig5_retail)
    else:  # fig5b
        result = figure5(presets.fig5_msnbc)
    _print_figure(result)
    if args.csv:
        from .experiments.export import write_series_csv

        write_series_csv(result, args.csv)
        print(f"\nseries written to {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
