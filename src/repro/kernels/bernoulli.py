"""Bit-sliced Bernoulli sampling kernels over packed words.

The float64 sampling path costs one PCG64 double per Bernoulli coin —
64 bits of entropy plus an int-to-double conversion per *bit* — and the
profiling note in ROADMAP ("faster bit generation") showed the whole
streamed-exact pipeline is bound by exactly that.  The kernels here draw
raw ``uint64`` words straight from the BitGenerator and synthesize
Bernoulli bits *in the packed domain*, so the ``np.packbits`` wire
format comes out directly with no float64 array and no unpack/repack
round trip.

How the packed kernel works
---------------------------
Write the target probability ``p`` as an ``L``-bit fixed-point threshold
``T = round(p * 2^L)`` plus a residual ``delta = p - T / 2^L``:

1. **Bit planes.**  ``Pr(u < T)`` for an ``L``-bit uniform ``u`` is
   computed one bit plane at a time, LSB to MSB, on packed words: a
   fresh random word per plane, combined with a single ``&``/``|``
   depending on the corresponding threshold bit.  (The textbook
   recurrence for ``u < T`` uses ``~u``, but the planes are symmetric
   random words, so the complement is dropped and each plane costs one
   raw draw and one bitwise op.)  Planes below the lowest set bit of
   ``T`` are identities and are skipped.
2. **Sparse residual correction.**  ``|delta| < 2^-(L+1)``, so flipping
   a sparse, independent Bernoulli mask of rate ``delta / (1 - T/2^L)``
   up (or ``|delta| / (T/2^L)`` down) lands the *exact* probability.
   Mask positions are sampled as geometric gaps — O(n p) float draws
   rather than O(n) — and scattered into the packed words.
3. **Complement trick.**  Probabilities above 1/2 are generated as the
   complement's bits and inverted in the packed domain, which keeps the
   correction rate bounded and makes ``p = 1.0`` (like ``p = 0.0``)
   exactly deterministic.

The result follows the requested Bernoulli law to within float64
rounding of the correction rate (relative error ~2^-53 on a quantity
that is itself < 2^-(L+1), i.e. ~2^-60 absolute) — statistically
indistinguishable from exact at any feasible sample size, but *not*
bit-identical to the float64 path for a fixed seed.  Edge cases are
exact: ``p = 0.0`` yields all-zeros, ``p = 1.0`` all-ones, and
``p < 2^-L`` degenerates to pure sparse sampling (no planes), so
sub-``2^-53`` probabilities round nowhere.

All kernels consume randomness from an explicit ``numpy.random``
Generator; word draws use ``BitGenerator.random_raw`` when the backend
natively emits 64-bit words and fall back to ``Generator.integers``
otherwise.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_rng
from ..exceptions import ValidationError

__all__ = [
    "packed_bernoulli",
    "packed_assign_bits",
    "packed_column_counts",
    "packed_width",
    "fixed_point_decompose",
]

# BitGenerators whose random_raw() emits full 64-bit words.  MT19937
# yields 32-bit values from random_raw, so it takes the integers path.
_RAW64_BACKENDS = tuple(
    cls
    for name in ("PCG64", "PCG64DXSM", "SFC64", "Philox")
    if (cls := getattr(np.random, name, None)) is not None
)

#: Cost of one sparse correction relative to one raw word, used when
#: choosing the threshold (one geometric float draw + scatter ~ a few
#: word draws).  Measured on the pipeline benchmark; the optimum is flat.
_CORRECTION_COST_WORDS = 5.0

def packed_width(m: int) -> int:
    """Bytes per packed row for an ``m``-bit report (``ceil(m / 8)``)."""
    return -(-check_positive_int(m, "m") // 8)


def _raw_words(rng: np.random.Generator, count: int) -> np.ndarray:
    """*count* raw ``uint64`` words from the generator's BitGenerator."""
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    bit_generator = rng.bit_generator
    if isinstance(bit_generator, _RAW64_BACKENDS):
        return bit_generator.random_raw(count)
    return rng.integers(0, 2**64, size=count, dtype=np.uint64)


# ----------------------------------------------------------------------
# Threshold decomposition
# ----------------------------------------------------------------------
def fixed_point_decompose(p, precision: int = 8):
    """Split probabilities into plane thresholds and exact residuals.

    Returns ``(thresholds, deltas, complement)`` where for each entry
    the *generated* probability is ``p' = p`` (``complement`` False) or
    ``1 - p`` (True, always ``p' <= 1/2``), ``thresholds`` holds the
    ``precision``-bit fixed-point value ``T`` with ``T / 2^precision``
    nearest ``p'``, and ``deltas = p' - T / 2^precision`` is the signed
    residual the sparse correction step absorbs exactly.
    """
    arr = np.asarray(p, dtype=np.float64)
    scalar = arr.ndim == 0
    arr = np.atleast_1d(arr)
    if arr.size and (
        not np.all(np.isfinite(arr)) or arr.min() < 0.0 or arr.max() > 1.0
    ):
        raise ValidationError("probabilities must lie in [0, 1]")
    precision = check_positive_int(precision, "precision")
    complement = arr > 0.5
    generated = np.where(complement, 1.0 - arr, arr)
    scale = float(1 << precision)
    thresholds = np.rint(generated * scale).astype(np.uint64)
    deltas = generated - thresholds / scale
    if scalar:
        return thresholds[0], float(deltas[0]), bool(complement[0])
    return thresholds, deltas, complement


def _trailing_zeros(value: int, width: int) -> int:
    if value == 0:
        return width
    return (value & -value).bit_length() - 1


def _correction_rate(threshold: int, delta: float, precision: int) -> float:
    """Flip rate of the sparse correction for one ``(T, delta)`` pair."""
    if delta == 0.0:
        return 0.0
    base = threshold / float(1 << precision)
    return delta / (1.0 - base) if delta > 0.0 else -delta / base


def _pick_uniform_threshold(p: float, precision: int) -> tuple[int, float]:
    """Choose ``T`` minimizing plane work + correction work for one *p*.

    The nearest threshold is not always cheapest: ``T`` one step away
    may have many trailing zero bits (skipped planes) at the price of a
    slightly larger — still ``O(2^-precision)`` — correction rate.  Cost
    is measured in raw words per lane: ``planes / 64`` for the planes,
    ``rate *`` :data:`_CORRECTION_COST_WORDS` for the correction.
    """
    top = 1 << (precision - 1)  # p <= 1/2 after the complement trick
    nearest = int(np.rint(p * (1 << precision)))
    best: tuple[float, int, float] | None = None
    for candidate in range(max(0, nearest - 4), min(top, nearest + 4) + 1):
        delta = p - candidate / float(1 << precision)
        planes = precision - _trailing_zeros(candidate, precision)
        rate = _correction_rate(candidate, delta, precision)
        cost = planes / 64.0 + rate * _CORRECTION_COST_WORDS
        if best is None or cost < best[0]:
            best = (cost, candidate, delta)
    _, threshold, delta = best
    return threshold, delta


# ----------------------------------------------------------------------
# Sparse corrections
# ----------------------------------------------------------------------
def _sparse_positions(n_lanes: int, rate: float, rng: np.random.Generator):
    """Strictly increasing hit positions of a Bernoulli(rate) process.

    Sampled as cumulative geometric gaps: expected ``n_lanes * rate``
    draws instead of ``n_lanes``.  Exact for any ``rate`` in (0, 1].
    """
    if rate <= 0.0 or n_lanes == 0:
        return np.empty(0, dtype=np.int64)
    if rate >= 1.0:
        return np.arange(n_lanes, dtype=np.int64)
    expected = n_lanes * rate
    batch = int(expected + 6.0 * np.sqrt(expected + 1.0)) + 16
    # Gaps are clipped to n_lanes + 1: a clipped gap already moves past
    # the end of the grid, and unclipped cumsums of huge geometric draws
    # (rate ~ 2^-60) would overflow int64.
    gaps = np.minimum(rng.geometric(rate, size=batch), n_lanes + 1)
    positions = np.cumsum(gaps) - 1
    while positions[-1] < n_lanes:  # rare: the 6-sigma batch fell short
        gaps = np.minimum(rng.geometric(rate, size=batch), n_lanes + 1)
        positions = np.concatenate([positions, np.cumsum(gaps) + positions[-1]])
    return positions[positions < n_lanes]


def _scatter_flip(packed: np.ndarray, byte_index, bit_mask, *, set_bits: bool) -> None:
    """OR (or AND-NOT) per-position bit masks into a flat packed buffer.

    Positions come from :func:`_sparse_positions`, so ``(byte, bit)``
    pairs are unique and equal byte indices form contiguous runs — one
    ``bitwise_or.reduceat`` collapses each run to a single masked store,
    which keeps the scatter free of read-modify-write races under
    duplicated fancy indices.
    """
    if byte_index.size == 0:
        return
    starts = np.concatenate(([0], np.flatnonzero(np.diff(byte_index)) + 1))
    masks = np.bitwise_or.reduceat(bit_mask, starts)
    targets = byte_index[starts]
    if set_bits:
        packed[targets] |= masks
    else:
        packed[targets] &= ~masks


def _apply_correction(
    packed: np.ndarray,
    n: int,
    columns: np.ndarray | None,
    m: int,
    rate: float,
    up: bool,
    rng: np.random.Generator,
) -> None:
    """Flip a sparse Bernoulli(rate) mask over the (n x columns) lanes.

    ``columns`` restricts the lane grid to a column subset (``None`` =
    all ``m`` real columns).  OR-ing a sparse independent mask into the
    base raises each lane's rate from ``p0`` to ``p0 + (1-p0) * rate``;
    AND-ing the complement lowers it to ``p0 * (1 - rate)`` — the two
    directions :func:`_correction_rate` solves for.
    """
    width = packed.shape[1]
    n_columns = m if columns is None else columns.size
    lanes = _sparse_positions(n * n_columns, rate, rng)
    if lanes.size == 0:
        return
    rows, cols = np.divmod(lanes, n_columns)
    if columns is not None:
        cols = columns[cols]
    byte_index = rows * width + (cols >> 3)
    bit_mask = (128 >> (cols & 7)).astype(np.uint8)
    # Lane positions are strictly increasing and any column subset is
    # ascending, so byte_index is non-decreasing with unique (byte, bit)
    # pairs — exactly what _scatter_flip's run-collapsing needs.
    _scatter_flip(packed.reshape(-1), byte_index, bit_mask, set_bits=up)


# ----------------------------------------------------------------------
# The packed Bernoulli kernel
# ----------------------------------------------------------------------
def _uniform_planes(
    n: int, width: int, threshold: int, precision: int, rng: np.random.Generator
) -> np.ndarray:
    """Packed Bernoulli(threshold / 2^precision) base, one op per plane."""
    n_words = -(-(n * width) // 8)
    result = None
    for plane in range(precision):
        bit = (threshold >> plane) & 1
        if result is None:
            if bit:
                result = _raw_words(rng, n_words)
            continue  # planes below the lowest set bit are identities
        words = _raw_words(rng, n_words)
        if bit:
            np.bitwise_or(result, words, out=result)
        else:
            np.bitwise_and(result, words, out=result)
    if result is None:  # threshold == 0: planes contribute nothing
        result = np.zeros(n_words, dtype=np.uint64)
    return result.view(np.uint8)[: n * width].reshape(n, width)


def _column_planes(
    n: int,
    width: int,
    thresholds: np.ndarray,
    precision: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-column thresholds: plane masks broadcast over packed rows.

    The recurrence for ``u < T`` with per-column threshold bit mask
    ``t`` is ``r' = (t & u) | ((t ^ u) & r)`` (complement dropped as in
    the uniform path).  Pad columns carry ``T = 0`` and therefore stay
    zero, preserving the ``np.packbits`` tail convention.
    """
    lowest = min(
        (_trailing_zeros(int(t), precision) for t in thresholds), default=precision
    )
    result = None
    for plane in range(lowest, precision):
        plane_bits = ((thresholds >> np.uint64(plane)) & np.uint64(1)).astype(np.uint8)
        mask = np.packbits(plane_bits)  # zero-padded to the row width
        if not mask.any() and result is None:
            continue
        words = _raw_words(rng, -(-(n * width) // 8))
        u = words.view(np.uint8)[: n * width].reshape(n, width)
        if result is None:
            result = np.bitwise_and(u, mask, out=u)
        else:
            anded = mask & u
            np.bitwise_xor(u, mask, out=u)
            np.bitwise_and(u, result, out=u)
            np.bitwise_or(u, anded, out=result)
    if result is None:
        result = np.zeros((n, width), dtype=np.uint8)
    return result


def packed_bernoulli(
    p, n: int, rng=None, *, precision: int = 8
) -> np.ndarray:
    """``n`` packed rows of independent Bernoulli bits, one per column.

    Parameters
    ----------
    p:
        Scalar or length-``m`` per-column probabilities in ``[0, 1]``.
    n:
        Number of rows (users).
    rng:
        Generator / seed / None; raw words are drawn from its
        BitGenerator.
    precision:
        Bit planes spent before the sparse correction (1..32).  Purely
        a performance knob — the output law is exact to ~2^-60 at any
        setting.

    Returns
    -------
    ``n x ceil(m / 8)`` ``uint8`` matrix in the row-wise MSB-first
    ``np.packbits`` wire format, trailing pad bits zero.
    """
    n = check_positive_int(n, "n")
    rng = check_rng(rng)
    probabilities = np.atleast_1d(np.asarray(p, dtype=np.float64))
    if probabilities.ndim != 1:
        raise ValidationError(
            f"p must be a scalar or 1-D vector, got shape {probabilities.shape}"
        )
    m = probabilities.size
    width = packed_width(m)
    tail_bits = 8 * width - m

    uniform = bool(np.all(probabilities == probabilities[0]))
    if uniform:
        value = float(probabilities[0])
        if not np.isfinite(value) or not 0.0 <= value <= 1.0:
            raise ValidationError("probabilities must lie in [0, 1]")
        complement = value > 0.5
        generated = 1.0 - value if complement else value
        threshold, delta = _pick_uniform_threshold(generated, precision)
        packed = _uniform_planes(n, width, threshold, precision, rng)
        rate = _correction_rate(threshold, delta, precision)
        if rate:
            _apply_correction(packed, n, None, m, rate, delta > 0.0, rng)
        if complement:
            np.bitwise_not(packed, out=packed)
        if tail_bits:
            packed[:, -1] &= np.uint8((0xFF << tail_bits) & 0xFF)
        return packed

    thresholds, deltas, complements = fixed_point_decompose(probabilities, precision)
    packed = _column_planes(n, width, thresholds, precision, rng)
    # One sparse correction per distinct probability: the group count is
    # the number of parameter levels (t for IDUE), not m.
    _, first, inverse = np.unique(
        probabilities, return_index=True, return_inverse=True
    )
    for group, column_index in enumerate(first):
        delta = float(deltas[column_index])
        rate = _correction_rate(int(thresholds[column_index]), delta, precision)
        if not rate:
            continue
        columns = np.flatnonzero(inverse == group)
        _apply_correction(packed, n, columns, m, rate, delta > 0.0, rng)
    if complements.any():
        flip = np.packbits(complements)  # pad columns are never complemented
        np.bitwise_xor(packed, flip, out=packed)
    return packed


# ----------------------------------------------------------------------
# Packed-domain utilities
# ----------------------------------------------------------------------
def packed_assign_bits(packed: np.ndarray, columns, values) -> None:
    """Overwrite one bit per row: row ``i``'s bit ``columns[i]`` := ``values[i]``.

    This is the packed-domain version of the hot-bit overwrite in
    ``UnaryMechanism.perturb_many``: the background of a unary report is
    drawn from the zero-bit law in one kernel call, then each user's
    single encoded bit is replaced with its own-bit draw.
    """
    columns = np.asarray(columns)
    if packed.ndim != 2 or columns.shape != (packed.shape[0],):
        raise ValidationError(
            f"need one column per packed row, got {columns.shape} columns for "
            f"{packed.shape} packed"
        )
    rows = np.arange(packed.shape[0])
    byte_index = columns >> 3
    bit_mask = (128 >> (columns & 7)).astype(np.uint8)
    cleared = packed[rows, byte_index] & ~bit_mask
    packed[rows, byte_index] = cleared | np.where(values, bit_mask, np.uint8(0))


def packed_column_counts(packed: np.ndarray, m: int) -> np.ndarray:
    """Per-column 1-counts of a packed chunk without unpacking it.

    A vertical-counting (Harley–Seal style) popcount: rows are treated
    as 1-bit numbers and pairwise-added with bitwise full-adder logic,
    so after ``L`` halvings the chunk is ``rows / 2^L`` rows of
    ``L+1``-bit bit-plane counters.  Total work is ``O(k * m / 8)``
    byte-wide bitops — the remaining small plane stack is expanded and
    summed conventionally.  Exact for any ``k``: odd rows are folded
    straight into the running counts before each halving, and the
    carry plane appended per level keeps every partial sum
    representable.
    """
    if packed.ndim != 2 or packed.dtype != np.uint8:
        raise ValidationError(
            f"packed must be a 2-D uint8 matrix, got {packed.dtype} "
            f"shape {getattr(packed, 'shape', None)}"
        )
    width = packed.shape[1]
    if packed_width(m) != width:
        raise ValidationError(
            f"packed width {width} does not match m={m} (expected {packed_width(m)})"
        )
    counts = np.zeros(m, dtype=np.int64)
    planes = [packed]  # planes[w] carries weight 2^w per set bit
    rows = packed.shape[0]
    while rows > 64:  # below this, adder overhead beats unpack+sum
        if rows % 2:
            for weight, plane in enumerate(planes):
                counts += np.unpackbits(plane[-1], count=m).astype(np.int64) << weight
            planes = [plane[:-1] for plane in planes]
            rows -= 1
        evens = [plane[0::2] for plane in planes]
        odds = [plane[1::2] for plane in planes]
        carry = None
        reduced = []
        for even, odd in zip(evens, odds):
            if carry is None:
                reduced.append(even ^ odd)
                carry = even & odd
            else:
                partial = even ^ odd
                reduced.append(partial ^ carry)
                carry = (even & odd) | (carry & partial)
        reduced.append(carry)
        planes = reduced
        rows //= 2
    for weight, plane in enumerate(planes):
        counts += (
            np.unpackbits(plane, axis=1, count=m).sum(axis=0, dtype=np.int64)
            << weight
        )
    return counts
