"""Sampler configuration: which RNG backend and bit kernel to use.

Every mechanism draws its randomness through a sampling *kernel*, and a
:class:`SamplerConfig` names which one:

``exactness="bitexact"`` (the default)
    The historical float64 path: one PCG64 ``random()`` draw per
    Bernoulli coin, consumed in exactly the order the mechanisms have
    always consumed them.  Fixed-seed output streams are frozen — any
    test or experiment pinned to a seed keeps producing byte-identical
    reports.

``exactness="fast"``
    The bit-sliced packed-word kernel of
    :mod:`repro.kernels.bernoulli`: raw ``uint64`` words drawn straight
    from the BitGenerator, compared plane-by-plane against a fixed-point
    threshold, emitting reports already in the ``np.packbits`` wire
    format.  The contract is *distributional equivalence*: released
    reports follow the same per-bit Bernoulli law (to ~2^-60 in
    probability — see :func:`repro.kernels.bernoulli.packed_bernoulli`)
    but the fixed-seed bit stream differs from the float64 path.

The two remaining axes tune the fast path:

* ``backend`` — which ``numpy.random`` BitGenerator seeds are expanded
  with (``pcg64`` | ``sfc64`` | ``philox``).  SFC64 is the fastest raw
  word source; Philox is counter-based and splits cleanly across
  machines.  Only consulted when a *seed* (not a ready Generator) is
  supplied, e.g. by :class:`~repro.pipeline.sharded.ShardedRunner`.
* ``dtype`` — the draw representation: ``float64`` (historical),
  ``float32`` (half the entropy per coin, ~2x faster, resolution
  2^-24), or ``u64`` (the packed fixed-point kernel, the fast default).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import ValidationError
from .backends import ComputeBackend, compute_backend_names, get_compute_backend

__all__ = ["SamplerConfig", "BITEXACT", "FAST", "resolve_sampler"]

_BACKENDS = {
    "pcg64": np.random.PCG64,
    "sfc64": np.random.SFC64,
    "philox": np.random.Philox,
}
_DTYPES = ("float64", "float32", "u64")
_EXACTNESS = ("bitexact", "fast")


@dataclass(frozen=True)
class SamplerConfig:
    """Immutable description of how a mechanism draws its random bits.

    Parameters
    ----------
    backend:
        BitGenerator used to expand integer seeds / ``SeedSequence``
        objects (``"pcg64"`` | ``"sfc64"`` | ``"philox"``).  Ignored
        when a ready-made ``numpy.random.Generator`` is passed in.
    dtype:
        Draw representation: ``"float64"``, ``"float32"`` or ``"u64"``
        (packed fixed-point words).
    exactness:
        ``"bitexact"`` reproduces today's fixed-seed streams and forces
        the float64/PCG64 path; ``"fast"`` promises only distributional
        equivalence and unlocks the other dtypes/backends.
    precision:
        Bit-planes the ``u64`` kernel spends before switching to the
        exact sparse correction (1..32).  8 is the measured sweet spot;
        the *distribution* is ~2^-60-exact at any setting, precision
        only trades plane work against correction work.
    compute:
        Which registered :class:`~repro.kernels.backends.ComputeBackend`
        executes the packed kernels (``"numpy"`` | ``"numba"`` |
        ``"threaded"`` | any name registered via
        :func:`~repro.kernels.backends.register_compute_backend`).
        Orthogonal to ``exactness``: under ``"bitexact"`` sampling never
        reaches a compute backend (the frozen float64 path is scalar
        numpy by definition), so the choice only accelerates the
        aggregation-side popcount — which is exact integer math on
        every backend.  Under ``"fast"`` the backend also executes
        ``packed_bernoulli`` under the distributional contract.  The
        name must be registered at construction time; *availability*
        (an optional dependency like numba) is checked when the backend
        is resolved via :meth:`compute_backend`.
    """

    backend: str = "pcg64"
    dtype: str = "float64"
    exactness: str = "bitexact"
    precision: int = 8
    compute: str = "numpy"

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValidationError(
                f"backend must be one of {sorted(_BACKENDS)}, got {self.backend!r}"
            )
        if self.dtype not in _DTYPES:
            raise ValidationError(
                f"dtype must be one of {list(_DTYPES)}, got {self.dtype!r}"
            )
        if self.exactness not in _EXACTNESS:
            raise ValidationError(
                f"exactness must be one of {list(_EXACTNESS)}, got {self.exactness!r}"
            )
        if self.exactness == "bitexact" and (
            self.dtype != "float64" or self.backend != "pcg64"
        ):
            raise ValidationError(
                "exactness='bitexact' freezes the historical float64/PCG64 "
                f"stream; got dtype={self.dtype!r}, backend={self.backend!r} "
                "(use exactness='fast' to change them)"
            )
        if not isinstance(self.precision, (int, np.integer)) or isinstance(
            self.precision, bool
        ):
            raise ValidationError(f"precision must be an integer, got {self.precision!r}")
        if not 1 <= int(self.precision) <= 32:
            raise ValidationError(f"precision must lie in [1, 32], got {self.precision}")
        if self.compute not in compute_backend_names():
            raise ValidationError(
                f"compute must name a registered backend "
                f"{list(compute_backend_names())}, got {self.compute!r}"
            )

    # ------------------------------------------------------------------
    @property
    def is_fast(self) -> bool:
        """True when the distributional (non-bitexact) contract applies."""
        return self.exactness == "fast"

    @property
    def uniform_dtype(self) -> type:
        """numpy dtype for plain (non-packed) uniform draws.

        ``float64`` keeps full-resolution coins even under the fast
        contract; ``float32`` halves the entropy per draw; ``u64``
        resolves to float32 for draws that have no packed analogue
        (inverse-CDF sampling, keep-coins), since a packed-kernel
        config is asking for speed over resolution.
        """
        return np.float64 if self.dtype == "float64" else np.float32

    @property
    def is_packed(self) -> bool:
        """True when the kernel natively emits packed words (``u64``)."""
        return self.is_fast and self.dtype == "u64"

    def make_generator(self, rng=None) -> np.random.Generator:
        """Coerce *rng* to a Generator, expanding seeds via ``backend``.

        A ready ``Generator`` is passed through untouched (its own
        BitGenerator wins); ``None``, integer seeds and ``SeedSequence``
        objects are expanded with the configured backend so e.g. a
        sharded run gets SFC64 workers from one root seed.
        """
        if isinstance(rng, np.random.Generator):
            return rng
        if rng is None or isinstance(
            rng, (int, np.integer, np.random.SeedSequence)
        ) and not isinstance(rng, bool):
            return np.random.Generator(_BACKENDS[self.backend](rng))
        raise ValidationError(
            f"rng must be a numpy Generator, an integer seed, a SeedSequence, "
            f"or None, got {rng!r}"
        )

    def compute_backend(self) -> ComputeBackend:
        """Resolve the configured compute backend (loud if unavailable)."""
        return get_compute_backend(self.compute)

    def with_precision(self, precision: int) -> "SamplerConfig":
        """Copy of this config with a different plane budget."""
        return replace(self, precision=precision)

    def with_compute(self, compute: str) -> "SamplerConfig":
        """Copy of this config executing its kernels on *compute*."""
        return replace(self, compute=compute)

    @classmethod
    def from_name(cls, name) -> "SamplerConfig":
        """Resolve ``"bitexact"`` / ``"fast"`` (or pass through a config)."""
        if isinstance(name, cls):
            return name
        if name == "bitexact":
            return BITEXACT
        if name == "fast":
            return FAST
        raise ValidationError(
            f"sampler must be 'bitexact', 'fast' or a SamplerConfig, got {name!r}"
        )


#: The frozen historical path: float64 PCG64 draws, fixed-seed streams kept.
BITEXACT = SamplerConfig()

#: The packed-word kernel: SFC64 raw words, distributional contract.
FAST = SamplerConfig(backend="sfc64", dtype="u64", exactness="fast")


def resolve_sampler(sampler) -> SamplerConfig:
    """``None`` → :data:`BITEXACT`; names and configs via ``from_name``."""
    if sampler is None:
        return BITEXACT
    return SamplerConfig.from_name(sampler)
