"""Pluggable compute backends for the packed sampling/counting kernels.

:mod:`repro.kernels.bernoulli` fixes *what* the hot kernels compute —
packed-word Bernoulli sampling and the vertical-counting popcount — but
not *how*.  This module makes the "how" a registry of named
:class:`ComputeBackend` objects selected through
``SamplerConfig(compute="...")`` and plumbed end to end (mechanisms,
streaming engine, accumulator, CLI):

``numpy`` (the baseline, always available)
    The reference implementation: the vectorized kernels of
    :mod:`.bernoulli`, unchanged.

``threaded``
    Tiles both kernels across a worker pool.  Sampling splits the row
    range into fixed-size tiles, each drawn from its own
    ``Generator.spawn`` child — the output is deterministic given the
    parent generator and *independent of the worker count*, because
    child streams are assigned by tile index, not by scheduling order.
    Counting splits rows into tiles, popcounts each, and sums — exact
    integer math, so the result is bit-identical to ``numpy`` always.
    Inside each tile the work is delegated to an *inner* backend
    (``numba`` when importable, else ``numpy``), so the tiles actually
    release the GIL where a JIT is present.

``numba`` (optional extra, graceful skip when absent)
    JIT-compiled kernels: a fused single-pass bit-plane combine for
    uniform sampling and a tight ``nogil`` popcount loop.  Registered
    unconditionally so the *name* always resolves, but
    :attr:`ComputeBackend.available` is False without the ``numba``
    package and resolution through :func:`get_compute_backend` then
    fails with an actionable message — callers that probe first (tests,
    benchmarks) skip cleanly instead of failing.

The bit-exactness contract (see ``docs/kernels.md``):

* **Counting is exact everywhere.**  ``packed_column_counts`` is
  integer math; every backend must return bit-identical counts for any
  input, so accumulator state never depends on the compute backend.
* **Sampling under ``exactness="bitexact"`` never reaches a compute
  backend** — the bitexact contract pins the historical float64/PCG64
  draw order, which is scalar numpy by definition.  Compute backends
  therefore cannot perturb bitexact streams no matter what they do.
* **Sampling under ``exactness="fast"`` is distribution-correct only.**
  Backends may consume the generator differently (the threaded backend
  spawns children; numba fuses plane draws), so fixed-seed bytes differ
  across backends — but every released bit follows the same Bernoulli
  law as the numpy kernel (verified by the cross-backend hypothesis
  suite in ``tests/property/test_property_backends.py``).
"""

from __future__ import annotations

import abc
import importlib.util
import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..exceptions import ValidationError
from . import bernoulli as _bn

__all__ = [
    "ComputeBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "NumbaBackend",
    "register_compute_backend",
    "get_compute_backend",
    "compute_backend_names",
    "available_compute_backends",
]


class ComputeBackend(abc.ABC):
    """One implementation of the packed hot kernels.

    Subclasses provide :meth:`packed_bernoulli` (sampling; only ever
    reached under the ``fast`` contract) and
    :meth:`packed_column_counts` (counting; must be bit-identical to
    the numpy baseline for every input).  ``available`` / ``requires``
    let optional-dependency backends register unconditionally while
    resolution and test collection stay graceful where the dependency
    is missing.
    """

    #: Registry key; also the value of ``SamplerConfig.compute``.
    name: str = "abstract"

    @property
    def available(self) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    @property
    def requires(self) -> str | None:
        """Human-readable missing requirement when not available."""
        return None

    @abc.abstractmethod
    def packed_bernoulli(
        self, p, n: int, rng: np.random.Generator, *, precision: int = 8
    ) -> np.ndarray:
        """Sample ``n`` packed Bernoulli rows (law of :func:`.bernoulli.packed_bernoulli`)."""

    @abc.abstractmethod
    def packed_column_counts(self, packed: np.ndarray, m: int) -> np.ndarray:
        """Per-column 1-counts; must equal the numpy baseline exactly."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyBackend(ComputeBackend):
    """The reference backend: the vectorized kernels, verbatim."""

    name = "numpy"

    def packed_bernoulli(self, p, n, rng, *, precision=8):
        return _bn.packed_bernoulli(p, n, rng, precision=precision)

    def packed_column_counts(self, packed, m):
        return _bn.packed_column_counts(packed, m)


class NumbaBackend(ComputeBackend):
    """JIT backend: fused plane combine + ``nogil`` popcount loops.

    Compilation is lazy (first kernel call), so importing this module —
    and registering the backend — costs nothing and works without numba
    installed.  The sampling law is identical to the numpy kernel: the
    same raw words are drawn in the same plane order and the same
    sparse correction runs on top; only the plane-combine loop is fused
    into a single JIT pass.  Non-uniform probability vectors fall back
    to the numpy kernel (the per-column recurrence is already one fused
    numpy pass per plane and gains little from a JIT).
    """

    name = "numba"

    def __init__(self) -> None:
        self._jit = None
        self._lock = threading.Lock()

    @property
    def available(self) -> bool:
        return importlib.util.find_spec("numba") is not None

    @property
    def requires(self) -> str | None:
        if self.available:
            return None
        return "the 'numba' package (pip install repro-idldp[numba])"

    # ------------------------------------------------------------------
    def _kernels(self):
        """Compile (once) and return the JIT kernels."""
        if self._jit is not None:
            return self._jit
        with self._lock:
            if self._jit is not None:
                return self._jit
            if not self.available:
                raise ValidationError(
                    f"compute backend 'numba' is unavailable: requires "
                    f"{self.requires}"
                )
            import numba

            @numba.njit(cache=True, nogil=True)
            def combine_planes(words, bits):  # pragma: no cover - JIT
                # words: (planes, n_words) uint64 raw draws, LSB plane
                # first; bits: per-plane threshold bits (uint8).  Fused
                # form of the plane recurrence in _uniform_planes: one
                # memory pass instead of one per plane.
                n_planes, n_words = words.shape
                out = np.empty(n_words, dtype=np.uint64)
                for i in range(n_words):
                    acc = words[0, i]
                    for plane in range(1, n_planes):
                        if bits[plane]:
                            acc |= words[plane, i]
                        else:
                            acc &= words[plane, i]
                    out[i] = acc
                return out

            @numba.njit(cache=True, nogil=True)
            def column_counts(packed, m):  # pragma: no cover - JIT
                rows, width = packed.shape
                counts = np.zeros(m, dtype=np.int64)
                for i in range(rows):
                    for j in range(width):
                        value = packed[i, j]
                        if value == 0:
                            continue
                        base = j * 8
                        stop = m - base
                        if stop > 8:
                            stop = 8
                        for bit in range(stop):
                            counts[base + bit] += (value >> (7 - bit)) & 1
                return counts

            self._jit = (combine_planes, column_counts)
        return self._jit

    # ------------------------------------------------------------------
    def packed_bernoulli(self, p, n, rng, *, precision=8):
        combine_planes, _ = self._kernels()
        probabilities = np.atleast_1d(np.asarray(p, dtype=np.float64))
        if probabilities.ndim != 1 or not bool(
            np.all(probabilities == probabilities.flat[0])
        ):
            # Per-column thresholds: the numpy kernel is already one
            # fused pass per plane; no JIT advantage worth duplicating.
            return _bn.packed_bernoulli(p, n, rng, precision=precision)
        n = int(n)
        value = float(probabilities[0])
        if not np.isfinite(value) or not 0.0 <= value <= 1.0:
            raise ValidationError("probabilities must lie in [0, 1]")
        m = probabilities.size
        width = _bn.packed_width(m)
        tail_bits = 8 * width - m
        complement = value > 0.5
        generated = 1.0 - value if complement else value
        threshold, delta = _bn._pick_uniform_threshold(generated, precision)
        # Same draw order as the numpy kernel: one word batch per active
        # plane, lowest set bit first.  Drawing them as one contiguous
        # batch matches sequential per-plane draws for every raw-word
        # BitGenerator (random_raw streams are flat).
        lowest = _bn._trailing_zeros(threshold, precision)
        n_words = -(-(n * width) // 8)
        active = precision - lowest if threshold else 0
        if active:
            words = _bn._raw_words(rng, active * n_words).reshape(active, n_words)
            bits = ((threshold >> np.arange(lowest, precision)) & 1).astype(
                np.uint8
            )
            base = combine_planes(words, bits)
        else:
            base = np.zeros(n_words, dtype=np.uint64)
        packed = np.ascontiguousarray(
            base.view(np.uint8)[: n * width].reshape(n, width)
        )
        rate = _bn._correction_rate(threshold, delta, precision)
        if rate:
            _bn._apply_correction(packed, n, None, m, rate, delta > 0.0, rng)
        if complement:
            np.bitwise_not(packed, out=packed)
        if tail_bits:
            packed[:, -1] &= np.uint8((0xFF << tail_bits) & 0xFF)
        return packed

    def packed_column_counts(self, packed, m):
        _, column_counts = self._kernels()
        # Reuse the baseline's validation so error text stays uniform.
        if packed.ndim != 2 or packed.dtype != np.uint8:
            return _bn.packed_column_counts(packed, m)
        if _bn.packed_width(m) != packed.shape[1]:
            return _bn.packed_column_counts(packed, m)
        return column_counts(np.ascontiguousarray(packed), m)


class ThreadedBackend(ComputeBackend):
    """Tile both kernels across a thread pool.

    Parameters
    ----------
    tile_rows:
        Rows per tile.  Sampling determinism is *defined* by this value
        (each tile gets the ``Generator.spawn`` child at its tile
        index), so it is part of the backend's identity, not a runtime
        tuning knob: two ThreadedBackends with equal ``tile_rows``
        produce identical output from the same generator regardless of
        ``max_workers`` or scheduling.
    max_workers:
        Pool size; defaults to the CPU count.  Purely a throughput
        knob — never affects results.
    inner:
        Backend performing each tile's actual kernel work; defaults to
        ``numba`` when importable (tiles then release the GIL inside
        the JIT) and ``numpy`` otherwise.
    """

    name = "threaded"

    def __init__(
        self,
        *,
        tile_rows: int = 2048,
        max_workers: int | None = None,
        inner: ComputeBackend | None = None,
    ) -> None:
        if tile_rows < 1:
            raise ValidationError(f"tile_rows must be >= 1, got {tile_rows}")
        self.tile_rows = int(tile_rows)
        self.max_workers = int(max_workers or (os.cpu_count() or 1))
        if inner is None:
            numba = NumbaBackend()
            inner = numba if numba.available else NumpyBackend()
        self.inner = inner
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with self._lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-kernels",
                    )
        return self._pool

    def _bounds(self, n: int) -> list[tuple[int, int]]:
        return [
            (start, min(n, start + self.tile_rows))
            for start in range(0, n, self.tile_rows)
        ]

    # ------------------------------------------------------------------
    def packed_bernoulli(self, p, n, rng, *, precision=8):
        n = int(n)
        if n <= self.tile_rows or self.max_workers == 1:
            return self.inner.packed_bernoulli(p, n, rng, precision=precision)
        bounds = self._bounds(n)
        # One child stream per tile, assigned by tile index before any
        # work is submitted: the output is a pure function of (rng,
        # tile_rows), independent of worker count and completion order.
        children = rng.spawn(len(bounds))
        tiles = list(
            self._executor().map(
                lambda job: self.inner.packed_bernoulli(
                    p, job[0][1] - job[0][0], job[1], precision=precision
                ),
                zip(bounds, children),
            )
        )
        return np.vstack(tiles)

    def packed_column_counts(self, packed, m):
        rows = packed.shape[0] if getattr(packed, "ndim", 0) == 2 else 0
        if rows <= self.tile_rows or self.max_workers == 1:
            return self.inner.packed_column_counts(packed, m)
        bounds = self._bounds(rows)
        partials = self._executor().map(
            lambda span: self.inner.packed_column_counts(
                packed[span[0] : span[1]], m
            ),
            bounds,
        )
        counts = np.zeros(m, dtype=np.int64)
        for partial in partials:
            counts += partial
        return counts


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, ComputeBackend] = {}


def register_compute_backend(
    backend: ComputeBackend, *, replace: bool = False
) -> ComputeBackend:
    """Register *backend* under its ``name``; returns it for chaining.

    Third-party backends (a C extension, CuPy, ...) register here and
    become reachable from ``SamplerConfig(compute=...)`` and the
    ``pipeline --compute`` flag with no further plumbing.  Re-using a
    taken name requires ``replace=True`` so a typo cannot silently
    shadow a built-in.
    """
    if not isinstance(backend, ComputeBackend):
        raise ValidationError(
            f"expected a ComputeBackend, got {type(backend).__name__}"
        )
    name = backend.name
    if not name or not isinstance(name, str):
        raise ValidationError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise ValidationError(
            f"compute backend {name!r} is already registered; pass "
            "replace=True to override it"
        )
    _REGISTRY[name] = backend
    return backend


def compute_backend_names() -> tuple[str, ...]:
    """Every registered backend name (available or not), sorted."""
    return tuple(sorted(_REGISTRY))


def available_compute_backends() -> tuple[str, ...]:
    """Names of the backends that can actually run here, sorted."""
    return tuple(sorted(n for n, b in _REGISTRY.items() if b.available))


def get_compute_backend(name: str) -> ComputeBackend:
    """Resolve a backend by name; loud on unknown *and* on unavailable.

    Unknown names list the registry; known-but-unavailable names name
    the missing requirement — a config asking for ``numba`` on a box
    without it must fail at resolution, not deep inside a worker.
    """
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValidationError(
            f"unknown compute backend {name!r}; registered backends: "
            f"{', '.join(compute_backend_names())}"
        )
    if not backend.available:
        raise ValidationError(
            f"compute backend {name!r} is unavailable: requires "
            f"{backend.requires}"
        )
    return backend


register_compute_backend(NumpyBackend())
register_compute_backend(NumbaBackend())
register_compute_backend(ThreadedBackend())
