"""Bit-sliced sampling kernels: packed-word randomness for hot paths.

The per-user protocols spend essentially all of their time flipping
Bernoulli coins.  This package supplies that randomness at the word
level instead of one float64 per coin:

* :mod:`.config` — :class:`SamplerConfig`, the switch between the
  frozen ``"bitexact"`` float64 path and the ``"fast"`` packed-word
  kernel (plus RNG backend and draw-dtype choices).  Accepted by
  ``perturb_many`` / ``perturb_many_packed``, the streaming engine,
  :class:`~repro.pipeline.sharded.ShardedRunner` and the ``pipeline``
  CLI (``--sampler fast|bitexact``).
* :mod:`.bernoulli` — the kernels themselves:
  :func:`~repro.kernels.bernoulli.packed_bernoulli` (bit-plane
  fixed-point Bernoulli over raw ``uint64`` words, output already in
  the ``np.packbits`` wire format), packed-domain bit assignment, and
  a columnwise popcount for packed chunks.
* :mod:`.backends` — the pluggable *compute* backend registry
  (``numpy`` | ``numba`` | ``threaded``) selected through
  ``SamplerConfig(compute=...)`` and the ``pipeline --compute`` CLI
  flag; see ``docs/kernels.md`` for the bit-exactness contract and how
  to register a new backend.

The bitexact-vs-fast contract in one line: *bitexact* keeps fixed-seed
output streams byte-identical to previous releases; *fast* keeps only
the output distribution (to ~2^-60 per-bit, i.e. statistically
indistinguishable) and is 4-10x faster end to end.
"""

from .backends import (
    ComputeBackend,
    NumbaBackend,
    NumpyBackend,
    ThreadedBackend,
    available_compute_backends,
    compute_backend_names,
    get_compute_backend,
    register_compute_backend,
)
from .bernoulli import (
    fixed_point_decompose,
    packed_assign_bits,
    packed_bernoulli,
    packed_column_counts,
    packed_width,
)
from .config import BITEXACT, FAST, SamplerConfig, resolve_sampler

__all__ = [
    "SamplerConfig",
    "BITEXACT",
    "FAST",
    "resolve_sampler",
    "packed_bernoulli",
    "packed_assign_bits",
    "packed_column_counts",
    "packed_width",
    "fixed_point_decompose",
    "ComputeBackend",
    "NumpyBackend",
    "NumbaBackend",
    "ThreadedBackend",
    "register_compute_backend",
    "get_compute_backend",
    "compute_backend_names",
    "available_compute_backends",
]
