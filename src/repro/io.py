"""Serialization of budget specs and solved mechanisms.

A deployment solves the IDUE optimization once (server side), ships the
parameters to devices, and must later reconstruct the matching estimator
— so the solved objects need a stable on-disk form.  Everything
round-trips through plain JSON-compatible dicts: no pickle, nothing
executable, safe to ship to clients.

Supported objects: :class:`~repro.core.budgets.BudgetSpec`, the uniform
unary mechanisms (SUE / OUE / UE), :class:`~repro.mechanisms.idue.IDUE`
and :class:`~repro.mechanisms.idue_ps.IDUEPS`.

Collector-side state (:class:`~repro.pipeline.CountAccumulator`) uses
the binary wire format of :mod:`repro.pipeline.collect.wire` instead of
JSON — counts are bulk numeric payload, and the wire frames carry the
version + CRC checks a collector needs; :func:`save_accumulator` /
:func:`load_accumulator` are the file-level entry points.
"""

from __future__ import annotations

import json
import os

import numpy as np

from .core.budgets import BudgetSpec
from .exceptions import ValidationError
from .mechanisms.base import UnaryMechanism
from .mechanisms.idue import IDUE
from .mechanisms.idue_ps import IDUEPS
from .mechanisms.unary import (
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    UnaryEncoding,
)

__all__ = [
    "spec_to_dict",
    "spec_from_dict",
    "mechanism_to_dict",
    "mechanism_from_dict",
    "save_mechanism",
    "load_mechanism",
    "save_accumulator",
    "load_accumulator",
]

_FORMAT_VERSION = 1


def spec_to_dict(spec: BudgetSpec) -> dict:
    """JSON-compatible representation of a budget specification."""
    if not isinstance(spec, BudgetSpec):
        raise ValidationError(f"spec must be a BudgetSpec, got {spec!r}")
    return {
        "type": "BudgetSpec",
        "version": _FORMAT_VERSION,
        "item_epsilons": spec.item_epsilons.tolist(),
    }


def spec_from_dict(payload: dict) -> BudgetSpec:
    """Inverse of :func:`spec_to_dict`."""
    if not isinstance(payload, dict) or payload.get("type") != "BudgetSpec":
        raise ValidationError(f"not a serialized BudgetSpec: {payload!r}")
    return BudgetSpec(np.asarray(payload["item_epsilons"], dtype=float))


def mechanism_to_dict(mechanism) -> dict:
    """JSON-compatible representation of a supported mechanism."""
    if isinstance(mechanism, IDUEPS):
        return {
            "type": "IDUEPS",
            "version": _FORMAT_VERSION,
            "m": mechanism.m,
            "ell": mechanism.ell,
            "name": mechanism.name,
            "a": np.asarray(mechanism.a).tolist(),
            "b": np.asarray(mechanism.b).tolist(),
            "spec": (
                spec_to_dict(mechanism.spec) if hasattr(mechanism, "spec") else None
            ),
        }
    if isinstance(mechanism, IDUE):
        return {
            "type": "IDUE",
            "version": _FORMAT_VERSION,
            "spec": spec_to_dict(mechanism.spec),
            "level_a": mechanism.level_a.tolist(),
            "level_b": mechanism.level_b.tolist(),
        }
    if isinstance(mechanism, (SymmetricUnaryEncoding, OptimizedUnaryEncoding)):
        return {
            "type": type(mechanism).__name__,
            "version": _FORMAT_VERSION,
            "epsilon": mechanism.target_epsilon,
            "m": mechanism.m,
        }
    if isinstance(mechanism, UnaryEncoding):
        return {
            "type": "UnaryEncoding",
            "version": _FORMAT_VERSION,
            "p": mechanism.p,
            "q": mechanism.q,
            "m": mechanism.m,
        }
    if isinstance(mechanism, UnaryMechanism):
        return {
            "type": "UnaryMechanism",
            "version": _FORMAT_VERSION,
            "a": np.asarray(mechanism.a).tolist(),
            "b": np.asarray(mechanism.b).tolist(),
        }
    raise ValidationError(
        f"cannot serialize mechanism of type {type(mechanism).__name__}"
    )


def mechanism_from_dict(payload: dict):
    """Inverse of :func:`mechanism_to_dict`."""
    if not isinstance(payload, dict) or "type" not in payload:
        raise ValidationError(f"not a serialized mechanism: {payload!r}")
    kind = payload["type"]
    if payload.get("version") != _FORMAT_VERSION:
        raise ValidationError(
            f"unsupported serialization version {payload.get('version')!r}"
        )
    if kind == "IDUEPS":
        unary = UnaryMechanism(
            np.asarray(payload["a"], dtype=float),
            np.asarray(payload["b"], dtype=float),
        )
        mechanism = IDUEPS(unary, int(payload["m"]), int(payload["ell"]))
        mechanism.name = str(payload.get("name", "idue-ps"))
        if payload.get("spec") is not None:
            mechanism.spec = spec_from_dict(payload["spec"])
            mechanism.extended_spec = mechanism.spec.with_dummies(mechanism.ell)
        return mechanism
    if kind == "IDUE":
        return IDUE(
            spec_from_dict(payload["spec"]),
            np.asarray(payload["level_a"], dtype=float),
            np.asarray(payload["level_b"], dtype=float),
        )
    if kind == "SymmetricUnaryEncoding":
        return SymmetricUnaryEncoding(float(payload["epsilon"]), int(payload["m"]))
    if kind == "OptimizedUnaryEncoding":
        return OptimizedUnaryEncoding(float(payload["epsilon"]), int(payload["m"]))
    if kind == "UnaryEncoding":
        return UnaryEncoding(float(payload["p"]), float(payload["q"]), int(payload["m"]))
    if kind == "UnaryMechanism":
        return UnaryMechanism(
            np.asarray(payload["a"], dtype=float),
            np.asarray(payload["b"], dtype=float),
        )
    raise ValidationError(f"unknown serialized mechanism type {kind!r}")


def save_mechanism(mechanism, path: str) -> None:
    """Write a mechanism to a JSON file (creating parent directories)."""
    payload = mechanism_to_dict(mechanism)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def load_mechanism(path: str):
    """Read a mechanism from a JSON file written by :func:`save_mechanism`."""
    if not os.path.exists(path):
        raise ValidationError(f"mechanism file not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{path} is not valid JSON: {exc}") from exc
    return mechanism_from_dict(payload)


def save_accumulator(accumulator, path: str) -> None:
    """Write accumulator state as one wire-format snapshot frame.

    Creates parent directories like :func:`save_mechanism`; the file is
    a single frame, so :func:`load_accumulator`, a spill-file reader, or
    a socket producer can all consume it unchanged.  The write is atomic
    (temp file + ``os.replace``): a crash mid-save leaves either the
    previous snapshot or the new one, never a torn frame.
    """
    from .pipeline.collect import wire
    from .pipeline.collect.store import atomic_write_bytes

    frame = wire.dump_snapshot(accumulator)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    atomic_write_bytes(os.path.abspath(path), frame)


def load_accumulator(path: str):
    """Read a snapshot frame written by :func:`save_accumulator`.

    Raises :class:`~repro.exceptions.WireFormatError` on corrupted,
    truncated, wrong-magic, or wrong-version input, and
    :class:`ValidationError` if the file holds a chunk frame instead of
    a snapshot.
    """
    from .pipeline.accumulator import CountAccumulator
    from .pipeline.collect import wire

    if not os.path.exists(path):
        raise ValidationError(f"accumulator file not found: {path}")
    with open(path, "rb") as handle:
        obj = wire.loads(handle.read())
    if not isinstance(obj, CountAccumulator):
        raise ValidationError(
            f"{path} holds a {type(obj).__name__} frame, not an "
            "accumulator snapshot"
        )
    return obj
